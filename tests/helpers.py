"""Shared test fixtures: small kernel models used across the suite."""

from __future__ import annotations

from repro.kernel.builder import ProgramBuilder
from repro.kernel.machine import KernelMachine, ThreadSpec
from repro.kernel.program import KernelImage


def fig2_image() -> KernelImage:
    """The paper's Figure 2 (CVE-2017-15649), without benign-race salt."""
    b = ProgramBuilder()
    with b.function("fanout_add") as f:
        f.load("r0", f.g("po_running"), label="A2")
        f.brz("r0", "A3", label="A2b")
        f.alloc("r1", 16, tag="match", label="A5")
        f.store(f.g("po_fanout"), f.r("r1"), label="A6")
        f.call("fanout_link", label="A8")
        f.ret(label="A3")
    with b.function("fanout_link") as f:
        f.list_add(f.g("global_list"), f.i(77), label="A12")
    with b.function("packet_do_bind") as f:
        f.load("r0", f.g("po_fanout"), label="B2")
        f.brnz("r0", "B3", label="B2b")
        f.call("unregister_hook", label="B5")
        f.ret(label="B3")
    with b.function("unregister_hook") as f:
        f.store(f.g("po_running"), f.i(0), label="B11")
        f.load("r0", f.g("po_fanout"), label="B12")
        f.brz("r0", "B14", label="B12b")
        f.call("fanout_unlink", label="B13")
        f.ret(label="B14")
    with b.function("fanout_unlink") as f:
        f.list_contains("r1", f.g("global_list"), f.i(77), label="B17a")
        f.binop("r2", "eq", f.r("r1"), f.i(0))
        f.bug_on("r2", "sk not on global_list", label="B17")
    return b.build()


def fig2_machine() -> KernelMachine:
    return KernelMachine(
        fig2_image(),
        [ThreadSpec("A", "fanout_add"), ThreadSpec("B", "packet_do_bind")],
        globals_init={"po_running": 1, "po_fanout": 0, "global_list": ()},
    )


def fig2_factory():
    return fig2_machine


def two_counter_image() -> KernelImage:
    """Two threads bumping shared counters — benign races only."""
    b = ProgramBuilder()
    with b.function("bump_a") as f:
        f.inc(f.g("c1"), 1, label="A1")
        f.inc(f.g("c2"), 1, label="A2")
    with b.function("bump_b") as f:
        f.inc(f.g("c1"), 1, label="B1")
        f.inc(f.g("c2"), 1, label="B2")
    return b.build()


def two_counter_machine() -> KernelMachine:
    return KernelMachine(
        two_counter_image(),
        [ThreadSpec("A", "bump_a"), ThreadSpec("B", "bump_b")],
    )


def run_thread(machine: KernelMachine, name: str) -> None:
    """Run one thread to completion (no other thread scheduled)."""
    thread = machine.thread(name)
    while not thread.done and not machine.halted:
        machine.step(name)


def run_until(machine: KernelMachine, name: str, stop_label: str) -> None:
    """Run a thread until it is about to execute ``stop_label``."""
    while True:
        instr = machine.peek(name)
        if instr is None or machine.halted or instr.name == stop_label:
            return
        machine.step(name)
