"""The repro.api facade: parity with the legacy entrypoints, the
deprecation shims, and the unified CLI flag vocabulary."""

import pytest

import repro
from repro import api
from repro.cli import build_parser, main
from repro.core.diagnose import Aitia
from repro.corpus import registry


class TestVersion:
    def test_version_bumped(self):
        assert repro.__version__ == "2.0.0"

    def test_facade_reexported_at_top_level(self):
        assert repro.diagnose is api.diagnose
        assert repro.evaluate is api.evaluate
        assert repro.triage is api.triage
        assert repro.TriageReport is api.TriageReport


class TestDiagnoseParity:
    """api.diagnose must be a pure facade: same chain, same accounting
    as driving the Aitia orchestrator directly."""

    @pytest.mark.parametrize("bug_id", ["CVE-2017-15649", "SYZ-05"])
    def test_direct_diagnosis_identical(self, bug_id):
        bug = registry.get_bug(bug_id)
        legacy = Aitia(bug).diagnose()
        facade = api.diagnose(bug_id)  # resolves the id itself
        assert facade.reproduced == legacy.reproduced
        assert facade.chain.render() == legacy.chain.render()
        assert facade.total_lifs_schedules == legacy.total_lifs_schedules
        assert facade.ca_schedules == legacy.ca_schedules
        assert (facade.lifs_result.interleaving_count
                == legacy.lifs_result.interleaving_count)

    def test_accepts_bug_object(self):
        bug = registry.get_bug("SYZ-05")
        assert api.diagnose(bug).reproduced

    def test_explicit_report_skips_bug_finder(self):
        from repro.trace.syzkaller import run_bug_finder
        bug = registry.get_bug("SYZ-04")
        report = run_bug_finder(bug)
        facade = api.diagnose(bug, report=report)
        legacy = Aitia(bug, report=report).diagnose()
        assert facade.chain.render() == legacy.chain.render()


class TestEvaluateFacade:
    def test_evaluate_resolves_ids(self):
        evaluation = api.evaluate(["SYZ-05"])
        assert [r.bug_id for r in evaluation.rows] == ["SYZ-05"]
        assert evaluation.rows[0].reproduced


class TestTriageFacade:
    def test_corpus_subset_by_id(self, tmp_path):
        registry.load()
        report = api.triage(["SYZ-05", "SYZ-05"],
                            store=str(tmp_path / "store.jsonl"))
        # same bug twice → one unique signature, duplicates folded
        assert len(report.results) == 1
        assert report.results[0].duplicates == 1
        assert report.all_ok

    def test_store_path_becomes_cache(self, tmp_path):
        registry.load()
        store = str(tmp_path / "store.jsonl")
        first = api.triage(["SYZ-05"], store=store)
        assert first.results[0].outcome == "succeeded"
        second = api.triage(["SYZ-05"], store=store)
        assert second.results[0].outcome == "cache_hit"

    def test_intake_directory_source(self, tmp_path):
        from repro.service.artifacts import emit_artifact
        registry.load()
        intake = tmp_path / "intake"
        intake.mkdir()
        emit_artifact(registry.get_bug("SYZ-05"), str(intake))
        report = api.triage(str(intake))
        assert len(report.results) == 1
        assert report.all_ok


class TestDeprecationShimsRemoved:
    """The 1.x shims were dropped in 2.0: importing them must fail."""

    def test_triage_corpus_gone(self):
        with pytest.raises(ImportError):
            from repro.service.triage import triage_corpus  # noqa: F401

    def test_evaluate_bug_gone(self):
        with pytest.raises(ImportError):
            from repro.analysis.evaluation import evaluate_bug  # noqa: F401
        import repro.analysis
        assert "evaluate_bug" not in repro.analysis.__all__
        assert not hasattr(repro.analysis, "evaluate_bug")


class TestUnifiedCliFlags:
    def test_canonical_flags_parse_everywhere(self):
        parser = build_parser()
        ev = parser.parse_args(["evaluate", "--jobs", "3", "--timeout",
                                "42", "--trace", "t.jsonl"])
        assert (ev.jobs, ev.timeout, ev.trace) == (3, 42.0, "t.jsonl")
        tr = parser.parse_args(["triage", "--corpus", "--jobs", "3",
                                "--timeout", "42", "--store", "s.jsonl",
                                "--trace", "t.jsonl"])
        assert (tr.jobs, tr.timeout, tr.store, tr.trace) == (
            3, 42.0, "s.jsonl", "t.jsonl")
        dg = parser.parse_args(["diagnose", "SYZ-05", "--trace",
                                "t.jsonl"])
        assert dg.trace == "t.jsonl"

    def test_defaults_are_identical(self):
        parser = build_parser()
        ev = parser.parse_args(["evaluate"])
        tr = parser.parse_args(["triage", "--corpus"])
        assert ev.jobs == tr.jobs == 1
        assert ev.timeout == tr.timeout == 300.0
        assert ev.trace is None and tr.trace is None

    def test_legacy_aliases_removed(self, capsys):
        parser = build_parser()
        for argv in (["evaluate", "--workers", "4"],
                     ["triage", "--corpus", "--result-store", "s.jsonl"],
                     ["triage", "--corpus", "--job-timeout", "9"]):
            with pytest.raises(SystemExit):
                parser.parse_args(argv)
            assert "unrecognized arguments" in capsys.readouterr().err

    def test_aliases_hidden_from_help(self):
        import io
        from contextlib import redirect_stdout

        parser = build_parser()
        helps = []
        for argv in (["evaluate", "--help"], ["triage", "--help"]):
            buf = io.StringIO()
            with redirect_stdout(buf), pytest.raises(SystemExit):
                parser.parse_args(argv)
            helps.append(buf.getvalue())
        for text in helps:
            assert "--jobs" in text and "--timeout" in text
            assert "--workers" not in text
            assert "--job-timeout" not in text
            assert "--result-store" not in text

    def test_cli_trace_flag_end_to_end(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main(["diagnose", "SYZ-05", "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert f"trace written to {trace}" in out
        assert main(["trace-report", str(trace)]) == 0
        report = capsys.readouterr().out
        assert "per-stage summary" in report
        assert "lifs.schedules" in report

    def test_trace_report_missing_file(self, capsys):
        assert main(["trace-report", "/nonexistent/t.jsonl"]) == 2
        assert "error:" in capsys.readouterr().err
