"""Integration of happens-before filtering into Causality Analysis."""

import pytest

from repro.core.causality import CaConfig, CausalityAnalysis
from repro.core.lifs import FailureMatcher, LeastInterleavingFirstSearch
from repro.corpus.registry import get_bug


def _lifs_result(bug):
    lifs = LeastInterleavingFirstSearch(
        bug.machine_factory, [t.proc for t in bug.threads],
        FailureMatcher(kind=bug.bug_type, location=bug.failure_location))
    result = lifs.search()
    assert result.reproduced
    return result


@pytest.mark.parametrize("bug_id", [
    "CVE-2017-15649", "SYZ-04", "SYZ-08", "SYZ-12", "FIG-5",
])
def test_hb_filtering_preserves_the_chain(bug_id):
    """Happens-before refinement removes only unflippable pairs, so the
    diagnosis must be identical while testing no more units."""
    bug = get_bug(bug_id)
    result = _lifs_result(bug)
    base_ca = CausalityAnalysis(bug.machine_factory, result)
    base_units = len(base_ca.units)
    base = base_ca.analyze()
    hb_ca = CausalityAnalysis(bug.machine_factory, result,
                              config=CaConfig(use_happens_before=True))
    hb_units = len(hb_ca.units)
    hb = hb_ca.analyze()
    assert hb.chain.render() == base.chain.render()
    assert hb_units <= base_units


def test_hb_filtering_drops_spawn_ordered_pairs():
    """A pair ordered by the queue_work edge is not testable as a race;
    the HB-refined unit set must be strictly smaller when one exists."""
    bug = get_bug("SYZ-12")
    result = _lifs_result(bug)
    base = CausalityAnalysis(bug.machine_factory, result)
    refined = CausalityAnalysis(bug.machine_factory, result,
                                config=CaConfig(use_happens_before=True))
    assert len(refined.units) < len(base.units)


def test_hb_filtering_never_drops_root_causes():
    for bug_id in ("CVE-2019-6974", "SYZ-04", "EXT-RCU-01"):
        bug = get_bug(bug_id)
        result = _lifs_result(bug)
        refined = CausalityAnalysis(
            bug.machine_factory, result,
            config=CaConfig(use_happens_before=True)).analyze()
        for pair in bug.expected_chain_pairs:
            assert refined.chain.contains_race_between(*pair), (
                bug_id, pair)
