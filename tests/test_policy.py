"""Tests for the pluggable search-policy layer (repro.policy).

Covers the policy objects themselves (ordering, pruning, stats), the
experience index (extraction, absorption, snapshot round-trips, store
loading), the engine-policy resolution precedence, the canonical
tie-break keys in Causality Analysis, and end-to-end bit-identity of
diagnoses across policies.
"""

from itertools import permutations

import pytest

from repro import api
from repro.core.causality import CausalityAnalysis, RaceUnit
from repro.core.races import DataRace
from repro.engine import EnginePolicy
from repro.engine.protocol import RunPlan, RunRequest
from repro.kernel.access import AccessKind, MemoryAccess
from repro.observe.tracer import Tracer
from repro.policy import (
    POLICY_CHOICES,
    AdaptivePolicy,
    CandidateMeta,
    ExperienceIndex,
    InvariantPrunePolicy,
    ShufflePolicy,
    StaticPolicy,
    make_policy,
)
from repro.service.store import ResultStore


def _access(seq, thread="A", addr=64, label=None, kind=AccessKind.WRITE):
    # Distinct (addr, seq) pairs get distinct instruction addresses so
    # races over different locations have distinct identity keys even
    # when their spans coincide — that is what the tie-breaks are for.
    return MemoryAccess(seq=seq, thread=thread,
                        instr_addr=addr * 0x100 + seq,
                        instr_label=label or f"{thread}{seq}", func="f",
                        data_addr=addr, kind=kind, occurrence=1)


def _race(first_seq, second_seq, addr):
    return DataRace(first=_access(first_seq, "A", addr),
                    second=_access(second_seq, "B", addr))


class _Schedule:
    """Minimal stand-in: plans only need request identity here."""

    def __init__(self, tag):
        self.tag = tag

    def __repr__(self):
        return f"<sched {self.tag}>"


def _plan(metas):
    return RunPlan([RunRequest(schedule=_Schedule(m.index), meta=m)
                    for m in metas], phase="test")


def _meta(index, sort_key, features=()):
    return CandidateMeta(index=index, sort_key=sort_key,
                         features=tuple(features))


class TestResolvePrecedence:
    def test_default_is_static(self):
        assert EnginePolicy.resolve().search_policy == "static"

    def test_cli_tier(self):
        policy = EnginePolicy.resolve(cli_search_policy="adaptive")
        assert policy.search_policy == "adaptive"

    def test_api_kwarg_beats_cli(self):
        policy = EnginePolicy.resolve(search_policy="adaptive",
                                      cli_search_policy="static")
        assert policy.search_policy == "adaptive"

    def test_config_beats_everything(self):
        from repro.core.lifs import LifsConfig
        policy = EnginePolicy.resolve(config=LifsConfig(policy="adaptive"),
                                      search_policy="static",
                                      cli_search_policy="static")
        assert policy.search_policy == "adaptive"


class TestMakePolicy:
    def test_static(self):
        assert isinstance(make_policy("static"), StaticPolicy)

    def test_adaptive_composes_pruning(self):
        policy = make_policy("adaptive")
        assert isinstance(policy, InvariantPrunePolicy)
        assert policy.name == "prune+adaptive-noprune"
        assert policy.reorders

    def test_prune_wraps_static(self):
        policy = make_policy("prune")
        assert isinstance(policy, InvariantPrunePolicy)
        assert not policy.reorders

    def test_shuffle_with_seed(self):
        policy = make_policy("shuffle:42")
        assert isinstance(policy, ShufflePolicy)
        assert policy.seed == 42

    def test_shuffle_ca_is_scoped_and_leaves_lifs_static(self):
        policy = make_policy("shuffle-ca:5")
        assert isinstance(policy, ShufflePolicy)
        assert policy.name == "shuffle-ca:5"
        assert not policy.reorders  # LIFS stays on the static path
        metas = [_meta(i, (i,)) for i in range(6)]
        lifs_plan = RunPlan([RunRequest(schedule=_Schedule(m.index), meta=m)
                             for m in metas], phase="lifs.extend")
        assert policy.order(lifs_plan) is lifs_plan

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_policy("nonsense")

    def test_cli_choices_are_constructible(self):
        for name in POLICY_CHOICES:
            assert make_policy(name) is not None


class TestStaticPolicy:
    def test_restores_canonical_order_after_shuffle(self):
        metas = [_meta(i, sort_key=(i,)) for i in range(8)]
        shuffled = ShufflePolicy(seed=3).order(_plan(metas))
        assert [r.meta.index for r in shuffled.requests] != list(range(8))
        restored = StaticPolicy().order(shuffled)
        assert [r.meta.index for r in restored.requests] == list(range(8))

    def test_unannotated_plan_untouched(self):
        plan = RunPlan([RunRequest(schedule=_Schedule(i))
                        for i in range(4)], phase="test")
        assert StaticPolicy().order(plan) is plan

    def test_prune_is_a_no_op(self):
        plan = _plan([_meta(0, (0,)), _meta(1, (1,))])
        shaped, pruned = StaticPolicy().shape(plan, None)
        assert pruned == []
        assert [r.meta.index for r in shaped.requests] == [0, 1]


class TestShufflePolicy:
    def test_deterministic_per_seed(self):
        metas = [_meta(i, (i,)) for i in range(6)]
        a = ShufflePolicy(seed=7).order(_plan(metas))
        b = ShufflePolicy(seed=7).order(_plan(metas))
        assert ([r.meta.index for r in a.requests]
                == [r.meta.index for r in b.requests])

    def test_skips_unannotated_plans(self):
        plan = RunPlan([RunRequest(schedule=_Schedule(i))
                        for i in range(6)], phase="test")
        assert ShufflePolicy(seed=7).order(plan) is plan

    def test_skips_tiny_plans(self):
        plan = _plan([_meta(0, (0,))])
        assert ShufflePolicy(seed=7).order(plan) is plan


class TestAdaptivePolicy:
    def test_empty_index_keeps_canonical_order(self):
        metas = [_meta(i, (i,), features=(f"f{i}",)) for i in range(5)]
        ordered = AdaptivePolicy(ExperienceIndex()).order(_plan(metas))
        assert [r.meta.index for r in ordered.requests] == list(range(5))

    def test_none_experience_keeps_canonical_order(self):
        metas = [_meta(i, (i,), features=(f"f{i}",)) for i in range(5)]
        ordered = AdaptivePolicy(None).order(_plan(metas))
        assert [r.meta.index for r in ordered.requests] == list(range(5))

    def test_experienced_candidate_ranks_first(self):
        index = ExperienceIndex({"hot": 3, "cold": -2})
        metas = [_meta(0, (0,), features=("cold",)),
                 _meta(1, (1,), features=()),
                 _meta(2, (2,), features=("hot",))]
        policy = AdaptivePolicy(index)
        ordered = policy.order(_plan(metas))
        assert [r.meta.index for r in ordered.requests] == [2, 1, 0]

    def test_stats_count_ranked_and_hits(self):
        index = ExperienceIndex({"hot": 3})
        metas = [_meta(0, (0,), features=("hot",)),
                 _meta(1, (1,), features=("unknown",))]
        policy = AdaptivePolicy(index)
        policy.order(_plan(metas))
        assert policy.stats.ranked == 2
        assert policy.stats.experience_hits == 1

    def test_tie_scores_fall_back_to_sort_key(self):
        index = ExperienceIndex({"x": 1})
        metas = [_meta(i, (i,), features=("x",)) for i in range(4)]
        ordered = AdaptivePolicy(index).order(_plan(metas))
        assert [r.meta.index for r in ordered.requests] == list(range(4))


class TestExperienceIndex:
    def test_snapshot_roundtrip(self):
        index = ExperienceIndex({"a": 2, "b": -1})
        clone = ExperienceIndex.from_snapshot(index.snapshot())
        assert clone.weight("a") == 2 and clone.weight("b") == -1
        assert ExperienceIndex.from_snapshot(None).score(["a"]) == 0

    def test_absorb_record_ignores_foreign_kinds(self):
        index = ExperienceIndex()
        assert not index.absorb_record({"chain": "A -> B"})
        assert not index.absorb_record("not a dict")
        assert index.absorb_record({"kind": "experience",
                                    "features": {"f": 2}})
        assert index.weight("f") == 2
        assert index.absorbed_records == 1

    def test_load_from_store_skips_diagnosis_records(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.jsonl"))
        store.put("d1", {"row": {"chain": "A"}})
        store.put("exp:d1", {"kind": "experience", "features": {"f": 1}})
        store.put("exp:d2", {"kind": "experience", "features": {"f": 2}})
        index = ExperienceIndex()
        assert index.load(ResultStore(str(tmp_path / "s.jsonl"))) == 2
        assert index.weight("f") == 3

    def test_record_of_real_diagnosis_has_both_stages(self):
        diagnosis = api.diagnose("CVE-2018-12232")
        record = ExperienceIndex.record_of("CVE-2018-12232", diagnosis)
        assert record["kind"] == "experience"
        features = record["features"]
        assert any(k.startswith("lifs.") for k in features)
        assert any(k.startswith("ca.") for k in features)

    def test_score_sums_signed_weights(self):
        index = ExperienceIndex({"a": 2, "b": -3})
        assert index.score(["a", "b", "missing"]) == -1


class _CaStub:
    """Just enough of CausalityAnalysis to drive the unit builder and
    the nested-pick on hand-made races."""

    _build_units = CausalityAnalysis._build_units
    _pick_nested = CausalityAnalysis._pick_nested

    def __init__(self, races=(), units=()):
        self.races = list(races)
        self.units = list(units)

    def _section_of(self, seq):
        return None


class TestCanonicalTieBreaks:
    def test_unit_order_independent_of_race_iteration(self):
        races = [_race(1, 10, addr=64), _race(1, 10, addr=72),
                 _race(2, 9, addr=80)]
        baseline = None
        for perm in permutations(races):
            units = _CaStub(races=perm)._build_units()
            keyed = [tuple(r.key for r in u.races) for u in units]
            assert [u.uid for u in units] == list(range(len(units)))
            if baseline is None:
                baseline = keyed
            assert keyed == baseline

    def test_pick_nested_independent_of_unit_list_order(self):
        outer = RaceUnit(uid=99, races=(_race(1, 20, 64),),
                         first_seq=1, last_seq=20)
        # Two fully tied inner candidates (same span), distinct uids.
        inner = [RaceUnit(uid=0, races=(_race(5, 9, 72),),
                          first_seq=5, last_seq=9),
                 RaceUnit(uid=1, races=(_race(5, 9, 80),),
                          first_seq=5, last_seq=9),
                 RaceUnit(uid=2, races=(_race(4, 9, 88),),
                          first_seq=4, last_seq=9)]
        picks = set()
        for perm in permutations(inner):
            stub = _CaStub(units=list(perm))
            picks.add(stub._pick_nested(outer, {99}).uid)
        assert picks == {0}  # innermost first_seq, then smallest uid


def _facts(diagnosis):
    # Bit-identity surface: chain, root causes, signature.  Benign
    # races compare undirected — their observed direction follows
    # whichever minimal witness schedule LIFS reproduced first.
    if not diagnosis.reproduced:
        return ("not-reproduced",)
    ca = diagnosis.ca_result
    benign = tuple(sorted(
        tuple(sorted(tuple(sorted((r.first.instr_label,
                                   r.second.instr_label)))
                     for r in u.races))
        for u in ca.benign_units))
    return (diagnosis.chain.render(),
            tuple(sorted(str(u) for u in ca.root_cause_units)),
            benign,
            str(diagnosis.lifs_result.failure_run.failure))


class TestEndToEndPolicies:
    BUG = "CVE-2018-12232"

    def test_adaptive_diagnosis_bit_identical_and_cheaper(self):
        static = api.diagnose(self.BUG, policy="static")
        tracer = Tracer()
        adaptive = api.diagnose(self.BUG, policy="adaptive", tracer=tracer)
        assert _facts(static) == _facts(adaptive)
        assert tracer.counters.get("policy.pruned", 0) > 0
        assert (adaptive.total_lifs_schedules + adaptive.ca_schedules
                <= static.total_lifs_schedules + static.ca_schedules)

    def test_invariant_pruning_never_drops_root_causes(self):
        static = api.diagnose(self.BUG, policy="static")
        pruned = api.diagnose(self.BUG, policy="prune")
        assert _facts(static) == _facts(pruned)

    def test_policy_counters_emitted_even_when_static(self):
        tracer = Tracer()
        api.diagnose(self.BUG, policy="static", tracer=tracer)
        assert tracer.counters.get("policy.ranked", 0) == 0
        assert tracer.counters.get("policy.pruned", 0) == 0

    def test_warm_experience_reduces_lifs_schedules(self):
        cold = api.diagnose(self.BUG, policy="adaptive")
        experience = ExperienceIndex()
        experience.absorb(self.BUG, cold)
        warm = api.diagnose(self.BUG, policy="adaptive",
                            experience=experience)
        assert _facts(cold) == _facts(warm)
        assert warm.total_lifs_schedules <= cold.total_lifs_schedules
