"""Corpus consistency tests: every bug model must behave as specified."""

import itertools

import pytest

from repro.corpus import registry
from repro.hypervisor.controller import ScheduleController, serial_schedule


def _all_bugs():
    registry.load()
    return registry.figure_examples() + registry.all_bugs()


ALL_BUGS = _all_bugs()
IDS = [b.bug_id for b in ALL_BUGS]


class TestRegistry:
    def test_twenty_two_evaluated_bugs(self):
        assert len(registry.all_bugs()) == 22

    def test_ten_cves(self):
        cves = registry.cve_bugs()
        assert len(cves) == 10
        assert all(b.bug_id.startswith("CVE-") for b in cves)

    def test_twelve_syzkaller_bugs(self):
        syz = registry.syzkaller_bugs()
        assert len(syz) == 12
        assert all(b.bug_id.startswith("SYZ-") for b in syz)

    def test_get_bug_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown bug"):
            registry.get_bug("CVE-0000-0000")

    def test_get_bug_is_cached(self):
        assert registry.get_bug("SYZ-01") is registry.get_bug("SYZ-01")

    def test_six_syzkaller_bugs_were_unfixed(self):
        # The six bold rows of Table 3: #7-#9 were fixed concurrently by
        # developers, #10-#12 were reported by the authors.
        unfixed = {b.bug_id for b in registry.syzkaller_bugs()
                   if not b.fixed_at_eval_time}
        assert unfixed == {"SYZ-07", "SYZ-08", "SYZ-09",
                           "SYZ-10", "SYZ-11", "SYZ-12"}

    def test_multi_variable_split_matches_table3(self):
        syz = registry.syzkaller_bugs()
        multi = [b for b in syz if b.multi_variable]
        loose = [b for b in syz if b.loosely_correlated]
        assert len(multi) == 6  # six of twelve involve multiple variables
        assert len(loose) == 3  # three of them loosely correlated


@pytest.mark.parametrize("bug", ALL_BUGS, ids=IDS)
class TestBugModels:
    def test_known_failing_schedule_crashes_as_specified(self, bug):
        run = ScheduleController(bug.machine_factory(),
                                 bug.known_failing_schedule).run()
        assert run.failure is not None, "known schedule must crash"
        assert run.failure.kind is bug.bug_type
        if bug.failure_location:
            assert run.failure.instr_label == bug.failure_location

    def test_serial_orders_do_not_crash(self, bug):
        if bug.bug_id == "FIG-7":
            pytest.skip("FIG-7 fails serially by construction")
        names = [t.proc for t in bug.threads]
        for order in itertools.permutations(names):
            run = ScheduleController(bug.machine_factory(),
                                     serial_schedule(order)).run()
            assert run.failure is None, (
                f"serial order {order} crashed: {run.failure}")

    def test_history_ends_in_failure_window(self, bug):
        history = bug.history()
        assert history.failure_time is not None
        assert all(e.start <= history.failure_time
                   for e in history.before_failure())

    def test_history_contains_racing_calls(self, bug):
        history = bug.history()
        procs = {e.proc for e in history.syscalls}
        for thread in bug.threads:
            assert thread.proc in procs

    def test_machine_factory_builds_fresh_instances(self, bug):
        m1, m2 = bug.machine_factory(), bug.machine_factory()
        assert m1 is not m2
        assert m1.trace == [] and m1.failure is None
