"""Tests for Causality Analysis."""

import pytest

from repro.core.causality import CaConfig, CausalityAnalysis
from repro.core.lifs import (
    FailureMatcher,
    LeastInterleavingFirstSearch,
)
from repro.kernel.builder import ProgramBuilder
from repro.kernel.failures import FailureKind
from repro.kernel.machine import KernelMachine, ThreadSpec

from helpers import fig2_factory


def _diagnose(factory, threads, kind=None, config=None):
    matcher = FailureMatcher(kind=kind) if kind else None
    lifs = LeastInterleavingFirstSearch(factory, threads, matcher)
    result = lifs.search()
    assert result.reproduced
    ca = CausalityAnalysis(factory, result, config=config)
    return ca.analyze()


class TestFig2Chain:
    def test_chain_structure_matches_figure_3(self):
        result = _diagnose(fig2_factory(), ["A", "B"],
                           FailureKind.ASSERTION.ASSERTION)
        chain = result.chain
        # The conjunction node (B2 => A6) ∧ (A2 => B11) steering A6 => B12.
        assert chain.contains_race_between("B2", "A6")
        assert chain.contains_race_between("A2", "B11")
        assert chain.contains_race_between("A6", "B12")
        conjunction = [n for n in chain.nodes if n.is_conjunction]
        assert len(conjunction) == 1
        assert len(conjunction[0].races) == 2
        assert not chain.has_ambiguity

    def test_all_races_are_root_causes_in_pure_fig2(self):
        result = _diagnose(fig2_factory(), ["A", "B"])
        assert len(result.benign_units) == 0
        assert len(result.root_cause_units) == 3

    def test_flip_tests_run_backward(self):
        result = _diagnose(fig2_factory(), ["A", "B"])
        tested_last_seqs = [t.unit.last_seq for t in result.tests
                            if not t.note]
        assert tested_last_seqs == sorted(tested_last_seqs, reverse=True)

    def test_requires_reproduced_failure(self):
        lifs = LeastInterleavingFirstSearch(
            fig2_factory(), ["A", "B"], FailureMatcher(kind=FailureKind.GPF))
        result = lifs.search()
        assert not result.reproduced
        with pytest.raises(ValueError, match="reproduced failure"):
            CausalityAnalysis(fig2_factory(), result)


class TestBenignExclusion:
    def _salted_factory(self):
        b = ProgramBuilder()
        with b.function("a") as f:
            f.inc(f.g("stat1"), 1, label="AS1")
            f.inc(f.g("stat2"), 1, label="AS2")
            f.store(f.g("flag"), 1, label="A1")
        with b.function("bb") as f:
            f.inc(f.g("stat1"), 1, label="BS1")
            f.inc(f.g("stat2"), 1, label="BS2")
            f.load("v", f.g("flag"), label="B1")
            f.bug_on("v", "observed the flag", label="B2")
        image = b.build()

        def factory():
            return KernelMachine(image, [ThreadSpec("A", "a"),
                                         ThreadSpec("B", "bb")])
        return factory

    def test_stat_counter_races_are_benign(self):
        factory = self._salted_factory()
        result = _diagnose(factory, ["A", "B"], FailureKind.ASSERTION)
        benign_labels = {
            str(r) for u in result.benign_units for r in u.races}
        assert any("stat" in s or "S1" in s for s in benign_labels)
        chain_races = {str(r) for r in result.chain.races}
        assert chain_races == {"A1 => B1"}
        assert result.benign_race_count >= 2

    def test_no_false_negatives(self):
        """Causality Analysis tests every race: root causes + benign
        races together must cover all detected units."""
        factory = self._salted_factory()
        result = _diagnose(factory, ["A", "B"], FailureKind.ASSERTION)
        tested = len(result.root_cause_units) + len(result.benign_units) \
            + len(result.unflippable_units)
        lifs_units = len(result.root_cause_units) + \
            len(result.benign_units) + len(result.unflippable_units)
        assert tested == lifs_units  # nothing silently skipped
        assert result.stats.schedules_executed >= tested


class TestAmbiguity:
    def _fig7_factory(self):
        b = ProgramBuilder()
        with b.function("a") as f:
            f.store(f.g("m1"), 1, label="A1")
            f.store(f.g("m2"), 1, label="A2")
        with b.function("bb") as f:
            f.load("y", f.g("m2"), label="B1")
            f.load("x", f.g("m1"), label="B2")
            f.binop("both", "and", f.r("x"), f.r("y"))
            f.bug_on("both", "saw both", label="B3")
        image = b.build()

        def factory():
            return KernelMachine(image, [ThreadSpec("A", "a"),
                                         ThreadSpec("B", "bb")])
        return factory

    def test_surrounding_race_reported_ambiguous(self):
        result = _diagnose(self._fig7_factory(), ["A", "B"],
                           FailureKind.ASSERTION)
        assert result.ambiguous_uids, "Figure 7 must produce an ambiguity"
        assert result.chain.has_ambiguity
        # Both races are root causes nonetheless.
        rendered = {str(r) for u in result.root_cause_units
                    for r in u.races}
        assert rendered == {"A1 => B2", "A2 => B1"}

    def test_nested_race_is_unambiguous(self):
        result = _diagnose(self._fig7_factory(), ["A", "B"])
        ambiguous_races = {
            str(r) for u in result.root_cause_units for r in u.races
            if u.uid in result.ambiguous_uids}
        assert "A2 => B1" not in ambiguous_races


class TestCriticalSections:
    def test_section_races_grouped_into_units(self):
        """Races under a lock pair are flipped as one unit (liveness)."""
        b = ProgramBuilder()
        with b.function("a") as f:
            f.lock("L", label="ALock")
            f.store(f.g("x"), 1, label="A1")
            f.store(f.g("y"), 1, label="A2")
            f.unlock("L", label="AUnlock")
        with b.function("bb") as f:
            f.load("vx", f.g("x"), label="B1")
            f.load("vy", f.g("y"), label="B2")
            f.binop("both", "and", f.r("vx"), f.r("vy"))
            f.bug_on("both", "saw both", label="B3")
        image = b.build()

        def factory():
            return KernelMachine(image, [ThreadSpec("A", "a"),
                                         ThreadSpec("B", "bb")])

        result = _diagnose(factory, ["A", "B"], FailureKind.ASSERTION)
        section_units = [u for u in (result.root_cause_units
                                     + result.benign_units)
                         if u.is_critical_section]
        assert section_units, "x and y races share A's critical section"
        unit = section_units[0]
        assert len(unit.races) == 2

    def test_section_flip_averts_failure(self):
        """Flipping the whole section (B before A's lock) must avert the
        failure without deadlocking the enforcement."""
        b = ProgramBuilder()
        with b.function("a") as f:
            f.lock("L", label="ALock")
            f.store(f.g("x"), 1, label="A1")
            f.store(f.g("y"), 1, label="A2")
            f.unlock("L", label="AUnlock")
        with b.function("bb") as f:
            f.load("vx", f.g("x"), label="B1")
            f.load("vy", f.g("y"), label="B2")
            f.binop("both", "and", f.r("vx"), f.r("vy"))
            f.bug_on("both", "saw both", label="B3")
        image = b.build()

        def factory():
            return KernelMachine(image, [ThreadSpec("A", "a"),
                                         ThreadSpec("B", "bb")])

        result = _diagnose(factory, ["A", "B"], FailureKind.ASSERTION)
        assert result.root_cause_units  # the section unit averts the bug


class TestSpawnCausality:
    def test_kworker_flip_respects_spawn_order(self):
        """A flip must never schedule a kworker's access before the
        queue_work that creates it (regression test for the Figure 5
        chain)."""
        b = ProgramBuilder()
        with b.function("a") as f:
            f.store(f.g("m1"), 1, label="A1")
            f.load("x", f.g("m2"), label="A2")
            f.load("p", f.g("m3"), label="A3a")
            f.bug_on("p", "K1 won", label="A3")
        with b.function("bb") as f:
            f.load("v", f.g("m1"), label="B1")
            f.store(f.g("m2"), 7, label="B2")
            f.brz("v", "out", label="B3a")
            f.queue_work("k", label="B3")
            f.ret(label="out")
        with b.function("k") as f:
            f.store(f.g("m3"), 1, label="K1")
        image = b.build()

        def factory():
            return KernelMachine(image, [ThreadSpec("A", "a"),
                                         ThreadSpec("B", "bb")])

        result = _diagnose(factory, ["A", "B"], FailureKind.ASSERTION)
        chain_races = {str(r) for r in result.chain.races}
        assert chain_races == {"A1 => B1", "K1 => A3a"}
        benign = {str(r) for u in result.benign_units for r in u.races}
        assert "B2 => A2" in benign


class TestConfig:
    def test_recheck_edges_disabled_reuses_runs(self):
        config = CaConfig(recheck_edges=False)
        result_cached = _diagnose(fig2_factory(), ["A", "B"],
                                  config=config)
        result_fresh = _diagnose(fig2_factory(), ["A", "B"])
        # Same chain either way; fewer schedules without the recheck.
        assert result_cached.chain.render() == result_fresh.chain.render()
        assert (result_cached.stats.schedules_executed
                < result_fresh.stats.schedules_executed)
