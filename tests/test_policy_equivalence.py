"""Property tests: execution order never changes the diagnosis.

The policy layer's contract (see :mod:`repro.policy`) has two layers,
probed by two shuffle spellings:

* ``shuffle-ca:<seed>`` permutes every Causality Analysis flip batch
  while LIFS stays static.  Flip plans execute in full and remap
  results by submission index, so the diagnosis is *exactly*
  order-invariant — on any corpus bug, including symmetric workloads.
* ``shuffle:<seed>`` additionally permutes the LIFS frontier rounds.
  A round can hold several fewest-preemptions schedules that all
  reproduce; order decides which witness is found first, and a benign
  race's observed direction follows the witness.  Chain, root causes
  and signature still agree on bugs with a unique minimal witness.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro.corpus import registry

#: Small fast bugs with a unique minimal witness — the full-shuffle
#: property runs several diagnoses per example.
BUGS = ("FIG-1", "FIG-5", "FIG-7", "CVE-2018-12232")

#: Fast corpus bugs for the CA-only shuffle property.  SYZ-09 is the
#: symmetric workload whose LIFS witness is order-sensitive — exactly
#: why it belongs in the CA-invariance sample.
CA_BUGS = ("FIG-1", "FIG-5", "FIG-7", "CVE-2018-12232", "SYZ-05",
           "SYZ-09", "SYZ-04")

registry.load()

_static_cache = {}


def _facts(diagnosis):
    """The diagnosis' answer: chain, root-cause set, failure signature.

    Benign units compare as undirected label pairs — their observed
    direction follows whichever minimal witness LIFS reproduced first.
    """
    if not diagnosis.reproduced:
        return ("not-reproduced",)
    ca = diagnosis.ca_result
    benign = tuple(sorted(
        tuple(sorted(tuple(sorted((r.first.instr_label,
                                   r.second.instr_label)))
                     for r in u.races))
        for u in ca.benign_units))
    return (diagnosis.chain.render(),
            tuple(sorted(str(u) for u in ca.root_cause_units)),
            benign,
            str(diagnosis.lifs_result.failure_run.failure))


def _strict_facts(diagnosis):
    """Bit-exact answer, benign directions included — what CA-only
    permutations must preserve (the failure run is identical)."""
    if not diagnosis.reproduced:
        return ("not-reproduced",)
    ca = diagnosis.ca_result
    return (diagnosis.chain.render(),
            tuple(sorted(str(u) for u in ca.root_cause_units)),
            tuple(sorted(str(u) for u in ca.benign_units)),
            tuple(sorted(str(u) for u in ca.unflippable_units)),
            str(diagnosis.lifs_result.failure_run.failure),
            str(diagnosis.lifs_result.failure_run.schedule))


def _static_facts(bug_id, extract=_facts):
    key = (bug_id, extract.__name__)
    if key not in _static_cache:
        _static_cache[key] = extract(api.diagnose(bug_id, policy="static"))
    return _static_cache[key]


class TestCaPermutationEquivalence:
    """Flip-batch order is provably cost-only: exact invariance."""

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           bug_index=st.integers(min_value=0, max_value=len(CA_BUGS) - 1))
    def test_shuffled_flip_plans_yield_bit_identical_diagnosis(
            self, seed, bug_index):
        bug_id = CA_BUGS[bug_index]
        shuffled = api.diagnose(bug_id, policy=f"shuffle-ca:{seed}")
        assert (_strict_facts(shuffled)
                == _static_facts(bug_id, _strict_facts))

    def test_symmetric_bug_exact_under_ca_shuffle(self):
        # SYZ-09's two mirror-image LIFS witnesses make it the
        # sharpest case: with LIFS static, flip order still must not
        # change one bit of the answer.
        shuffled = api.diagnose("SYZ-09", policy="shuffle-ca:99")
        assert (_strict_facts(shuffled)
                == _static_facts("SYZ-09", _strict_facts))


class TestFullPermutationEquivalence:
    """LIFS rounds permuted too: invariant up to the witness choice."""

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           bug_index=st.integers(min_value=0, max_value=len(BUGS) - 1))
    def test_shuffled_plans_yield_identical_diagnosis(
            self, seed, bug_index):
        bug_id = BUGS[bug_index]
        shuffled = api.diagnose(bug_id, policy=f"shuffle:{seed}")
        assert _facts(shuffled) == _static_facts(bug_id)

    def test_fig5_multi_witness_round_regression(self):
        # FIG-5's winning LIFS round holds two fewest-preemptions
        # schedules that both reproduce; shuffle:1 used to surface the
        # other witness and flip a benign race's direction.  Chain,
        # roots and signature must agree regardless.
        shuffled = api.diagnose("FIG-5", policy="shuffle:1")
        assert _facts(shuffled) == _static_facts("FIG-5")

    def test_shuffle_spans_both_algorithms(self):
        # Not vacuous: the shuffled run must actually have reproduced
        # and flipped units, i.e. both LIFS and CA plans were permuted.
        diagnosis = api.diagnose("CVE-2018-12232", policy="shuffle:1234")
        assert diagnosis.reproduced
        assert diagnosis.ca_result.root_cause_units
        assert diagnosis.total_lifs_schedules > 1
