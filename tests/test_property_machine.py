"""Property-based tests: machine determinism and snapshot fidelity."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.builder import ProgramBuilder
from repro.kernel.machine import KernelMachine, ThreadSpec

GLOBALS = ["g0", "g1", "g2"]
REGS = ["r0", "r1"]

#: One random straight-line statement: (op, operands...) tuples rendered
#: into the builder.
_statement = st.one_of(
    st.tuples(st.just("inc"), st.sampled_from(GLOBALS),
              st.integers(-3, 3)),
    st.tuples(st.just("store"), st.sampled_from(GLOBALS),
              st.integers(0, 100)),
    st.tuples(st.just("load"), st.sampled_from(REGS),
              st.sampled_from(GLOBALS)),
    st.tuples(st.just("mov"), st.sampled_from(REGS),
              st.integers(0, 100)),
    st.tuples(st.just("binop"), st.sampled_from(REGS),
              st.sampled_from(["add", "sub", "xor"]),
              st.sampled_from(REGS), st.integers(0, 10)),
    st.tuples(st.just("nop")),
)

programs = st.lists(_statement, min_size=1, max_size=20)


def _build(statements):
    b = ProgramBuilder()
    with b.function("main") as f:
        for i, stmt in enumerate(statements):
            op = stmt[0]
            if op == "inc":
                f.inc(f.g(stmt[1]), stmt[2], label=f"s{i}")
            elif op == "store":
                f.store(f.g(stmt[1]), stmt[2], label=f"s{i}")
            elif op == "load":
                f.load(stmt[1], f.g(stmt[2]), label=f"s{i}")
            elif op == "mov":
                f.mov(stmt[1], stmt[2], label=f"s{i}")
            elif op == "binop":
                f.binop(stmt[1], stmt[2], f.r(stmt[3]), stmt[4],
                        label=f"s{i}")
            else:
                f.nop(label=f"s{i}")
    return b.build()


def _run(image):
    m = KernelMachine(image, [ThreadSpec("T", "main")],
                      globals_init={g: 0 for g in GLOBALS})
    while not m.thread("T").done and not m.halted:
        m.step("T")
    state = {g: m.memory.load(m.memory.global_addr(g)) for g in GLOBALS}
    return m, state


@given(programs)
@settings(max_examples=60, deadline=None)
def test_execution_is_deterministic(statements):
    image = _build(statements)
    m1, state1 = _run(image)
    m2, state2 = _run(image)
    assert state1 == state2
    assert [t.instr_addr for t in m1.trace] == \
           [t.instr_addr for t in m2.trace]
    assert [(a.data_addr, a.kind) for a in m1.access_log] == \
           [(a.data_addr, a.kind) for a in m2.access_log]


@given(programs)
@settings(max_examples=60, deadline=None)
def test_trace_covers_every_instruction_once(statements):
    image = _build(statements)
    m, _ = _run(image)
    # Straight-line code: every instruction executes exactly once, in
    # program order (including the implicit RET).
    assert len(m.trace) == len(image)
    addrs = [t.instr_addr for t in m.trace]
    assert addrs == sorted(addrs)
    assert all(t.occurrence == 1 for t in m.trace)


@given(programs, st.integers(min_value=0, max_value=19))
@settings(max_examples=60, deadline=None)
def test_snapshot_restore_roundtrip(statements, cut):
    image = _build(statements)
    m = KernelMachine(image, [ThreadSpec("T", "main")],
                      globals_init={g: 0 for g in GLOBALS})
    steps = min(cut, len(statements))
    for _ in range(steps):
        m.step("T")
    snap = m.memory.snapshot()
    before = {g: m.memory.load(m.memory.global_addr(g)) for g in GLOBALS}
    while not m.thread("T").done:
        m.step("T")
    m.memory.restore(snap)
    after = {g: m.memory.load(m.memory.global_addr(g)) for g in GLOBALS}
    assert before == after


@given(programs)
@settings(max_examples=40, deadline=None)
def test_access_log_matches_memory_ops(statements):
    image = _build(statements)
    m, _ = _run(image)
    expected = sum(1 for s in statements if s[0] in ("inc", "store", "load"))
    assert len(m.access_log) == expected
    seqs = [a.seq for a in m.access_log]
    assert seqs == sorted(seqs)
