"""Tests for the daemon's minimal HTTP/1.1 wire layer."""

import asyncio
import json

import pytest

from repro.daemon import protocol


def _read(data: bytes, limit: int = protocol.MAX_HEADER_BYTES,
          max_body: int = protocol.MAX_BODY_BYTES):
    async def go():
        reader = asyncio.StreamReader(limit=limit)
        reader.feed_data(data)
        reader.feed_eof()
        return await protocol.read_request(reader, max_body=max_body)
    return asyncio.run(go())


def _error(data: bytes, **kwargs) -> protocol.ProtocolError:
    with pytest.raises(protocol.ProtocolError) as excinfo:
        _read(data, **kwargs)
    return excinfo.value


class TestReadRequest:
    def test_simple_get(self):
        request = _read(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/healthz"
        assert request.version == "HTTP/1.1"
        assert request.body == b""
        assert request.keep_alive

    def test_post_with_body_and_headers(self):
        request = _read(b"POST /submit HTTP/1.1\r\n"
                        b"Content-Length: 5\r\n"
                        b"X-Tenant: fuzzer-7\r\n\r\nhello")
        assert request.method == "POST"
        assert request.body == b"hello"
        assert request.header("x-tenant") == "fuzzer-7"
        assert request.header("X-Tenant") == "fuzzer-7"  # case-folded

    def test_query_split_off_path(self):
        request = _read(b"GET /job/j1?verbose=1 HTTP/1.1\r\n\r\n")
        assert request.path == "/job/j1"
        assert request.query == "verbose=1"

    def test_clean_eof_between_requests_is_none(self):
        assert _read(b"") is None

    def test_keep_alive_semantics(self):
        close = _read(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not close.keep_alive
        old = _read(b"GET / HTTP/1.0\r\n\r\n")
        assert not old.keep_alive  # 1.0 defaults to close
        old_ka = _read(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
        assert old_ka.keep_alive

    def test_truncated_head_is_400(self):
        assert _error(b"GET / HTTP/1.1\r\nHost").status == 400

    def test_malformed_request_line_is_400(self):
        assert _error(b"GETHTTP/1.1\r\n\r\n").status == 400

    def test_unsupported_version_is_400(self):
        assert _error(b"GET / HTTP/2\r\n\r\n").status == 400

    def test_oversized_head_is_431(self):
        big = b"GET / HTTP/1.1\r\nX-Pad: " + b"a" * 4096 + b"\r\n\r\n"
        assert _error(big, limit=1024).status == 431

    def test_transfer_encoding_is_501(self):
        data = (b"POST /submit HTTP/1.1\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n")
        assert _error(data).status == 501

    def test_bad_content_length_is_400(self):
        data = b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"
        assert _error(data).status == 400
        data = b"POST / HTTP/1.1\r\nContent-Length: -3\r\n\r\n"
        assert _error(data).status == 400

    def test_over_limit_body_is_413(self):
        data = b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + b"x" * 100
        assert _error(data, max_body=50).status == 413

    def test_truncated_body_is_400(self):
        data = b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort"
        assert _error(data).status == 400


class TestRenderResponse:
    def test_framing_and_reason(self):
        raw = protocol.render_response(200, b"ok", content_type="text/plain")
        head, _, body = raw.partition(b"\r\n\r\n")
        assert body == b"ok"
        lines = head.decode().split("\r\n")
        assert lines[0] == "HTTP/1.1 200 OK"
        assert "Content-Length: 2" in lines
        assert "Connection: keep-alive" in lines

    def test_connection_close(self):
        raw = protocol.render_response(429, keep_alive=False)
        assert b"Connection: close" in raw
        assert b"429 Too Many Requests" in raw

    def test_json_response_round_trips(self):
        raw = protocol.json_response(202, {"status": "accepted"})
        _, _, body = raw.partition(b"\r\n\r\n")
        assert json.loads(body) == {"status": "accepted"}

    def test_text_response_exposition_content_type(self):
        raw = protocol.text_response(200, "aitia_x_total 1\n")
        assert b"Content-Type: text/plain; version=0.0.4" in raw
