"""Tests for causality-chain construction and rendering."""

from dataclasses import dataclass
from typing import Tuple

from repro.core.chain import (
    CausalityChain,
    build_chain,
    _strongly_connected_components,
)
from repro.core.races import DataRace
from repro.kernel.access import AccessKind, MemoryAccess
from repro.kernel.failures import Failure, FailureKind


def _race(label1, label2, seq1=1, seq2=2):
    a = MemoryAccess(seq=seq1, thread="A", instr_addr=0x10 + seq1 * 4,
                     instr_label=label1, func="f", data_addr=100,
                     kind=AccessKind.WRITE, occurrence=1)
    b = MemoryAccess(seq=seq2, thread="B", instr_addr=0x10 + seq2 * 4,
                     instr_label=label2, func="f", data_addr=100,
                     kind=AccessKind.READ, occurrence=1)
    return DataRace(first=a, second=b)


@dataclass
class _Unit:
    uid: int
    races: Tuple
    last_seq: int


def _unit(uid, label1, label2, last_seq):
    return _Unit(uid=uid, races=(_race(label1, label2, last_seq - 1,
                                       last_seq),), last_seq=last_seq)


FAILURE = Failure(FailureKind.ASSERTION, instr_label="B17")


class TestScc:
    def test_singletons_without_edges(self):
        comps = _strongly_connected_components([1, 2, 3], {})
        assert sorted(map(tuple, comps)) == [(1,), (2,), (3,)]

    def test_mutual_pair_merges(self):
        comps = _strongly_connected_components(
            [1, 2, 3], {1: {2}, 2: {1, 3}})
        assert sorted(map(tuple, comps)) == [(1, 2), (3,)]

    def test_three_cycle(self):
        comps = _strongly_connected_components(
            [1, 2, 3], {1: {2}, 2: {3}, 3: {1}})
        assert sorted(map(tuple, comps)) == [(1, 2, 3)]


class TestBuildChain:
    def test_linear_chain(self):
        u1, u2 = _unit(0, "A1", "B1", 2), _unit(1, "A2", "B2", 4)
        chain = build_chain([u1, u2], {0: {1}}, FAILURE)
        assert len(chain.nodes) == 2
        assert chain.edges == [(0, 1)]
        assert "A1 => B1 -> A2 => B2" in chain.render()

    def test_mutual_disappearance_becomes_conjunction(self):
        u1, u2, u3 = (_unit(0, "A1", "B1", 2), _unit(1, "A2", "B2", 4),
                      _unit(2, "A3", "B3", 6))
        chain = build_chain([u1, u2, u3], {0: {1, 2}, 1: {0, 2}}, FAILURE)
        conjunctions = [n for n in chain.nodes if n.is_conjunction]
        assert len(conjunctions) == 1
        assert len(conjunctions[0].races) == 2
        assert chain.edges == [(0, 1)]

    def test_transitive_reduction(self):
        units = [_unit(i, f"A{i}", f"B{i}", 2 * i + 2) for i in range(3)]
        chain = build_chain(units, {0: {1, 2}, 1: {2}}, FAILURE)
        # 0 -> 2 is implied by 0 -> 1 -> 2.
        assert (0, 2) not in chain.edges
        assert set(chain.edges) == {(0, 1), (1, 2)}

    def test_ambiguous_flag_propagates(self):
        u1 = _unit(0, "A1", "B1", 2)
        chain = build_chain([u1], {}, FAILURE, ambiguous_unit_ids={0})
        assert chain.nodes[0].ambiguous
        assert chain.has_ambiguity
        assert "[ambiguous]" in chain.render()

    def test_edges_to_non_root_units_ignored(self):
        u1 = _unit(0, "A1", "B1", 2)
        chain = build_chain([u1], {0: {99}}, FAILURE)
        assert chain.edges == []

    def test_race_count(self):
        units = [_unit(i, f"A{i}", f"B{i}", 2 * i + 2) for i in range(4)]
        chain = build_chain(units, {}, FAILURE)
        assert chain.race_count == 4


class TestChainQueries:
    def _chain(self):
        units = [_unit(i, f"A{i}", f"B{i}", 2 * i + 2) for i in range(3)]
        return build_chain(units, {0: {1}, 1: {2}}, FAILURE)

    def test_successors_predecessors(self):
        chain = self._chain()
        assert chain.successors(0) == [1]
        assert chain.predecessors(2) == [1]

    def test_terminal_nodes(self):
        chain = self._chain()
        assert chain.terminal_nodes() == [2]

    def test_contains_race_between_is_order_insensitive(self):
        chain = self._chain()
        assert chain.contains_race_between("A1", "B1")
        assert chain.contains_race_between("B1", "A1")
        assert not chain.contains_race_between("A1", "B2")

    def test_render_ends_with_failure(self):
        chain = self._chain()
        assert chain.render().endswith(FailureKind.ASSERTION.value)

    def test_empty_chain_renders_placeholder(self):
        chain = CausalityChain(nodes=[], edges=[], failure=FAILURE)
        assert chain.render() == "<empty chain>"

    def test_topological_render_order(self):
        # Chain built in reverse order must still render source-first.
        units = [_unit(0, "A0", "B0", 10), _unit(1, "A1", "B1", 2)]
        chain = build_chain(units, {1: {0}}, FAILURE)
        rendered = chain.render()
        assert rendered.index("A1 => B1") < rendered.index("A0 => B0")
