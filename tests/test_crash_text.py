"""Tests for the crash-report text format."""

import pytest

from repro.corpus.registry import get_bug
from repro.kernel.failures import CrashReport, Failure, FailureKind
from repro.trace.crash import (
    CrashParseError,
    parse_crash_report,
    render_crash_report,
)
from repro.trace.syzkaller import run_bug_finder


class TestRoundTrip:
    def _report(self, kind=FailureKind.KASAN_UAF):
        failure = Failure(kind=kind, thread="A", instr_label="A3",
                          message="use-after-free write in irqfd")
        return CrashReport(failure=failure,
                           kernel_log="Call trace:\n  A: irqfd_assign+A2")

    def test_simple_round_trip(self):
        original = self._report()
        parsed = parse_crash_report(render_crash_report(original))
        assert parsed.symptom is original.symptom
        assert parsed.location == original.location
        assert parsed.failure.thread == "A"
        assert parsed.failure.message == original.failure.message
        assert "Call trace:" in parsed.kernel_log

    @pytest.mark.parametrize("kind", list(FailureKind))
    def test_every_failure_kind_round_trips(self, kind):
        parsed = parse_crash_report(render_crash_report(self._report(kind)))
        assert parsed.symptom is kind

    def test_failure_without_location(self):
        failure = Failure(kind=FailureKind.MEMORY_LEAK,
                          message="object filter was never freed")
        parsed = parse_crash_report(
            render_crash_report(CrashReport(failure=failure)))
        assert parsed.symptom is FailureKind.MEMORY_LEAK
        assert parsed.location == ""
        assert "never freed" in parsed.failure.message

    def test_syzkaller_report_round_trips(self):
        bug = get_bug("SYZ-04")
        report = run_bug_finder(bug).crash
        parsed = parse_crash_report(render_crash_report(report))
        assert parsed.symptom is report.symptom
        assert parsed.location == report.location

    def test_parsed_report_drives_diagnosis(self):
        """An archived crash report must still target the diagnosis."""
        from repro.core.diagnose import Aitia

        bug = get_bug("SYZ-04")
        syz = run_bug_finder(bug)
        syz.crash = parse_crash_report(render_crash_report(syz.crash))
        diagnosis = Aitia(bug, report=syz).diagnose()
        assert diagnosis.reproduced
        assert diagnosis.chain.contains_race_between("K1", "A2")

    def test_header_not_duplicated(self):
        bug = get_bug("SYZ-04")
        report = run_bug_finder(bug).crash  # kernel_log starts with BUG:
        text = render_crash_report(report)
        assert text.count("BUG:") == 1


class TestParseErrors:
    def test_missing_header(self):
        with pytest.raises(CrashParseError, match="BUG"):
            parse_crash_report("KASAN: use-after-free in A at A3")

    def test_unknown_kind(self):
        with pytest.raises(CrashParseError, match="unknown failure kind"):
            parse_crash_report("BUG: exploded spectacularly in A at A3")

    def test_empty_text(self):
        with pytest.raises(CrashParseError):
            parse_crash_report("")
