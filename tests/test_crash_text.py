"""Tests for the crash-report text format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.registry import get_bug
from repro.kernel.failures import CrashReport, Failure, FailureKind
from repro.trace.crash import (
    CrashParseError,
    parse_crash_report,
    render_crash_report,
)
from repro.trace.syzkaller import run_bug_finder


class TestRoundTrip:
    def _report(self, kind=FailureKind.KASAN_UAF):
        failure = Failure(kind=kind, thread="A", instr_label="A3",
                          message="use-after-free write in irqfd")
        return CrashReport(failure=failure,
                           kernel_log="Call trace:\n  A: irqfd_assign+A2")

    def test_simple_round_trip(self):
        original = self._report()
        parsed = parse_crash_report(render_crash_report(original))
        assert parsed.symptom is original.symptom
        assert parsed.location == original.location
        assert parsed.failure.thread == "A"
        assert parsed.failure.message == original.failure.message
        assert "Call trace:" in parsed.kernel_log

    @pytest.mark.parametrize("kind", list(FailureKind))
    def test_every_failure_kind_round_trips(self, kind):
        parsed = parse_crash_report(render_crash_report(self._report(kind)))
        assert parsed.symptom is kind

    def test_failure_without_location(self):
        failure = Failure(kind=FailureKind.MEMORY_LEAK,
                          message="object filter was never freed")
        parsed = parse_crash_report(
            render_crash_report(CrashReport(failure=failure)))
        assert parsed.symptom is FailureKind.MEMORY_LEAK
        assert parsed.location == ""
        assert "never freed" in parsed.failure.message

    def test_syzkaller_report_round_trips(self):
        bug = get_bug("SYZ-04")
        report = run_bug_finder(bug).crash
        parsed = parse_crash_report(render_crash_report(report))
        assert parsed.symptom is report.symptom
        assert parsed.location == report.location

    def test_parsed_report_drives_diagnosis(self):
        """An archived crash report must still target the diagnosis."""
        from repro.core.diagnose import Aitia

        bug = get_bug("SYZ-04")
        syz = run_bug_finder(bug)
        syz.crash = parse_crash_report(render_crash_report(syz.crash))
        diagnosis = Aitia(bug, report=syz).diagnose()
        assert diagnosis.reproduced
        assert diagnosis.chain.contains_race_between("K1", "A2")

    def test_header_not_duplicated(self):
        bug = get_bug("SYZ-04")
        report = run_bug_finder(bug).crash  # kernel_log starts with BUG:
        text = render_crash_report(report)
        assert text.count("BUG:") == 1


class TestParseErrors:
    def test_missing_header(self):
        with pytest.raises(CrashParseError, match="BUG"):
            parse_crash_report("KASAN: use-after-free in A at A3")

    def test_unknown_kind(self):
        with pytest.raises(CrashParseError, match="unknown failure kind"):
            parse_crash_report("BUG: exploded spectacularly in A at A3")

    def test_empty_text(self):
        with pytest.raises(CrashParseError):
            parse_crash_report("")

    @pytest.mark.parametrize("header", [
        "BUG:KASAN: use-after-free in A at A3",  # missing space
        " BUG: KASAN: use-after-free in A at A3",  # leading whitespace
        "bug: KASAN: use-after-free in A at A3",  # wrong case
        "OOPS: KASAN: use-after-free in A at A3",  # wrong tag
    ])
    def test_malformed_headers(self, header):
        with pytest.raises(CrashParseError, match="BUG"):
            parse_crash_report(header)

    def test_empty_header_body(self):
        with pytest.raises(CrashParseError, match="unknown failure kind"):
            parse_crash_report("BUG: ")

    def test_header_only_whitespace_after_tag(self):
        with pytest.raises(CrashParseError):
            parse_crash_report("BUG:    \nCall trace:\n  A: f+A1")


class TestMissingCallTrace:
    """A report whose log lacks the ``Call trace:`` section still parses;
    downstream consumers (the triage signature) fall back to
    kind + location."""

    def test_parses_without_call_trace(self):
        parsed = parse_crash_report(
            "BUG: KASAN: use-after-free in A at A3: boom\nsome other log")
        assert parsed.symptom is FailureKind.KASAN_UAF
        assert parsed.location == "A3"
        assert "Call trace:" not in parsed.kernel_log

    def test_signature_survives_missing_call_trace(self):
        from repro.service.signature import signature_of

        with_trace = parse_crash_report(
            "BUG: KASAN: use-after-free in A at A3: boom\n"
            "Call trace:\n  A: f+A3")
        without = parse_crash_report(
            "BUG: KASAN: use-after-free in A at A3: boom")
        assert signature_of(without).kind == signature_of(with_trace).kind
        assert signature_of(without).location == "A3"
        # frames differ, so the digests must too — a trace-less report
        # is not silently merged with a traced one
        assert signature_of(without).digest != signature_of(with_trace).digest


# -- property: render -> parse -> render is a fixed point ---------------
_NAME = st.text(alphabet=st.characters(whitelist_categories=("Ll", "Lu"),
                                       max_codepoint=0x7F),
                min_size=1, max_size=8)
_LABEL = _NAME.map(lambda s: s + "1")
_MESSAGE = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd", "Zs"),
                           max_codepoint=0x7F),
    max_size=40).map(str.strip)


@st.composite
def _failures(draw):
    kind = draw(st.sampled_from(list(FailureKind)))
    located = draw(st.booleans())
    thread = draw(_NAME) if located else ""
    label = draw(_LABEL) if located else ""
    return Failure(kind=kind, thread=thread, instr_label=label,
                   message=draw(_MESSAGE))


@st.composite
def _kernel_logs(draw):
    frames = draw(st.lists(
        st.tuples(_NAME, _NAME, _LABEL), max_size=4))
    if not frames:
        return ""
    lines = ["Call trace:"]
    lines.extend(f"  {proc}: {func}+{label}"
                 for proc, func, label in frames)
    return "\n".join(lines)


class TestRenderParseProperty:
    @settings(max_examples=200, deadline=None)
    @given(failure=_failures(), log=_kernel_logs())
    def test_render_parse_render_fixed_point(self, failure, log):
        report = CrashReport(failure=failure, kernel_log=log)
        text = render_crash_report(report)
        parsed = parse_crash_report(text)
        assert render_crash_report(parsed) == text
        assert parsed.symptom is failure.kind
        assert parsed.location == failure.instr_label
        assert parsed.kernel_log == log
