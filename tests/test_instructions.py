"""Unit tests for the instruction IR and operand model."""

import pytest

from repro.kernel.instructions import (
    BINARY_OPERATORS,
    BLOCK_TERMINATORS,
    MEMORY_OPS,
    Deref,
    Global,
    Imm,
    Instruction,
    Op,
    Reg,
)


class TestOperands:
    def test_reg_repr(self):
        assert repr(Reg("r0")) == "%r0"

    def test_imm_repr(self):
        assert repr(Imm(7)) == "$7"

    def test_global_repr(self):
        assert repr(Global("po_fanout")) == "@po_fanout"

    def test_deref_repr_no_offset(self):
        assert repr(Deref("p")) == "[%p]"

    def test_deref_repr_with_offset(self):
        assert repr(Deref("p", 8)) == "[%p+8]"

    def test_operands_are_hashable(self):
        assert {Reg("a"), Reg("a")} == {Reg("a")}
        assert {Deref("p", 0), Deref("p", 8)} != {Deref("p", 0)}


class TestInstructionProperties:
    def test_load_accesses_and_reads(self):
        instr = Instruction(Op.LOAD, (Reg("r"), Global("x")))
        assert instr.accesses_memory
        assert instr.reads_memory
        assert not instr.writes_memory

    def test_store_writes(self):
        instr = Instruction(Op.STORE, (Global("x"), Imm(1)))
        assert instr.accesses_memory
        assert instr.writes_memory
        assert not instr.reads_memory

    def test_inc_reads_and_writes(self):
        instr = Instruction(Op.INC, (Global("x"), Imm(1)))
        assert instr.reads_memory and instr.writes_memory

    def test_free_is_a_write_access(self):
        # KASAN semantics: free conflicts with any access to the object.
        instr = Instruction(Op.FREE, (Reg("p"),))
        assert instr.accesses_memory
        assert instr.writes_memory

    def test_mov_is_not_a_memory_op(self):
        instr = Instruction(Op.MOV, (Reg("a"), Imm(0)))
        assert not instr.accesses_memory

    def test_branches_terminate_blocks(self):
        for op in (Op.BRZ, Op.BRNZ, Op.JMP, Op.RET):
            assert op in BLOCK_TERMINATORS
        assert Op.LOAD not in BLOCK_TERMINATORS

    def test_memory_ops_set_is_consistent_with_properties(self):
        for op in MEMORY_OPS:
            instr = Instruction(op, ())
            assert instr.accesses_memory

    def test_name_prefers_label(self):
        instr = Instruction(Op.NOP, (), label="A6")
        assert instr.name == "A6"

    def test_name_falls_back_to_position(self):
        instr = Instruction(Op.NOP, ())
        instr.func = "foo"
        instr.index = 3
        assert instr.name == "foo+3"

    def test_repr_includes_target(self):
        instr = Instruction(Op.JMP, (), target="out")
        assert "-> out" in repr(instr)


class TestBinaryOperators:
    @pytest.mark.parametrize("op,a,b,expected", [
        ("add", 2, 3, 5),
        ("sub", 5, 3, 2),
        ("mul", 4, 3, 12),
        ("and", 6, 3, 2),
        ("or", 4, 1, 5),
        ("xor", 7, 2, 5),
        ("eq", 3, 3, 1),
        ("eq", 3, 4, 0),
        ("ne", 3, 4, 1),
        ("lt", 2, 3, 1),
        ("le", 3, 3, 1),
        ("gt", 4, 3, 1),
        ("ge", 2, 3, 0),
    ])
    def test_semantics(self, op, a, b, expected):
        assert BINARY_OPERATORS[op](a, b) == expected
