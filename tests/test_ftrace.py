"""Tests for the textual ftrace log format."""

import pytest

from repro.corpus.registry import get_bug
from repro.kernel.threads import ThreadKind
from repro.trace.events import KthreadInvocation, SyscallEvent
from repro.trace.ftrace import (
    FtraceParseError,
    parse_ftrace,
    render_ftrace,
)
from repro.trace.history import ExecutionHistory


def _sample_history():
    history = ExecutionHistory(failure_time=15.5)
    history.add(SyscallEvent(timestamp=1.0, proc="A", name="open",
                             entry="tty_open", fd=5, duration=0.5,
                             is_setup=True))
    history.add(SyscallEvent(timestamp=12.0, proc="A", name="ioctl",
                             entry="tty_set_ldisc", fd=5, duration=3.0))
    history.add(SyscallEvent(timestamp=12.1, proc="B", name="write",
                             entry="tty_write", duration=3.0))
    history.add(KthreadInvocation(timestamp=13.0, kind=ThreadKind.KWORKER,
                                  func="flush_work", source_proc="A",
                                  source_syscall="ioctl", duration=2.0))
    return history


class TestRoundTrip:
    def test_sample_round_trips(self):
        history = _sample_history()
        parsed = parse_ftrace(render_ftrace(history))
        assert parsed.failure_time == history.failure_time
        assert len(parsed) == len(history)
        for original, back in zip(history.events, parsed.events):
            assert type(original) is type(back)
            assert original.timestamp == back.timestamp
            assert original.duration == back.duration

    def test_syscall_fields_survive(self):
        parsed = parse_ftrace(render_ftrace(_sample_history()))
        call = parsed.syscalls[1]
        assert call.proc == "A"
        assert call.name == "ioctl"
        assert call.entry == "tty_set_ldisc"
        assert call.fd == 5
        assert not call.is_setup
        assert parsed.syscalls[0].is_setup

    def test_missing_fd_round_trips_as_none(self):
        parsed = parse_ftrace(render_ftrace(_sample_history()))
        assert parsed.syscalls[2].fd is None

    def test_kthread_fields_survive(self):
        parsed = parse_ftrace(render_ftrace(_sample_history()))
        invocation = parsed.kthread_invocations[0]
        assert invocation.kind is ThreadKind.KWORKER
        assert invocation.func == "flush_work"
        assert invocation.source_proc == "A"
        assert invocation.source_syscall == "ioctl"

    @pytest.mark.parametrize("bug_id",
                             ["CVE-2017-15649", "SYZ-04", "EXT-IRQ-01"])
    def test_corpus_histories_round_trip(self, bug_id):
        history = get_bug(bug_id).history()
        parsed = parse_ftrace(render_ftrace(history))
        assert len(parsed) == len(history)
        assert parsed.failure_time == history.failure_time

    def test_parsed_corpus_history_still_diagnoses(self):
        """A history archived as text and re-parsed must drive the same
        diagnosis."""
        from repro.core.diagnose import Aitia
        from repro.trace.syzkaller import run_bug_finder

        bug = get_bug("SYZ-04")
        report = run_bug_finder(bug)
        report.history = parse_ftrace(render_ftrace(report.history))
        diagnosis = Aitia(bug, report=report).diagnose()
        assert diagnosis.reproduced
        assert diagnosis.chain.contains_race_between("K1", "A2")


class TestParseErrors:
    def test_missing_header(self):
        with pytest.raises(FtraceParseError, match="header"):
            parse_ftrace("1.0 A sys_enter: open(fd=1) entry=e dur=1.0")

    def test_bad_timestamp(self):
        with pytest.raises(FtraceParseError, match="timestamp"):
            parse_ftrace("# tracer: aitia\nnot_a_number A sys_enter: x")

    def test_unknown_event_kind(self):
        with pytest.raises(FtraceParseError, match="unknown event"):
            parse_ftrace("# tracer: aitia\n1.0 A frobnicate: x")

    def test_malformed_kv(self):
        with pytest.raises(FtraceParseError):
            parse_ftrace("# tracer: aitia\n"
                         "1.0 A sys_enter: open(fd=1) oops=e dur=1.0")

    def test_comments_are_ignored(self):
        text = ("# tracer: aitia\n"
                "#   TIMESTAMP  PROC  EVENT\n"
                "1.000000 A sys_enter: open(fd=-) entry=e dur=1.000\n")
        parsed = parse_ftrace(text)
        assert len(parsed) == 1
