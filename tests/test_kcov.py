"""Tests for the kcov analogue (basic-block coverage)."""

from repro.kernel.kcov import Kcov
from repro.kernel.machine import KernelMachine, ThreadSpec

from helpers import fig2_image, run_thread


def _covered_machine():
    image = fig2_image()
    kcov = Kcov(image)
    machine = KernelMachine(
        image,
        [ThreadSpec("A", "fanout_add"), ThreadSpec("B", "packet_do_bind")],
        globals_init={"po_running": 1, "po_fanout": 0, "global_list": ()},
        coverage_cb=kcov,
    )
    return image, kcov, machine


class TestKcov:
    def test_blocks_reported_per_thread(self):
        image, kcov, machine = _covered_machine()
        run_thread(machine, "A")
        blocks_a = kcov.covered_blocks("A")
        assert blocks_a, "thread A must cover blocks"
        assert kcov.covered_blocks("B") == []

    def test_covered_blocks_map_to_memory_instructions(self):
        image, kcov, machine = _covered_machine()
        run_thread(machine, "A")
        labels = {i.label for i in kcov.memory_instructions("A")}
        # A's path: A2 (load), A6 (store), A12 (list_add).
        assert {"A2", "A6", "A12"} <= labels

    def test_untaken_path_not_covered(self):
        image, kcov, machine = _covered_machine()
        run_thread(machine, "A")  # sets po_fanout
        run_thread(machine, "B")  # B2 reads non-NULL -> early return
        labels = {i.label for i in kcov.memory_instructions("B")}
        assert "B11" not in labels  # unregister_hook never entered

    def test_unique_blocks_deduplicate(self):
        image, kcov, machine = _covered_machine()
        run_thread(machine, "A")
        assert len(kcov.unique_blocks("A")) <= len(kcov.covered_blocks("A"))

    def test_reset_clears_coverage(self):
        image, kcov, machine = _covered_machine()
        run_thread(machine, "A")
        kcov.reset()
        assert kcov.covered_blocks("A") == []
