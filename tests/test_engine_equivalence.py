"""The execution engine's core contract: every backend combination
returns bit-identical runs, and policy resolution respects the
config > api kwarg > CLI flag precedence."""

import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.causality import CaConfig
from repro.core.lifs import LifsConfig
from repro.core.schedule import Preemption, Schedule
from repro.engine import (EnginePolicy, RunPlan, RunRequest,
                          ScheduleExecutionEngine)

from helpers import fig2_image, fig2_machine, two_counter_machine

IMAGE = fig2_image()
A_LABELS = ["A2", "A5", "A6", "A12"]
B_LABELS = ["B2", "B11", "B12", "B17a"]

#: Every backend composition the engine can select.  ``wave_jobs=2``
#: genuinely forks resident fleet workers (Linux, non-daemonic test
#: runner); the zero spin-up threshold makes the first engage wait for
#: worker readiness, so plans truly dispatch remotely.
POLICIES = {
    "inline": EnginePolicy(use_snapshots=False),
    "snapshot": EnginePolicy(use_snapshots=True),
    "fleet": EnginePolicy(use_snapshots=False, wave_jobs=2,
                          fleet_spinup_requests=0),
    "snapshot+fleet": EnginePolicy(use_snapshots=True, wave_jobs=2,
                                   fleet_spinup_requests=0),
}


def _run_facts(outcome):
    run = outcome.run
    return (run.signature(), run.failure is None, run.steps,
            len(run.trace), run.interleavings)


preemption_lists = st.lists(
    st.tuples(st.sampled_from(A_LABELS + B_LABELS),
              st.sampled_from(["A", "B", None])),
    min_size=0, max_size=3)


def _schedule(preempts, start_first, note):
    preemptions = []
    for label, target in preempts:
        thread = "A" if label in A_LABELS else "B"
        if target == thread:
            target = None
        preemptions.append(Preemption(
            thread=thread, instr_addr=IMAGE.instruction_labeled(label).addr,
            occurrence=1, switch_to=target, instr_label=label))
    order = ("A", "B") if start_first else ("B", "A")
    return Schedule(start_order=order, preemptions=preemptions, note=note)


class TestBackendEquivalence:
    @given(preemption_lists, preemption_lists, st.booleans())
    @settings(max_examples=15, deadline=None)
    def test_every_backend_returns_identical_outcomes(
            self, preempts_a, preempts_b, start_first):
        """One plan of random schedules, executed through every backend
        composition, yields the same runs bit for bit — placement and
        accounting are the only things a policy may change."""
        schedules = [_schedule(preempts_a, start_first, "p1"),
                     _schedule(preempts_b, not start_first, "p2")]
        results = {}
        for name, policy in POLICIES.items():
            engine = ScheduleExecutionEngine(fig2_machine, policy)
            try:
                outcomes = engine.run_plan(RunPlan(
                    [RunRequest(schedule=s, capture_checkpoints=True)
                     for s in schedules], phase="equivalence"))
            finally:
                engine.close()
            results[name] = [_run_facts(o) for o in outcomes]
        baseline = results.pop("inline")
        for name, facts in results.items():
            assert facts == baseline, name

    def test_single_requests_match_plans(self):
        """run() and run_plan() agree for the same schedules."""
        schedule = _schedule([("A6", "B"), ("B12", None)], True, "s")
        for policy in POLICIES.values():
            run_engine = ScheduleExecutionEngine(fig2_machine, policy)
            plan_engine = ScheduleExecutionEngine(fig2_machine, policy)
            try:
                via_run = run_engine.run(RunRequest(schedule=schedule))
                via_plan = plan_engine.run_plan(
                    RunPlan([RunRequest(schedule=schedule)]))[0]
            finally:
                run_engine.close()
                plan_engine.close()
            assert _run_facts(via_run) == _run_facts(via_plan)

    def test_benign_program_equivalence(self):
        """The counter-bumping model (no failure) agrees across backends
        too — equivalence is not an artifact of the crash path."""
        schedules = [Schedule(start_order=("A", "B")),
                     Schedule(start_order=("B", "A"))]
        baseline = None
        for policy in POLICIES.values():
            engine = ScheduleExecutionEngine(two_counter_machine, policy)
            try:
                facts = [_run_facts(o) for o in engine.run_plan(
                    RunPlan([RunRequest(schedule=s) for s in schedules]))]
            finally:
                engine.close()
            if baseline is None:
                baseline = facts
            assert facts == baseline


class TestSpeculationDedup:
    def test_speculate_then_run_hits_memo(self):
        schedules = [_schedule([("A6", "B")], True, "a"),
                     _schedule([("B12", "A")], False, "b")]
        engine = ScheduleExecutionEngine(
            fig2_machine, EnginePolicy(use_snapshots=False, wave_jobs=2,
                                       fleet_spinup_requests=0))
        try:
            engine.speculate(RunPlan(
                [RunRequest(schedule=s) for s in schedules], phase="spec"))
            outcome = engine.run(RunRequest(schedule=schedules[0]))
            assert outcome.dedup_hit
            assert engine.stats.dedup_hits == 1
            # The second speculation result is still queued; a fresh
            # speculate drops it and discard counts nothing afterwards.
            engine.speculate(RunPlan([], phase="spec"))
            assert engine.discard_speculation() == 0
        finally:
            engine.close()

    def test_plain_runs_never_dedup(self):
        """Two identical requests execute twice: CA's edge recheck
        depends on plain runs never reusing results."""
        schedule = _schedule([("A6", None)], True, "x")
        engine = ScheduleExecutionEngine(fig2_machine, EnginePolicy())
        engine.run(RunRequest(schedule=schedule))
        outcome = engine.run(RunRequest(schedule=schedule))
        assert not outcome.dedup_hit
        assert engine.stats.requests == 2
        assert engine.stats.dedup_hits == 0


class TestEnginePolicyResolution:
    def test_defaults(self):
        policy = EnginePolicy.resolve()
        assert policy.use_snapshots is True
        assert policy.wave_jobs == 1

    def test_cli_flags_beat_defaults(self):
        policy = EnginePolicy.resolve(cli_snapshots=False, cli_wave_jobs=3)
        assert policy.use_snapshots is False
        assert policy.wave_jobs == 3

    def test_api_kwargs_beat_cli_flags(self):
        policy = EnginePolicy.resolve(snapshots=True, wave_jobs=2,
                                      cli_snapshots=False, cli_wave_jobs=8)
        assert policy.use_snapshots is True
        assert policy.wave_jobs == 2

    def test_config_beats_everything(self):
        config = LifsConfig(use_snapshots=False, wave_jobs=4)
        policy = EnginePolicy.resolve(config=config, snapshots=True,
                                      wave_jobs=1, cli_snapshots=True,
                                      cli_wave_jobs=9)
        assert policy.use_snapshots is False
        assert policy.wave_jobs == 4

    def test_unset_tiers_fall_through(self):
        policy = EnginePolicy.resolve(snapshots=None, wave_jobs=None,
                                      cli_snapshots=None, cli_wave_jobs=2)
        assert policy.use_snapshots is True
        assert policy.wave_jobs == 2

    def test_config_carries_tuning_knobs(self):
        config = LifsConfig(snapshot_interval=4, max_checkpoints_per_run=16,
                            max_continuations=128)
        policy = EnginePolicy.for_lifs(config)
        assert policy.snapshot_interval == 4
        assert policy.max_checkpoints_per_run == 16
        assert policy.max_continuations == 128

    def test_ca_config_resolves_too(self):
        policy = EnginePolicy.for_ca(CaConfig(use_snapshots=False,
                                              wave_jobs=2))
        assert policy.use_snapshots is False
        assert policy.wave_jobs == 2


class TestAlgorithmPurity:
    """LIFS, CA and the triage orchestrator are pure consumers of the
    dispatch layer: their sources must not reference pool/executor
    internals (only the ``make_executor`` front door and the engine's
    own surface are fair game)."""

    #: Dispatch internals no algorithm/orchestrator module may name.
    FORBIDDEN = ("WaveExecutor", "WorkerPool", "InProcessPool",
                 "WorkerFleet", "FleetExecutor", "JobExecutor",
                 "ContinuationCache", "CheckpointPolicy",
                 "repro.service.pool", "repro.engine.fleet")

    @pytest.mark.parametrize("module", ["lifs.py", "causality.py"])
    def test_algorithms_reference_no_execution_machinery(self, module):
        import repro.core
        source = (pathlib.Path(repro.core.__file__).parent
                  / module).read_text()
        for forbidden in self.FORBIDDEN + ("make_executor",):
            assert forbidden not in source, (
                f"{module} references {forbidden}; execution placement "
                f"belongs to repro.engine")

    def test_triage_uses_only_the_executor_front_door(self):
        import repro.service
        source = (pathlib.Path(repro.service.__file__).parent
                  / "triage.py").read_text()
        for forbidden in self.FORBIDDEN:
            assert forbidden not in source, (
                f"triage.py references {forbidden}; dispatch goes "
                f"through repro.engine.executors.make_executor")
        assert "make_executor" in source
