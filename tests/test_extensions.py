"""Tests for the IRQ-context extension (paper section 4.6 future work)."""

import itertools

import pytest

from repro.core.diagnose import Aitia
from repro.corpus.registry import extension_bugs, get_bug
from repro.hypervisor.controller import ScheduleController, serial_schedule
from repro.kernel.threads import ThreadKind
from repro.trace.syzkaller import run_bug_finder


@pytest.fixture(scope="module")
def irq_bug():
    return get_bug("EXT-IRQ-01")


class TestIrqExtensionModel:
    def test_registered_as_extension(self, irq_bug):
        assert irq_bug in extension_bugs()
        assert irq_bug.source == "extension"

    def test_irq_thread_kind(self, irq_bug):
        machine = irq_bug.machine_factory()
        assert machine.thread("irq0").kind is ThreadKind.IRQ

    def test_known_injection_crashes(self, irq_bug):
        run = ScheduleController(irq_bug.machine_factory(),
                                 irq_bug.known_failing_schedule).run()
        assert run.failed
        assert run.failure.thread == "irq0"

    def test_serial_orders_are_safe(self, irq_bug):
        for order in itertools.permutations(["A", "irq0"]):
            run = ScheduleController(irq_bug.machine_factory(),
                                     serial_schedule(order)).run()
            assert run.failure is None


class TestIrqDiagnosis:
    def test_direct_diagnosis(self, irq_bug):
        diagnosis = Aitia(irq_bug).diagnose()
        assert diagnosis.reproduced
        assert diagnosis.chain.contains_race_between("A2", "I2")
        assert diagnosis.interleaving_count == 1

    def test_handler_is_never_preempted(self, irq_bug):
        """In every run LIFS executed, the IRQ handler's instructions are
        contiguous in the global order (atomic injection)."""
        diagnosis = Aitia(irq_bug).diagnose()
        runs = list(diagnosis.lifs_result.sample_runs)
        runs.append(diagnosis.lifs_result.failure_run)
        for run in runs:
            seqs = [t.seq for t in run.trace if t.thread == "irq0"]
            if len(seqs) > 1:
                assert seqs == list(range(min(seqs), max(seqs) + 1)), (
                    f"IRQ handler interleaved in {run.schedule.describe()}")

    def test_report_pipeline_with_irq_event(self, irq_bug):
        report = run_bug_finder(irq_bug)
        irq_events = [e for e in report.history.kthread_invocations
                      if e.kind is ThreadKind.IRQ]
        assert irq_events, "history must carry the IRQ invocation"
        diagnosis = Aitia(irq_bug, report=report).diagnose()
        assert diagnosis.reproduced
        assert diagnosis.chain.contains_race_between("A2", "I2")

    def test_ca_flip_averts_the_uaf(self, irq_bug):
        diagnosis = Aitia(irq_bug).diagnose()
        result = diagnosis.ca_result
        fatal = [u for u in result.root_cause_units
                 if "A2 => I2" in str(u)]
        assert fatal, "the free-vs-read race must be the root cause"
        assert not diagnosis.chain.has_ambiguity


class TestRcuExtension:
    @pytest.fixture(scope="class")
    def rcu_bug(self):
        return get_bug("EXT-RCU-01")

    def test_rcu_callback_context(self, rcu_bug):
        diagnosis = Aitia(rcu_bug).diagnose()
        assert diagnosis.reproduced
        threads = {t.thread for t in diagnosis.lifs_result.failure_run.trace}
        assert any(t.startswith("rcu/") for t in threads)

    def test_chain_crosses_into_rcu(self, rcu_bug):
        diagnosis = Aitia(rcu_bug).diagnose()
        assert diagnosis.chain.contains_race_between("R1", "B2")
        assert diagnosis.chain.contains_race_between("B1", "A3")

    def test_report_pipeline(self, rcu_bug):
        report = run_bug_finder(rcu_bug)
        diagnosis = Aitia(rcu_bug, report=report).diagnose()
        assert diagnosis.reproduced
        assert diagnosis.chain.contains_race_between("R1", "B2")


class TestThreeSyscallExtension:
    @pytest.fixture(scope="class")
    def tri_bug(self):
        return get_bug("EXT-3SC-01")

    def test_serial_orders_safe(self, tri_bug):
        names = [t.proc for t in tri_bug.threads]
        for order in itertools.permutations(names):
            run = ScheduleController(tri_bug.machine_factory(),
                                     serial_schedule(order)).run()
            assert run.failure is None, order

    def test_three_context_chain(self, tri_bug):
        diagnosis = Aitia(tri_bug).diagnose()
        assert diagnosis.reproduced
        assert diagnosis.chain.contains_race_between("C1", "A0")
        assert diagnosis.chain.contains_race_between("A1", "B1")
        threads = {r.first.thread for r in diagnosis.chain.races}
        threads |= {r.second.thread for r in diagnosis.chain.races}
        assert threads == {"A", "B", "C"}

    def test_slicer_builds_three_thread_slice(self, tri_bug):
        report = run_bug_finder(tri_bug)
        diagnosis = Aitia(tri_bug, report=report).diagnose()
        assert diagnosis.reproduced
        assert diagnosis.slice_used.thread_count == 3


class TestLockFreeExtension:
    @pytest.fixture(scope="class")
    def lf_bug(self):
        return get_bug("EXT-LF-01")

    def test_atomic_ops_race_but_stay_benign_when_ordered(self, lf_bug):
        """Serial pushes never leak: the cmpxchg succeeds either way."""
        names = [t.proc for t in lf_bug.threads]
        for order in itertools.permutations(names):
            run = ScheduleController(lf_bug.machine_factory(),
                                     serial_schedule(order)).run()
            assert run.failure is None, order

    def test_lost_cmpxchg_is_diagnosed(self, lf_bug):
        diagnosis = Aitia(lf_bug).diagnose()
        assert diagnosis.reproduced
        assert diagnosis.chain.contains_race_between("A2", "B4")
        assert diagnosis.chain.contains_race_between("B4", "A4")
        assert not diagnosis.chain.has_ambiguity

    def test_leak_failure_names_the_lost_allocation(self, lf_bug):
        diagnosis = Aitia(lf_bug).diagnose()
        failure = diagnosis.lifs_result.failure_run.failure
        assert failure.kind.name == "MEMORY_LEAK"
        assert failure.instr_label == "A1"
