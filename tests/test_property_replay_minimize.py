"""Property-based tests: replay fidelity and minimization invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.minimize import minimize_schedule
from repro.core.schedule import Preemption, Schedule
from repro.hypervisor.controller import ScheduleController
from repro.hypervisor.replay import record, replay

from helpers import fig2_image, fig2_machine

IMAGE = fig2_image()
LABELS = ["A2", "A5", "A6", "A12", "B2", "B11", "B12"]


def _schedule(labels, start_first):
    preemptions = []
    for label in labels:
        thread = "A" if label.startswith("A") else "B"
        target = "B" if thread == "A" else "A"
        preemptions.append(Preemption(
            thread=thread,
            instr_addr=IMAGE.instruction_labeled(label).addr,
            occurrence=1, switch_to=target, instr_label=label))
    order = ("A", "B") if start_first else ("B", "A")
    return Schedule(start_order=order, preemptions=preemptions)


schedules = st.builds(
    _schedule,
    st.lists(st.sampled_from(LABELS), min_size=0, max_size=3, unique=True),
    st.booleans())


@given(schedules)
@settings(max_examples=60, deadline=None)
def test_every_run_replays_exactly(schedule):
    """Record & replay holds for arbitrary schedules, crashing or not."""
    run = ScheduleController(fig2_machine(), schedule).run()
    recording = record(run)
    replayed = replay(fig2_machine, recording)
    assert replayed.signature() == run.signature()
    assert (replayed.failure is None) == (run.failure is None)


@given(schedules)
@settings(max_examples=30, deadline=None)
def test_minimization_invariants(schedule):
    """Whenever a schedule crashes, its minimization (1) still crashes
    with the same symptom, (2) is never larger, and (3) is one-minimal:
    removing any remaining preemption breaks reproduction."""
    run = ScheduleController(fig2_machine(), schedule).run()
    if run.failure is None:
        return  # nothing to minimize

    result = minimize_schedule(fig2_machine, schedule)
    assert result.run.failed
    assert result.run.failure.signature == run.failure.signature
    assert (len(result.schedule.preemptions)
            <= len(schedule.preemptions))

    # One-minimality.
    minimal = result.schedule
    for i in range(len(minimal.preemptions)):
        candidate = Schedule(
            start_order=minimal.start_order,
            preemptions=(minimal.preemptions[:i]
                         + minimal.preemptions[i + 1:]),
            constraints=list(minimal.constraints))
        smaller = ScheduleController(fig2_machine(), candidate).run()
        ok = (smaller.failure is None
              or smaller.failure.signature != run.failure.signature)
        assert ok, "minimization left a removable preemption"
