"""Unit tests for the simulated-kernel machine (interpreter semantics)."""

import pytest

from repro.kernel.builder import ProgramBuilder
from repro.kernel.failures import FailureKind
from repro.kernel.machine import KernelMachine, ThreadSpec
from repro.kernel.threads import ThreadKind, ThreadState

from helpers import fig2_machine, run_thread, run_until


def _machine(build, threads=None, globals_init=None, **kwargs):
    b = ProgramBuilder()
    build(b)
    image = b.build()
    threads = threads or [ThreadSpec("T", "main")]
    return KernelMachine(image, threads, globals_init=globals_init, **kwargs)


class TestBasicExecution:
    def test_mov_binop_store(self):
        def build(b):
            with b.function("main") as f:
                f.mov("a", 2)
                f.binop("b", "add", f.r("a"), 3)
                f.store(f.g("out"), f.r("b"))
        m = _machine(build)
        run_thread(m, "T")
        assert m.memory.load(m.memory.global_addr("out")) == 5

    def test_load_reads_global(self):
        def build(b):
            with b.function("main") as f:
                f.load("a", f.g("x"))
                f.store(f.g("y"), f.r("a"))
        m = _machine(build, globals_init={"x": 7})
        run_thread(m, "T")
        assert m.memory.load(m.memory.global_addr("y")) == 7

    def test_unset_register_reads_zero(self):
        def build(b):
            with b.function("main") as f:
                f.store(f.g("out"), f.r("never_set"))
        m = _machine(build)
        run_thread(m, "T")
        assert m.memory.load(m.memory.global_addr("out")) == 0

    def test_lea_and_deref(self):
        def build(b):
            with b.function("main") as f:
                f.lea("p", "x")
                f.store(f.at("p"), 11)
        m = _machine(build)
        run_thread(m, "T")
        assert m.memory.load(m.memory.global_addr("x")) == 11

    def test_branch_taken_and_not_taken(self):
        def build(b):
            with b.function("main") as f:
                f.load("a", f.g("x"))
                f.brz("a", "skip")
                f.store(f.g("taken"), 1)
                f.ret(label="skip")
        m = _machine(build, globals_init={"x": 0})
        run_thread(m, "T")
        assert m.memory.load(m.memory.global_addr("taken")) == 0
        m2 = _machine(build, globals_init={"x": 1})
        run_thread(m2, "T")
        assert m2.memory.load(m2.memory.global_addr("taken")) == 1

    def test_jmp_loops_with_counter(self):
        def build(b):
            with b.function("main") as f:
                f.load("i", f.g("n"), label="top")
                f.brz("i", "out")
                f.binop("i", "sub", f.r("i"), 1)
                f.store(f.g("n"), f.r("i"))
                f.inc(f.g("iterations"), 1)
                f.jmp("top")
                f.ret(label="out")
        m = _machine(build, globals_init={"n": 3})
        run_thread(m, "T")
        assert m.memory.load(m.memory.global_addr("iterations")) == 3

    def test_call_and_ret(self):
        def build(b):
            with b.function("main") as f:
                f.call("callee")
                f.store(f.g("after"), 1)
            with b.function("callee") as f:
                f.store(f.g("inside"), 1)
        m = _machine(build)
        run_thread(m, "T")
        assert m.memory.load(m.memory.global_addr("inside")) == 1
        assert m.memory.load(m.memory.global_addr("after")) == 1

    def test_thread_done_after_entry_returns(self):
        def build(b):
            with b.function("main") as f:
                f.nop()
        m = _machine(build)
        run_thread(m, "T")
        assert m.thread("T").done
        with pytest.raises(RuntimeError, match="is done"):
            m.step("T")


class TestMemoryInstructions:
    def test_inc_is_single_rw_access(self):
        def build(b):
            with b.function("main") as f:
                f.inc(f.g("c"), 5)
        m = _machine(build)
        run_thread(m, "T")
        assert m.memory.load(m.memory.global_addr("c")) == 5
        assert len(m.access_log) == 1
        assert m.access_log[0].is_read and m.access_log[0].is_write

    def test_list_add_del_contains(self):
        def build(b):
            with b.function("main") as f:
                f.list_add(f.g("lst"), 7)
                f.list_add(f.g("lst"), 8)
                f.list_contains("found", f.g("lst"), 7)
                f.store(f.g("r1"), f.r("found"))
                f.list_del(f.g("lst"), 7)
                f.list_contains("found", f.g("lst"), 7)
                f.store(f.g("r2"), f.r("found"))
        m = _machine(build, globals_init={"lst": ()})
        run_thread(m, "T")
        mem = m.memory
        assert mem.load(mem.global_addr("r1")) == 1
        assert mem.load(mem.global_addr("r2")) == 0
        assert mem.load(mem.global_addr("lst")) == (8,)

    def test_list_del_of_absent_element_is_noop(self):
        def build(b):
            with b.function("main") as f:
                f.list_del(f.g("lst"), 99)
        m = _machine(build, globals_init={"lst": (1,)})
        run_thread(m, "T")
        assert m.memory.load(m.memory.global_addr("lst")) == (1,)

    def test_free_records_access_per_object_word(self):
        def build(b):
            with b.function("main") as f:
                f.alloc("p", 24, tag="obj")
                f.free("p", label="F")
        m = _machine(build)
        run_thread(m, "T")
        free_accesses = [a for a in m.access_log if a.instr_label == "F"]
        assert len(free_accesses) == 3  # 24 bytes -> 3 words
        assert all(a.is_write for a in free_accesses)

    def test_alloc_is_not_an_access(self):
        def build(b):
            with b.function("main") as f:
                f.alloc("p", 8, tag="obj")
        m = _machine(build)
        run_thread(m, "T")
        assert m.access_log == []


class TestFailures:
    def test_bug_on_fires(self):
        def build(b):
            with b.function("main") as f:
                f.bug_on(1, "boom", label="B")
        m = _machine(build)
        run_thread(m, "T")
        assert m.failure is not None
        assert m.failure.kind is FailureKind.ASSERTION
        assert m.failure.instr_label == "B"
        assert m.halted

    def test_bug_on_passes_when_zero(self):
        def build(b):
            with b.function("main") as f:
                f.bug_on(0, "never")
        m = _machine(build)
        run_thread(m, "T")
        assert m.failure is None

    def test_null_deref_becomes_gpf_failure(self):
        def build(b):
            with b.function("main") as f:
                f.load("x", f.at("null_reg"), label="D")
        m = _machine(build)
        run_thread(m, "T")
        assert m.failure.kind is FailureKind.GPF
        assert m.failure.instr_label == "D"

    def test_stepping_halted_machine_raises(self):
        def build(b):
            with b.function("main") as f:
                f.bug_on(1, "x")
                f.nop()
        m = _machine(build)
        m.step("T")
        with pytest.raises(RuntimeError, match="halted"):
            m.step("T")

    def test_leak_detected_at_finish(self):
        def build(b):
            with b.function("main") as f:
                f.alloc("p", 8, tag="filt", leak_tracked=True, label="A1")
        m = _machine(build)
        run_thread(m, "T")
        failure = m.finish()
        assert failure.kind is FailureKind.MEMORY_LEAK
        assert failure.instr_label == "A1"

    def test_no_leak_when_stored(self):
        def build(b):
            with b.function("main") as f:
                f.alloc("p", 8, tag="filt", leak_tracked=True)
                f.store(f.g("slot"), f.r("p"))
        m = _machine(build)
        run_thread(m, "T")
        assert m.finish() is None

    def test_faulting_instruction_is_last_trace_entry_once(self):
        def build(b):
            with b.function("main") as f:
                f.bug_on(1, "x", label="B")
        m = _machine(build)
        run_thread(m, "T")
        labels = [t.instr_label for t in m.trace]
        assert labels.count("B") == 1


class TestLocks:
    def _locked_machine(self):
        def build(b):
            with b.function("a") as f:
                f.lock("L", label="AL")
                f.inc(f.g("c"), 1, label="AI")
                f.unlock("L", label="AU")
            with b.function("b") as f:
                f.lock("L", label="BL")
                f.inc(f.g("c"), 1, label="BI")
                f.unlock("L", label="BU")
        return _machine(build, threads=[ThreadSpec("A", "a"),
                                        ThreadSpec("B", "b")])

    def test_contended_lock_blocks(self):
        m = self._locked_machine()
        m.step("A")  # A acquires L
        out = m.step("B")
        assert out.blocked and not out.executed
        assert m.thread("B").state is ThreadState.BLOCKED

    def test_unlock_wakes_waiter(self):
        m = self._locked_machine()
        m.step("A")
        m.step("B")  # blocks
        m.step("A")  # AI
        m.step("A")  # AU -> wakes B
        assert m.thread("B").state is ThreadState.READY
        out = m.step("B")  # B retries and acquires
        assert out.executed

    def test_lockset_recorded_on_accesses(self):
        m = self._locked_machine()
        run_thread(m, "A")
        access = next(a for a in m.access_log if a.instr_label == "AI")
        assert access.lockset == frozenset({"L"})


class TestBackgroundThreads:
    def test_queue_work_spawns_kworker(self):
        def build(b):
            with b.function("main") as f:
                f.queue_work("work", arg=5)
            with b.function("work") as f:
                f.store(f.g("out"), f.r("a0"))
        m = _machine(build)
        run_thread(m, "T")
        assert len(m.threads) == 2
        worker = m.threads[1]
        assert worker.kind is ThreadKind.KWORKER
        assert worker.spawned_by == "T"
        run_thread(m, worker.name)
        assert m.memory.load(m.memory.global_addr("out")) == 5

    def test_call_rcu_spawns_rcu_context(self):
        def build(b):
            with b.function("main") as f:
                f.call_rcu("cb")
            with b.function("cb") as f:
                f.nop()
        m = _machine(build)
        run_thread(m, "T")
        assert m.threads[1].kind is ThreadKind.RCU
        assert m.spawn_events[0].parent == "T"

    def test_spawned_threads_do_not_run_spontaneously(self):
        def build(b):
            with b.function("main") as f:
                f.queue_work("work")
            with b.function("work") as f:
                f.store(f.g("ran"), 1)
        m = _machine(build)
        run_thread(m, "T")
        assert m.memory.load(m.memory.global_addr("ran")) == 0


class TestSetupCalls:
    def test_setup_runs_before_threads_and_is_unrecorded(self):
        def build(b):
            with b.function("init") as f:
                f.store(f.g("state"), 1)
            with b.function("main") as f:
                f.load("x", f.g("state"))
                f.store(f.g("seen"), f.r("x"))
        m = _machine(build, threads=[ThreadSpec("T", "main")],
                     setup=[ThreadSpec("setup", "init")])
        assert m.trace == [] and m.access_log == []
        run_thread(m, "T")
        assert m.memory.load(m.memory.global_addr("seen")) == 1

    def test_crashing_setup_raises(self):
        def build(b):
            with b.function("init") as f:
                f.bug_on(1, "bad setup")
            with b.function("main") as f:
                f.nop()
        with pytest.raises(RuntimeError, match="setup call"):
            _machine(build, threads=[ThreadSpec("T", "main")],
                     setup=[ThreadSpec("s", "init")])


class TestIntrospection:
    def test_peek_does_not_advance(self):
        m = fig2_machine()
        instr = m.peek("A")
        assert instr.label == "A2"
        assert m.peek("A").label == "A2"

    def test_next_occurrence_counts_executions(self):
        m = fig2_machine()
        instr = m.peek("A")
        assert m.next_occurrence("A", instr.addr) == 1
        m.step("A")
        assert m.next_occurrence("A", instr.addr) == 2

    def test_resolve_access_addr_for_load(self):
        m = fig2_machine()
        instr = m.peek("A")  # A2: load po_running
        addr = m.resolve_access_addr("A", instr)
        assert addr == m.memory.global_addr("po_running")

    def test_resolve_access_addr_none_for_non_memory(self):
        m = fig2_machine()
        run_until(m, "A", "A2b")
        instr = m.peek("A")  # branch
        assert m.resolve_access_addr("A", instr) is None

    def test_duplicate_thread_names_rejected(self):
        def build(b):
            with b.function("main") as f:
                f.nop()
        with pytest.raises(ValueError, match="duplicate thread name"):
            _machine(build, threads=[ThreadSpec("T", "main"),
                                     ThreadSpec("T", "main")])

    def test_unknown_entry_rejected(self):
        def build(b):
            with b.function("main") as f:
                f.nop()
        with pytest.raises(ValueError, match="not a function"):
            _machine(build, threads=[ThreadSpec("T", "ghost")])


class TestAtomicOps:
    def test_cmpxchg_success(self):
        def build(b):
            with b.function("main") as f:
                f.cmpxchg("old", f.g("cell"), 0, 7)
                f.store(f.g("seen_old"), f.r("old"))
        m = _machine(build, globals_init={"cell": 0})
        run_thread(m, "T")
        assert m.memory.load(m.memory.global_addr("cell")) == 7
        assert m.memory.load(m.memory.global_addr("seen_old")) == 0

    def test_cmpxchg_failure_leaves_cell_untouched(self):
        def build(b):
            with b.function("main") as f:
                f.cmpxchg("old", f.g("cell"), 5, 7)
                f.store(f.g("seen_old"), f.r("old"))
        m = _machine(build, globals_init={"cell": 3})
        run_thread(m, "T")
        assert m.memory.load(m.memory.global_addr("cell")) == 3
        assert m.memory.load(m.memory.global_addr("seen_old")) == 3

    def test_cmpxchg_is_one_rw_access(self):
        def build(b):
            with b.function("main") as f:
                f.cmpxchg("old", f.g("cell"), 0, 1)
        m = _machine(build)
        run_thread(m, "T")
        assert len(m.access_log) == 1
        assert m.access_log[0].is_read and m.access_log[0].is_write

    def test_xchg_swaps(self):
        def build(b):
            with b.function("main") as f:
                f.xchg("old", f.g("cell"), 9)
                f.store(f.g("seen_old"), f.r("old"))
        m = _machine(build, globals_init={"cell": 4})
        run_thread(m, "T")
        assert m.memory.load(m.memory.global_addr("cell")) == 9
        assert m.memory.load(m.memory.global_addr("seen_old")) == 4
