"""End-to-end tests for the intake daemon over a real socket.

Each test boots a :class:`TriageDaemon` on an ephemeral port inside
``asyncio.run`` and drives it through :class:`DaemonClient` — the full
HTTP → admission → dedup → journal → drain → store path, with the
instant stub diagnoser so nothing here costs a real diagnosis.
"""

import asyncio
import functools
import time

from repro.corpus.registry import get_bug
from repro.daemon import (
    DaemonClient,
    DaemonConfig,
    TenantPolicy,
    start_daemon,
    stub_diagnose_job,
)
from repro.observe.export import parse_exposition
from repro.service.artifacts import CrashArtifact
from repro.service.triage import EMPTY_INTAKE_MESSAGE
from repro.trace.syzkaller import run_bug_finder


@functools.lru_cache(maxsize=None)
def artifact_text(bug_id: str) -> str:
    return CrashArtifact.from_report(run_bug_finder(get_bug(bug_id))).render()


def daemon_test(tmp_path, coro_fn, **overrides):
    """Boot daemon + client, run ``coro_fn(daemon, client)``, tear down."""
    settings = dict(port=0, data_dir=str(tmp_path / "data"),
                    diagnoser=stub_diagnose_job, poll_interval_s=0.005)
    settings.update(overrides)

    async def go():
        daemon = await start_daemon(DaemonConfig(**settings))
        client = DaemonClient("127.0.0.1", daemon.port)
        try:
            await coro_fn(daemon, client)
        finally:
            await client.close()
            await daemon.stop()

    asyncio.run(go())


async def wait_until(predicate, timeout_s: float = 10.0):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        await asyncio.sleep(0.01)


async def scrape(client) -> dict:
    response = await client.request("GET", "/metrics")
    assert response.status == 200
    return parse_exposition(response.text)


def assert_reconciled(metrics: dict) -> None:
    """The acceptance identities: every submission is accounted for,
    and every accepted job is terminal or still in flight."""
    shed = sum(v for k, v in metrics.items()
               if k.startswith("aitia_daemon_shed_") and k.endswith("_total"))
    assert metrics.get("aitia_daemon_submissions_total", 0) == (
        metrics.get("aitia_daemon_accepted_total", 0)
        - metrics.get("aitia_daemon_recovered_total", 0)
        + metrics.get("aitia_daemon_deduped_total", 0)
        + metrics.get("aitia_daemon_cache_hits_total", 0)
        + metrics.get("aitia_daemon_rejected_total", 0)
        + shed)
    assert metrics.get("aitia_daemon_accepted_total", 0) == (
        metrics.get("aitia_daemon_completed_total", 0)
        + metrics.get("aitia_daemon_failed_total", 0)
        + metrics.get("aitia_daemon_timed_out_total", 0)
        + metrics.get("aitia_daemon_in_flight", 0))


class TestSubmitPath:
    def test_accept_diagnose_then_cache_hit(self, tmp_path):
        async def scenario(daemon, client):
            text = artifact_text("SYZ-01")
            response = await client.submit(text)
            assert response.status == 202
            accepted = response.json()
            assert accepted["status"] == "accepted"

            job = await client.wait_for_job(accepted["job_id"])
            assert job["status"] == "succeeded"
            assert job["result"]["row"]["reproduced"] is True
            # The job turns terminal a beat before its result settles
            # into the store (the pool's completion callback runs in an
            # executor thread); wait for the settled counter.
            await wait_until(lambda: daemon.metrics.count("completed") == 1)

            # The same signature now answers from the hot tier.
            again = await client.submit(text)
            assert again.status == 200
            hit = again.json()
            assert hit["status"] == "cache_hit"
            assert hit["tier"] == "hot"
            assert hit["digest"] == accepted["digest"]

            result = await client.request(
                "GET", f"/result/{accepted['digest']}")
            assert result.status == 200

            metrics = await scrape(client)
            assert metrics["aitia_daemon_submissions_total"] == 2
            assert metrics["aitia_daemon_accepted_total"] == 1
            assert metrics["aitia_daemon_completed_total"] == 1
            assert metrics["aitia_daemon_cache_hits_total"] == 1
            assert metrics["aitia_daemon_cache_hits_hot_total"] == 1
            assert_reconciled(metrics)

        daemon_test(tmp_path, scenario)

    def test_duplicate_folds_into_queued_job(self, tmp_path):
        async def scenario(daemon, client):
            text = artifact_text("SYZ-02")
            first = (await client.submit(text, tenant="a")).json()
            assert first["status"] == "accepted"
            second = (await client.submit(text, tenant="b")).json()
            assert second["status"] == "duplicate"
            assert second["job_id"] == first["job_id"]

            daemon.paused = False
            job = await client.wait_for_job(first["job_id"])
            assert job["status"] == "succeeded"
            assert job["duplicates"] == 1

            metrics = await scrape(client)
            assert metrics["aitia_daemon_deduped_total"] == 1
            assert_reconciled(metrics)

        daemon_test(tmp_path, scenario, paused=True)

    def test_pending_result_answers_202(self, tmp_path):
        async def scenario(daemon, client):
            accepted = (await client.submit(artifact_text("SYZ-03"))).json()
            response = await client.request(
                "GET", f"/result/{accepted['digest']}")
            assert response.status == 202
            assert response.json()["status"] == "pending"

        daemon_test(tmp_path, scenario, paused=True)

    def test_priority_header(self, tmp_path):
        async def scenario(daemon, client):
            response = await client.submit(artifact_text("SYZ-04"),
                                           priority=-5)
            job_id = response.json()["job_id"]
            job = (await client.request("GET", f"/job/{job_id}")).json()
            assert job["priority"] == -5

        daemon_test(tmp_path, scenario, paused=True)


class TestBackpressure:
    def test_queue_full_sheds_then_recovers(self, tmp_path):
        async def scenario(daemon, client):
            texts = [artifact_text(f"SYZ-{n:02d}") for n in (1, 2, 3)]
            accepted = []
            for text in texts[:2]:
                response = await client.submit(text)
                assert response.status == 202
                accepted.append(response.json()["job_id"])
            shed = await client.submit(texts[2])
            assert shed.status == 429
            assert shed.json()["error"] == "queue_full"

            # Shed work is lost *by design* — but nothing accepted is:
            # drain the queue and every accepted job completes.
            daemon.paused = False
            for job_id in accepted:
                job = await client.wait_for_job(job_id)
                assert job["status"] == "succeeded"

            # With the queue drained, the shed artifact resubmits fine.
            retry = await client.submit(texts[2])
            assert retry.status == 202
            job = await client.wait_for_job(retry.json()["job_id"])
            assert job["status"] == "succeeded"

            metrics = await scrape(client)
            assert metrics["aitia_daemon_shed_queue_full_total"] == 1
            assert metrics["aitia_daemon_accepted_total"] == 3
            assert metrics["aitia_daemon_completed_total"] == 3
            assert_reconciled(metrics)

        daemon_test(tmp_path, scenario, paused=True, max_depth=2)

    def test_rate_limited_tenant_sheds_others_pass(self, tmp_path):
        async def scenario(daemon, client):
            text = artifact_text("SYZ-05")
            first = await client.submit(text, tenant="noisy")
            assert first.status == 202
            second = await client.submit(text, tenant="noisy")
            assert second.status == 429
            assert second.json()["error"] == "rate_limited"
            # Another tenant has its own bucket; same signature, so the
            # submission folds into the queued job instead of shedding.
            other = await client.submit(text, tenant="quiet")
            assert other.status == 202
            assert other.json()["status"] == "duplicate"

            metrics = await scrape(client)
            assert metrics["aitia_daemon_shed_rate_limited_total"] == 1
            assert metrics['aitia_daemon_tenant_shed{tenant="noisy"}'] == 1
            assert metrics['aitia_daemon_tenant_accepted{tenant="noisy"}'] == 1
            assert_reconciled(metrics)

        daemon_test(tmp_path, scenario, paused=True,
                    tenant_policy=TenantPolicy(rate=0.000001, burst=1.0))

    def test_lifetime_quota(self, tmp_path):
        async def scenario(daemon, client):
            first = await client.submit(artifact_text("SYZ-06"), tenant="t")
            assert first.status == 202
            second = await client.submit(artifact_text("SYZ-07"), tenant="t")
            assert second.status == 429
            assert second.json()["error"] == "quota_exceeded"

        daemon_test(tmp_path, scenario, paused=True,
                    tenant_policy=TenantPolicy(max_accepted=1))


class TestRoutingAndHealth:
    def test_errors_and_health(self, tmp_path):
        async def scenario(daemon, client):
            assert (await client.request("GET", "/nope")).status == 404
            assert (await client.request("GET", "/submit")).status == 405
            assert (await client.request("PUT", "/job/x")).status == 405
            assert (await client.request("GET", "/job/missing")).status == 404
            assert (await client.request(
                "GET", "/result/feedfeedfeedfeed")).status == 404

            bad = await client.request("POST", "/submit", b"not an artifact")
            assert bad.status == 400

            bad_priority = await client.submit(artifact_text("SYZ-08"),
                                               priority=None)
            bad_priority = await client.request(
                "POST", "/submit", artifact_text("SYZ-08").encode(),
                {"X-Priority": "high"})
            assert bad_priority.status == 400

            health = (await client.request("GET", "/healthz")).json()
            assert health["status"] == "ok"
            metrics = await scrape(client)
            assert metrics["aitia_daemon_rejected_total"] == 2
            assert_reconciled(metrics)

        daemon_test(tmp_path, scenario)

    def test_empty_intake_message_matches_batch_verb(self, tmp_path):
        async def scenario(daemon, client):
            health = (await client.request("GET", "/healthz")).json()
            # Nothing submitted yet: the daemon reports the batch verb's
            # "nothing to do" message, one shared behaviour (satellite).
            assert health["message"] == EMPTY_INTAKE_MESSAGE
            await client.submit(artifact_text("SYZ-09"))
            health = (await client.request("GET", "/healthz")).json()
            assert "message" not in health

        daemon_test(tmp_path, scenario, paused=True)

    def test_connection_close_honored(self, tmp_path):
        async def scenario(daemon, client):
            response = await client.request("GET", "/healthz", b"",
                                            {"Connection": "close"})
            assert response.status == 200
            assert response.headers["connection"] == "close"
            # The client transparently reconnects.
            assert (await client.request("GET", "/healthz")).status == 200

        daemon_test(tmp_path, scenario)


class TestRecoveryInProcess:
    def test_journaled_jobs_rerun_after_restart(self, tmp_path):
        data_dir = str(tmp_path / "data")

        async def park(daemon, client):
            for bug in ("SYZ-10", "SYZ-11"):
                assert (await client.submit(artifact_text(bug))).status == 202
            assert daemon.queue.depth == 2

        daemon_test(tmp_path, park, paused=True, data_dir=data_dir)

        async def drain(daemon, client):
            assert len(daemon.queue.recovered) == 2
            await wait_until(lambda: daemon.metrics.count("completed") == 2)
            metrics = await scrape(client)
            assert metrics["aitia_daemon_recovered_total"] == 2
            assert metrics["aitia_daemon_accepted_total"] == 2
            assert metrics["aitia_daemon_in_flight"] == 0
            assert_reconciled(metrics)
            # The recovered work was diagnosed exactly once each.
            assert len(daemon.store) == 2

        daemon_test(tmp_path, drain, data_dir=data_dir)

    def test_completed_but_unmarked_job_not_rediagnosed(self, tmp_path):
        data_dir = str(tmp_path / "data")
        digests = {}

        async def park(daemon, client):
            for bug in ("SYZ-01", "SYZ-02"):
                accepted = (await client.submit(artifact_text(bug))).json()
                digests[bug] = accepted["digest"]

        daemon_test(tmp_path, park, paused=True, data_dir=data_dir)

        # Simulate a crash after the result hit the store but before the
        # journal's "done" record: persist SYZ-01's result by hand.
        from repro.daemon.tiers import ShardedColdStore
        from repro.daemon.queue import DEFAULT_QUEUE_SHARDS  # noqa: F401
        import os
        cold = ShardedColdStore(os.path.join(data_dir, "store"))
        cold.put(digests["SYZ-01"], {"bug_id": "SYZ-01", "row": {}})
        cold.close()

        calls = []

        def counting_diagnoser(payload):
            calls.append(payload["bug_id"])
            return stub_diagnose_job(payload)

        async def drain(daemon, client):
            await wait_until(lambda: daemon.metrics.count("completed") == 2)
            metrics = await scrape(client)
            assert metrics["aitia_daemon_completed_from_store_total"] == 1
            assert_reconciled(metrics)

        daemon_test(tmp_path, drain, data_dir=data_dir,
                    diagnoser=counting_diagnoser)
        # SYZ-01 answered from the store; only SYZ-02 was diagnosed.
        assert calls == ["SYZ-02"]


class TestShutdown:
    def test_stopping_daemon_sheds_with_503(self, tmp_path):
        async def scenario(daemon, client):
            daemon.request_shutdown()
            response = await client.submit(artifact_text("SYZ-12"))
            assert response.status == 503
            metrics_response = await client.request("GET", "/metrics")
            assert metrics_response.status == 200  # reads still served
            metrics = parse_exposition(metrics_response.text)
            assert metrics["aitia_daemon_shed_stopping_total"] == 1
            assert_reconciled(metrics)

        daemon_test(tmp_path, scenario)
