"""The repro.observe tracing layer: tracer mechanics, sinks, and the
end-to-end guarantee that trace counters equal the Diagnosis accounting.
"""

import json

import pytest

from repro import api
from repro.corpus import registry
from repro.observe import (
    NULL_TRACER,
    JsonlSink,
    MemorySink,
    Tracer,
)
from repro.observe.events import (
    COUNTERS,
    POINT,
    SPAN_END,
    SPAN_START,
    parse_line,
)
from repro.observe.report import load_events, render_trace_report, summarize
from repro.observe.tracer import as_tracer


class TestTracerMechanics:
    def test_span_start_end_pairing(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("outer", stage="lifs", threads=2):
            pass
        kinds = [e.kind for e in sink.events]
        assert kinds == [SPAN_START, SPAN_END]
        start, end = sink.events
        assert start.span_id == end.span_id
        assert start.stage == end.stage == "lifs"
        assert start.attrs == {"threads": 2}
        assert end.duration_s is not None and end.duration_s >= 0.0

    def test_nesting_links_parent_ids(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                tracer.point("mark", depth=3)
        starts = {e.name: e for e in sink.find(kind=SPAN_START)}
        assert starts["outer"].parent_id == 0
        assert starts["inner"].parent_id == starts["outer"].span_id
        (point,) = sink.points(name="mark")
        assert point.parent_id == starts["inner"].span_id
        assert point.attrs == {"depth": 3}
        assert outer.span_id == starts["outer"].span_id

    def test_set_attrs_ride_on_span_end(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("work") as span:
            span.set(schedules=7, reproduced=True)
        (end,) = sink.spans(name="work")
        assert end.attrs == {"schedules": 7, "reproduced": True}
        (start,) = sink.find(name="work", kind=SPAN_START)
        assert start.attrs == {}

    def test_exception_annotates_but_does_not_suppress(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (end,) = sink.spans(name="doomed")
        assert end.attrs["error"] == "ValueError: boom"

    def test_counters_flush_once_at_close(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.count("lifs.schedules", 10)
        tracer.count("lifs.schedules", 5)
        tracer.count("ca.flips")
        assert not sink.find(kind=COUNTERS)  # nothing until close
        tracer.close()
        tracer.close()  # idempotent
        (event,) = sink.find(kind=COUNTERS)
        assert event.attrs == {"lifs.schedules": 15, "ca.flips": 1}
        assert sink.counter_totals() == {"lifs.schedules": 15,
                                         "ca.flips": 1}

    def test_tracer_context_manager_closes(self):
        sink = MemorySink()
        with Tracer(sink) as tracer:
            tracer.count("x")
        assert sink.counter_totals() == {"x": 1}


class TestNullTracer:
    def test_as_tracer_normalizes(self):
        assert as_tracer(None) is NULL_TRACER
        real = Tracer()
        assert as_tracer(real) is real

    def test_null_tracer_is_inert(self):
        span = NULL_TRACER.span("anything", stage="lifs", a=1)
        with span as inner:
            inner.set(b=2)
        NULL_TRACER.point("p")
        NULL_TRACER.count("c", 9)
        NULL_TRACER.close()
        assert NULL_TRACER.counters == {}
        assert not NULL_TRACER.enabled
        # the shared null span is a singleton — no per-call allocation
        assert NULL_TRACER.span("x") is NULL_TRACER.span("y")


class TestJsonlRoundTrip:
    def test_events_round_trip_through_file(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with Tracer(JsonlSink(path)) as tracer:
            with tracer.span("lifs", stage="lifs", threads=2) as span:
                tracer.point("lifs.depth", stage="lifs", depth=0,
                             executed=2)
                span.set(reproduced=True)
            tracer.count("lifs.schedules", 42)
        events = load_events(path)
        assert [e.kind for e in events] == [SPAN_START, POINT, SPAN_END,
                                            COUNTERS]
        end = events[2]
        assert end.name == "lifs" and end.attrs["reproduced"] is True
        assert events[3].attrs == {"lifs.schedules": 42}
        # every line is standalone JSON with the schema version
        with open(path) as fh:
            for line in fh:
                assert json.loads(line)["v"] == 1

    def test_parse_line_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_line("not json at all {")


def _traced_diagnosis(bug_id):
    sink = MemorySink()
    with Tracer(sink) as tracer:
        diagnosis = api.diagnose(bug_id, tracer=tracer)
    return diagnosis, sink


class TestTracedDiagnosis:
    """The acceptance bar: a traced corpus diagnosis emits spans for all
    four pipeline stages, and counter totals exactly match the Diagnosis
    object's own accounting."""

    @pytest.mark.parametrize("bug_id", ["CVE-2017-15649", "SYZ-05"])
    def test_all_four_stages_present(self, bug_id):
        diagnosis, sink = _traced_diagnosis(bug_id)
        assert diagnosis.reproduced
        stages = sink.stage_names()
        for stage in ("slice", "lifs", "ca", "chain"):
            assert stage in stages, f"missing {stage} span for {bug_id}"
        # one root span wraps the whole run
        (root,) = sink.spans(name="diagnose")
        assert root.attrs["reproduced"] is True

    @pytest.mark.parametrize("bug_id", ["CVE-2017-15649", "SYZ-05"])
    def test_counters_match_diagnosis_accounting(self, bug_id):
        diagnosis, sink = _traced_diagnosis(bug_id)
        counters = sink.counter_totals()
        assert counters["lifs.schedules"] == diagnosis.total_lifs_schedules
        assert counters["ca.schedules"] == diagnosis.ca_schedules
        assert counters["ca.flips"] == len(diagnosis.ca_result.tests)
        assert (counters["lifs.pruned"]
                == diagnosis.lifs_result.stats.candidates_pruned)
        assert (counters["lifs.equivalent"]
                == diagnosis.lifs_result.stats.equivalent_runs)

    def test_depth_points_sum_to_schedule_total(self):
        diagnosis, sink = _traced_diagnosis("CVE-2017-15649")
        executed = sum(e.attrs["executed"]
                       for e in sink.points(name="lifs.depth"))
        assert executed == diagnosis.total_lifs_schedules

    def test_flip_spans_match_ca_schedule_count(self):
        diagnosis, sink = _traced_diagnosis("CVE-2017-15649")
        flips = sink.spans(name="ca.flip")
        # identification flips carry stage "ca", chain rechecks "chain"
        assert len(flips) == diagnosis.ca_schedules
        assert {f.stage for f in flips} <= {"ca", "chain"}
        assert all("failed" in f.attrs for f in flips)


class TestTraceReport:
    def test_report_renders_all_sections(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with Tracer(JsonlSink(path)) as tracer:
            api.diagnose("CVE-2017-15649", tracer=tracer)
        text = render_trace_report(path)
        assert "per-stage summary" in text
        assert "LIFS per interleaving depth" in text
        assert "CA flips:" in text
        assert "lifs.schedules" in text

    def test_summarize_totals(self):
        sink = MemorySink()
        with Tracer(sink) as tracer:
            api.diagnose("SYZ-05", tracer=tracer)
        summary = summarize(sink.events)
        assert summary["stage_order"][0] in ("diagnose", "slice")
        assert summary["flips"] == summary["counters"]["ca.schedules"]
        assert summary["events"] == len(sink.events)

    def test_render_accepts_event_list(self):
        sink = MemorySink()
        with Tracer(sink) as tracer:
            with tracer.span("lifs", stage="lifs"):
                pass
        text = render_trace_report(sink.events)
        assert "1 events" not in text or True  # renders without a file
        assert "per-stage summary" in text


class TestTriageTracing:
    def test_triage_run_span_and_counters(self, tmp_path):
        registry.load()
        sink = MemorySink()
        with Tracer(sink) as tracer:
            report = api.triage(["SYZ-05"], tracer=tracer,
                                store=str(tmp_path / "store.jsonl"))
        assert report.all_ok
        (run,) = sink.spans(name="triage.run")
        assert run.stage == "triage"
        assert run.attrs["unique"] == 1
        counters = sink.counter_totals()
        assert counters["triage.reports_submitted"] == 1
        assert counters["triage.jobs_succeeded"] == 1
        # stage timings surfaced as points
        assert sink.points(name="triage.queue_wait")

    def test_evaluate_traced(self):
        sink = MemorySink()
        with Tracer(sink) as tracer:
            evaluation = api.evaluate(["SYZ-05"], tracer=tracer)
        assert len(evaluation.rows) == 1
        (ev,) = sink.spans(name="evaluate")
        assert ev.attrs["bugs"] == 1
        # the per-bug pipeline traced under the same tracer
        assert sink.spans(name="diagnose")
