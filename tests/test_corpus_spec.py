"""Unit tests for the corpus Bug infrastructure (spec.py)."""

from repro.corpus.registry import get_bug
from repro.corpus.spec import emit_stat_updates, salt_counters
from repro.kernel.builder import FunctionBuilder
from repro.kernel.threads import ThreadKind
from repro.trace.slicer import Slicer


class TestSaltHelpers:
    def test_salt_counters_are_distinct(self):
        names = salt_counters("pkt", 5)
        assert len(set(names)) == 5
        assert all(n.startswith("pkt_stat") for n in names)

    def test_emit_stat_updates_emits_incs(self):
        fb = FunctionBuilder("f")
        emit_stat_updates(fb, ["c1", "c2"], prefix="A", reps=3)
        assert len(fb._instructions) == 6
        labels = {i.label for i in fb._instructions}
        assert "A_stat0_0" in labels and "A_stat2_1" in labels


class TestKnownFailingSchedule:
    def test_labels_resolve_to_addresses(self):
        bug = get_bug("CVE-2017-15649")
        schedule = bug.known_failing_schedule
        assert len(schedule.preemptions) == 2
        for p in schedule.preemptions:
            instr = bug.image.instruction_at(p.instr_addr)
            assert instr.label == p.instr_label

    def test_start_order_defaults_to_thread_order(self):
        bug = get_bug("SYZ-05")
        assert bug.known_failing_schedule.start_order == ("A",)


class TestHistorySynthesis:
    def test_setup_events_precede_racing_group(self):
        bug = get_bug("CVE-2017-15649")
        history = bug.history()
        setup = [e for e in history.syscalls if e.is_setup]
        racing = [e for e in history.syscalls
                  if e.proc in {"A", "B"} and not e.is_setup]
        assert setup and racing
        assert max(e.end for e in setup) < min(e.start for e in racing)

    def test_decoys_present(self):
        bug = get_bug("CVE-2017-15649")
        procs = {e.proc for e in bug.history().syscalls}
        assert "C" in procs  # decoy caller

    def test_kthread_notes_become_invocations(self):
        bug = get_bug("SYZ-04")
        invocations = bug.history().kthread_invocations
        assert len(invocations) == 1
        assert invocations[0].func == "irqfd_shutdown"

    def test_concurrent_decoy_group_ranks_before_racing_slice(self):
        bug = get_bug("SYZ-07")
        slices = Slicer(bug.history()).slices()
        assert len(slices) >= 2
        first_procs = {e.proc for e in slices[0].syscall_events}
        assert first_procs == {"D", "E"}  # the innocuous pair

    def test_irq_thread_not_a_syscall_event(self):
        bug = get_bug("EXT-IRQ-01")
        history = bug.history()
        assert all(e.proc != "irq0" for e in history.syscalls)
        assert any(e.kind is ThreadKind.IRQ
                   for e in history.kthread_invocations)


class TestSliceFactories:
    def _racing_slice(self, bug):
        slices = Slicer(bug.history()).slices()
        racing_procs = {t.proc for t in bug.threads
                        if t.kind is ThreadKind.SYSCALL}
        for s in slices:
            if {e.proc for e in s.syscall_events} == racing_procs:
                return s
        raise AssertionError("racing slice not found")

    def test_factory_rebuilds_canonical_threads(self):
        bug = get_bug("CVE-2017-15649")
        s = self._racing_slice(bug)
        machine = bug.factory_for_slice(s)()
        names = {t.name for t in machine.threads if not t.done}
        assert names == {"A", "B"}

    def test_setup_replayed_in_slice_machine(self):
        bug = get_bug("CVE-2017-15649")
        s = self._racing_slice(bug)
        machine = bug.factory_for_slice(s)()
        running = machine.memory.load(
            machine.memory.global_addr("po_running"))
        assert running == 1  # packet_create ran

    def test_irq_context_included_in_slice(self):
        bug = get_bug("EXT-IRQ-01")
        s = self._racing_slice(bug)
        machine = bug.factory_for_slice(s)()
        assert machine.thread("irq0").kind is ThreadKind.IRQ
        assert "irq0" in bug.slice_thread_names(s)


class TestMetadata:
    def test_repr(self):
        bug = get_bug("FIG-1")
        assert "FIG-1" in repr(bug)

    def test_image_is_cached(self):
        bug = get_bug("FIG-1")
        assert bug.image is bug.image
