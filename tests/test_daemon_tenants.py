"""Tests for per-tenant admission control (buckets, quotas)."""

from repro.daemon.tenants import (
    DEFAULT_TENANT,
    TenantPolicy,
    TenantTable,
    TokenBucket,
)


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        assert bucket.take(now=0.0)
        assert bucket.take(now=0.0)
        assert not bucket.take(now=0.0)     # burst exhausted
        assert not bucket.take(now=0.5)     # half a token refilled
        assert bucket.take(now=1.6)         # > 1 token again

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        assert bucket.take(now=0.0)
        # A long idle period must not bank more than the burst.
        assert bucket.take(now=100.0)
        assert bucket.take(now=100.0)
        assert not bucket.take(now=100.0)

    def test_zero_rate_always_grants(self):
        bucket = TokenBucket(rate=0.0, burst=1.0)
        for _ in range(100):
            assert bucket.take(now=0.0)


class TestTenantTable:
    def test_default_policy_admits_everything(self):
        table = TenantTable()
        for _ in range(50):
            admitted, reason = table.admit("t")
            assert admitted and reason == ""

    def test_missing_tenant_name_maps_to_anon(self):
        table = TenantTable()
        table.note_accepted("")
        assert table.snapshot()[DEFAULT_TENANT]["accepted"] == 1

    def test_rate_limit_is_per_tenant(self):
        table = TenantTable(TenantPolicy(rate=1.0, burst=1.0))
        assert table.admit("a", now=0.0) == (True, "")
        assert table.admit("a", now=0.0) == (False, "rate_limited")
        # Tenant b has its own bucket.
        assert table.admit("b", now=0.0) == (True, "")

    def test_queued_bound(self):
        table = TenantTable(TenantPolicy(max_queued=2))
        table.note_accepted("a")
        table.note_accepted("a")
        assert table.admit("a") == (False, "tenant_queue_full")
        table.note_done("a")
        assert table.admit("a") == (True, "")

    def test_lifetime_quota(self):
        table = TenantTable(TenantPolicy(max_accepted=1))
        assert table.admit("a") == (True, "")
        table.note_accepted("a")
        assert table.admit("a") == (False, "quota_exceeded")
        # Completion does not restore a lifetime quota.
        table.note_done("a")
        assert table.admit("a") == (False, "quota_exceeded")

    def test_denials_count_as_shed(self):
        table = TenantTable(TenantPolicy(max_accepted=0))
        table.admit("a")
        table.admit("a")
        table.note_shed("a")  # the server's queue-full path
        assert table.snapshot()["a"]["shed"] == 3

    def test_snapshot_accounting(self):
        table = TenantTable()
        table.note_accepted("a")
        table.note_accepted("a")
        table.note_done("a")
        snap = table.snapshot()["a"]
        assert snap == {"accepted": 2, "shed": 0, "queued": 1,
                        "completed": 1}
