"""Property-based tests: chain construction invariants."""

from dataclasses import dataclass
from typing import Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chain import build_chain
from repro.core.races import DataRace
from repro.kernel.access import AccessKind, MemoryAccess
from repro.kernel.failures import Failure, FailureKind

FAILURE = Failure(FailureKind.GPF, instr_label="X")


@dataclass
class _Unit:
    uid: int
    races: Tuple
    last_seq: int


def _unit(uid):
    a = MemoryAccess(seq=2 * uid + 1, thread="A", instr_addr=0x100 + uid * 8,
                     instr_label=f"A{uid}", func="f", data_addr=64,
                     kind=AccessKind.WRITE, occurrence=1)
    b = MemoryAccess(seq=2 * uid + 2, thread="B", instr_addr=0x200 + uid * 8,
                     instr_label=f"B{uid}", func="f", data_addr=64,
                     kind=AccessKind.READ, occurrence=1)
    return _Unit(uid=uid, races=(DataRace(first=a, second=b),),
                 last_seq=2 * uid + 2)


@st.composite
def unit_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    units = [_unit(i) for i in range(n)]
    edges = {}
    for i in range(n):
        targets = draw(st.sets(st.integers(0, n - 1), max_size=n))
        targets.discard(i)
        if targets:
            edges[i] = targets
    return units, edges


@given(unit_graphs())
@settings(max_examples=100, deadline=None)
def test_nodes_partition_all_races(graph):
    units, edges = graph
    chain = build_chain(units, edges, FAILURE)
    chain_race_keys = sorted(r.key for r in chain.races)
    unit_race_keys = sorted(r.key for u in units for r in u.races)
    assert chain_race_keys == unit_race_keys


@given(unit_graphs())
@settings(max_examples=100, deadline=None)
def test_edges_form_a_dag(graph):
    units, edges = graph
    chain = build_chain(units, edges, FAILURE)
    # Kahn over the node edges must consume every node (no cycles survive
    # SCC contraction).
    n = len(chain.nodes)
    in_degree = {i: 0 for i in range(n)}
    for _, j in chain.edges:
        in_degree[j] += 1
    ready = [i for i, d in in_degree.items() if d == 0]
    seen = 0
    while ready:
        i = ready.pop()
        seen += 1
        for (a, b) in chain.edges:
            if a == i:
                in_degree[b] -= 1
                if in_degree[b] == 0:
                    ready.append(b)
    assert seen == n


@given(unit_graphs())
@settings(max_examples=100, deadline=None)
def test_transitive_reduction_holds(graph):
    units, edges = graph
    chain = build_chain(units, edges, FAILURE)
    edge_set = set(chain.edges)

    def reachable_without(frm, to, skip):
        work, seen = [frm], {frm}
        while work:
            cur = work.pop()
            for (i, j) in edge_set:
                if (i, j) == skip or i != cur or j in seen:
                    continue
                if j == to:
                    return True
                seen.add(j)
                work.append(j)
        return False

    for edge in edge_set:
        assert not reachable_without(edge[0], edge[1], edge)


@given(unit_graphs())
@settings(max_examples=60, deadline=None)
def test_render_is_total(graph):
    units, edges = graph
    chain = build_chain(units, edges, FAILURE)
    rendered = chain.render()
    assert rendered.endswith(FAILURE.kind.value)
    for node in chain.nodes:
        assert str(node.races[0]) in rendered
