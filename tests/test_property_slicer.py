"""Property-based tests: slicing invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.events import SyscallEvent
from repro.trace.history import ExecutionHistory
from repro.trace.slicer import MAX_THREADS_PER_SLICE, Slicer


@st.composite
def histories(draw):
    n = draw(st.integers(min_value=0, max_value=12))
    history = ExecutionHistory()
    for i in range(n):
        history.add(SyscallEvent(
            timestamp=float(draw(st.integers(0, 30))),
            proc=f"p{i}", name="call", entry="entry",
            fd=draw(st.one_of(st.none(), st.integers(3, 5))),
            duration=float(draw(st.integers(1, 5))),
            is_setup=draw(st.booleans())))
    if draw(st.booleans()):
        history.failure_time = float(draw(st.integers(0, 40)))
    return history


@given(histories())
@settings(max_examples=100, deadline=None)
def test_slices_never_exceed_thread_cap(history):
    for s in Slicer(history).slices():
        assert 1 < s.thread_count <= MAX_THREADS_PER_SLICE


@given(histories())
@settings(max_examples=100, deadline=None)
def test_slices_are_rank_ordered_backward_from_failure(history):
    slices = Slicer(history).slices()
    assert [s.rank for s in slices] == list(range(len(slices)))
    ends = [max(e.end for e in s.concurrent) for s in slices]
    # Within maximal groups ranks go backward in time; sub-slices of the
    # same group share the group's window, so ends are non-increasing up
    # to the group granularity.
    group_ends = []
    for s, end in zip(slices, ends):
        if not group_ends or end != group_ends[-1]:
            group_ends.append(end)
    assert group_ends == sorted(group_ends, reverse=True)


@given(histories())
@settings(max_examples=100, deadline=None)
def test_slice_events_started_before_failure(history):
    for s in Slicer(history).slices():
        if history.failure_time is None:
            continue
        for event in s.concurrent:
            assert event.start <= history.failure_time


@given(histories())
@settings(max_examples=100, deadline=None)
def test_concurrent_groups_are_chained_overlaps(history):
    """Every maximal group's events form one connected overlap interval.
    (Sub-slices of an oversized group may connect *through* a dropped
    event, so only the maximal groups carry this invariant.)"""
    for group in Slicer(history).concurrent_groups():
        events = sorted(group, key=lambda e: e.start)
        window_end = events[0].end
        for event in events[1:]:
            assert event.start < window_end
            window_end = max(window_end, event.end)


@given(histories())
@settings(max_examples=100, deadline=None)
def test_setup_closure_only_pulls_matching_fds(history):
    for s in Slicer(history).slices():
        slice_fds = {e.fd for e in s.syscall_events if e.fd is not None}
        for setup_event in s.setup:
            assert setup_event.is_setup
            assert setup_event.fd in slice_fds


# ----------------------------------------------------------------------
# ftrace round-trip over generated histories
# ----------------------------------------------------------------------
from repro.kernel.threads import ThreadKind
from repro.trace.events import KthreadInvocation
from repro.trace.ftrace import parse_ftrace, render_ftrace

_names = st.text(alphabet="abcdefgh_0123456789", min_size=1, max_size=8)


@st.composite
def rich_histories(draw):
    history = ExecutionHistory()
    n = draw(st.integers(0, 8))
    for i in range(n):
        if draw(st.booleans()):
            history.add(SyscallEvent(
                timestamp=float(draw(st.integers(0, 50))),
                proc=f"p{i}", name=draw(_names), entry=draw(_names),
                fd=draw(st.one_of(st.none(), st.integers(0, 9))),
                duration=float(draw(st.integers(1, 9))),
                is_setup=draw(st.booleans())))
        else:
            history.add(KthreadInvocation(
                timestamp=float(draw(st.integers(0, 50))),
                kind=draw(st.sampled_from(list(ThreadKind))),
                func=draw(_names), source_proc=f"p{i}",
                source_syscall=draw(st.one_of(st.just(""), _names)),
                duration=float(draw(st.integers(1, 9)))))
    if draw(st.booleans()):
        history.failure_time = float(draw(st.integers(0, 60)))
    return history


@given(rich_histories())
@settings(max_examples=100, deadline=None)
def test_ftrace_round_trips_any_history(history):
    parsed = parse_ftrace(render_ftrace(history))
    assert len(parsed) == len(history)
    assert parsed.failure_time == history.failure_time
    for original, back in zip(history.events, parsed.events):
        assert type(original) is type(back)
        assert original.timestamp == back.timestamp
        assert original.duration == back.duration
        if isinstance(original, SyscallEvent):
            assert original.proc == back.proc
            assert original.name == back.name
            assert original.entry == back.entry
            assert original.fd == back.fd
            assert original.is_setup == back.is_setup
        else:
            assert original.kind is back.kind
            assert original.func == back.func
            assert original.source_syscall == back.source_syscall
