"""Property-based tests: O(dirty) snapshots and generation-cached keys.

The memory subsystem captures structurally-shared images (parent
pointer + dirty overlay) and restores by replaying undo deltas.  These
properties pin the contract the fast path must keep:

* snapshot -> mutate -> restore round-trips to exactly the state a full
  deep copy would have restored;
* interleaved captures are independent generations — restoring any one
  of them reproduces precisely the state it captured, in any order;
* a captured machine's :func:`snapshot_state_key` always equals the
  live :func:`machine_state_key`, across arbitrary step interleavings,
  and survives restore.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.builder import ProgramBuilder
from repro.kernel.machine import KernelMachine, ThreadSpec
from repro.kernel.memory import Memory
from repro.kernel.snapshot import (
    machine_state_key,
    restore_machine,
    snapshot_machine,
    snapshot_state_key,
)

GLOBALS = ("g0", "g1", "g2")

#: One mutation against a Memory: allocs, slot stores (object or
#: global), frees and loads, all index-based so any sequence is valid.
_mem_op = st.one_of(
    st.tuples(st.just("alloc"), st.integers(8, 64)),
    st.tuples(st.just("store"), st.integers(0, 7), st.integers(0, 7),
              st.integers(0, 100)),
    st.tuples(st.just("store_global"), st.integers(0, 2),
              st.integers(0, 100)),
    st.tuples(st.just("free"), st.integers(0, 7)),
    st.tuples(st.just("load"), st.integers(0, 7), st.integers(0, 7)),
)

mem_ops = st.lists(_mem_op, max_size=24)


def _fresh_memory():
    return Memory(globals_init={g: 0 for g in GLOBALS})


def _apply(mem, ops, live):
    """Interpret an op list; ``live`` tracks (base, size) of unfreed
    objects so every op is always legal (no faults)."""
    for op in ops:
        kind = op[0]
        if kind == "alloc":
            base = mem.alloc(op[1], f"obj{op[1]}")
            live.append((base, op[1]))
        elif kind == "store" and live:
            base, size = live[op[1] % len(live)]
            mem.store(base + (op[2] % (size // 8)) * 8, op[3])
        elif kind == "store_global":
            mem.store(mem.global_addr(GLOBALS[op[1]]), op[2])
        elif kind == "free" and live:
            base, _ = live.pop(op[1] % len(live))
            mem.free(base, site=f"F{base:x}")
        elif kind == "load" and live:
            base, size = live[op[1] % len(live)]
            mem.load(base + (op[2] % (size // 8)) * 8)


def _flat_copy(mem):
    return (dict(mem._cells), dict(mem._objects), dict(mem._globals),
            mem._next_global, mem._next_heap)


def _assert_matches_flat(mem, flat):
    cells, objects, globals_map, next_global, next_heap = flat
    assert mem._cells == cells
    assert mem._objects == objects
    assert mem._globals == globals_map
    assert mem._next_global == next_global
    assert mem._next_heap == next_heap


@given(mem_ops, mem_ops)
@settings(max_examples=80, deadline=None)
def test_snapshot_mutate_restore_equals_full_copy(prefix, suffix):
    mem = _fresh_memory()
    live = []
    _apply(mem, prefix, live)
    flat = _flat_copy(mem)
    key = mem.state_key_parts()
    snap = mem.snapshot()

    _apply(mem, suffix, list(live))
    mem.restore(snap)

    _assert_matches_flat(mem, flat)
    assert mem.state_key_parts() == key
    # The restored state is fully usable: the same mutations produce
    # the same result as they did the first time.
    _apply(mem, suffix, list(live))
    after = mem.state_key_parts()
    mem.restore(snap)
    _apply(mem, suffix, list(live))
    assert mem.state_key_parts() == after


@given(st.lists(mem_ops, min_size=2, max_size=4), st.randoms())
@settings(max_examples=60, deadline=None)
def test_interleaved_captures_are_independent(segments, rng):
    mem = _fresh_memory()
    live = []
    generations = []
    for ops in segments:
        _apply(mem, ops, live)
        generations.append((mem.snapshot(), _flat_copy(mem),
                            mem.state_key_parts()))
    # Restoring any captured generation — in any order, repeatedly —
    # reproduces exactly the state it captured.
    picks = list(range(len(generations))) * 2
    rng.shuffle(picks)
    for i in picks:
        snap, flat, key = generations[i]
        mem.restore(snap)
        _assert_matches_flat(mem, flat)
        assert mem.state_key_parts() == key


_statement = st.one_of(
    st.tuples(st.just("inc"), st.sampled_from(GLOBALS),
              st.integers(-3, 3)),
    st.tuples(st.just("store"), st.sampled_from(GLOBALS),
              st.integers(0, 100)),
    st.tuples(st.just("load"), st.sampled_from(("r0", "r1")),
              st.sampled_from(GLOBALS)),
    st.tuples(st.just("alloc"),),
    st.tuples(st.just("nop"),),
)


def _build(per_thread):
    b = ProgramBuilder()
    for t, statements in enumerate(per_thread):
        with b.function(f"f{t}") as f:
            for i, stmt in enumerate(statements):
                op = stmt[0]
                if op == "inc":
                    f.inc(f.g(stmt[1]), stmt[2], label=f"t{t}s{i}")
                elif op == "store":
                    f.store(f.g(stmt[1]), stmt[2], label=f"t{t}s{i}")
                elif op == "load":
                    f.load(stmt[1], f.g(stmt[2]), label=f"t{t}s{i}")
                elif op == "alloc":
                    f.alloc("r0", 16, f"t{t}o{i}", label=f"t{t}s{i}")
                else:
                    f.nop(label=f"t{t}s{i}")
    return b.build()


@given(st.lists(st.lists(_statement, min_size=1, max_size=8),
                min_size=2, max_size=3),
       st.lists(st.integers(0, 2), max_size=30),
       st.integers(0, 29))
@settings(max_examples=60, deadline=None)
def test_snapshot_key_equals_live_key_across_steps(per_thread, choices,
                                                   capture_at):
    image = _build(per_thread)
    specs = [ThreadSpec(f"T{t}", f"f{t}") for t in range(len(per_thread))]
    m = KernelMachine(image, specs,
                      globals_init={g: 0 for g in GLOBALS})
    captured = None
    for step, choice in enumerate(choices):
        runnable = [t for t in m.threads if t.runnable]
        if m.halted or not runnable:
            break
        m.step(runnable[choice % len(runnable)].name)
        assert snapshot_state_key(snapshot_machine(m)) == \
            machine_state_key(m)
        if step == capture_at:
            captured = (snapshot_machine(m), machine_state_key(m))
    if captured is not None:
        snap, key = captured
        assert snapshot_state_key(snap) == key
        restore_machine(m, snap)
        assert machine_state_key(m) == key
        assert snapshot_state_key(snapshot_machine(m)) == key
