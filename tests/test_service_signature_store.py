"""Tests for crash signatures and the content-addressed result store."""

import json

from repro.corpus.registry import get_bug
from repro.kernel.failures import CrashReport, Failure, FailureKind
from repro.service.signature import (
    CrashSignature,
    call_trace_frames,
    signature_of,
    signature_of_text,
)
from repro.service.store import ResultStore
from repro.trace.crash import render_crash_report
from repro.trace.syzkaller import run_bug_finder


def _report(kind=FailureKind.KASAN_UAF, label="A3", log=None):
    failure = Failure(kind=kind, thread="A", instr_label=label,
                     message="use-after-free write")
    if log is None:
        log = "Call trace:\n  A: irqfd_assign+A2\n  B: irqfd_shutdown+B1"
    return CrashReport(failure=failure, kernel_log=log)


class TestCallTraceFrames:
    def test_frames_drop_process_names(self):
        frames = call_trace_frames(
            "Call trace:\n  A: f+A2\n  kworker: g+K1")
        assert frames == ["f+A2", "g+K1"]

    def test_no_call_trace_section(self):
        assert call_trace_frames("some other log text") == []

    def test_empty_log(self):
        assert call_trace_frames("") == []

    def test_trace_block_ends_at_unindented_line(self):
        log = "Call trace:\n  A: f+A2\nnot a frame\n  B: g+B1"
        assert call_trace_frames(log) == ["f+A2"]


class TestSignature:
    def test_same_crash_same_digest(self):
        assert signature_of(_report()).digest == signature_of(_report()).digest

    def test_process_name_does_not_matter(self):
        a = _report(log="Call trace:\n  A: f+A2")
        b = _report(log="Call trace:\n  C: f+A2")
        assert signature_of(a).digest == signature_of(b).digest

    def test_kind_location_and_frames_all_matter(self):
        base = signature_of(_report())
        assert signature_of(_report(kind=FailureKind.GPF)).digest != base.digest
        assert signature_of(_report(label="B9")).digest != base.digest
        other_trace = _report(log="Call trace:\n  A: other+X1")
        assert signature_of(other_trace).digest != base.digest

    def test_signature_of_text_matches_structured(self):
        report = run_bug_finder(get_bug("SYZ-04")).crash
        from_text = signature_of_text(render_crash_report(report))
        assert from_text == signature_of(report)

    def test_describe_and_digest_shape(self):
        sig = signature_of(_report())
        assert len(sig.digest) == 16
        assert int(sig.digest, 16) >= 0  # hex
        assert sig.digest in sig.describe()
        assert isinstance(sig, CrashSignature)


class TestResultStore:
    def test_memory_only_roundtrip(self):
        store = ResultStore()
        assert "d1" not in store
        store.put("d1", {"chain": "A -> B"})
        assert store.get("d1") == {"chain": "A -> B"}
        assert len(store) == 1

    def test_persists_and_reloads(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        ResultStore(path).put("d1", {"chain": "A -> B"})
        reloaded = ResultStore(path)
        assert reloaded.get("d1") == {"chain": "A -> B"}

    def test_last_record_wins(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = ResultStore(path)
        store.put("d1", {"v": 1})
        store.put("d1", {"v": 2})
        assert ResultStore(path).get("d1") == {"v": 2}

    def test_corrupt_lines_skipped(self, tmp_path):
        path = tmp_path / "store.jsonl"
        good = json.dumps({"digest": "d1", "record": {"ok": True}})
        path.write_text(f"{good}\nnot json at all\n{{\"digest\": \"x\"}}\n")
        store = ResultStore(str(path))
        assert store.get("d1") == {"ok": True}
        assert store.skipped_lines == 2

    def test_torn_final_line_survives_append(self, tmp_path):
        path = tmp_path / "store.jsonl"
        good = json.dumps({"digest": "d1", "record": {}})
        path.write_text(good + "\n" + '{"digest": "d2", "rec')  # torn write
        store = ResultStore(str(path))
        store.put("d3", {})
        assert set(ResultStore(str(path)).digests()) == {"d1", "d3"}

    def test_compact_rewrites_one_line_per_digest(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = ResultStore(path)
        for v in range(3):
            store.put("d1", {"v": v})
        store.put("d2", {"v": 9})
        store.compact()
        lines = [l for l in open(path).read().splitlines() if l.strip()]
        assert len(lines) == 2
        assert ResultStore(path).get("d1") == {"v": 2}

    def test_creates_parent_directory(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "store.jsonl")
        ResultStore(path).put("d1", {})
        assert ResultStore(path).get("d1") == {}


class TestRecordsIteration:
    """``records()`` streams every (digest, record) pair through the
    offset index — one seek each, no full-file rescan."""

    def test_memory_store_yields_all_pairs(self):
        store = ResultStore()
        store.put("d1", {"v": 1})
        store.put("d2", {"v": 2})
        assert dict(store.records()) == {"d1": {"v": 1}, "d2": {"v": 2}}

    def test_file_store_yields_all_pairs(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = ResultStore(path)
        for n in range(10):
            store.put(f"d{n}", {"n": n})
        pairs = dict(ResultStore(path).records())
        assert pairs == {f"d{n}": {"n": n} for n in range(10)}

    def test_latest_record_wins_per_digest(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = ResultStore(path)
        store.put("d1", {"v": 1})
        store.put("d1", {"v": 2})
        store.put("d2", {"v": 9})
        assert dict(ResultStore(path).records()) == {"d1": {"v": 2},
                                                     "d2": {"v": 9}}

    def test_records_and_digests_agree(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = ResultStore(path)
        for n in range(5):
            store.put(f"d{n}", {"n": n})
        assert [d for d, _ in store.records()] == list(store.digests())

    def test_iteration_keeps_lazy_contract(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = ResultStore(path)
        for n in range(5):
            store.put(f"d{n}", {"n": n})
        reopened = ResultStore(path)
        assert len(list(reopened.records())) == 5
        assert reopened._records == {}  # nothing cached in memory

    def test_empty_store_yields_nothing(self, tmp_path):
        assert list(ResultStore().records()) == []
        path = str(tmp_path / "store.jsonl")
        ResultStore(path).put("d1", {})
        empty = ResultStore(str(tmp_path / "other.jsonl"))
        assert list(empty.records()) == []


class TestOffsetIndex:
    """File-backed stores read through a digest → (offset, length)
    index — one seek per get, no records held in memory."""

    def test_index_maps_every_digest_to_its_line(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = ResultStore(path)
        for n in range(20):
            store.put(f"d{n}", {"n": n})
        reopened = ResultStore(path)
        assert len(reopened._index) == 20
        raw = open(path, "rb").read()
        for digest, (offset, length) in reopened._index.items():
            line = json.loads(raw[offset:offset + length])
            assert line["digest"] == digest

    def test_get_does_not_load_other_records(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = ResultStore(path)
        for n in range(5):
            store.put(f"d{n}", {"n": n})
        reopened = ResultStore(path)
        assert reopened.get("d3") == {"n": 3}
        assert reopened._records == {}  # nothing cached in memory

    def test_append_after_reopen_extends_index(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        ResultStore(path).put("d1", {"v": 1})
        reopened = ResultStore(path)
        reopened.put("d2", {"v": 2})
        assert reopened.get("d1") == {"v": 1}
        assert reopened.get("d2") == {"v": 2}
        assert set(ResultStore(path).digests()) == {"d1", "d2"}

    def test_reput_points_index_at_latest_line(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = ResultStore(path)
        store.put("d1", {"v": 1})
        store.put("d1", {"v": 2})
        assert store.get("d1") == {"v": 2}  # same handle, updated index
        assert len(store) == 1

    def test_close_releases_reader_and_store_stays_usable(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = ResultStore(path)
        store.put("d1", {"v": 1})
        assert store.get("d1") == {"v": 1}
        store.close()
        assert store._reader is None
        assert store.get("d1") == {"v": 1}  # reopens on demand

    def test_compact_rebuilds_the_index(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = ResultStore(path)
        for _ in range(4):
            store.put("d1", {"v": 1})
        store.put("d2", {"v": 2})
        store.compact()
        assert store.get("d1") == {"v": 1}
        assert store.get("d2") == {"v": 2}
        size = (tmp_path / "store.jsonl").stat().st_size
        offsets = [off for off, _ in store._index.values()]
        lengths = [length for _, length in store._index.values()]
        assert sorted(offsets) == offsets and sum(lengths) == size
