"""Tests for the vector-clock happens-before analysis."""

import pytest

from repro.core.happens_before import (
    VectorClock,
    compute_happens_before,
    find_data_races_hb,
)
from repro.core.races import find_data_races
from repro.hypervisor.controller import ScheduleController, serial_schedule
from repro.core.schedule import Schedule
from repro.kernel.builder import ProgramBuilder
from repro.kernel.machine import KernelMachine, ThreadSpec

from helpers import fig2_machine


class TestVectorClock:
    def test_tick_advances_own_component(self):
        clock = VectorClock().tick("A").tick("A").tick("B")
        assert clock.get("A") == 2
        assert clock.get("B") == 1
        assert clock.get("C") == 0

    def test_join_is_pointwise_max(self):
        a = VectorClock.of({"A": 3, "B": 1})
        b = VectorClock.of({"B": 5, "C": 2})
        joined = a.join(b)
        assert joined.as_dict() == {"A": 3, "B": 5, "C": 2}

    def test_leq(self):
        small = VectorClock.of({"A": 1})
        big = VectorClock.of({"A": 2, "B": 1})
        assert small.leq(big)
        assert not big.leq(small)

    def test_concurrent_clocks_not_ordered(self):
        a = VectorClock.of({"A": 2, "B": 0})
        b = VectorClock.of({"A": 1, "B": 3})
        assert not a.leq(b) and not b.leq(a)


def _run_serial(order=("A", "B")):
    m = fig2_machine()
    return m, ScheduleController(m, serial_schedule(order)).run()


class TestHappensBefore:
    def test_program_order(self):
        m, run = _run_serial()
        index = compute_happens_before(run.trace, m.image,
                                       run.spawn_events)
        a_seqs = [t.seq for t in run.trace if t.thread == "A"]
        assert index.happens_before(a_seqs[0], a_seqs[-1])
        assert not index.happens_before(a_seqs[-1], a_seqs[0])

    def test_unsynchronized_threads_are_concurrent(self):
        m, run = _run_serial()
        index = compute_happens_before(run.trace, m.image,
                                       run.spawn_events)
        a_seq = next(t.seq for t in run.trace if t.thread == "A")
        b_seq = next(t.seq for t in run.trace if t.thread == "B")
        assert index.concurrent(a_seq, b_seq)

    def test_lock_handoff_orders_sections(self):
        b = ProgramBuilder()
        with b.function("a") as f:
            f.lock("L")
            f.store(f.g("x"), 1, label="A1")
            f.unlock("L")
        with b.function("bb") as f:
            f.lock("L")
            f.load("v", f.g("x"), label="B1")
            f.unlock("L")
        image = b.build()
        m = KernelMachine(image, [ThreadSpec("A", "a"),
                                  ThreadSpec("B", "bb")])
        run = ScheduleController(m, serial_schedule(["A", "B"])).run()
        index = compute_happens_before(run.trace, image, run.spawn_events)
        a1 = next(t.seq for t in run.trace if t.instr_label == "A1")
        b1 = next(t.seq for t in run.trace if t.instr_label == "B1")
        # A released L before B acquired it: A1 happens-before B1.
        assert index.happens_before(a1, b1)
        assert not index.concurrent(a1, b1)

    def test_spawn_edge_orders_parent_prefix_before_child(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.store(f.g("x"), 1, label="M1")
            f.queue_work("work", label="M2")
            f.store(f.g("y"), 1, label="M3")
        with b.function("work") as f:
            f.load("v", f.g("x"), label="W1")
        image = b.build()
        m = KernelMachine(image, [ThreadSpec("T", "main")])
        run = ScheduleController(m, serial_schedule(["T"])).run()
        index = compute_happens_before(run.trace, image, run.spawn_events)
        m1 = next(t.seq for t in run.trace if t.instr_label == "M1")
        w1 = next(t.seq for t in run.trace if t.instr_label == "W1")
        assert index.happens_before(m1, w1)

    def test_unknown_seq_raises(self):
        m, run = _run_serial()
        index = compute_happens_before(run.trace, m.image, ())
        with pytest.raises(KeyError):
            index.happens_before(10**9, 1)


class TestHbRaces:
    def test_hb_races_subset_of_lockset_races(self):
        m, run = _run_serial()
        lockset = {r.key for r in find_data_races(run.accesses)}
        hb = {r.key for r in find_data_races_hb(
            run.accesses, run.trace, m.image, run.spawn_events)}
        assert hb <= lockset

    def test_lock_handoff_pair_excluded_by_hb(self):
        """A pair ordered only through a third variable's lock chain is
        a lockset race but not an HB race."""
        b = ProgramBuilder()
        with b.function("a") as f:
            f.store(f.g("x"), 1, label="A1")  # no lock held
            f.lock("L")
            f.store(f.g("token"), 1, label="A2")
            f.unlock("L")
        with b.function("bb") as f:
            f.lock("L")
            f.load("t", f.g("token"), label="B1")
            f.unlock("L")
            f.load("v", f.g("x"), label="B2")  # no lock held
        image = b.build()
        m = KernelMachine(image, [ThreadSpec("A", "a"),
                                  ThreadSpec("B", "bb")])
        run = ScheduleController(m, serial_schedule(["A", "B"])).run()
        lockset = {str(r) for r in find_data_races(run.accesses)}
        hb = {str(r) for r in find_data_races_hb(
            run.accesses, run.trace, image, run.spawn_events)}
        # A1 => B2 is ordered transitively through the L hand-off.
        assert "A1 => B2" in lockset
        assert "A1 => B2" not in hb

    def test_spawn_ordered_pair_excluded_by_hb(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.store(f.g("x"), 1, label="M1")
            f.queue_work("work", label="M2")
        with b.function("work") as f:
            f.load("v", f.g("x"), label="W1")
        image = b.build()
        m = KernelMachine(image, [ThreadSpec("T", "main")])
        run = ScheduleController(m, serial_schedule(["T"])).run()
        lockset = {str(r) for r in find_data_races(run.accesses)}
        hb = {str(r) for r in find_data_races_hb(
            run.accesses, run.trace, image, run.spawn_events)}
        assert "M1 => W1" in lockset  # lockset cannot see the spawn edge
        assert "M1 => W1" not in hb

    def test_fig2_failure_races_survive_hb(self):
        """The real races of the Figure 2 failure are genuinely
        concurrent: happens-before must keep all of them."""
        from helpers import run_thread, run_until
        m = fig2_machine()
        run_until(m, "A", "A6")
        run_until(m, "B", "B12")
        run_until(m, "A", "A12")
        run_thread(m, "B")
        hb = {str(r) for r in find_data_races_hb(
            m.access_log, m.trace, m.image, m.spawn_events)}
        assert {"A2 => B11", "B2 => A6", "A6 => B12"} <= hb
