"""Smoke tests: every example script must run end-to-end and produce the
output it promises."""

import pathlib
import subprocess
import sys

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = _run("quickstart.py")
    assert "AITIA diagnosis: FIG-1" in out
    assert "chain:" in out


def test_cve_walkthrough():
    out = _run("diagnose_cve_2017_15649.py")
    assert "LIFS: reproduced" in out
    assert "B2 => A6" in out
    assert "Causality chain" in out


def test_syzkaller_pipeline():
    out = _run("syzkaller_pipeline.py")
    assert "bug finder report" in out
    assert "slices, backward from the failure" in out
    assert "K1 => A2" in out


def test_authoring_new_bugs():
    out = _run("authoring_new_bugs.py")
    assert "reproduced: True" in out
    assert "chain:" in out
    assert "example-conn-uaf" in out


def test_benign_race_triage():
    out = _run("benign_race_triage.py")
    assert "ROOT CAUSE" in out
    assert "benign" in out
    assert "conciseness" in out


def test_interactive_rewind():
    out = _run("interactive_rewind.py")
    assert "future 1" in out and "failure = None" in out
    assert "future 2" in out and "BUG" in out


def test_archive_and_rediagnose():
    out = _run("archive_and_rediagnose.py")
    assert "archived fuzzer output" in out
    assert "re-diagnosis from the archived files" in out
    assert "verified: replay crashes identically" in out
