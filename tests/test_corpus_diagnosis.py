"""End-to-end: AITIA must diagnose every corpus bug correctly.

This is the reproduction of the paper's headline result (sections 5.1 and
5.2): all 22 real-world failures reproduced, their causality chains built,
benign races excluded, and exactly one ambiguous case (CVE-2016-10200).
"""

import pytest

from repro.core.diagnose import Aitia
from repro.corpus import registry


def _all_bugs():
    registry.load()
    return registry.figure_examples() + registry.all_bugs()


ALL_BUGS = _all_bugs()
IDS = [b.bug_id for b in ALL_BUGS]

_cache = {}


def _diagnose(bug):
    if bug.bug_id not in _cache:
        _cache[bug.bug_id] = Aitia(bug).diagnose()
    return _cache[bug.bug_id]


@pytest.mark.parametrize("bug", ALL_BUGS, ids=IDS)
class TestDiagnosis:
    def test_failure_reproduced(self, bug):
        diagnosis = _diagnose(bug)
        assert diagnosis.reproduced
        assert diagnosis.lifs_result.failure_run.failure.kind is bug.bug_type

    def test_interleaving_count_small(self, bug):
        """Most failures reproduce with one or two interleavings
        (section 5.1)."""
        diagnosis = _diagnose(bug)
        assert diagnosis.interleaving_count <= 2

    def test_expected_chain_races_present(self, bug):
        diagnosis = _diagnose(bug)
        for pair in bug.expected_chain_pairs:
            assert diagnosis.chain.contains_race_between(*pair), (
                f"chain {diagnosis.chain.render()} lacks race {pair}")

    def test_ambiguity_matches_expectation(self, bug):
        diagnosis = _diagnose(bug)
        assert diagnosis.chain.has_ambiguity == bug.expect_ambiguity

    def test_chain_is_concise(self, bug):
        """No benign race ends up in the chain."""
        diagnosis = _diagnose(bug)
        chain_keys = {r.key for r in diagnosis.chain.races}
        benign_keys = {r.key
                       for u in diagnosis.ca_result.benign_units
                       for r in u.races}
        assert not (chain_keys & benign_keys)

    def test_chain_much_smaller_than_race_set(self, bug):
        """Conciseness (section 5.2): the chain is a small fraction of the
        detected races whenever benign salt is present."""
        diagnosis = _diagnose(bug)
        total = len(diagnosis.lifs_result.races)
        assert diagnosis.chain.race_count <= total
        if total >= 10:
            assert diagnosis.chain.race_count <= total // 2

    def test_chain_edges_are_within_nodes(self, bug):
        diagnosis = _diagnose(bug)
        n = len(diagnosis.chain.nodes)
        for i, j in diagnosis.chain.edges:
            assert 0 <= i < n and 0 <= j < n and i != j


class TestAggregateResults:
    def test_exactly_one_ambiguous_evaluated_bug(self):
        """Among the 22 evaluated bugs, only CVE-2016-10200 is ambiguous
        (section 5.1)."""
        ambiguous = [b.bug_id for b in registry.all_bugs()
                     if _diagnose(b).chain.has_ambiguity]
        assert ambiguous == ["CVE-2016-10200"]

    def test_average_chain_size_is_about_three(self):
        """Section 5.2: causality chains average 3.0 races."""
        sizes = [_diagnose(b).chain.race_count
                 for b in registry.syzkaller_bugs()]
        average = sum(sizes) / len(sizes)
        assert 1.5 <= average <= 4.5

    def test_races_detected_far_exceed_chain(self):
        """Section 5.2: ~108 races on average vs 3 in the chain; our salt
        is lighter but the ratio must still be large."""
        totals, chains = 0, 0
        for b in registry.syzkaller_bugs():
            d = _diagnose(b)
            totals += len(d.lifs_result.races)
            chains += d.chain.race_count
        assert totals >= 4 * chains

    def test_ca_simulated_time_dominates_lifs_on_average(self):
        """Section 5.1: Causality Analysis takes longer than LIFS because
        failing diagnosis runs force VM reboots."""
        lifs_time = sum(_diagnose(b).lifs_cost.seconds
                        for b in registry.all_bugs())
        ca_time = sum(_diagnose(b).ca_cost.seconds
                      for b in registry.all_bugs())
        assert ca_time > lifs_time


class TestFullPipelineMatrix:
    """Every evaluated bug through the complete report pipeline: synthetic
    bug finder -> history -> slicing -> LIFS -> Causality Analysis."""

    @pytest.mark.parametrize(
        "bug", registry.all_bugs(),
        ids=[b.bug_id for b in registry.all_bugs()])
    def test_report_pipeline(self, bug):
        from repro.trace.syzkaller import run_bug_finder

        report = run_bug_finder(bug)
        diagnosis = Aitia(bug, report=report).diagnose()
        assert diagnosis.reproduced, bug.bug_id
        assert diagnosis.slice_used is not None
        for pair in bug.expected_chain_pairs:
            assert diagnosis.chain.contains_race_between(*pair), (
                bug.bug_id, pair, diagnosis.chain.render())
        assert diagnosis.chain.has_ambiguity == bug.expect_ambiguity
