"""Unit tests for program assembly, labels and basic blocks."""

import pytest

from repro.kernel.builder import ProgramBuilder
from repro.kernel.program import CODE_BASE, CODE_STEP, KernelImage

from helpers import fig2_image


def _simple_image():
    b = ProgramBuilder()
    with b.function("main") as f:
        f.load("r", f.g("x"), label="L1")
        f.brz("r", "OUT", label="L2")
        f.store(f.g("y"), 1, label="L3")
        f.ret(label="OUT")
    return b.build()


class TestAssembly:
    def test_addresses_are_unique_and_sequential(self):
        image = _simple_image()
        addrs = [i.addr for i in image.functions["main"].instructions]
        assert addrs[0] == CODE_BASE
        assert addrs == sorted(set(addrs))
        assert addrs[1] - addrs[0] == CODE_STEP

    def test_instruction_metadata_assigned(self):
        image = _simple_image()
        instr = image.instruction_labeled("L3")
        assert instr.func == "main"
        assert instr.index == 2

    def test_lookup_by_address_and_label_agree(self):
        image = _simple_image()
        instr = image.instruction_labeled("L1")
        assert image.instruction_at(instr.addr) is instr
        assert image.resolve("L1") is instr
        assert image.resolve(instr.addr) is instr
        assert image.resolve(instr) is instr

    def test_unknown_lookups_raise(self):
        image = _simple_image()
        with pytest.raises(KeyError):
            image.instruction_at(0x1)
        with pytest.raises(KeyError):
            image.instruction_labeled("NOPE")

    def test_duplicate_function_rejected(self):
        from repro.kernel.program import Function
        from repro.kernel.instructions import Instruction, Op
        f = Function("f", [Instruction(Op.RET)])
        with pytest.raises(ValueError, match="duplicate function"):
            KernelImage([f, Function("f", [Instruction(Op.RET)])])

    def test_duplicate_label_rejected(self):
        b = ProgramBuilder()
        with b.function("f") as f:
            f.nop(label="X")
            f.nop(label="X")
        with pytest.raises(ValueError, match="duplicate instruction label"):
            b.build()

    def test_missing_branch_target_rejected(self):
        b = ProgramBuilder()
        with b.function("f") as f:
            f.brz(0, "NOWHERE")
        with pytest.raises(KeyError):
            b.build()

    def test_call_to_undefined_function_rejected(self):
        b = ProgramBuilder()
        with b.function("f") as f:
            f.call("ghost")
        with pytest.raises(ValueError, match="undefined function"):
            b.build()

    def test_queue_work_of_undefined_function_rejected(self):
        b = ProgramBuilder()
        with b.function("f") as f:
            f.queue_work("ghost")
        with pytest.raises(ValueError, match="undefined function"):
            b.build()

    def test_builder_appends_implicit_ret(self):
        b = ProgramBuilder()
        with b.function("f") as f:
            f.nop()
        image = b.build()
        from repro.kernel.instructions import Op
        assert image.functions["f"].instructions[-1].op is Op.RET


class TestBasicBlocks:
    def test_branch_starts_new_block(self):
        image = _simple_image()
        l1 = image.instruction_labeled("L1")
        l3 = image.instruction_labeled("L3")
        out = image.instruction_labeled("OUT")
        assert image.block_containing(l1.addr).start_addr == l1.addr
        # L3 follows a terminator -> new block; OUT is a branch target.
        assert image.block_containing(l3.addr).start_addr == l3.addr
        assert image.block_containing(out.addr).start_addr == out.addr

    def test_straightline_code_is_one_block(self):
        b = ProgramBuilder()
        with b.function("f") as f:
            f.nop(label="a")
            f.nop(label="b")
            f.nop(label="c")
        image = b.build()
        a = image.instruction_labeled("a")
        c = image.instruction_labeled("c")
        assert image.block_containing(a.addr) == image.block_containing(c.addr)

    def test_memory_instructions_in_block(self):
        image = _simple_image()
        l1 = image.instruction_labeled("L1")
        block = image.block_containing(l1.addr)
        mem_instrs = image.memory_instructions_in_block(block.start_addr)
        assert [i.label for i in mem_instrs] == ["L1"]

    def test_memory_instructions_of_image(self):
        image = fig2_image()
        labels = {i.label for i in image.memory_instructions()}
        assert {"A2", "A6", "A12", "B2", "B11", "B12", "B17a"} <= labels

    def test_disassemble_mentions_every_function(self):
        listing = fig2_image().disassemble()
        for name in ("fanout_add", "fanout_link", "packet_do_bind",
                     "unregister_hook", "fanout_unlink"):
            assert f"{name}:" in listing

    def test_len_counts_instructions(self):
        image = _simple_image()
        assert len(image) == 4
