"""Tests for the ablation switches: they must change the mechanism they
claim to, and the diagnosis result must survive (or degrade exactly as
documented)."""

from repro.core.causality import CaConfig, CausalityAnalysis
from repro.core.lifs import (
    FailureMatcher,
    LeastInterleavingFirstSearch,
    LifsConfig,
)
from repro.corpus.registry import get_bug
from repro.kernel.builder import ProgramBuilder
from repro.kernel.failures import FailureKind
from repro.kernel.machine import KernelMachine, ThreadSpec

from helpers import fig2_factory


class TestConflictPruningAblation:
    def test_disabling_pruning_explores_more(self):
        matcher = FailureMatcher(kind=FailureKind.ASSERTION)
        pruned = LeastInterleavingFirstSearch(
            fig2_factory(), ["A", "B"], matcher,
            config=LifsConfig(conflict_pruning=True)).search()
        unpruned = LeastInterleavingFirstSearch(
            fig2_factory(), ["A", "B"], matcher,
            config=LifsConfig(conflict_pruning=False)).search()
        assert pruned.reproduced and unpruned.reproduced
        assert (unpruned.stats.schedules_executed
                > pruned.stats.schedules_executed)
        assert unpruned.stats.candidates_pruned == 0

    def test_same_failure_either_way(self):
        matcher = FailureMatcher(kind=FailureKind.ASSERTION)
        for pruning in (True, False):
            result = LeastInterleavingFirstSearch(
                fig2_factory(), ["A", "B"], matcher,
                config=LifsConfig(conflict_pruning=pruning)).search()
            assert result.failure_run.failure.instr_label == "B17"


class TestEquivalenceDedupAblation:
    def test_disabling_dedup_keeps_equivalent_runs_in_frontier(self):
        matcher = FailureMatcher(kind=FailureKind.ASSERTION)
        base = LeastInterleavingFirstSearch(
            fig2_factory(), ["A", "B"], matcher,
            config=LifsConfig(equivalence_dedup=True)).search()
        ablated = LeastInterleavingFirstSearch(
            fig2_factory(), ["A", "B"], matcher,
            config=LifsConfig(equivalence_dedup=False)).search()
        assert base.reproduced and ablated.reproduced
        assert (ablated.stats.schedules_executed
                >= base.stats.schedules_executed)


class TestCriticalSectionAblation:
    def _locked_factory(self):
        b = ProgramBuilder()
        with b.function("a") as f:
            f.lock("L", label="ALock")
            f.store(f.g("x"), 1, label="A1")
            f.store(f.g("y"), 1, label="A2")
            f.unlock("L", label="AUnlock")
        with b.function("bb") as f:
            f.load("vx", f.g("x"), label="B1")
            f.load("vy", f.g("y"), label="B2")
            f.binop("both", "and", f.r("vx"), f.r("vy"))
            f.bug_on("both", "saw both", label="B3")
        image = b.build()

        def factory():
            return KernelMachine(image, [ThreadSpec("A", "a"),
                                         ThreadSpec("B", "bb")])
        return factory

    def test_collapsing_creates_units_ablation_removes_them(self):
        factory = self._locked_factory()
        lifs = LeastInterleavingFirstSearch(
            factory, ["A", "B"], FailureMatcher(kind=FailureKind.ASSERTION))
        result = lifs.search()
        assert result.reproduced

        with_sections = CausalityAnalysis(factory, result).analyze()
        without = CausalityAnalysis(
            factory, result,
            config=CaConfig(collapse_critical_sections=False)).analyze()

        assert any(u.is_critical_section
                   for u in with_sections.root_cause_units)
        assert not any(u.is_critical_section
                       for u in (without.root_cause_units
                                 + without.benign_units))
        # Without collapsing there are more flip units to test.
        assert (len(without.root_cause_units) + len(without.benign_units)
                + len(without.unflippable_units)
                >= len(with_sections.root_cause_units)
                + len(with_sections.benign_units))


class TestRecheckEdgesAblation:
    def test_fewer_schedules_without_recheck(self):
        bug = get_bug("CVE-2017-2671")
        lifs = LeastInterleavingFirstSearch(
            bug.machine_factory, ["A", "B"],
            FailureMatcher(kind=FailureKind.GPF))
        result = lifs.search()
        with_recheck = CausalityAnalysis(
            bug.machine_factory, result,
            config=CaConfig(recheck_edges=True)).analyze()
        without = CausalityAnalysis(
            bug.machine_factory, result,
            config=CaConfig(recheck_edges=False)).analyze()
        assert (without.stats.schedules_executed
                < with_recheck.stats.schedules_executed)
        assert (with_recheck.chain.render() == without.chain.render())
