"""Tests for the whole-corpus evaluation module and its CLI commands."""

import json

import pytest

from repro import api
from repro.analysis.evaluation import (
    CorpusEvaluation,
    evaluate_corpus,
    summarize_diagnosis,
)
from repro.cli import main
from repro.corpus.registry import get_bug


class TestEvaluateBug:
    def test_row_fields(self):
        bug = get_bug("CVE-2017-2671")
        row = summarize_diagnosis(bug, api.diagnose(bug))
        assert row.reproduced
        assert row.bug_id == "CVE-2017-2671"
        assert row.interleavings == 1
        assert row.races_in_chain == 2
        assert row.races_detected > row.races_in_chain
        assert row.benign_excluded > 0
        assert "GPF" in row.bug_type
        assert "->" in row.chain

    def test_pipeline_mode_counts_slices(self):
        bug = get_bug("SYZ-04")
        row = summarize_diagnosis(bug, api.diagnose(bug, pipeline=True))
        assert row.reproduced
        assert row.slices_tried >= 1


class TestCorpusEvaluation:
    @pytest.fixture(scope="class")
    def small_eval(self):
        bugs = [get_bug("CVE-2017-2671"), get_bug("SYZ-05"),
                get_bug("CVE-2016-10200")]
        return evaluate_corpus(bugs)

    def test_counts(self, small_eval):
        assert small_eval.reproduced_count == 3
        assert small_eval.ambiguous_bugs == ["CVE-2016-10200"]

    def test_averages(self, small_eval):
        averages = small_eval.averages()
        assert averages["races_in_chain"] >= 1
        assert (averages["races_detected"]
                >= averages["races_in_chain"])
        assert (averages["memory_accesses"]
                >= averages["races_detected"])

    def test_json_export(self, small_eval):
        payload = json.loads(small_eval.to_json())
        assert payload["aggregates"]["reproduced"] == 3
        assert len(payload["rows"]) == 3
        assert payload["rows"][0]["bug_id"] == "CVE-2017-2671"

    def test_empty_evaluation_averages(self):
        assert CorpusEvaluation().averages()["races_detected"] == 0.0


class TestCliEvaluateMinimize:
    def test_evaluate_command(self, capsys, tmp_path):
        out_json = tmp_path / "eval.json"
        assert main(["evaluate", "SYZ-05", "--json", str(out_json)]) == 0
        out = capsys.readouterr().out
        assert "SYZ-05" in out and "averages" in out
        payload = json.loads(out_json.read_text())
        assert payload["aggregates"]["bugs"] == 1

    def test_minimize_command(self, capsys):
        assert main(["minimize", "SYZ-04"]) == 0
        out = capsys.readouterr().out
        assert "minimized:" in out
        assert "still fails" in out
