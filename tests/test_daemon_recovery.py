"""Crash-recovery tests: kill ``repro serve`` mid-queue, restart, and
verify journaled jobs re-run exactly once and completed results are
never re-diagnosed.

These run the real CLI in a subprocess (SIGTERM for the graceful path,
SIGKILL for the hard path) against the stub diagnoser, talking plain
``http.client`` to the published port.
"""

import functools
import http.client
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.corpus.registry import get_bug
from repro.observe.export import parse_exposition
from repro.service.artifacts import CrashArtifact
from repro.trace.syzkaller import run_bug_finder

BUGS = ("SYZ-01", "SYZ-02", "SYZ-03")
STUB = "repro.daemon.worker:stub_diagnose_job"


@functools.lru_cache(maxsize=None)
def artifact_text(bug_id: str) -> str:
    return CrashArtifact.from_report(run_bug_finder(get_bug(bug_id))).render()


class Daemon:
    """One ``repro serve`` subprocess and its published port."""

    def __init__(self, data_dir: str, port_file: str, *extra: str) -> None:
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        if os.path.exists(port_file):
            os.unlink(port_file)
        self.port_file = port_file
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--data-dir", data_dir, "--port-file", port_file,
             "--diagnoser", STUB, *extra],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        self.port = self._wait_for_port()

    def _wait_for_port(self, timeout_s: float = 30.0) -> int:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.process.poll() is not None:
                raise AssertionError(
                    f"daemon exited early: {self.process.returncode}")
            if os.path.exists(self.port_file):
                text = open(self.port_file).read().strip()
                if text:
                    return int(text.rsplit(":", 1)[1])
            time.sleep(0.02)
        raise AssertionError("daemon never published its port")

    def request(self, method: str, path: str, body: bytes = b""):
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=30)
        try:
            conn.request(method, path, body)
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def submit(self, text: str):
        status, body = self.request("POST", "/submit", text.encode())
        return status, json.loads(body)

    def metrics(self) -> dict:
        status, body = self.request("GET", "/metrics")
        assert status == 200
        return parse_exposition(body.decode())

    def wait_for_metric(self, name: str, value: float,
                        timeout_s: float = 30.0) -> dict:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            metrics = self.metrics()
            if metrics.get(name, 0) >= value:
                return metrics
            time.sleep(0.05)
        raise AssertionError(f"{name} never reached {value}: "
                             f"{self.metrics()}")

    def sigterm(self, timeout_s: float = 30.0) -> int:
        self.process.send_signal(signal.SIGTERM)
        return self.process.wait(timeout=timeout_s)

    def sigkill(self) -> None:
        self.process.kill()
        self.process.wait(timeout=30)

    def ensure_dead(self) -> None:
        if self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=30)


@pytest.fixture
def launch(tmp_path):
    daemons = []
    data_dir = str(tmp_path / "data")
    port_file = str(tmp_path / "port")

    def start(*extra: str) -> Daemon:
        daemon = Daemon(data_dir, port_file, *extra)
        daemons.append(daemon)
        return daemon

    yield start
    for daemon in daemons:
        daemon.ensure_dead()


def test_sigterm_then_restart_reruns_journaled_jobs_once(launch):
    # Phase 1: accept three jobs but never drain them (--paused), then
    # stop gracefully.  The journal now owes three answers.
    parked = launch("--paused")
    for bug in BUGS:
        status, payload = parked.submit(artifact_text(bug))
        assert status == 202 and payload["status"] == "accepted"
    metrics = parked.metrics()
    assert metrics["aitia_daemon_queue_depth"] == 3
    assert parked.sigterm() == 0

    # Phase 2: restart draining.  All three recovered jobs complete —
    # exactly once each (completed == recovered, store holds 3).
    draining = launch()
    metrics = draining.wait_for_metric("aitia_daemon_completed_total", 3)
    assert metrics["aitia_daemon_recovered_total"] == 3
    assert metrics["aitia_daemon_accepted_total"] == 3
    assert metrics["aitia_daemon_completed_total"] == 3
    assert metrics["aitia_daemon_in_flight"] == 0

    # Phase 3: hard-kill the drained daemon; nothing was mid-flight, so
    # a restart recovers zero jobs and repeat submissions answer from
    # the (cold) store without re-diagnosis.
    draining.sigkill()
    restarted = launch()
    metrics = restarted.metrics()
    assert metrics.get("aitia_daemon_recovered_total", 0) == 0
    status, payload = restarted.submit(artifact_text(BUGS[0]))
    assert status == 200
    assert payload["status"] == "cache_hit"
    assert payload["tier"] == "cold"
    metrics = restarted.metrics()
    assert metrics["aitia_daemon_cache_hits_total"] == 1
    assert metrics.get("aitia_daemon_accepted_total", 0) == 0
    assert restarted.sigterm() == 0


def test_hard_kill_mid_queue_loses_no_accepted_work(launch):
    # Accept work with the drain paused, then SIGKILL — no graceful
    # flush, no compaction, the journal alone carries the state.
    parked = launch("--paused")
    digests = {}
    for bug in BUGS:
        status, payload = parked.submit(artifact_text(bug))
        assert status == 202
        digests[bug] = payload["digest"]
    parked.sigkill()

    # Every accepted job is re-run after the hard kill, exactly once.
    draining = launch()
    metrics = draining.wait_for_metric("aitia_daemon_completed_total", 3)
    assert metrics["aitia_daemon_recovered_total"] == 3
    assert metrics["aitia_daemon_completed_total"] == 3
    for digest in digests.values():
        status, body = draining.request("GET", f"/result/{digest}")
        assert status == 200
    assert draining.sigterm() == 0
