"""Tests for the prefix-checkpoint execution engine.

Covers the three layers end to end: controller-level checkpoint/resume
(property: resuming from any captured checkpoint is bit-identical to a
fresh boot), the LIFS accounting identities (``snapshot.hits +
snapshot.misses == lifs.schedules``), the ``use_snapshots`` ablation
(identical diagnoses, fewer interpreted steps), continuation splicing,
and thread-recreating restores.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.causality import CaConfig
from repro.core.diagnose import Aitia
from repro.core.lifs import (
    FailureMatcher,
    LeastInterleavingFirstSearch,
    LifsConfig,
)
from repro.core.schedule import Preemption, Schedule
from repro.corpus.registry import get_bug
from repro.hypervisor.controller import ScheduleController
from repro.hypervisor.snapshot import (
    CheckpointPolicy,
    boot_checkpoint,
    capture,
    restore,
)
from repro.kernel.snapshot import machine_state_key, snapshot_state_key
from repro.observe import MemorySink, Tracer

from helpers import fig2_factory, fig2_image, fig2_machine, run_thread

IMAGE = fig2_image()
A_LABELS = ["A2", "A5", "A6", "A12"]
B_LABELS = ["B2", "B11", "B12", "B17a"]

preemption_lists = st.lists(
    st.tuples(
        st.sampled_from(["A", "B"]),
        st.sampled_from(A_LABELS + B_LABELS),
        st.sampled_from(["A", "B", None]),
    ),
    min_size=0, max_size=3,
)


def _schedule(preempts, start_first):
    preemptions = []
    for thread, label, target in preempts:
        if label in A_LABELS and thread != "A":
            thread = "A"
        if label in B_LABELS and thread != "B":
            thread = "B"
        if target == thread:
            target = None
        preemptions.append(Preemption(
            thread=thread, instr_addr=IMAGE.instruction_labeled(label).addr,
            occurrence=1, switch_to=target, instr_label=label))
    order = ("A", "B") if start_first else ("B", "A")
    return Schedule(start_order=order, preemptions=preemptions)


def _run_facts(run):
    return (
        [(t.thread, t.instr_addr, t.seq, t.occurrence) for t in run.trace],
        [(a.thread, a.instr_addr, a.data_addr, a.seq) for a in run.accesses],
        run.failure,
        run.steps,
        run.interleavings,
    )


class TestResumeBitIdentity:
    """Property: a controller resumed from any prefix checkpoint produces
    the same trace, access log, failure, and step count as a fresh boot
    enforcing the same schedule."""

    @given(preemption_lists, st.booleans(),
           st.integers(min_value=0, max_value=63))
    @settings(max_examples=60, deadline=None)
    def test_resume_from_any_checkpoint_matches_fresh_boot(
            self, preempts, start_first, pick):
        schedule = _schedule(preempts, start_first)
        fresh = ScheduleController(fig2_machine(), schedule,
                                   checkpoint_policy=CheckpointPolicy())
        run1 = fresh.run()
        if not fresh.checkpoints:
            return
        ckpt = fresh.checkpoints[pick % len(fresh.checkpoints)]
        run2 = ScheduleController(fig2_machine(), schedule,
                                  resume_from=ckpt).run()
        assert _run_facts(run2) == _run_facts(run1)
        assert run2.signature_hash() == run1.signature_hash()

    @given(preemption_lists, st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_boot_checkpoint_resumes_under_any_schedule(
            self, preempts, start_first):
        schedule = _schedule(preempts, start_first)
        run1 = ScheduleController(fig2_machine(), schedule).run()
        machine = fig2_machine()
        ckpt = boot_checkpoint(machine)
        run2 = ScheduleController(machine, schedule,
                                  resume_from=ckpt).run()
        assert _run_facts(run2) == _run_facts(run1)


class TestSnapshotAccounting:
    def test_hits_plus_misses_equals_schedules(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        lifs = LeastInterleavingFirstSearch(
            fig2_factory(), ["A", "B"], FailureMatcher.any_failure(),
            config=LifsConfig(use_snapshots=True), tracer=tracer)
        result = lifs.search()
        tracer.close()
        stats = result.stats
        assert stats.snapshot_hits + stats.snapshot_misses \
            == stats.schedules_executed
        assert stats.snapshot_hits > 0
        # The same identity holds at the trace-counter level.
        counters = sink.counter_totals()
        assert counters["snapshot.hits"] + counters["snapshot.misses"] \
            == counters["lifs.schedules"]

    def test_snapshots_off_counts_every_run_as_miss(self):
        lifs = LeastInterleavingFirstSearch(
            fig2_factory(), ["A", "B"], FailureMatcher.any_failure(),
            config=LifsConfig(use_snapshots=False))
        result = lifs.search()
        stats = result.stats
        assert stats.snapshot_hits == 0
        assert stats.snapshot_splices == 0
        assert stats.snapshot_misses == stats.schedules_executed

    def test_ca_hits_plus_misses_equals_flip_schedules(self):
        bug = get_bug("SYZ-01")
        diagnosis = Aitia(bug, ca_config=CaConfig(use_snapshots=True)
                          ).diagnose()
        stats = diagnosis.ca_result.stats
        assert stats.snapshot_hits + stats.snapshot_misses \
            == stats.schedules_executed
        assert stats.snapshot_hits > 0


class TestAblation:
    """``use_snapshots=False`` (the ``--no-snapshot`` CLI flag) must be a
    pure accounting change: identical diagnosis, more interpreted steps."""

    def _diagnose(self, bug_id, on):
        bug = get_bug(bug_id)
        return Aitia(bug,
                     lifs_config=LifsConfig(use_snapshots=on),
                     ca_config=CaConfig(use_snapshots=on)).diagnose()

    def test_diagnosis_is_bit_identical(self):
        on = self._diagnose("CVE-2017-15649", True)
        off = self._diagnose("CVE-2017-15649", False)
        assert on.chain.render() == off.chain.render()
        assert on.lifs_result.failure_run.signature_hash() \
            == off.lifs_result.failure_run.signature_hash()
        assert on.lifs_result.stats.schedules_executed \
            == off.lifs_result.stats.schedules_executed
        assert on.lifs_result.stats.total_steps \
            == off.lifs_result.stats.total_steps
        assert on.ca_result.stats.schedules_executed \
            == off.ca_result.stats.schedules_executed
        assert on.ca_result.stats.total_steps \
            == off.ca_result.stats.total_steps

    def test_snapshots_interpret_fewer_steps(self):
        on = self._diagnose("CVE-2017-15649", True)
        off = self._diagnose("CVE-2017-15649", False)
        on_steps = (on.lifs_result.stats.interpreted_steps
                    + on.ca_result.stats.interpreted_steps)
        off_steps = (off.lifs_result.stats.interpreted_steps
                     + off.ca_result.stats.interpreted_steps)
        assert on_steps < off_steps
        assert on.lifs_result.stats.saved_steps > 0

    def test_continuation_splicing_fires_and_stays_identical(self):
        on = self._diagnose("SYZ-01", True)
        off = self._diagnose("SYZ-01", False)
        assert on.lifs_result.stats.snapshot_splices > 0
        assert on.lifs_result.stats.snapshot_spliced_steps > 0
        assert on.ca_result.stats.snapshot_splices > 0
        assert on.chain.render() == off.chain.render()
        assert on.lifs_result.failure_run.signature_hash() \
            == off.lifs_result.failure_run.signature_hash()


class TestThreadRecreation:
    def test_restore_forward_recreates_spawned_threads(self):
        bug = get_bug("SYZ-04")
        machine = bug.machine_factory()
        pre = capture(machine)
        baseline = len(machine.threads)
        run_thread(machine, "A")
        run_thread(machine, "B")  # queue_work spawns the kworker
        assert len(machine.threads) > baseline
        assert machine.failure is None
        post = capture(machine)

        # Rewind discards the kworker...
        restore(machine, pre)
        assert len(machine.threads) == baseline
        # ...and fast-forwarding recreates it, bit-for-bit.
        restore(machine, post)
        assert len(machine.threads) > baseline
        assert machine_state_key(machine) == snapshot_state_key(post)
