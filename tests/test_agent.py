"""Tests for the user agent (the Figure 8 hypercall workflow)."""

import pytest

from repro.corpus.registry import get_bug
from repro.hypervisor.agent import UserAgent

from helpers import fig2_factory


class TestProfiling:
    def test_profile_maps_blocks_to_memory_instructions(self):
        agent = UserAgent(fig2_factory())
        profile = agent.profile_thread("A")
        assert {"A2", "A6", "A12"} <= set(profile.memory_labels)
        assert profile.covered_blocks

    def test_profile_respects_control_flow(self):
        agent = UserAgent(fig2_factory())
        profile = agent.profile_thread("B")
        # Solo, B reads po_fanout == NULL and walks into unregister_hook.
        assert "B11" in profile.memory_labels
        assert "B12" in profile.memory_labels


class TestMonitorAndResume:
    def test_watchpoint_reports_the_racing_pair(self):
        agent = UserAgent(fig2_factory())
        races, run = agent.monitor_and_resume("A", "A6", resume="B")
        pairs = {(r.monitored_label, r.racing_label) for r in races}
        # A parked before its po_fanout store; B reads po_fanout at B2
        # (and at B12, since the store never landed).
        assert ("A6", "B2") in pairs
        assert run.failure is None

    def test_background_thread_hit_is_attributed(self):
        """Figure 8's punchline: the racing access may come from a kernel
        thread the resumed syscall invoked."""
        bug = get_bug("SYZ-04")
        agent = UserAgent(bug.machine_factory)
        races, _ = agent.monitor_and_resume("A", "A2", resume="B")
        racers = {(r.racing_thread.split("/")[0], r.racing_label)
                  for r in races}
        assert ("kworker", "K1") in racers

    def test_non_memory_instruction_rejected(self):
        agent = UserAgent(fig2_factory())
        with pytest.raises(ValueError, match="does not access memory"):
            agent.monitor_and_resume("A", "A8")  # a CALL


class TestProbeSweep:
    def test_sweep_finds_the_known_conflicts(self):
        agent = UserAgent(fig2_factory())
        observed = agent.probe_thread("A", resume="B")
        pairs = {(r.monitored_label, r.racing_label) for r in observed}
        assert ("A2", "B11") in pairs  # po_running
        assert ("A6", "B2") in pairs  # po_fanout

    def test_sweep_is_deduplicated(self):
        agent = UserAgent(fig2_factory())
        observed = agent.probe_thread("A", resume="B")
        keys = [(r.monitored_label, r.racing_label) for r in observed]
        assert len(keys) == len(set(keys))
