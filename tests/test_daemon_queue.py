"""Tests for the journaled work queue (persistence and recovery)."""

import json
import os

import pytest

from repro.daemon.queue import JournaledWorkQueue
from repro.service.queue import JobOutcome, QueueFull, TriageJob


def _job(n: int, priority: int = 0) -> TriageJob:
    digest = f"{n:016x}"
    return TriageJob(job_id=f"BUG-{n}:{digest}", priority=priority,
                     payload={"digest": digest, "bug_id": f"BUG-{n}",
                              "tenant": "t"})


def _journal_entries(directory):
    entries = []
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".journal"):
            continue
        with open(os.path.join(directory, name)) as fh:
            entries.extend(json.loads(line) for line in fh if line.strip())
    return entries


class TestPushPop:
    def test_priority_order_across_shards(self, tmp_path):
        queue = JournaledWorkQueue(str(tmp_path), shards=4)
        queue.push(_job(1, priority=5))
        queue.push(_job(2, priority=0))
        queue.push(_job(3, priority=5))
        batch = queue.pop_batch(10)
        assert [j.payload["bug_id"] for j in batch] == [
            "BUG-2", "BUG-1", "BUG-3"]  # FIFO within a priority

    def test_pop_batch_bounded_and_empty(self, tmp_path):
        queue = JournaledWorkQueue(str(tmp_path))
        for n in range(5):
            queue.push(_job(n))
        assert len(queue.pop_batch(2)) == 2
        assert queue.depth == 3
        assert queue.pop_batch(10) and queue.pop_batch(10) == []

    def test_full_queue_sheds_before_journaling(self, tmp_path):
        queue = JournaledWorkQueue(str(tmp_path), max_depth=2)
        queue.push(_job(1))
        queue.push(_job(2))
        with pytest.raises(QueueFull):
            queue.push(_job(3))
        # Nothing was journaled for the rejected push.
        assert len(_journal_entries(tmp_path)) == 2
        assert queue.depth == 2


class TestRecovery:
    def test_pending_jobs_survive_reopen(self, tmp_path):
        queue = JournaledWorkQueue(str(tmp_path), shards=3)
        for n in range(4):
            queue.push(_job(n), tenant="t")
        queue.close()

        reopened = JournaledWorkQueue(str(tmp_path), shards=3)
        assert len(reopened.recovered) == 4
        assert reopened.depth == 4
        ids = {j.job_id for j in reopened.pop_batch(10)}
        assert ids == {_job(n).job_id for n in range(4)}

    def test_done_jobs_are_not_recovered(self, tmp_path):
        queue = JournaledWorkQueue(str(tmp_path))
        first, second = _job(1), _job(2)
        queue.push(first)
        queue.push(second)
        queue.pop_batch(2)
        first.outcome = JobOutcome.SUCCEEDED
        queue.mark_done(first)
        queue.close()

        reopened = JournaledWorkQueue(str(tmp_path))
        assert [j.job_id for j in reopened.recovered] == [second.job_id]

    def test_replay_compacts_the_shards(self, tmp_path):
        queue = JournaledWorkQueue(str(tmp_path), shards=1)
        for n in range(10):
            job = _job(n)
            queue.push(job)
            if n < 9:
                queue.pop_batch(1)
                job.outcome = JobOutcome.SUCCEEDED
                queue.mark_done(job)
        queue.close()
        assert len(_journal_entries(tmp_path)) == 19  # 10 push + 9 done

        JournaledWorkQueue(str(tmp_path), shards=1).close()
        # Only the one still-owed push survives compaction.
        entries = _journal_entries(tmp_path)
        assert len(entries) == 1
        assert entries[0]["op"] == "push"
        assert entries[0]["job_id"] == _job(9).job_id

    def test_recovery_preserves_priority_and_payload(self, tmp_path):
        queue = JournaledWorkQueue(str(tmp_path))
        queue.push(_job(1, priority=9))
        queue.push(_job(2, priority=1))
        queue.close()

        reopened = JournaledWorkQueue(str(tmp_path))
        batch = reopened.pop_batch(2)
        assert [j.priority for j in batch] == [1, 9]
        assert batch[1].payload == _job(1).payload

    def test_recovered_work_bypasses_the_depth_bound(self, tmp_path):
        queue = JournaledWorkQueue(str(tmp_path), max_depth=None)
        for n in range(6):
            queue.push(_job(n))
        queue.close()

        # Reopen with a bound smaller than the backlog: accepted work
        # is never shed, but *new* pushes see the full queue.
        reopened = JournaledWorkQueue(str(tmp_path), max_depth=3)
        assert reopened.depth == 6
        with pytest.raises(QueueFull):
            reopened.push(_job(7))

    def test_corrupt_journal_lines_are_skipped(self, tmp_path):
        queue = JournaledWorkQueue(str(tmp_path), shards=1)
        queue.push(_job(1))
        queue.close()
        path = os.path.join(str(tmp_path), "queue-00.journal")
        with open(path, "a") as fh:
            fh.write("not json\n")
            fh.write('{"no": "op"}\n')
            fh.write('{"op": "push", "job_id": "ok:0000000000000002", '
                     '"digest": "0000000000000002", "payload": {}}\n')

        reopened = JournaledWorkQueue(str(tmp_path), shards=1)
        assert reopened.skipped_lines == 2  # bad JSON + missing "op"
        assert len(reopened.recovered) == 2

    def test_shard_files_are_stable_for_a_digest(self, tmp_path):
        queue = JournaledWorkQueue(str(tmp_path), shards=4)
        job = _job(7)
        queue.push(job)
        queue.close()
        before = {name for name in os.listdir(tmp_path)
                  if os.path.getsize(os.path.join(tmp_path, name))}

        reopened = JournaledWorkQueue(str(tmp_path), shards=4)
        reopened.pop_batch(1)
        job.outcome = JobOutcome.SUCCEEDED
        reopened.mark_done(job)
        reopened.close()
        after = {name for name in os.listdir(tmp_path)
                 if "done" in open(os.path.join(tmp_path, name)).read()}
        assert after == before  # push and done landed in the same shard
