"""Property-based tests: schedule enforcement invariants on Figure 2."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedule import OrderConstraint, Preemption, Schedule
from repro.hypervisor.controller import ScheduleController, serial_schedule

from helpers import fig2_image, fig2_machine

IMAGE = fig2_image()
A_LABELS = ["A2", "A5", "A6", "A12"]
B_LABELS = ["B2", "B11", "B12", "B17a"]


def _serial_thread_trace(thread):
    run = ScheduleController(fig2_machine(),
                             serial_schedule([thread, "A" if thread == "B"
                                              else "B"])).run()
    return [t.instr_addr for t in run.trace if t.thread == thread]


preemption_lists = st.lists(
    st.tuples(
        st.sampled_from(["A", "B"]),
        st.sampled_from(A_LABELS + B_LABELS),
        st.sampled_from(["A", "B", None]),
    ),
    min_size=0, max_size=3,
)


def _schedule(preempts, start_first):
    preemptions = []
    for thread, label, target in preempts:
        if label in A_LABELS and thread != "A":
            thread = "A"
        if label in B_LABELS and thread != "B":
            thread = "B"
        if target == thread:
            target = None
        preemptions.append(Preemption(
            thread=thread, instr_addr=IMAGE.instruction_labeled(label).addr,
            occurrence=1, switch_to=target, instr_label=label))
    order = ("A", "B") if start_first else ("B", "A")
    return Schedule(start_order=order, preemptions=preemptions)


@given(preemption_lists, st.booleans())
@settings(max_examples=80, deadline=None)
def test_any_preemption_schedule_terminates_and_is_deterministic(
        preempts, start_first):
    schedule = _schedule(preempts, start_first)
    run1 = ScheduleController(fig2_machine(), schedule).run()
    run2 = ScheduleController(fig2_machine(), schedule).run()
    assert run1.signature() == run2.signature()
    assert (run1.failure is None) == (run2.failure is None)


@given(preemption_lists, st.booleans())
@settings(max_examples=80, deadline=None)
def test_per_thread_program_order_is_preserved(preempts, start_first):
    """Whatever the interleaving, each thread's own instruction stream is
    consistent with sequential execution of its program (a prefix of some
    valid path)."""
    schedule = _schedule(preempts, start_first)
    run = ScheduleController(fig2_machine(), schedule).run()
    for thread in ("A", "B"):
        seqs = [t.seq for t in run.trace if t.thread == thread]
        assert seqs == sorted(seqs)


@given(preemption_lists, st.booleans())
@settings(max_examples=60, deadline=None)
def test_interleaving_count_bounded_by_preemptions(preempts, start_first):
    schedule = _schedule(preempts, start_first)
    run = ScheduleController(fig2_machine(), schedule).run()
    assert run.interleavings <= len(schedule.preemptions)
    assert run.resumed_interleavings <= run.interleavings


constraint_perms = st.permutations(["A2", "B2", "B11", "A6"])


@given(constraint_perms)
@settings(max_examples=24, deadline=None)
def test_executed_constraints_follow_queue_order(labels):
    constraints = []
    for label in labels:
        thread = "A" if label.startswith("A") else "B"
        constraints.append(OrderConstraint(
            thread=thread,
            instr_addr=IMAGE.instruction_labeled(label).addr,
            occurrence=1, instr_label=label))
    schedule = Schedule(start_order=("A", "B"), constraints=constraints)
    run = ScheduleController(fig2_machine(), schedule).run()
    dropped = {(c.thread, c.instr_addr) for c in run.dropped_constraints}
    expected = [c for c in constraints
                if (c.thread, c.instr_addr) not in dropped]
    positions = []
    for c in expected:
        for t in run.trace:
            if t.thread == c.thread and t.instr_addr == c.instr_addr \
                    and t.occurrence == c.occurrence:
                positions.append(t.seq)
                break
    assert positions == sorted(positions)
