"""Unit tests for the ProgramBuilder / FunctionBuilder DSL."""

import pytest

from repro.kernel.builder import (
    FunctionBuilder,
    ProgramBuilder,
    _as_addr,
    _as_source,
)
from repro.kernel.instructions import Deref, Global, Imm, Op, Reg


class TestOperandCoercion:
    def test_int_becomes_immediate(self):
        assert _as_source(5) == Imm(5)

    def test_str_becomes_register(self):
        assert _as_source("r0") == Reg("r0")

    def test_passthrough_sources(self):
        assert _as_source(Imm(1)) == Imm(1)
        assert _as_source(Reg("a")) == Reg("a")

    def test_bad_source_raises(self):
        with pytest.raises(TypeError):
            _as_source(1.5)

    def test_str_becomes_global_address(self):
        assert _as_addr("po_fanout") == Global("po_fanout")

    def test_passthrough_addresses(self):
        assert _as_addr(Deref("p", 8)) == Deref("p", 8)

    def test_bad_address_raises(self):
        with pytest.raises(TypeError):
            _as_addr(42)


class TestEmitters:
    def _one(self, emit):
        fb = FunctionBuilder("f")
        emit(fb)
        return fb._instructions[-1]

    def test_every_emitter_produces_its_opcode(self):
        cases = [
            (lambda f: f.load("r", f.g("x")), Op.LOAD),
            (lambda f: f.store(f.g("x"), 1), Op.STORE),
            (lambda f: f.inc(f.g("x"), 2), Op.INC),
            (lambda f: f.mov("r", 1), Op.MOV),
            (lambda f: f.lea("r", "x"), Op.LEA),
            (lambda f: f.binop("r", "add", 1, 2), Op.BINOP),
            (lambda f: f.brz(0, "t"), Op.BRZ),
            (lambda f: f.brnz(1, "t"), Op.BRNZ),
            (lambda f: f.jmp("t"), Op.JMP),
            (lambda f: f.call("g"), Op.CALL),
            (lambda f: f.ret(), Op.RET),
            (lambda f: f.alloc("r", 8, "tag"), Op.ALLOC),
            (lambda f: f.free("r"), Op.FREE),
            (lambda f: f.lock("L"), Op.LOCK),
            (lambda f: f.unlock("L"), Op.UNLOCK),
            (lambda f: f.queue_work("g"), Op.QUEUE_WORK),
            (lambda f: f.call_rcu("g"), Op.CALL_RCU),
            (lambda f: f.bug_on(1, "m"), Op.BUG_ON),
            (lambda f: f.list_add(f.g("l"), 1), Op.LIST_ADD),
            (lambda f: f.list_del(f.g("l"), 1), Op.LIST_DEL),
            (lambda f: f.list_contains("r", f.g("l"), 1), Op.LIST_CONTAINS),
            (lambda f: f.nop(), Op.NOP),
        ]
        for emit, op in cases:
            assert self._one(emit).op is op

    def test_binop_rejects_unknown_operator(self):
        fb = FunctionBuilder("f")
        with pytest.raises(ValueError, match="unknown operator"):
            fb.binop("r", "pow", 2, 3)

    def test_labels_and_targets_attached(self):
        fb = FunctionBuilder("f")
        instr = fb.brz("r", "out", label="B1")
        assert instr.label == "B1"
        assert instr.target == "out"

    def test_operand_helpers(self):
        assert FunctionBuilder.g("x") == Global("x")
        assert FunctionBuilder.r("a") == Reg("a")
        assert FunctionBuilder.i(3) == Imm(3)
        assert FunctionBuilder.at("p", 16) == Deref("p", 16)

    def test_alloc_leak_tracked_flag(self):
        fb = FunctionBuilder("f")
        instr = fb.alloc("r", 8, "filt", leak_tracked=True)
        assert instr.operands[3] is True


class TestProgramBuilder:
    def test_function_context_manager_registers(self):
        b = ProgramBuilder()
        with b.function("one") as f:
            f.nop()
        with b.function("two") as f:
            f.nop()
        image = b.build()
        assert set(image.functions) == {"one", "two"}

    def test_explicit_ret_not_duplicated(self):
        b = ProgramBuilder()
        with b.function("f") as f:
            f.nop()
            f.ret(label="out")
        image = b.build()
        rets = [i for i in image.functions["f"].instructions
                if i.op is Op.RET]
        assert len(rets) == 1
