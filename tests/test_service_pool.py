"""Tests for the job model and the job executors (fault handling).

Process dispatch lives in :mod:`repro.engine.executors` since the
executor redesign: ``make_executor(worker=...)`` builds either the
serial :class:`InProcessPool` or a fleet-backed :class:`JobExecutor`.
The deprecated ``WorkerPool`` / ``make_pool`` shims are covered at the
bottom (construction must warn, behaviour must be preserved).
"""

import os
import signal
import time

import pytest

from repro.engine.executors import JobExecutor, make_executor
from repro.engine.fleet import WorkerFleet
from repro.service.pool import (
    InProcessPool,
    WorkerPool,
    make_pool,
)
from repro.service.queue import (
    JobOutcome,
    JobQueue,
    RetryPolicy,
    TriageJob,
)


# ----------------------------------------------------------------------
# Worker functions: module-level so every start method can pickle them.
# ----------------------------------------------------------------------
def _ok_worker(payload):
    return {"echo": payload["value"]}


def _boom_worker(payload):
    raise RuntimeError("deterministic explosion")


def _sleepy_worker(payload):
    time.sleep(payload.get("sleep_s", 30.0))
    return {"never": "reached"}


def _die_once_worker(payload):
    """SIGKILL ourselves on the first attempt; succeed on the retry.

    The flag file marks that the first attempt happened — exactly the
    'worker killed mid-job' scenario the retry policy exists for.
    """
    flag = payload["flag_path"]
    if not os.path.exists(flag):
        with open(flag, "w") as fh:
            fh.write("attempt 1\n")
        os.kill(os.getpid(), signal.SIGKILL)
    return {"survived": True}


def _always_die_worker(payload):
    os.kill(os.getpid(), signal.SIGKILL)


def _sys_exit_worker(payload):
    raise SystemExit("worker bailed")


def _job(payload=None, **kwargs):
    _job.counter = getattr(_job, "counter", 0) + 1
    return TriageJob(job_id=f"j{_job.counter}", payload=payload or {},
                     **kwargs)


def _run(executor, jobs, on_complete=None):
    try:
        return executor.run(jobs, on_complete=on_complete)
    finally:
        executor.close()


class TestJobQueue:
    def test_priority_order_stable_fifo(self):
        q = JobQueue()
        first = _job(priority=1)
        urgent = _job(priority=0)
        second = _job(priority=1)
        for job in (first, urgent, second):
            q.push(job)
        assert q.drain() == [urgent, first, second]

    def test_rejects_duplicate_ids(self):
        q = JobQueue()
        job = _job()
        q.push(job)
        with pytest.raises(ValueError, match="duplicate job id"):
            q.push(job)

    def test_get_and_len(self):
        q = JobQueue()
        job = _job()
        q.push(job)
        assert q.get(job.job_id) is job
        assert len(q) == 1 and bool(q)
        with pytest.raises(IndexError):
            q.pop(), q.pop()


class TestRetryPolicy:
    def test_exponential_backoff(self):
        policy = RetryPolicy(max_retries=3, backoff_s=0.1,
                             backoff_factor=2.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)


class TestInProcessPool:
    def test_success(self):
        job = _job({"value": 42})
        InProcessPool(_ok_worker).run([job])
        assert job.outcome is JobOutcome.SUCCEEDED
        assert job.result == {"echo": 42}
        assert job.attempts == 1

    def test_exception_reported_as_failed(self):
        job = _job()
        InProcessPool(_boom_worker).run([job])
        assert job.outcome is JobOutcome.FAILED
        assert "deterministic explosion" in job.error

    def test_skips_already_terminal_jobs(self):
        job = _job()
        job.outcome = JobOutcome.CACHE_HIT
        InProcessPool(_boom_worker).run([job])
        assert job.outcome is JobOutcome.CACHE_HIT

    def test_systemexit_reported_as_failed(self):
        # Same contract as a child process: SystemExit is a failed job,
        # not a silent interpreter exit mid-corpus.
        job = _job()
        InProcessPool(_sys_exit_worker).run([job])
        assert job.outcome is JobOutcome.FAILED
        assert "SystemExit: worker bailed" in job.error

    def test_rejects_retry_policy_loudly(self):
        # Regression: the serial pool used to accept (and ignore) a
        # RetryPolicy, silently promising retries it could never run.
        with pytest.raises(TypeError):
            InProcessPool(_ok_worker, retry=RetryPolicy())


class TestMakeExecutorDispatch:
    def test_serial_builds_in_process_pool(self):
        executor = make_executor(worker=_ok_worker, jobs=1)
        assert isinstance(executor, InProcessPool)

    def test_parallel_builds_fleet_job_executor(self):
        executor = make_executor(worker=_ok_worker, jobs=4)
        try:
            assert isinstance(executor, JobExecutor)
            assert executor.parallel
        finally:
            executor.close()

    def test_serial_drops_retry(self):
        executor = make_executor(worker=_ok_worker, jobs=1,
                                 retry=RetryPolicy())
        assert isinstance(executor, InProcessPool)

    def test_rejects_both_and_neither_family(self):
        with pytest.raises(TypeError, match="exactly one"):
            make_executor()
        with pytest.raises(TypeError, match="exactly one"):
            make_executor(worker=_ok_worker,
                          machine_factory=lambda: None)


class TestJobExecutor:
    def test_runs_jobs_across_resident_workers(self):
        jobs = [_job({"value": i}) for i in range(5)]
        completed = []
        _run(make_executor(worker=_ok_worker, jobs=2), jobs,
             on_complete=lambda j: completed.append(j.job_id))
        assert all(j.outcome is JobOutcome.SUCCEEDED for j in jobs)
        assert [j.result["echo"] for j in jobs] == list(range(5))
        assert sorted(completed) == sorted(j.job_id for j in jobs)

    def test_workers_stay_resident_across_runs(self):
        # The fork-server property: two drains reuse the same worker
        # processes instead of forking per attempt.
        executor = make_executor(worker=_ok_worker, jobs=2)
        try:
            _ = executor.run([_job({"value": 1})])
            pids_first = {w.process.pid for w in executor.fleet.workers}
            _ = executor.run([_job({"value": 2}), _job({"value": 3})])
            pids_second = {w.process.pid for w in executor.fleet.workers}
            assert pids_first == pids_second
            assert executor.fleet.respawns == 0
        finally:
            executor.close()

    def test_exception_fails_without_retry(self):
        job = _job()
        _run(make_executor(worker=_boom_worker, jobs=2), [job])
        assert job.outcome is JobOutcome.FAILED
        assert job.attempts == 1
        assert "deterministic explosion" in job.error

    def test_killed_worker_is_retried_and_job_completes(self, tmp_path):
        job = _job({"flag_path": str(tmp_path / "flag")})
        other = _job({"value": 1})
        _run(make_executor(worker=_dispatching_worker, jobs=2,
                           retry=RetryPolicy(max_retries=2,
                                             backoff_s=0.01)),
             [job, other])
        assert job.outcome is JobOutcome.SUCCEEDED
        assert job.result == {"survived": True}
        assert job.attempts == 2
        assert other.outcome is JobOutcome.SUCCEEDED

    def test_retry_budget_exhausted_reports_failed(self):
        job = _job()
        _run(JobExecutor(_always_die_worker, jobs=1,
                         retry=RetryPolicy(max_retries=1,
                                           backoff_s=0.01)),
             [job])
        assert job.outcome is JobOutcome.FAILED
        assert job.attempts == 2  # first attempt + one retry
        assert "worker died" in job.error

    def test_timeout_reported_without_taking_down_executor(self):
        slow = _job({"sleep_s": 30.0}, timeout_s=0.3)
        fast = _job({"value": 7})
        start = time.monotonic()
        _run(make_executor(worker=_dispatching_worker, jobs=2),
             [slow, fast])
        assert time.monotonic() - start < 10.0  # nowhere near 30s
        assert slow.outcome is JobOutcome.TIMED_OUT
        assert "timeout" in slow.error
        assert fast.outcome is JobOutcome.SUCCEEDED

    def test_rejects_zero_jobs(self):
        with pytest.raises(ValueError):
            JobExecutor(_ok_worker, jobs=0)

    def test_systemexit_reported_as_failed(self):
        job = _job()
        _run(JobExecutor(_sys_exit_worker, jobs=1), [job])
        assert job.outcome is JobOutcome.FAILED
        assert "SystemExit: worker bailed" in job.error


def _late_runner(payload, state):
    """Fleet runner that posts its result late (past the deadline)."""
    time.sleep(payload["sleep_s"])
    return {"late": True}


class TestDeadlineDrain:
    def test_result_posted_at_deadline_not_reported_as_timeout(self):
        # Regression (kept from the process-per-attempt pool): the
        # deadline check used to kill the worker the instant the
        # deadline passed, discarding a result already sitting in the
        # pipe.  Reproduce deterministically: the worker posts its
        # result *after* the deadline, and the parent only polls once
        # both have happened — the fleet must drain the pipe before
        # declaring the timeout.
        fleet = WorkerFleet(_late_runner, 1)
        try:
            fleet.start()
            deadline = time.monotonic() + 10.0
            while not fleet.ready_idle() and time.monotonic() < deadline:
                fleet.poll(0.05)
            worker = fleet.ready_idle()[0]
            assert fleet.dispatch(worker, 7, {"sleep_s": 0.2},
                                  timeout_s=0.05)
            time.sleep(0.4)  # deadline long past, result in the pipe
            events = fleet.poll(0.0)
            assert [e.kind for e in events] == ["ok"]
            assert events[0].task_id == 7
            assert events[0].body == {"late": True}
        finally:
            fleet.close()


class TestDeprecatedShims:
    def test_worker_pool_warns_and_still_runs(self):
        jobs = [_job({"value": i}) for i in range(3)]
        with pytest.warns(DeprecationWarning, match="make_executor"):
            pool = WorkerPool(_ok_worker, jobs=2)
        try:
            pool.run(jobs)
        finally:
            pool.close()
        assert all(j.outcome is JobOutcome.SUCCEEDED for j in jobs)
        assert [j.result["echo"] for j in jobs] == [0, 1, 2]

    def test_worker_pool_rejects_zero_jobs(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                WorkerPool(_ok_worker, jobs=0)

    def test_make_pool_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="make_executor"):
            serial = make_pool(_ok_worker, jobs=1)
        assert isinstance(serial, InProcessPool)
        with pytest.warns(DeprecationWarning, match="make_executor"):
            wide = make_pool(_ok_worker, jobs=4)
        try:
            assert isinstance(wide, JobExecutor)
        finally:
            wide.close()


def _dispatching_worker(payload):
    """Route on payload shape so one executor test can mix behaviors."""
    if "flag_path" in payload:
        return _die_once_worker(payload)
    if "sleep_s" in payload:
        return _sleepy_worker(payload)
    return _ok_worker(payload)
