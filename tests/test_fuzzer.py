"""Tests for the seeded random concurrency fuzzer."""

import pytest

from repro.core.diagnose import Aitia
from repro.corpus.registry import get_bug
from repro.trace.fuzzer import (
    RandomScheduleFuzzer,
    reproduce_random_walk,
)
from repro.trace.syzkaller import run_bug_finder


class TestFuzzer:
    def test_finds_the_crash(self):
        bug = get_bug("SYZ-04")
        result = RandomScheduleFuzzer(bug.machine_factory, seed=7).fuzz()
        assert result.crashed
        assert result.failure.kind is bug.bug_type
        assert result.runs_executed >= 1

    def test_is_deterministic_per_seed(self):
        bug = get_bug("CVE-2017-2671")
        r1 = RandomScheduleFuzzer(bug.machine_factory, seed=3).fuzz()
        r2 = RandomScheduleFuzzer(bug.machine_factory, seed=3).fuzz()
        assert r1.runs_executed == r2.runs_executed
        assert r1.failure.signature == r2.failure.signature

    def test_different_seeds_differ(self):
        bug = get_bug("CVE-2017-2671")
        runs = {RandomScheduleFuzzer(bug.machine_factory, seed=s).fuzz()
                .runs_executed for s in range(4)}
        assert len(runs) > 1  # not all campaigns identical

    def test_budget_exhaustion_reported(self):
        bug = get_bug("SYZ-08")  # needs 2 interleavings: harder
        result = RandomScheduleFuzzer(bug.machine_factory, seed=0,
                                      max_runs=1).fuzz()
        # With a single random run the crash is essentially unreachable.
        assert not result.crashed
        assert result.runs_executed == 1

    def test_race_free_workload_never_crashes(self):
        from repro.kernel.builder import ProgramBuilder
        from repro.kernel.machine import KernelMachine, ThreadSpec

        b = ProgramBuilder()
        with b.function("a") as f:
            f.lock("L")
            f.inc(f.g("c"), 1)
            f.unlock("L")
        with b.function("bb") as f:
            f.lock("L")
            f.inc(f.g("c"), 1)
            f.unlock("L")
        image = b.build()

        def factory():
            return KernelMachine(image, [ThreadSpec("A", "a"),
                                         ThreadSpec("B", "bb")])

        result = RandomScheduleFuzzer(factory, seed=1, max_runs=60).fuzz()
        assert not result.crashed

    def test_reproduce_random_walk_revisits_the_crash(self):
        bug = get_bug("SYZ-04")
        result = RandomScheduleFuzzer(bug.machine_factory, seed=7).fuzz()
        machine = reproduce_random_walk(bug.machine_factory, 7,
                                        result.runs_executed)
        assert machine.failure is not None
        assert machine.failure.signature == result.failure.signature


class TestFuzzDrivenPipeline:
    @pytest.mark.parametrize("bug_id", ["SYZ-04", "CVE-2017-15649",
                                        "CVE-2017-2671"])
    def test_oracle_free_end_to_end(self, bug_id):
        """Crash found by random fuzzing -> report -> slicing -> LIFS ->
        Causality Analysis: the full story with no recorded schedule."""
        bug = get_bug(bug_id)
        report = run_bug_finder(bug, fuzz_seed=7)
        assert report.crash.symptom is bug.bug_type
        diagnosis = Aitia(bug, report=report).diagnose()
        assert diagnosis.reproduced
        for pair in bug.expected_chain_pairs:
            assert diagnosis.chain.contains_race_between(*pair)
