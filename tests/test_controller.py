"""Unit tests for schedule enforcement (the hypervisor controller)."""

from repro.core.schedule import OrderConstraint, Preemption, Schedule
from repro.hypervisor.controller import (
    ScheduleController,
    serial_schedule,
)
from repro.kernel.builder import ProgramBuilder
from repro.kernel.failures import FailureKind
from repro.kernel.machine import KernelMachine, ThreadSpec

from helpers import fig2_image, fig2_machine


def _addr(image, label):
    return image.instruction_labeled(label).addr


def _preempt(image, thread, label, switch_to=None, occurrence=1):
    return Preemption(thread=thread, instr_addr=_addr(image, label),
                      occurrence=occurrence, switch_to=switch_to,
                      instr_label=label)


def _constraint(image, thread, label, occurrence=1):
    return OrderConstraint(thread=thread, instr_addr=_addr(image, label),
                           occurrence=occurrence, instr_label=label)


class TestSerialSchedules:
    def test_serial_order_is_respected(self):
        m = fig2_machine()
        run = ScheduleController(m, serial_schedule(["A", "B"])).run()
        threads = [t.thread for t in run.trace]
        # All of A's instructions precede all of B's.
        switch = threads.index("B")
        assert all(t == "A" for t in threads[:switch])
        assert all(t == "B" for t in threads[switch:])
        assert run.failure is None
        assert run.interleavings == 0

    def test_reverse_serial_order(self):
        m = fig2_machine()
        run = ScheduleController(m, serial_schedule(["B", "A"])).run()
        assert run.trace[0].thread == "B"
        assert run.failure is None


class TestPreemptions:
    def test_single_preemption_switches(self):
        image = fig2_image()
        m = fig2_machine()
        schedule = Schedule(start_order=("A", "B"),
                            preemptions=[_preempt(image, "A", "A6", "B")])
        run = ScheduleController(m, schedule).run()
        labels = [t.instr_label for t in run.trace]
        # A parked right before A6; B ran; A6 executed after B's work.
        assert labels.index("B2") < labels.index("A6")
        assert run.interleavings == 1
        assert len(run.fired_preemptions) == 1

    def test_fig2_failure_schedule(self):
        image = fig2_image()
        m = fig2_machine()
        schedule = Schedule(
            start_order=("B", "A"),
            preemptions=[_preempt(image, "B", "B11", "A"),
                         _preempt(image, "A", "A12", "B")])
        run = ScheduleController(m, schedule).run()
        assert run.failed
        assert run.failure.kind is FailureKind.ASSERTION
        assert run.failure.instr_label == "B17"
        assert run.interleavings == 2

    def test_preemption_occurrence_matching(self):
        b = ProgramBuilder()
        with b.function("loop") as f:
            f.inc(f.g("c"), 1, label="I")
            f.load("v", f.g("c"))
            f.binop("done", "ge", f.r("v"), 3)
            f.brz("done", "I")
        with b.function("other") as f:
            f.store(f.g("seen"), 1, label="O")
        image = b.build()
        m = KernelMachine(image, [ThreadSpec("L", "loop"),
                                  ThreadSpec("O", "other")])
        schedule = Schedule(
            start_order=("L", "O"),
            preemptions=[Preemption("L", _addr(image, "I"), occurrence=2,
                                    switch_to="O", instr_label="I")])
        run = ScheduleController(m, schedule).run()
        labels = [t.instr_label for t in run.trace]
        first_i = labels.index("I")
        o_pos = labels.index("O")
        second_i = labels.index("I", first_i + 1)
        assert first_i < o_pos < second_i  # parked before the 2nd I only

    def test_unfired_preemption_is_harmless(self):
        image = fig2_image()
        m = fig2_machine()
        # B12 is never reached when B runs second (fanout already set).
        schedule = Schedule(start_order=("A", "B"),
                            preemptions=[_preempt(image, "B", "B12", "A")])
        run = ScheduleController(m, schedule).run()
        assert run.failure is None
        assert run.fired_preemptions == []

    def test_preemption_to_unknown_thread_falls_back(self):
        image = fig2_image()
        m = fig2_machine()
        schedule = Schedule(
            start_order=("A", "B"),
            preemptions=[_preempt(image, "A", "A6", "kworker/ghost#9")])
        run = ScheduleController(m, schedule).run()
        # The run must complete despite the unknown switch target.
        assert run.failure is None
        assert len(run.fired_preemptions) == 1


class TestConstraints:
    def test_constraints_enforce_total_order(self):
        image = fig2_image()
        m = fig2_machine()
        # Force B2 before A2 (B starts even though A is first in order).
        schedule = Schedule(
            start_order=("A", "B"),
            constraints=[_constraint(image, "B", "B2"),
                         _constraint(image, "A", "A2")])
        run = ScheduleController(m, schedule).run()
        labels = [t.instr_label for t in run.trace]
        assert labels.index("B2") < labels.index("A2")
        assert run.dropped_constraints == []

    def test_disappeared_constraint_is_dropped(self):
        image = fig2_image()
        m = fig2_machine()
        # Run A fully first; then B2 reads non-NULL and B returns early,
        # so a constraint on B11 can never execute.
        schedule = Schedule(
            start_order=("A", "B"),
            constraints=[_constraint(image, "A", "A6"),
                         _constraint(image, "B", "B11")])
        run = ScheduleController(m, schedule).run()
        assert [c.instr_label for c in run.dropped_constraints] == ["B11"]
        assert run.failure is None

    def test_enforced_failure_order_via_constraints(self):
        image = fig2_image()
        m = fig2_machine()
        schedule = Schedule(
            start_order=("A", "B"),
            constraints=[
                _constraint(image, "A", "A2"),
                _constraint(image, "B", "B2"),
                _constraint(image, "B", "B11"),
                _constraint(image, "A", "A6"),
                _constraint(image, "B", "B12"),
            ])
        run = ScheduleController(m, schedule).run()
        assert run.failed
        assert run.failure.instr_label == "B17"

    def test_signature_equality_for_equivalent_runs(self):
        image = fig2_image()
        run1 = ScheduleController(fig2_machine(),
                                  serial_schedule(["A", "B"])).run()
        # Preempting where the other thread has already finished changes
        # nothing: same Mazurkiewicz trace.
        schedule = Schedule(start_order=("A", "B"),
                            preemptions=[_preempt(image, "B", "B2", "A")])
        run2 = ScheduleController(fig2_machine(), schedule).run()
        assert run1.signature() == run2.signature()

    def test_signature_differs_across_conflict_orders(self):
        run1 = ScheduleController(fig2_machine(),
                                  serial_schedule(["A", "B"])).run()
        run2 = ScheduleController(fig2_machine(),
                                  serial_schedule(["B", "A"])).run()
        assert run1.signature() != run2.signature()


class TestDeadlockDetection:
    def test_abba_deadlock_reported(self):
        b = ProgramBuilder()
        with b.function("a") as f:
            f.lock("L1", label="A1")
            f.lock("L2", label="A2")
            f.unlock("L2")
            f.unlock("L1")
        with b.function("bb") as f:
            f.lock("L2", label="B1")
            f.lock("L1", label="B2")
            f.unlock("L1")
            f.unlock("L2")
        image = b.build()
        m = KernelMachine(image, [ThreadSpec("A", "a"),
                                  ThreadSpec("B", "bb")])
        schedule = Schedule(
            start_order=("A", "B"),
            preemptions=[Preemption("A", _addr(image, "A2"), 1, "B",
                                    instr_label="A2")])
        run = ScheduleController(m, schedule).run()
        assert run.failed
        assert run.failure.kind is FailureKind.DEADLOCK

    def test_blocked_then_released_completes(self):
        b = ProgramBuilder()
        with b.function("a") as f:
            f.lock("L")
            f.inc(f.g("c"), 1, label="AI")
            f.unlock("L")
        with b.function("bb") as f:
            f.lock("L")
            f.inc(f.g("c"), 1, label="BI")
            f.unlock("L")
        image = b.build()
        m = KernelMachine(image, [ThreadSpec("A", "a"),
                                  ThreadSpec("B", "bb")])
        schedule = Schedule(
            start_order=("A", "B"),
            preemptions=[Preemption("A", _addr(image, "AI"), 1, "B",
                                    instr_label="AI")])
        run = ScheduleController(m, schedule).run()
        assert run.failure is None
        assert m.memory.load(m.memory.global_addr("c")) == 2


class TestWatchpoints:
    def test_preemption_installs_watchpoint_and_traps_conflicts(self):
        image = fig2_image()
        m = fig2_machine()
        # Park A right before A6 (po_fanout store); B then reads po_fanout
        # at B2 and B12 -> watchpoint hits identify the racing pair.
        schedule = Schedule(start_order=("A", "B"),
                            preemptions=[_preempt(image, "A", "A6", "B")])
        run = ScheduleController(m, schedule).run()
        hit_labels = {(h.watchpoint.owner_label, h.access.instr_label)
                      for h in run.watch_hits}
        assert ("A6", "B2") in hit_labels


class TestStuckResolution:
    def test_infeasible_constraint_dropped_without_deadlock(self):
        """A constraint queue that would park a lock holder while the
        other thread needs the lock must resolve by dropping, not hang."""
        b = ProgramBuilder()
        with b.function("a") as f:
            f.lock("L", label="ALock")
            f.store(f.g("x"), 1, label="A1")
            f.unlock("L", label="AUnlock")
            f.store(f.g("y"), 1, label="A2")
        with b.function("bb") as f:
            f.lock("L", label="BLock")
            f.load("vx", f.g("x"), label="B1")
            f.unlock("L", label="BUnlock")
        image = b.build()
        m = KernelMachine(image, [ThreadSpec("A", "a"),
                                  ThreadSpec("B", "bb")])
        # Demand B1 before A1: B needs L, but the schedule starts A which
        # grabs L and then parks before A1 (its constrained instruction is
        # later in the queue).  Enforcement must drop and finish.
        schedule = Schedule(
            start_order=("A", "B"),
            constraints=[_constraint(image, "B", "B1"),
                         _constraint(image, "A", "A1")])
        run = ScheduleController(m, schedule).run()
        assert run.failure is None
        assert m.all_done()

    def test_constraint_on_never_spawned_kworker_disappears(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.load("v", f.g("flag"), label="M1")
            f.brz("v", "out", label="M2")
            f.queue_work("work", label="M3")
            f.ret(label="out")
        with b.function("work") as f:
            f.store(f.g("done"), 1, label="W1")
        image = b.build()
        m = KernelMachine(image, [ThreadSpec("T", "main")],
                          globals_init={"flag": 0})
        schedule = Schedule(
            start_order=("T",),
            constraints=[OrderConstraint(
                thread="kworker/work#1",
                instr_addr=image.instruction_labeled("W1").addr,
                occurrence=1, instr_label="W1")])
        run = ScheduleController(m, schedule).run()
        assert run.failure is None
        assert [c.instr_label for c in run.dropped_constraints] == ["W1"]

    def test_thread_kinds_reported(self):
        from repro.corpus.registry import get_bug
        bug = get_bug("SYZ-04")
        run = ScheduleController(bug.machine_factory(),
                                 bug.known_failing_schedule).run()
        kinds = set(run.thread_kinds.values())
        assert "syscall" in kinds and "kworker" in kinds
