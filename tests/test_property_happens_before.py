"""Property-based tests: vector clocks and happens-before invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.happens_before import (
    VectorClock,
    compute_happens_before,
    find_data_races_hb,
)
from repro.core.races import find_data_races
from repro.core.schedule import Preemption, Schedule
from repro.hypervisor.controller import ScheduleController

from helpers import fig2_image, fig2_machine

_clock_dicts = st.dictionaries(
    st.sampled_from(["A", "B", "K"]), st.integers(0, 5), max_size=3)


class TestVectorClockProperties:
    @given(_clock_dicts, _clock_dicts)
    @settings(max_examples=100, deadline=None)
    def test_join_is_commutative(self, d1, d2):
        a, b = VectorClock.of(d1), VectorClock.of(d2)
        assert a.join(b) == b.join(a)

    @given(_clock_dicts, _clock_dicts, _clock_dicts)
    @settings(max_examples=100, deadline=None)
    def test_join_is_associative(self, d1, d2, d3):
        a, b, c = (VectorClock.of(d) for d in (d1, d2, d3))
        assert a.join(b).join(c) == a.join(b.join(c))

    @given(_clock_dicts)
    @settings(max_examples=100, deadline=None)
    def test_join_is_idempotent(self, d):
        a = VectorClock.of(d)
        assert a.join(a) == a

    @given(_clock_dicts, _clock_dicts)
    @settings(max_examples=100, deadline=None)
    def test_both_leq_join(self, d1, d2):
        a, b = VectorClock.of(d1), VectorClock.of(d2)
        joined = a.join(b)
        assert a.leq(joined) and b.leq(joined)

    @given(_clock_dicts, st.sampled_from(["A", "B", "K"]))
    @settings(max_examples=100, deadline=None)
    def test_tick_strictly_increases(self, d, thread):
        a = VectorClock.of(d)
        ticked = a.tick(thread)
        assert a.leq(ticked) and not ticked.leq(a)


_preempt_labels = st.lists(
    st.sampled_from(["A2", "A5", "A6", "B2", "B11", "B12"]),
    min_size=0, max_size=2, unique=True)

IMAGE = fig2_image()


def _run_with(labels):
    preemptions = []
    for label in labels:
        thread = "A" if label.startswith("A") else "B"
        target = "B" if thread == "A" else "A"
        preemptions.append(Preemption(
            thread=thread,
            instr_addr=IMAGE.instruction_labeled(label).addr,
            occurrence=1, switch_to=target, instr_label=label))
    schedule = Schedule(start_order=("A", "B"), preemptions=preemptions)
    return ScheduleController(fig2_machine(), schedule).run()


class TestHappensBeforeProperties:
    @given(_preempt_labels)
    @settings(max_examples=40, deadline=None)
    def test_relation_is_a_strict_partial_order(self, labels):
        run = _run_with(labels)
        index = compute_happens_before(run.trace, IMAGE, run.spawn_events)
        seqs = [t.seq for t in run.trace][:12]
        for s1 in seqs:
            assert not index.happens_before(s1, s1)
            for s2 in seqs:
                if index.happens_before(s1, s2):
                    assert not index.happens_before(s2, s1)
                    assert s1 < s2  # consistent with execution order

    @given(_preempt_labels)
    @settings(max_examples=40, deadline=None)
    def test_hb_races_always_subset_of_lockset_races(self, labels):
        run = _run_with(labels)
        lockset = {r.key for r in find_data_races(run.accesses)}
        hb = {r.key for r in find_data_races_hb(
            run.accesses, run.trace, IMAGE, run.spawn_events)}
        assert hb <= lockset

    @given(_preempt_labels)
    @settings(max_examples=40, deadline=None)
    def test_program_order_always_ordered(self, labels):
        run = _run_with(labels)
        index = compute_happens_before(run.trace, IMAGE, run.spawn_events)
        by_thread = {}
        for t in run.trace:
            by_thread.setdefault(t.thread, []).append(t.seq)
        for seqs in by_thread.values():
            for earlier, later in zip(seqs, seqs[1:]):
                assert index.happens_before(earlier, later)
