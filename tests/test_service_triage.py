"""Tests for the triage orchestrator, artifacts, metrics, and CLI."""

import json

import pytest

from repro import api
from repro.analysis.evaluation import evaluate_corpus
from repro.cli import main
from repro.corpus.registry import get_bug
from repro.service.artifacts import (
    ArtifactParseError,
    CrashArtifact,
    emit_artifact,
    scan_directory,
)
from repro.service.metrics import ServiceMetrics
from repro.service.queue import JobOutcome
from repro.service.store import ResultStore
from repro.service.triage import TriageService
from repro.trace.syzkaller import run_bug_finder


class TestArtifacts:
    def test_round_trip(self):
        artifact = CrashArtifact.from_report(run_bug_finder(get_bug("SYZ-04")))
        assert CrashArtifact.parse(artifact.render()) == artifact

    def test_to_report_rebuilds_pipeline_input(self):
        original = run_bug_finder(get_bug("SYZ-04"))
        rebuilt = CrashArtifact.from_report(original).to_report()
        assert rebuilt.bug_id == "SYZ-04"
        assert rebuilt.crash.symptom is original.crash.symptom
        assert rebuilt.crash.location == original.crash.location
        assert len(rebuilt.history) == len(original.history)

    def test_file_round_trip_and_scan(self, tmp_path):
        path = emit_artifact(get_bug("SYZ-04"), str(tmp_path))
        assert scan_directory(str(tmp_path)) == [path]
        assert CrashArtifact.read(path).bug_id == "SYZ-04"

    @pytest.mark.parametrize("text,match", [
        ("", "header"),
        ("# aitia-crash-artifact v1\n# == crash ==", "bug"),
        ("# aitia-crash-artifact v1\n# bug: \n# == crash ==", "empty bug"),
        ("# aitia-crash-artifact v1\n# bug: X\nBUG: y", "marker"),
        ("# aitia-crash-artifact v1\n# bug: X\n# == ftrace ==\n"
         "# == crash ==\nBUG: y", "out of order"),
        ("# aitia-crash-artifact v1\n# bug: X\n# == crash ==\n"
         "# == ftrace ==\nz", "empty crash"),
    ])
    def test_parse_errors(self, text, match):
        with pytest.raises(ArtifactParseError, match=match):
            CrashArtifact.parse(text)


class TestTriageService:
    def test_duplicate_signature_diagnosed_once(self, tmp_path):
        bug = get_bug("SYZ-04")
        artifact = CrashArtifact.from_report(run_bug_finder(bug))
        service = TriageService(jobs=1)
        first = service.submit_artifact(artifact, source="report-1")
        second = service.submit_artifact(artifact, source="report-2")
        assert first is second
        assert first.duplicates == ["report-2"]
        summary = service.run()
        assert len(summary.results) == 1
        assert summary.results[0].outcome == "succeeded"
        assert summary.results[0].duplicates == 1
        assert service.metrics.count("reports_submitted") == 2
        assert service.metrics.count("reports_deduped") == 1
        assert service.metrics.count("jobs_enqueued") == 1

    def test_artifact_diagnosis_matches_direct(self):
        bug = get_bug("SYZ-04")
        artifact = CrashArtifact.from_report(run_bug_finder(bug))
        service = TriageService(jobs=1)
        service.submit_artifact(artifact)
        summary = service.run()
        assert summary.results[0].chain == api.diagnose(bug).chain.render()

    def test_cache_hit_across_service_instances(self, tmp_path):
        store_path = str(tmp_path / "store.jsonl")
        bug = get_bug("SYZ-04")
        s1 = api.triage([bug], store=ResultStore(store_path))
        assert s1.results[0].outcome == "succeeded"
        s2 = api.triage([bug], store=ResultStore(store_path))
        assert s2.results[0].outcome == "cache_hit"
        assert s2.results[0].chain == s1.results[0].chain
        assert s2.results[0].seconds == 0.0
        assert s2.count(JobOutcome.SUCCEEDED) == 0

    def test_corpus_triage_matches_sequential_evaluation(self):
        bugs = [get_bug("SYZ-04"), get_bug("CVE-2017-2671"),
                get_bug("CVE-2016-10200")]
        summary = api.triage(bugs, jobs=2)
        assert summary.all_ok
        by_id = {r.bug_id: r for r in summary.results}
        for row in evaluate_corpus(bugs).rows:
            assert by_id[row.bug_id].chain == row.chain
            assert by_id[row.bug_id].reproduced == row.reproduced

    def test_intake_directory_skips_malformed(self, tmp_path):
        emit_artifact(get_bug("SYZ-04"), str(tmp_path))
        (tmp_path / "junk.crash").write_text("not an artifact\n")
        (tmp_path / "ignored.txt").write_text("wrong extension\n")
        service = TriageService(jobs=1)
        jobs = service.intake_directory(str(tmp_path))
        assert len(jobs) == 1
        assert service.metrics.count("intake_errors") == 1

    def test_summary_json_and_render(self):
        summary = api.triage([get_bug("SYZ-04")])
        payload = json.loads(summary.to_json())
        assert payload["results"][0]["bug_id"] == "SYZ-04"
        assert "counters" in payload["metrics"]
        rendered = summary.render()
        assert "SYZ-04" in rendered and "totals:" in rendered


class TestServiceMetrics:
    def test_counters_and_timers(self):
        metrics = ServiceMetrics()
        metrics.incr("x")
        metrics.incr("x", 2)
        with metrics.timer("stage"):
            pass
        snap = metrics.snapshot()
        assert snap["counters"]["x"] == 3
        assert snap["timings"]["stage"]["count"] == 1
        assert "x" in metrics.render()
        assert "stage_seconds" in metrics.render()


class TestParallelEvaluation:
    def test_evaluate_corpus_jobs_matches_sequential(self):
        bugs = [get_bug("SYZ-04"), get_bug("SYZ-05")]
        seq = evaluate_corpus(bugs)
        par = evaluate_corpus(bugs, jobs=2)
        assert [r.__dict__ for r in par.rows] == [
            r.__dict__ for r in seq.rows]


class TestCliTriage:
    def test_corpus_triage_command(self, capsys, tmp_path):
        store = tmp_path / "store.jsonl"
        out_json = tmp_path / "triage.json"
        argv = ["triage", "--corpus", "--bugs", "SYZ-04", "--jobs", "2",
                "--store", str(store), "--json", str(out_json)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "succeeded" in out and "service metrics" in out
        assert json.loads(out_json.read_text())["results"]
        # second run: answered from the store
        assert main(argv[:-2]) == 0
        assert "cache_hit" in capsys.readouterr().out

    def test_intake_directory_command_with_emit(self, capsys, tmp_path):
        intake = tmp_path / "reports"
        argv = ["triage", "--corpus", "--bugs", "SYZ-04",
                "--emit", str(intake)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(["triage", str(intake)]) == 0
        assert "SYZ-04" in capsys.readouterr().out

    def test_requires_intake_or_corpus(self, capsys):
        assert main(["triage"]) == 2
        assert "intake directory or --corpus" in capsys.readouterr().err

    def test_missing_intake_directory_is_a_clean_error(self, capsys,
                                                       tmp_path):
        assert main(["triage", str(tmp_path / "nope")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_empty_intake_directory_is_nothing_to_do(self, capsys,
                                                     tmp_path):
        from repro.service.triage import EMPTY_INTAKE_MESSAGE

        intake = tmp_path / "empty"
        intake.mkdir()
        assert main(["triage", str(intake)]) == 0  # not an error
        out = capsys.readouterr().out
        assert EMPTY_INTAKE_MESSAGE in out
        assert "totals:" not in out  # no empty table rendered

    def test_empty_intake_still_writes_json(self, capsys, tmp_path):
        intake = tmp_path / "empty"
        intake.mkdir()
        out_json = tmp_path / "triage.json"
        assert main(["triage", str(intake), "--json", str(out_json)]) == 0
        assert json.loads(out_json.read_text()) == {
            "results": [], "metrics": {"counters": {}, "timings": {}}}

    def test_empty_summary_property(self):
        from repro.service.triage import TriageSummary

        assert TriageSummary().empty
        assert TriageSummary().all_ok  # vacuously fine

    def test_timed_out_job_reported_without_crashing(self, capsys):
        argv = ["triage", "--corpus", "--bugs", "SYZ-04", "--jobs", "2",
                "--timeout", "0.000001"]
        assert main(argv) == 1  # not ok, but a clean summary
        out = capsys.readouterr().out
        assert "timed_out" in out and "totals:" in out

    def test_evaluate_jobs_flag(self, capsys):
        assert main(["evaluate", "SYZ-05", "--jobs", "2"]) == 0
        assert "SYZ-05" in capsys.readouterr().out
