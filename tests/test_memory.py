"""Unit tests for the shared memory and KASAN-style allocator."""

import pytest

from repro.kernel.failures import FailureKind, KernelFault
from repro.kernel.memory import GLOBAL_BASE, HEAP_BASE, Memory, ObjectState


class TestGlobals:
    def test_define_and_read(self):
        mem = Memory()
        addr = mem.define_global("x", 42)
        assert addr >= GLOBAL_BASE
        assert mem.load(addr) == 42

    def test_redefinition_keeps_address(self):
        mem = Memory()
        a1 = mem.define_global("x", 1)
        a2 = mem.define_global("x", 2)
        assert a1 == a2
        assert mem.load(a1) == 2

    def test_distinct_globals_distinct_addresses(self):
        mem = Memory()
        assert mem.define_global("x") != mem.define_global("y")

    def test_global_addr_unknown_raises(self):
        with pytest.raises(KeyError):
            Memory().global_addr("nope")

    def test_symbolize_global(self):
        mem = Memory()
        addr = mem.define_global("po_fanout")
        assert mem.symbolize(addr) == "po_fanout"


class TestHeap:
    def test_alloc_returns_heap_address(self):
        mem = Memory()
        addr = mem.alloc(16, "obj")
        assert addr >= HEAP_BASE
        assert mem.load(addr) == 0  # zero-initialised

    def test_alloc_never_reuses_addresses(self):
        mem = Memory()
        a = mem.alloc(8, "a")
        mem.free(a)
        b = mem.alloc(8, "b")
        assert a != b

    def test_store_load_roundtrip(self):
        mem = Memory()
        addr = mem.alloc(16, "obj")
        mem.store(addr + 8, 99)
        assert mem.load(addr + 8) == 99

    def test_alloc_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            Memory().alloc(0, "zero")

    def test_symbolize_heap_field(self):
        mem = Memory()
        addr = mem.alloc(16, "irqfd")
        assert mem.symbolize(addr) == "irqfd"
        assert mem.symbolize(addr + 8) == "irqfd+8"


class TestFaults:
    def test_null_dereference_is_gpf(self):
        with pytest.raises(KernelFault) as exc:
            Memory().load(0)
        assert exc.value.kind is FailureKind.GPF

    def test_wild_access_is_gpf(self):
        with pytest.raises(KernelFault) as exc:
            Memory().load(0xDEAD_BEEF)
        assert exc.value.kind is FailureKind.GPF

    def test_use_after_free_read(self):
        mem = Memory()
        addr = mem.alloc(16, "obj")
        mem.free(addr, site="K1")
        with pytest.raises(KernelFault) as exc:
            mem.load(addr)
        assert exc.value.kind is FailureKind.KASAN_UAF
        assert "K1" in exc.value.message

    def test_use_after_free_write(self):
        mem = Memory()
        addr = mem.alloc(16, "obj")
        mem.free(addr)
        with pytest.raises(KernelFault) as exc:
            mem.store(addr + 8, 1)
        assert exc.value.kind is FailureKind.KASAN_UAF

    def test_out_of_bounds_in_redzone(self):
        mem = Memory()
        addr = mem.alloc(16, "obj")
        with pytest.raises(KernelFault) as exc:
            mem.load(addr + 16)
        assert exc.value.kind is FailureKind.KASAN_OOB

    def test_double_free(self):
        mem = Memory()
        addr = mem.alloc(16, "obj")
        mem.free(addr)
        with pytest.raises(KernelFault) as exc:
            mem.free(addr)
        assert exc.value.kind is FailureKind.DOUBLE_FREE

    def test_free_of_non_heap_address_is_gpf(self):
        with pytest.raises(KernelFault) as exc:
            Memory().free(0x123)
        assert exc.value.kind is FailureKind.GPF

    def test_in_bounds_uninitialised_slot_reads_zero(self):
        mem = Memory()
        addr = mem.alloc(32, "obj")
        # Slots are initialised every 8 bytes; any aligned in-range slot
        # must read as zero rather than faulting.
        assert mem.load(addr + 24) == 0


class TestLeakDetection:
    def test_unreferenced_tracked_object_is_leaked(self):
        mem = Memory()
        mem.alloc(16, "filter", leak_tracked=True)
        assert len(mem.live_leaked_objects()) == 1

    def test_referenced_object_is_not_leaked(self):
        mem = Memory()
        slot = mem.define_global("task_filter")
        addr = mem.alloc(16, "filter", leak_tracked=True)
        mem.store(slot, addr)
        assert mem.live_leaked_objects() == []

    def test_reference_inside_tuple_counts(self):
        mem = Memory()
        slot = mem.define_global("filter_list", ())
        addr = mem.alloc(16, "filter", leak_tracked=True)
        mem.store(slot, (addr,))
        assert mem.live_leaked_objects() == []

    def test_freed_object_is_not_leaked(self):
        mem = Memory()
        addr = mem.alloc(16, "filter", leak_tracked=True)
        mem.free(addr)
        assert mem.live_leaked_objects() == []

    def test_untracked_object_is_ignored(self):
        mem = Memory()
        mem.alloc(16, "scratch")
        assert mem.live_leaked_objects() == []


class TestSnapshot:
    def test_snapshot_restore_roundtrip(self):
        mem = Memory()
        g = mem.define_global("x", 5)
        addr = mem.alloc(16, "obj")
        snap = mem.snapshot()
        mem.store(g, 9)
        mem.free(addr)
        mem.restore(snap)
        assert mem.load(g) == 5
        assert mem.load(addr) == 0  # object alive again

    def test_snapshot_is_deep(self):
        mem = Memory()
        addr = mem.alloc(16, "obj")
        snap = mem.snapshot()
        mem.free(addr)
        # Mutating after snapshot must not affect the snapshot contents.
        obj_states = {o.state for o in snap["objects"].values()}
        assert obj_states == {ObjectState.ALLOCATED}
