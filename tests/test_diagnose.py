"""Integration tests for the Aitia orchestrator and the syzkaller
front-end pipeline."""

import pytest

from repro.core.diagnose import Aitia
from repro.core.lifs import LifsConfig
from repro.corpus.registry import get_bug
from repro.trace.syzkaller import run_bug_finder


class TestDirectDiagnosis:
    def test_cve_2017_15649_direct(self):
        bug = get_bug("CVE-2017-15649")
        diagnosis = Aitia(bug).diagnose()
        assert diagnosis.reproduced
        assert diagnosis.interleaving_count == 2
        assert diagnosis.chain.contains_race_between("B2", "A6")
        assert diagnosis.chain.contains_race_between("A2", "B11")
        assert diagnosis.chain.contains_race_between("A6", "B12")

    def test_costs_are_populated(self):
        bug = get_bug("CVE-2017-2671")
        diagnosis = Aitia(bug).diagnose()
        assert diagnosis.lifs_cost.seconds > 0
        assert diagnosis.ca_cost.seconds > 0
        # CA is dominated by reboots (failing flips), so its per-schedule
        # cost must exceed LIFS's.
        lifs_per = diagnosis.lifs_cost.seconds / diagnosis.lifs_schedules
        ca_per = diagnosis.ca_cost.seconds / diagnosis.ca_schedules
        assert ca_per > lifs_per

    def test_render_mentions_chain(self):
        bug = get_bug("SYZ-04")
        diagnosis = Aitia(bug).diagnose()
        text = diagnosis.render()
        assert "chain:" in text
        assert "K1 => A2" in text

    def test_unreproduced_diagnosis(self):
        bug = get_bug("CVE-2017-15649")
        diagnosis = Aitia(bug,
                          lifs_config=LifsConfig(max_schedules=3)).diagnose()
        assert not diagnosis.reproduced
        assert diagnosis.chain is None
        assert "NOT reproduced" in diagnosis.render()


class TestBugFinderPipeline:
    def test_report_contains_history_and_crash(self):
        bug = get_bug("CVE-2017-15649")
        report = run_bug_finder(bug)
        assert report.crash.symptom is bug.bug_type
        assert report.crash.location == bug.failure_location
        assert len(report.history.syscalls) >= len(bug.threads)
        assert report.fuzzing_runs >= 1

    def test_report_driven_diagnosis(self):
        bug = get_bug("CVE-2017-15649")
        report = run_bug_finder(bug)
        diagnosis = Aitia(bug, report=report).diagnose()
        assert diagnosis.reproduced
        assert diagnosis.slice_used is not None
        assert diagnosis.slices_tried >= 1
        assert diagnosis.chain.contains_race_between("A6", "B12")

    def test_decoy_slice_is_rejected_first(self):
        """CVE-2019-6974's history has an innocuous concurrent group
        closer to the failure; AITIA must reject it and move on."""
        bug = get_bug("CVE-2019-6974")
        report = run_bug_finder(bug)
        diagnosis = Aitia(bug, report=report).diagnose()
        assert diagnosis.reproduced
        assert diagnosis.slices_tried >= 2
        procs = {e.proc for e in diagnosis.slice_used.syscall_events}
        assert procs == {"A", "B"}

    def test_inconsistent_workload_raises(self):
        bug = get_bug("CVE-2017-15649")

        class Broken:
            bug_id = "broken"
            machine_factory = bug.machine_factory
            known_failing_schedule = type(bug.known_failing_schedule)(
                start_order=("A", "B"))  # serial order does not crash
            history = bug.history

        with pytest.raises(RuntimeError, match="did not crash"):
            run_bug_finder(Broken())

    def test_setup_calls_replayed_in_slices(self):
        bug = get_bug("CVE-2017-15649")
        report = run_bug_finder(bug)
        diagnosis = Aitia(bug, report=report).diagnose()
        assert len(diagnosis.slice_used.setup) >= 1
        assert diagnosis.slice_used.setup[0].name == "socket"


class TestKthreadBugsThroughPipeline:
    @pytest.mark.parametrize("bug_id", ["SYZ-04", "SYZ-11", "SYZ-12"])
    def test_background_thread_bug(self, bug_id):
        bug = get_bug(bug_id)
        report = run_bug_finder(bug)
        diagnosis = Aitia(bug, report=report).diagnose()
        assert diagnosis.reproduced
        threads = {t.thread for t in diagnosis.lifs_result.failure_run.trace}
        assert any(t.startswith(("kworker/", "rcu/")) for t in threads)


class TestSliceAccounting:
    def test_rejected_slices_counted(self):
        """SYZ-07's closest slice is an innocuous decoy pair: its LIFS
        work must be accounted separately from the winner's."""
        bug = get_bug("SYZ-07")
        report = run_bug_finder(bug)
        diagnosis = Aitia(bug, report=report).diagnose()
        assert diagnosis.reproduced
        assert diagnosis.slices_tried >= 2
        assert diagnosis.rejected_slice_schedules >= 2
        assert (diagnosis.total_lifs_schedules
                == diagnosis.lifs_schedules
                + diagnosis.rejected_slice_schedules)

    def test_single_slice_has_no_rejected_work(self):
        bug = get_bug("CVE-2017-15649")
        report = run_bug_finder(bug)
        diagnosis = Aitia(bug, report=report).diagnose()
        assert diagnosis.rejected_slice_schedules == 0
        assert diagnosis.total_lifs_schedules == diagnosis.lifs_schedules
