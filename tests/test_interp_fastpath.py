"""Regression tests for the interpreter fast path (PR 9).

Covers the three bug fixes that rode along with the instruction-level
fast path:

* ``CheckpointStore.put`` must not memoize ``id(obj) -> key`` for
  objects the store does not retain — a garbage-collected duplicate's
  id can be reused by a different checkpoint, which the stale memo
  would resolve to the wrong key.
* ``Memory.free`` of a redzone address must fault (GPF), not silently
  free the object whose redzone it is — or, worse, a neighbour.
* ``Memory`` reads must not mutate cells: loading an uninitialized
  in-bounds slot returns 0 without materializing it, so pure loads
  never change ``machine_state_key``.
"""

import gc

import pytest

from repro.kernel.builder import ProgramBuilder
from repro.kernel.failures import FailureKind, KernelFault
from repro.kernel.machine import KernelMachine, ThreadSpec
from repro.kernel.memory import Memory, ObjectState
from repro.kernel.snapshot import (
    CheckpointStore,
    machine_state_key,
    snapshot_machine,
    snapshot_state_key,
)


class TestCheckpointStoreIdReuse:
    """S1: the id() memo may only reference objects the store keeps
    alive."""

    def test_discarded_duplicate_is_not_memoized(self):
        store = CheckpointStore()
        original = ["checkpoint", 1]
        duplicate = ["checkpoint", 1]
        key = store.put(original)
        # Same content, same blob, same key — the store already holds
        # the original, so the duplicate object is NOT retained...
        assert store.put(duplicate) == key
        assert store.get(key) is original
        # ...and must therefore not be memoized by id: once collected,
        # its id can belong to a brand-new object.
        assert id(duplicate) not in store._key_by_id
        assert id(original) in store._key_by_id

    def test_id_reuse_after_gc_resolves_to_fresh_key(self):
        """Force the historical collision: a dropped duplicate's id is
        recycled for a different checkpoint, whose put() must produce
        its own content key, not the stale one."""
        store = CheckpointStore()
        original = ["checkpoint", 1]
        stale_key = store.put(original)
        duplicate = ["checkpoint", 1]
        store.put(duplicate)
        reused_id = id(duplicate)
        del duplicate
        gc.collect()
        # CPython freelists usually hand the freed id straight back to
        # the next same-shaped allocation; retry a few times to be sure.
        for attempt in range(64):
            newcomer = ["checkpoint", 2, attempt]
            if id(newcomer) == reused_id:
                fresh_key = store.put(newcomer)
                assert fresh_key != stale_key
                assert store.get(fresh_key) is newcomer
                break
            del newcomer
        # Even when the allocator never reused the id, the memo
        # invariant above already guarantees no stale resolution.
        assert store.get(stale_key) is original

    def test_repeated_put_of_retained_object_pickles_once(self):
        store = CheckpointStore()
        obj = {"base": 7}
        key = store.put(obj)
        assert store.put(obj) == key
        assert store._key_by_id[id(obj)] == key


class TestRedzoneFree:
    """S2: FREE of a non-base, non-interior pointer is a GPF."""

    def test_free_of_redzone_address_faults(self):
        mem = Memory()
        a = mem.alloc(16, "victim")
        b = mem.alloc(16, "neighbour")
        with pytest.raises(KernelFault) as exc:
            mem.free(a + 16)  # first redzone byte past `victim`
        assert exc.value.kind is FailureKind.GPF
        assert "redzone" in exc.value.message
        assert exc.value.object_tag == "victim"
        # Neither the object nor its neighbour was freed.
        assert mem.object_at(a).state is ObjectState.ALLOCATED
        assert mem.object_at(b).state is ObjectState.ALLOCATED

    def test_interior_free_still_releases_the_object(self):
        mem = Memory()
        a = mem.alloc(16, "obj")
        freed = mem.free(a + 8, site="K1")
        assert freed.base == a
        assert freed.state is ObjectState.FREED

    def test_corpus_style_redzone_free_halts_machine(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.alloc("r0", 16, "buf", label="A")
            f.binop("r1", "add", f.r("r0"), 16, label="B")
            f.free(f.r("r1"), label="C")
        machine = KernelMachine(b.build(), [ThreadSpec("T", "main")])
        while not machine.thread("T").done and not machine.halted:
            machine.step("T")
        assert machine.failure is not None
        assert machine.failure.kind is FailureKind.GPF
        assert "redzone" in machine.failure.message
        assert machine.failure.object_tag == "buf"
        # The faulting FREE never released the object.
        base = machine.thread("T").regs["r0"]
        assert machine.memory.object_at(base).state is ObjectState.ALLOCATED


class TestNonMutatingReads:
    """S3: pure loads leave memory — and its canonical key — untouched."""

    def test_load_of_uninitialized_slot_does_not_materialize_cell(self):
        mem = Memory()
        addr = mem.alloc(32, "obj")
        before = mem.state_key_parts()
        assert mem.load(addr + 8) == 0
        assert mem.load(addr + 24) == 0
        assert addr + 8 not in mem._cells
        assert mem.state_key_parts() == before

    def test_stored_zero_is_canonically_absent(self):
        # A slot written with 0 and a never-written slot are the same
        # state: the canonical key must not distinguish them, or reads
        # vs writes-of-zero would break state-key convergence.
        a = Memory()
        b = Memory()
        addr_a = a.alloc(32, "obj")
        addr_b = b.alloc(32, "obj")
        assert addr_a == addr_b
        b.store(addr_b + 8, 0)
        assert a.state_key_parts() == b.state_key_parts()

    def test_read_vs_no_read_machines_converge(self):
        """Two runs that differ only in pure loads of uninitialized
        slots reach the same memory state key."""
        def build(with_reads):
            b = ProgramBuilder()
            with b.function("main") as f:
                f.alloc("r0", 32, "buf", label="A")
                if with_reads:
                    f.load("r1", f.at("r0", 8), label="R1")
                    f.load("r2", f.at("r0", 24), label="R2")
                f.store(f.at("r0", 0), 7, label="W")
            return b.build()

        keys = []
        for with_reads in (False, True):
            m = KernelMachine(build(with_reads),
                              [ThreadSpec("T", "main")])
            while not m.thread("T").done and not m.halted:
                m.step("T")
            assert m.failure is None
            keys.append(m.memory.state_key_parts())
        assert keys[0] == keys[1]

    def test_live_and_snapshot_keys_agree_after_reads(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.alloc("r0", 32, "buf", label="A")
            f.load("r1", f.at("r0", 16), label="R")
            f.store(f.at("r0", 0), 1, label="W")
        m = KernelMachine(b.build(), [ThreadSpec("T", "main")])
        while not m.thread("T").done and not m.halted:
            m.step("T")
        assert snapshot_state_key(snapshot_machine(m)) == \
            machine_state_key(m)
