"""Unit tests for conflicting accesses and data-race derivation."""

import pytest

from repro.core.races import (
    DataRace,
    RaceSet,
    count_memory_instructions,
    find_conflicting_instructions,
    find_data_races,
)
from repro.kernel.access import AccessKind, MemoryAccess

from helpers import fig2_machine, run_thread, run_until


def _access(seq, thread, addr, kind, instr_addr=None, label=None,
            occurrence=1, lockset=frozenset()):
    return MemoryAccess(
        seq=seq, thread=thread, instr_addr=instr_addr or (0x1000 + seq * 4),
        instr_label=label or f"i{seq}", func="f", data_addr=addr,
        kind=kind, occurrence=occurrence, lockset=lockset)


class TestAccessPredicates:
    def test_conflict_requires_write(self):
        a = _access(1, "A", 100, AccessKind.READ)
        b = _access(2, "B", 100, AccessKind.READ)
        assert not a.conflicts_with(b)

    def test_conflict_requires_same_location(self):
        a = _access(1, "A", 100, AccessKind.WRITE)
        b = _access(2, "B", 108, AccessKind.WRITE)
        assert not a.conflicts_with(b)

    def test_conflict_requires_different_threads(self):
        a = _access(1, "A", 100, AccessKind.WRITE)
        b = _access(2, "A", 100, AccessKind.WRITE)
        assert not a.conflicts_with(b)

    def test_common_lock_suppresses_race(self):
        a = _access(1, "A", 100, AccessKind.WRITE, lockset=frozenset({"L"}))
        b = _access(2, "B", 100, AccessKind.READ, lockset=frozenset({"L"}))
        assert a.conflicts_with(b)
        assert not a.races_with(b)

    def test_disjoint_locksets_race(self):
        a = _access(1, "A", 100, AccessKind.WRITE, lockset=frozenset({"L1"}))
        b = _access(2, "B", 100, AccessKind.READ, lockset=frozenset({"L2"}))
        assert a.races_with(b)


class TestDataRace:
    def test_rejects_non_conflicting_pair(self):
        a = _access(1, "A", 100, AccessKind.READ)
        b = _access(2, "B", 200, AccessKind.WRITE)
        with pytest.raises(ValueError):
            DataRace(first=a, second=b)

    def test_keys_are_directional(self):
        a = _access(1, "A", 100, AccessKind.WRITE, label="A1")
        b = _access(2, "B", 100, AccessKind.READ, label="B1")
        r1 = DataRace(first=a, second=b)
        assert r1.key != (r1.second_key, r1.first_key)
        assert r1.pair_key == frozenset((r1.first_key, r1.second_key))

    def test_str_uses_arrow(self):
        a = _access(1, "A", 100, AccessKind.WRITE, label="A6")
        b = _access(2, "B", 100, AccessKind.READ, label="B12")
        race = DataRace(first=a, second=b)
        assert str(race) == "A6 => B12"
        assert race.flipped_str() == "B12 => A6"


class TestFindDataRaces:
    def test_paper_example_sequence(self):
        # A1(x) B1(y) B2(x) A2(y): test set {A1=>B2, B1=>A2} (section 3.4).
        accesses = [
            _access(1, "A", 1, AccessKind.WRITE, label="A1"),
            _access(2, "B", 2, AccessKind.WRITE, label="B1"),
            _access(3, "B", 1, AccessKind.READ, label="B2"),
            _access(4, "A", 2, AccessKind.READ, label="A2"),
        ]
        races = find_data_races(accesses)
        rendered = {str(r) for r in races}
        assert rendered == {"A1 => B2", "B1 => A2"}

    def test_latest_preceding_access_rule(self):
        # A1(R) B1(R) B2(W) A3(R): races are A1=>B2 and B2=>A3.
        accesses = [
            _access(1, "A", 5, AccessKind.READ, label="A1"),
            _access(2, "B", 5, AccessKind.READ, label="B1"),
            _access(3, "B", 5, AccessKind.WRITE, label="B2"),
            _access(4, "A", 5, AccessKind.READ, label="A3"),
        ]
        rendered = {str(r) for r in find_data_races(accesses)}
        assert rendered == {"A1 => B2", "B2 => A3"}

    def test_read_read_pairs_excluded(self):
        accesses = [
            _access(1, "A", 5, AccessKind.READ),
            _access(2, "B", 5, AccessKind.READ),
        ]
        assert len(find_data_races(accesses)) == 0

    def test_lock_ordered_pairs_excluded_by_default(self):
        accesses = [
            _access(1, "A", 5, AccessKind.WRITE, lockset=frozenset({"L"})),
            _access(2, "B", 5, AccessKind.WRITE, lockset=frozenset({"L"})),
        ]
        assert len(find_data_races(accesses)) == 0
        assert len(find_data_races(accesses,
                                   include_lock_ordered=True)) == 1

    def test_fig2_failure_run_races_match_paper(self):
        from helpers import fig2_machine, run_until
        m = fig2_machine()
        run_until(m, "A", "A6")
        run_until(m, "B", "B12")
        run_until(m, "A", "A12")
        run_thread(m, "B")
        assert m.failure is not None
        rendered = {str(r) for r in find_data_races(m.access_log)}
        # The races the paper lists for this manifestation (A12 never ran).
        assert {"A2 => B11", "B2 => A6", "A6 => B12"} <= rendered


class TestRaceSet:
    def _race(self, seq1, seq2, label1, label2):
        a = _access(seq1, "A", 9, AccessKind.WRITE, label=label1)
        b = _access(seq2, "B", 9, AccessKind.READ, label=label2)
        return DataRace(first=a, second=b)

    def test_deduplicates_by_key(self):
        r = self._race(1, 2, "A1", "B1")
        rs = RaceSet([r, r])
        assert len(rs) == 1
        assert r in rs

    def test_ordered_by_second_access(self):
        r1 = self._race(1, 10, "A1", "B9")
        r2 = self._race(2, 5, "A2", "B5")
        rs = RaceSet([r1, r2])
        ordered = rs.ordered_by_second_access()
        assert [str(r) for r in ordered] == ["A2 => B5", "A1 => B9"]

    def test_get_by_key(self):
        r = self._race(1, 2, "A1", "B1")
        rs = RaceSet([r])
        assert rs.get(r.key) is r
        assert rs.get(("X", 0, 0)) is None


class TestConflictMap:
    def test_find_conflicting_instructions(self):
        accesses = [
            _access(1, "A", 5, AccessKind.WRITE, instr_addr=0x10),
            _access(2, "B", 5, AccessKind.READ, instr_addr=0x20),
            _access(3, "C", 6, AccessKind.READ, instr_addr=0x30),
        ]
        conflicts = find_conflicting_instructions(accesses)
        assert conflicts[("A", 0x10)] == frozenset({"B"})
        assert conflicts[("B", 0x20)] == frozenset({"A"})
        assert ("C", 0x30) not in conflicts

    def test_count_memory_instructions(self):
        accesses = [_access(i, "A", i, AccessKind.READ) for i in range(5)]
        assert count_memory_instructions(accesses) == 5
