"""Unit tests for breakpoints, watchpoints, trampoline, VMs and the pool."""

import pytest

from repro.hypervisor.breakpoints import (
    Breakpoint,
    BreakpointManager,
    Watchpoint,
    WatchpointManager,
)
from repro.hypervisor.manager import VmPool
from repro.hypervisor.trampoline import ParkReason, Trampoline
from repro.hypervisor.vm import VirtualMachine
from repro.hypervisor.controller import serial_schedule
from repro.kernel.access import AccessKind, MemoryAccess

from helpers import fig2_machine


def _access(thread="B", addr=100, kind=AccessKind.READ):
    return MemoryAccess(seq=1, thread=thread, instr_addr=0x20,
                        instr_label="B2", func="f", data_addr=addr,
                        kind=kind, occurrence=1)


class TestBreakpoints:
    def test_wildcard_breakpoint_matches_any_thread(self):
        bpm = BreakpointManager()
        bpm.install(Breakpoint(0x10))
        assert bpm.hit("A", 0x10, 1)
        assert bpm.hit("B", 0x10, 5)
        assert bpm.hit("A", 0x14, 1) is None

    def test_thread_and_occurrence_filters(self):
        bp = Breakpoint(0x10, thread="A", occurrence=2)
        assert bp.matches("A", 0x10, 2)
        assert not bp.matches("B", 0x10, 2)
        assert not bp.matches("A", 0x10, 1)

    def test_remove_and_clear(self):
        bpm = BreakpointManager()
        bp = Breakpoint(0x10)
        bpm.install(bp)
        assert len(bpm) == 1
        bpm.remove(bp)
        assert len(bpm) == 0
        bpm.install(bp)
        bpm.clear()
        assert bpm.hit("A", 0x10, 1) is None


class TestWatchpoints:
    def test_other_thread_access_traps(self):
        wpm = WatchpointManager()
        wpm.install(Watchpoint(data_addr=100, owner_thread="A",
                               owner_instr_addr=0x10, owner_label="A6"))
        hits = wpm.observe(_access(thread="B", addr=100))
        assert len(hits) == 1
        assert hits[0].watchpoint.owner_label == "A6"

    def test_owner_access_does_not_trap(self):
        wpm = WatchpointManager()
        wpm.install(Watchpoint(100, "A", 0x10))
        assert wpm.observe(_access(thread="A", addr=100)) == []

    def test_unwatched_address_ignored(self):
        wpm = WatchpointManager()
        wpm.install(Watchpoint(100, "A", 0x10))
        assert wpm.observe(_access(addr=200)) == []

    def test_remove_owned_by(self):
        wpm = WatchpointManager()
        wpm.install(Watchpoint(100, "A", 0x10))
        wpm.remove_owned_by("A", 0x10)
        assert wpm.observe(_access(addr=100)) == []


class TestTrampoline:
    def test_preempted_parking_is_lifo(self):
        t = Trampoline()
        t.park_preempted("A", 0x10)
        t.park_preempted("B", 0x20)
        assert t.resume_candidates() == ["B", "A"]
        t.release("B")
        assert t.resume_candidates() == ["A"]
        assert not t.is_parked("B")

    def test_constraint_parking(self):
        t = Trampoline()
        t.park_on_constraint("A", 3, 0x10)
        assert t.parked_reason("A") is ParkReason.CONSTRAINT
        assert t.constraint_index("A") == 3
        released = t.release_constraint_parked()
        assert released == ["A"]
        assert not t.is_parked("A")

    def test_release_constraint_leaves_preempted(self):
        t = Trampoline()
        t.park_preempted("A", 0x10)
        t.park_on_constraint("B", 1, 0x20)
        assert t.release_constraint_parked() == ["B"]
        assert t.is_parked("A")

    def test_clear(self):
        t = Trampoline()
        t.park_preempted("A", 0x10)
        t.clear()
        assert t.parked_threads() == []


class TestVirtualMachine:
    def test_accounting_counts_reboots_and_restores(self):
        vm = VirtualMachine(0, fig2_machine)
        ok = vm.execute(serial_schedule(["A", "B"]))
        assert not ok.failed
        assert vm.accounting.restores == 1
        assert vm.accounting.reboots == 0
        assert vm.accounting.runs == 1
        assert vm.accounting.steps == ok.steps


class TestVmPool:
    def test_round_robin_assignment(self):
        pool = VmPool(fig2_machine, vm_count=3)
        for _ in range(6):
            pool.execute(serial_schedule(["A", "B"]))
        assert [vm.accounting.runs for vm in pool.vms] == [2, 2, 2]
        assert pool.total_runs == 6
        assert pool.busy_vms == 3
        # Round-robin drift touched all 3 VMs, but nothing ever ran
        # concurrently: single execute() calls are width-1 batches.
        assert pool.max_batch_width == 1
        assert pool.parallel_speedup() == 1.0

    def test_single_executes_never_inflate_speedup(self):
        # Regression: parallel_speedup() used to return busy_vms, so a
        # purely sequential workload spread across the pool by
        # round-robin assignment claimed a VM-count speedup.
        pool = VmPool(fig2_machine, vm_count=4)
        for _ in range(8):
            pool.execute(serial_schedule(["A", "B"]))
        assert pool.busy_vms == 4  # drift did spread the work...
        assert pool.parallel_speedup() == 1.0  # ...but nothing was parallel

    def test_execute_all(self):
        pool = VmPool(fig2_machine, vm_count=2)
        runs = pool.execute_all([serial_schedule(["A", "B"]),
                                 serial_schedule(["B", "A"])])
        assert len(runs) == 2
        assert pool.parallel_speedup() == 2.0

    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError):
            VmPool(fig2_machine, vm_count=0)

    def test_small_batches_do_not_drift_across_the_pool(self):
        # Three waves of 2 schedules on a 4-VM pool: pure round-robin
        # would touch all 4 VMs (and fake a 4x speedup); per-batch
        # assignment keeps the work on VMs 0-1.
        pool = VmPool(fig2_machine, vm_count=4)
        batch = [serial_schedule(["A", "B"]), serial_schedule(["B", "A"])]
        for _ in range(3):
            pool.execute_all(batch)
        assert [vm.accounting.runs for vm in pool.vms] == [3, 3, 0, 0]
        assert pool.busy_vms == 2
        assert pool.max_batch_width == 2
        assert pool.parallel_speedup() == 2.0

    def test_batch_wider_than_pool_wraps(self):
        pool = VmPool(fig2_machine, vm_count=2)
        pool.execute_all([serial_schedule(["A", "B"])] * 5)
        assert pool.total_runs == 5
        assert pool.busy_vms == 2
        assert pool.max_batch_width == 2

    def test_reset_accounting(self):
        pool = VmPool(fig2_machine, vm_count=3)
        pool.execute_all([serial_schedule(["A", "B"])] * 2)
        pool.execute(serial_schedule(["B", "A"]))
        assert pool.total_runs == 3
        pool.reset_accounting()
        assert pool.total_runs == 0
        assert pool.total_reboots == 0
        assert pool.busy_vms == 0
        assert pool.max_batch_width == 0
        assert pool.parallel_speedup() == 1.0
        # assignment restarts at VM 0 after a reset
        pool.execute(serial_schedule(["A", "B"]))
        assert pool.vms[0].accounting.runs == 1

    def test_wave_execution_matches_sequential(self):
        # wave_jobs=2 runs the batch in child processes; results and
        # per-VM accounting must match the sequential pool exactly.
        def facts(run):
            return (
                [(t.thread, t.instr_addr, t.seq) for t in run.trace],
                [(a.thread, a.data_addr, a.seq) for a in run.accesses],
                run.failure, run.steps, run.interleavings,
            )

        batch = [serial_schedule(["A", "B"]), serial_schedule(["B", "A"]),
                 serial_schedule(["A", "B", "A"])]
        seq = VmPool(fig2_machine, vm_count=2)
        par = VmPool(fig2_machine, vm_count=2, wave_jobs=2)
        seq_runs = seq.execute_all(batch)
        par_runs = par.execute_all(batch)
        assert [facts(r) for r in par_runs] == [facts(r) for r in seq_runs]
        assert par.total_runs == seq.total_runs == 3
        assert par.max_batch_width == seq.max_batch_width == 2
        assert par.parallel_speedup() == seq.parallel_speedup() == 2.0
        assert ([vm.accounting.runs for vm in par.vms]
                == [vm.accounting.runs for vm in seq.vms])
        assert ([vm.accounting.steps for vm in par.vms]
                == [vm.accounting.steps for vm in seq.vms])

    def test_reset_alias(self):
        pool = VmPool(fig2_machine, vm_count=2)
        pool.execute(serial_schedule(["A", "B"]))
        pool.reset()
        assert pool.total_runs == 0
