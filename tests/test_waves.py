"""Tests for parallel wave execution (repro.hypervisor.waves).

Covers the serialization path (versioned ``dumps_state``/``loads_state``
round trips for schedules and checkpoints), the :class:`WaveExecutor`
contract (submission-order merge, inline degradation, fallback
re-execution, ``hv.wave.*`` accounting), and the headline property: a
diagnosis computed with ``wave_jobs > 1`` is bit-identical to the
sequential one.
"""

import pickle

import pytest

from repro import api
from repro.core.causality import CaConfig
from repro.core.diagnose import Aitia
from repro.core.lifs import LifsConfig
from repro.core.schedule import Schedule
from repro.corpus.registry import get_bug
from repro.hypervisor.controller import ScheduleController, serial_schedule
from repro.hypervisor.snapshot import CheckpointPolicy, boot_checkpoint
from repro.hypervisor.waves import (
    WaveExecutor,
    WaveJob,
    execute_wave_job,
)
from repro.kernel.snapshot import (
    WIRE_VERSION,
    dumps_state,
    loads_state,
    snapshot_state_key,
)
from repro.observe import MemorySink, Tracer

from helpers import fig2_machine

SCHEDULES = [serial_schedule(["A", "B"]),
             serial_schedule(["B", "A"]),
             serial_schedule(["A", "B", "A"]),
             serial_schedule(["B", "A", "B"])]


def _run_facts(run):
    return (
        [(t.thread, t.instr_addr, t.seq, t.occurrence) for t in run.trace],
        [(a.thread, a.instr_addr, a.data_addr, a.seq) for a in run.accesses],
        run.failure,
        run.steps,
        run.interleavings,
    )


class TestSerialization:
    def test_schedule_round_trip(self):
        for schedule in SCHEDULES:
            assert loads_state(dumps_state(schedule)) == schedule

    def test_checkpoint_round_trip_preserves_state_key(self):
        controller = ScheduleController(
            fig2_machine(), serial_schedule(["A", "B"]),
            checkpoint_policy=CheckpointPolicy())
        controller.run()
        assert controller.checkpoints
        for ckpt in controller.checkpoints:
            clone = loads_state(dumps_state(ckpt))
            assert snapshot_state_key(clone.machine) \
                == snapshot_state_key(ckpt.machine)
            assert clone.horizon_seq == ckpt.horizon_seq
            assert clone.steps == ckpt.steps
            assert clone.fired == ckpt.fired

    def test_resume_from_deserialized_checkpoint_is_bit_identical(self):
        schedule = serial_schedule(["A", "B", "A"])
        fresh = ScheduleController(fig2_machine(), schedule,
                                   checkpoint_policy=CheckpointPolicy())
        run1 = fresh.run()
        ckpt = loads_state(dumps_state(
            fresh.checkpoints[len(fresh.checkpoints) // 2]))
        run2 = ScheduleController(fig2_machine(), schedule,
                                  resume_from=ckpt).run()
        assert _run_facts(run2) == _run_facts(run1)

    def test_rejects_unknown_wire_version(self):
        blob = pickle.dumps((WIRE_VERSION + 1, serial_schedule(["A"])))
        with pytest.raises(ValueError, match="wire version"):
            loads_state(blob)

    def test_rejects_non_envelope_payload(self):
        with pytest.raises(ValueError, match="dumps_state"):
            loads_state(pickle.dumps({"not": "an envelope"}))


class TestWaveExecutorShim:
    """The deprecated :class:`WaveExecutor` shim: construction warns, the
    ``run_wave`` contract (submission-order merge, inline degradation,
    fallback re-execution, ``hv.wave.*`` accounting) is preserved on top
    of the fleet executor."""

    def _wave(self):
        return [WaveJob(schedule=s) for s in SCHEDULES]

    def _executor(self, jobs, tracer=None):
        with pytest.warns(DeprecationWarning, match="make_executor"):
            return WaveExecutor(jobs=jobs, machine_factory=fig2_machine,
                                tracer=tracer)

    def test_parallel_merge_preserves_submission_order(self):
        expected = [execute_wave_job(job, fig2_machine)
                    for job in self._wave()]
        executor = self._executor(jobs=2)
        try:
            got = executor.run_wave(self._wave())
        finally:
            executor.close()
        assert [_run_facts(o.run) for o in got] \
            == [_run_facts(o.run) for o in expected]

    def test_single_job_executor_runs_inline(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        executor = self._executor(jobs=1, tracer=tracer)
        assert not executor.parallel
        outcomes = executor.run_wave(self._wave())
        executor.close()
        tracer.close()
        assert len(outcomes) == len(SCHEDULES)
        counters = sink.counter_totals()
        assert counters["hv.wave.inline"] == len(SCHEDULES)
        assert "hv.wave.batches" not in counters

    def test_single_item_wave_stays_inline(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        executor = self._executor(jobs=4, tracer=tracer)
        executor.run_wave([WaveJob(schedule=SCHEDULES[0])])
        executor.close()
        tracer.close()
        assert sink.counter_totals()["hv.wave.inline"] == 1

    def test_dispatch_accounting(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        executor = self._executor(jobs=2, tracer=tracer)
        try:
            executor.run_wave(self._wave())
        finally:
            executor.close()
        tracer.close()
        counters = sink.counter_totals()
        assert counters["hv.wave.batches"] == 1
        assert counters["hv.wave.jobs"] == len(SCHEDULES)
        # Hybrid dispatch: every job ran exactly once, split between
        # resident workers and parent assists, with no fallbacks.
        assert (counters["hv.wave.dispatched"]
                + counters.get("hv.wave.inline", 0)) == len(SCHEDULES)
        assert "hv.wave.fallbacks" not in counters

    def test_worker_errors_fall_back_inline(self, monkeypatch):
        # Poison the worker-side execution path before the fleet forks
        # (workers inherit the patched module): every dispatched task
        # errors remotely, and the wave must still complete, in order,
        # re-executed on the parent.
        import repro.engine.executors as executors

        def _poisoned(task, machine_factory, state, max_continuations):
            raise RuntimeError("poisoned worker")

        monkeypatch.setattr(executors, "_execute_task", _poisoned)
        expected = [execute_wave_job(job, fig2_machine)
                    for job in self._wave()]
        sink = MemorySink()
        tracer = Tracer(sink)
        executor = self._executor(jobs=2, tracer=tracer)
        try:
            got = executor.run_wave(self._wave())
        finally:
            executor.close()
        tracer.close()
        assert [_run_facts(o.run) for o in got] \
            == [_run_facts(o.run) for o in expected]
        counters = sink.counter_totals()
        assert counters["hv.wave.dispatched"] == 0
        # Parent assists may absorb some jobs before the first error
        # lands; everything that reached a worker came back as fallback.
        assert (counters["hv.wave.fallbacks"]
                + counters.get("hv.wave.inline", 0)) == len(SCHEDULES)

    def test_resuming_jobs_match_fresh_boots(self):
        machine = fig2_machine()
        ckpt = boot_checkpoint(machine)
        wave = [WaveJob(schedule=s, resume_from=ckpt) for s in SCHEDULES]
        expected = [execute_wave_job(WaveJob(schedule=s), fig2_machine)
                    for s in SCHEDULES]
        executor = self._executor(jobs=2)
        try:
            got = executor.run_wave(wave, machine=machine)
        finally:
            executor.close()
        assert [_run_facts(o.run) for o in got] \
            == [_run_facts(o.run) for o in expected]
        assert all(o.resumed for o in got)

    def test_rejects_zero_jobs(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                WaveExecutor(jobs=0, machine_factory=fig2_machine)


class TestWaveDiagnosisBitIdentity:
    """``wave_jobs=2`` (the ``--parallel-waves`` flag) must be a pure
    execution-placement change: the diagnosis, schedule counts and step
    totals are bit-identical to the sequential run.  (Snapshot splice
    accounting may legitimately differ — children never splice — so the
    comparison sticks to resume-invariant facts, like the PR-3 ablation.)
    """

    def _diagnose(self, bug_id, wave_jobs):
        bug = get_bug(bug_id)
        return Aitia(bug,
                     lifs_config=LifsConfig(wave_jobs=wave_jobs),
                     ca_config=CaConfig(wave_jobs=wave_jobs)).diagnose()

    @pytest.mark.parametrize("bug_id", ["CVE-2017-15649", "SYZ-01"])
    def test_diagnosis_is_bit_identical(self, bug_id):
        seq = self._diagnose(bug_id, 1)
        par = self._diagnose(bug_id, 2)
        assert par.chain.render() == seq.chain.render()
        assert par.lifs_result.failure_run.signature_hash() \
            == seq.lifs_result.failure_run.signature_hash()
        assert sorted(u.uid for u in par.ca_result.root_cause_units) \
            == sorted(u.uid for u in seq.ca_result.root_cause_units)
        assert par.lifs_result.stats.schedules_executed \
            == seq.lifs_result.stats.schedules_executed
        assert par.lifs_result.stats.total_steps \
            == seq.lifs_result.stats.total_steps
        assert par.ca_result.stats.schedules_executed \
            == seq.ca_result.stats.schedules_executed
        assert par.ca_result.stats.total_steps \
            == seq.ca_result.stats.total_steps

    def test_api_diagnose_accepts_wave_jobs(self):
        bug = get_bug("SYZ-04")
        seq = api.diagnose(bug)
        par = api.diagnose(bug, wave_jobs=2)
        assert par.chain.render() == seq.chain.render()
