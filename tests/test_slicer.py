"""Tests for execution-history modeling and slicing."""

from repro.kernel.threads import ThreadKind
from repro.trace.events import KthreadInvocation, SyscallEvent
from repro.trace.history import ExecutionHistory
from repro.trace.slicer import MAX_THREADS_PER_SLICE, Slice, Slicer


def _call(ts, proc, name="call", entry="entry", fd=None, duration=1.0,
          is_setup=False):
    return SyscallEvent(timestamp=ts, proc=proc, name=name, entry=entry,
                        fd=fd, duration=duration, is_setup=is_setup)


class TestEvents:
    def test_overlap_detection(self):
        a = _call(0.0, "A", duration=2.0)
        b = _call(1.0, "B", duration=2.0)
        c = _call(5.0, "C")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_kthread_invocation_interval(self):
        k = KthreadInvocation(timestamp=1.0, kind=ThreadKind.KWORKER,
                              func="work", source_proc="A", duration=2.0)
        assert k.start == 1.0 and k.end == 3.0


class TestHistory:
    def test_events_sorted_by_timestamp(self):
        h = ExecutionHistory()
        h.add(_call(5.0, "B"))
        h.add(_call(1.0, "A"))
        assert [e.proc for e in h.events] == ["A", "B"]

    def test_before_failure_filters(self):
        h = ExecutionHistory(failure_time=3.0)
        h.add(_call(1.0, "A"))
        h.add(_call(4.0, "B"))
        assert [e.proc for e in h.before_failure()] == ["A"]

    def test_fd_setup_lookup(self):
        h = ExecutionHistory()
        h.add(_call(0.0, "A", name="open", fd=3, is_setup=True))
        h.add(_call(1.0, "A", name="write", fd=3))
        setup = h.setup_for_fd(3)
        assert len(setup) == 1 and setup[0].name == "open"

    def test_render_mentions_failure(self):
        h = ExecutionHistory(failure_time=2.0)
        h.add(_call(1.0, "A"))
        assert "FAILURE" in h.render()


class TestConcurrentGroups:
    def test_sequential_events_form_no_group(self):
        h = ExecutionHistory()
        h.add(_call(0.0, "A"))
        h.add(_call(2.0, "B"))
        assert Slicer(h).concurrent_groups() == []

    def test_overlapping_events_group(self):
        h = ExecutionHistory()
        h.add(_call(0.0, "A", duration=3.0))
        h.add(_call(1.0, "B", duration=3.0))
        groups = Slicer(h).concurrent_groups()
        assert len(groups) == 1
        assert {e.proc for e in groups[0]} == {"A", "B"}

    def test_chained_overlap_merges(self):
        h = ExecutionHistory()
        h.add(_call(0.0, "A", duration=2.0))
        h.add(_call(1.5, "B", duration=2.0))
        h.add(_call(3.0, "C", duration=2.0))  # overlaps B, not A
        groups = Slicer(h).concurrent_groups()
        assert len(groups) == 1
        assert {e.proc for e in groups[0]} == {"A", "B", "C"}

    def test_setup_events_excluded(self):
        h = ExecutionHistory()
        h.add(_call(0.0, "A", duration=5.0, is_setup=True))
        h.add(_call(1.0, "B", duration=5.0))
        assert Slicer(h).concurrent_groups() == []


class TestSlices:
    def test_backward_from_failure_order(self):
        h = ExecutionHistory(failure_time=20.0)
        # Early group and late group; late one must rank first.
        h.add(_call(0.0, "A", duration=2.0))
        h.add(_call(1.0, "B", duration=2.0))
        h.add(_call(10.0, "C", duration=2.0))
        h.add(_call(11.0, "D", duration=2.0))
        slices = Slicer(h).slices()
        assert {e.proc for e in slices[0].concurrent} == {"C", "D"}
        assert {e.proc for e in slices[1].concurrent} == {"A", "B"}
        assert slices[0].rank < slices[1].rank

    def test_fd_semantics_closure(self):
        h = ExecutionHistory()
        h.add(_call(0.0, "A", name="open", fd=7, is_setup=True))
        h.add(_call(5.0, "A", name="write", fd=7, duration=2.0))
        h.add(_call(6.0, "B", name="close", fd=7, duration=2.0))
        slices = Slicer(h).slices()
        assert len(slices) == 1
        assert [e.name for e in slices[0].setup] == ["open"]

    def test_oversized_group_is_split(self):
        h = ExecutionHistory()
        for i, proc in enumerate("ABCD"):
            h.add(_call(0.1 * i, proc, duration=5.0))
        slices = Slicer(h).slices()
        assert all(s.thread_count <= MAX_THREADS_PER_SLICE for s in slices)
        # C(4,3) = 4 sub-slices.
        assert len(slices) == 4

    def test_kthread_events_join_groups(self):
        h = ExecutionHistory()
        h.add(_call(0.0, "A", duration=3.0))
        h.add(KthreadInvocation(timestamp=1.0, kind=ThreadKind.KWORKER,
                                func="work", source_proc="A", duration=2.0))
        slices = Slicer(h).slices()
        assert len(slices) == 1
        assert len(slices[0].kthread_events) == 1
        assert len(slices[0].syscall_events) == 1

    def test_describe_is_readable(self):
        h = ExecutionHistory()
        h.add(_call(0.0, "A", name="bind", duration=3.0))
        h.add(_call(1.0, "B", name="connect", duration=3.0))
        s = Slicer(h).slices()[0]
        assert "A:bind" in s.describe() and "B:connect" in s.describe()
