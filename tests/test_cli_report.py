"""Tests for the CLI and the developer report generator."""

import pytest

from repro.analysis.report import render_report
from repro.cli import build_parser, main
from repro.core.diagnose import Aitia
from repro.core.lifs import LifsConfig
from repro.corpus.registry import get_bug


class TestReport:
    def test_report_mentions_chain_and_triage(self):
        bug = get_bug("CVE-2017-15649")
        diagnosis = Aitia(bug).diagnose()
        report = render_report(diagnosis, image=bug.image)
        assert "AITIA root-cause report" in report
        assert "A6 => B12" in report or "A6 (A) => B12" in report
        assert "multi-variable conjunction" in report
        assert "benign (excluded)" in report
        assert "fix option" in report

    def test_report_shows_code_context(self):
        bug = get_bug("CVE-2017-15649")
        diagnosis = Aitia(bug).diagnose()
        report = render_report(diagnosis, image=bug.image)
        assert ">>" in report
        assert "fanout_add" in report

    def test_report_without_image_is_compact(self):
        bug = get_bug("SYZ-05")
        diagnosis = Aitia(bug).diagnose()
        report = render_report(diagnosis)
        assert "race 1:" in report
        assert ">>" not in report

    def test_unreproduced_report(self):
        bug = get_bug("CVE-2017-15649")
        diagnosis = Aitia(bug,
                          lifs_config=LifsConfig(max_schedules=2)).diagnose()
        report = render_report(diagnosis)
        assert "could NOT be reproduced" in report

    def test_ambiguous_report_flags_it(self):
        bug = get_bug("CVE-2016-10200")
        diagnosis = Aitia(bug).diagnose()
        report = render_report(diagnosis, image=bug.image)
        assert "AMBIGUOUS" in report


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "CVE-2017-15649" in out
        assert "SYZ-12" in out
        assert "EXT-IRQ-01" in out

    def test_show(self, capsys):
        assert main(["show", "FIG-1"]) == 0
        out = capsys.readouterr().out
        assert "fig1_writer" in out
        assert "ptr_valid" in out

    def test_diagnose(self, capsys):
        assert main(["diagnose", "SYZ-05"]) == 0
        out = capsys.readouterr().out
        assert "K1" in out and "chain" in out

    def test_diagnose_pipeline(self, capsys):
        assert main(["diagnose", "SYZ-04", "--pipeline"]) == 0
        out = capsys.readouterr().out
        assert "[bug finder]" in out
        assert "K1 => A2" in out

    def test_replay(self, capsys):
        assert main(["replay", "CVE-2017-2636"]) == 0
        out = capsys.readouterr().out
        assert "identical execution" in out

    def test_unknown_bug_exits_2(self, capsys):
        assert main(["show", "CVE-0000-0000"]) == 2
        assert "error" in capsys.readouterr().err

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestTraceReport:
    def test_report_renders_snapshot_counters(self):
        from repro.observe.events import COUNTERS, SPAN_END, TraceEvent
        from repro.observe.report import render_trace_report

        events = [
            TraceEvent(kind=SPAN_END, name="ca.flip", ts=0.1, span_id=1,
                       stage="ca", duration_s=0.01, attrs={"failed": True}),
            TraceEvent(kind=COUNTERS, name="counters", ts=0.2, attrs={
                "lifs.schedules": 6, "lifs.interpreted_steps": 150,
                "snapshot.hits": 5, "snapshot.misses": 1,
                "snapshot.captured": 12, "snapshot.saved_steps": 400,
                "snapshot.resumed_steps": 90, "snapshot.splices": 3,
                "snapshot.spliced_steps": 120,
                "ca.snapshot_hits": 4, "ca.snapshot_misses": 0,
                "ca.interpreted_steps": 80, "ca.snapshot_saved_steps": 300,
                "ca.snapshot_spliced_steps": 20}),
        ]
        out = render_trace_report(events)
        assert ("LIFS snapshot engine: 5 resumed / 1 fresh boots, "
                "12 checkpoints captured") in out
        assert "steps: 150 interpreted, 400 saved (90 resumed suffix)" in out
        assert ("splices: 3 runs grafted a memoized suffix "
                "(120 steps)") in out
        assert ("CA snapshot engine: 4 resumed / 0 fresh boots; "
                "80 steps interpreted, 300 saved, 20 spliced") in out

    def test_report_renders_wave_counters(self):
        from repro.observe.events import COUNTERS, TraceEvent
        from repro.observe.report import render_trace_report

        out = render_trace_report([
            TraceEvent(kind=COUNTERS, name="counters", ts=0.1, attrs={
                "hv.wave.batches": 3, "hv.wave.jobs": 40,
                "hv.wave.dispatched": 38, "hv.wave.inline": 2,
                "hv.wave.fallbacks": 1, "hv.wave.discarded": 4})])
        assert ("parallel waves: 3 batches, 40 jobs "
                "(38 dispatched to children, 2 inline, 1 fallbacks)") in out
        assert "4 speculative result(s) discarded on early exit" in out

    def test_report_without_wave_counters_omits_waves(self):
        from repro.observe.events import COUNTERS, TraceEvent
        from repro.observe.report import render_trace_report

        out = render_trace_report([
            TraceEvent(kind=COUNTERS, name="counters", ts=0.1,
                       attrs={"lifs.schedules": 2})])
        assert "parallel waves" not in out

    def test_wave_cli_end_to_end(self, tmp_path, capsys, monkeypatch):
        # SYZ-05 is too small to ever form a 2-wide wave; CVE-2017-15649
        # has hundreds of schedules per stage, so waves genuinely fire.
        # The engine declines the fleet on single-core hosts (forked
        # workers cannot overlap the parent), so pretend we have cores
        # to keep this end-to-end on any runner.
        import repro.engine.engine as engine_module
        monkeypatch.setattr(engine_module.os, "cpu_count", lambda: 2)
        trace = str(tmp_path / "trace.jsonl")
        assert main(["diagnose", "CVE-2017-15649", "--parallel-waves", "2",
                     "--trace", trace]) == 0
        capsys.readouterr()
        assert main(["trace-report", trace]) == 0
        out = capsys.readouterr().out
        assert "parallel waves:" in out

    def test_wave_cli_single_core_declines_fleet(self, tmp_path, capsys,
                                                 monkeypatch):
        # On one core --parallel-waves must be a harmless no-op: the
        # diagnosis succeeds, sequentially, with no wave section.
        import repro.engine.engine as engine_module
        monkeypatch.setattr(engine_module.os, "cpu_count", lambda: 1)
        trace = str(tmp_path / "trace.jsonl")
        assert main(["diagnose", "SYZ-01", "--parallel-waves", "2",
                     "--trace", trace]) == 0
        capsys.readouterr()
        assert main(["trace-report", trace]) == 0
        out = capsys.readouterr().out
        assert "parallel waves" not in out

    def test_report_without_snapshot_counters_omits_engine(self):
        from repro.observe.events import COUNTERS, TraceEvent
        from repro.observe.report import render_trace_report

        out = render_trace_report([
            TraceEvent(kind=COUNTERS, name="counters", ts=0.1,
                       attrs={"lifs.schedules": 2})])
        assert "snapshot engine" not in out

    def test_report_renders_engine_section(self):
        from repro.observe.events import COUNTERS, POINT, TraceEvent
        from repro.observe.report import render_trace_report

        events = [
            TraceEvent(kind=POINT, name="engine.plan", ts=0.1,
                       stage="engine", attrs={"phase": "ca.identify",
                                              "backend": "snapshot",
                                              "requests": 7}),
            TraceEvent(kind=POINT, name="engine.plan", ts=0.2,
                       stage="engine", attrs={"phase": "ca.recheck",
                                              "backend": "wave",
                                              "requests": 3}),
            TraceEvent(kind=COUNTERS, name="counters", ts=0.3, attrs={
                "engine.requests": 10, "engine.plans": 2,
                "engine.dedup_hits": 4, "engine.backend.snapshot": 7,
                "engine.backend.wave": 3}),
        ]
        out = render_trace_report(events)
        assert ("execution engine: 10 requests over 2 plans, "
                "4 dedup hits") in out
        assert "backends: snapshot=7, wave=3" in out
        assert "ca.identify: 7 requests in 1 plan(s) via snapshot x1" in out
        assert "ca.recheck: 3 requests in 1 plan(s) via wave x1" in out

    def test_report_without_engine_counters_omits_section(self):
        from repro.observe.events import COUNTERS, TraceEvent
        from repro.observe.report import render_trace_report

        out = render_trace_report([
            TraceEvent(kind=COUNTERS, name="counters", ts=0.1,
                       attrs={"lifs.schedules": 2})])
        assert "execution engine" not in out

    def test_engine_section_cli_end_to_end(self, tmp_path, capsys):
        trace = str(tmp_path / "trace.jsonl")
        assert main(["diagnose", "SYZ-05", "--trace", trace]) == 0
        capsys.readouterr()
        assert main(["trace-report", trace]) == 0
        out = capsys.readouterr().out
        assert "execution engine:" in out
        assert "backends:" in out

    def test_trace_report_cli_end_to_end(self, tmp_path, capsys):
        trace = str(tmp_path / "trace.jsonl")
        assert main(["diagnose", "SYZ-05", "--trace", trace]) == 0
        capsys.readouterr()
        assert main(["trace-report", trace]) == 0
        out = capsys.readouterr().out
        assert "LIFS snapshot engine" in out
        assert "CA snapshot engine" in out

    def test_report_renders_policy_counters(self):
        from repro.observe.events import COUNTERS, TraceEvent
        from repro.observe.report import render_trace_report

        out = render_trace_report([
            TraceEvent(kind=COUNTERS, name="counters", ts=0.1, attrs={
                "policy.ranked": 31, "policy.pruned": 12,
                "policy.experience_hits": 4})])
        assert ("search policy: 31 candidate(s) ranked, "
                "12 pruned by error invariants, "
                "4 experience hit(s)") in out

    def test_report_without_policy_counters_omits_section(self):
        from repro.observe.events import COUNTERS, TraceEvent
        from repro.observe.report import render_trace_report

        out = render_trace_report([
            TraceEvent(kind=COUNTERS, name="counters", ts=0.1,
                       attrs={"lifs.schedules": 2})])
        assert "search policy" not in out

    def test_policy_cli_end_to_end(self, tmp_path, capsys):
        trace = str(tmp_path / "trace.jsonl")
        assert main(["diagnose", "CVE-2018-12232", "--policy", "adaptive",
                     "--trace", trace]) == 0
        capsys.readouterr()
        assert main(["trace-report", trace]) == 0
        out = capsys.readouterr().out
        assert "search policy:" in out
        assert "pruned by error invariants" in out

    def test_static_policy_cli_has_no_policy_section(self, tmp_path, capsys):
        trace = str(tmp_path / "trace.jsonl")
        assert main(["diagnose", "SYZ-05", "--policy", "static",
                     "--trace", trace]) == 0
        capsys.readouterr()
        assert main(["trace-report", trace]) == 0
        out = capsys.readouterr().out
        assert "search policy:" not in out

    def test_no_snapshot_flag_disables_engine_counters(
            self, tmp_path, capsys):
        trace = str(tmp_path / "trace.jsonl")
        assert main(["diagnose", "SYZ-05", "--no-snapshot",
                     "--trace", trace]) == 0
        out = capsys.readouterr().out
        assert "K1" in out and "chain" in out
        assert main(["trace-report", trace]) == 0
        report = capsys.readouterr().out
        # Every run boots fresh: misses only, no saved steps.
        assert "0 resumed" in report


class TestCliFuzz:
    def test_fuzz_command(self, capsys):
        assert main(["fuzz", "CVE-2017-2671", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "crash found after" in out
        assert "distilled reproducer" in out

    def test_fuzz_with_diagnosis(self, capsys):
        assert main(["fuzz", "SYZ-05", "--seed", "1", "--diagnose"]) == 0
        out = capsys.readouterr().out
        assert "AITIA root-cause report" in out

    def test_fuzz_budget_exhausted_exits_1(self, capsys):
        assert main(["fuzz", "SYZ-08", "--seed", "0",
                     "--max-runs", "1"]) == 1
        assert "no crash" in capsys.readouterr().out
