"""Property-based tests: data-race derivation invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.races import find_conflicting_instructions, find_data_races
from repro.kernel.access import AccessKind, MemoryAccess

_threads = st.sampled_from(["A", "B", "K"])
_addrs = st.integers(min_value=1, max_value=5)
_kinds = st.sampled_from(list(AccessKind))
_locks = st.sampled_from([frozenset(), frozenset({"L"}), frozenset({"M"})])


@st.composite
def access_logs(draw):
    n = draw(st.integers(min_value=0, max_value=30))
    accesses = []
    for seq in range(1, n + 1):
        thread = draw(_threads)
        accesses.append(MemoryAccess(
            seq=seq, thread=thread, instr_addr=0x1000 + seq * 4,
            instr_label=f"i{seq}", func="f", data_addr=draw(_addrs) * 8,
            kind=draw(_kinds), occurrence=1, lockset=draw(_locks)))
    return accesses


@given(access_logs())
@settings(max_examples=100, deadline=None)
def test_every_derived_race_is_a_real_race(accesses):
    for race in find_data_races(accesses):
        assert race.first.conflicts_with(race.second)
        assert race.first.races_with(race.second)
        assert race.first.seq < race.second.seq
        assert race.first.thread != race.second.thread
        assert race.first.data_addr == race.second.data_addr


@given(access_logs())
@settings(max_examples=100, deadline=None)
def test_race_count_is_bounded(accesses):
    races = find_data_races(accesses)
    # At most one race per (access, other-thread) pair.
    assert len(races) <= len(accesses) * 2


@given(access_logs())
@settings(max_examples=100, deadline=None)
def test_lock_ordered_included_is_superset(accesses):
    strict = {r.key for r in find_data_races(accesses)}
    loose = {r.key for r in find_data_races(accesses,
                                            include_lock_ordered=True)}
    assert strict <= loose


@given(access_logs())
@settings(max_examples=100, deadline=None)
def test_conflict_map_is_symmetric(accesses):
    conflicts = find_conflicting_instructions(accesses)
    # If (A, i) conflicts with thread B, some (B, j) conflicts with A.
    for (thread, _), others in conflicts.items():
        for other in others:
            assert any(t == other and thread in vs
                       for (t, _), vs in conflicts.items())


@given(access_logs())
@settings(max_examples=60, deadline=None)
def test_derivation_is_insensitive_to_unrelated_locations(accesses):
    """Adding accesses to a fresh location never removes existing races."""
    base = {r.key for r in find_data_races(accesses)}
    extra = [MemoryAccess(
        seq=1000 + i, thread="Z", instr_addr=0x9000 + i * 4,
        instr_label=f"z{i}", func="z", data_addr=99_999,
        kind=AccessKind.WRITE, occurrence=1) for i in range(3)]
    extended = {r.key for r in find_data_races(list(accesses) + extra)}
    assert base <= extended
