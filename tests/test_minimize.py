"""Tests for schedule minimization (delta debugging of reproducers)."""

import pytest

from repro.core.lifs import FailureMatcher
from repro.core.minimize import minimize_schedule
from repro.core.schedule import Preemption, Schedule
from repro.corpus.registry import get_bug
from repro.hypervisor.controller import ScheduleController
from repro.kernel.failures import FailureKind

from helpers import fig2_image, fig2_machine


def _preempt(image, thread, label, switch_to):
    return Preemption(thread=thread,
                      instr_addr=image.instruction_labeled(label).addr,
                      occurrence=1, switch_to=switch_to, instr_label=label)


def _bloated_schedule(image):
    """The failing 2-preemption reproducer plus fuzzer-style junk: a
    scheduling point on a dead branch (B3, the early-return target never
    reached in the failing run), one with an occurrence that never comes
    up, and a trivially satisfied order constraint."""
    from repro.core.schedule import OrderConstraint

    dead = Preemption(
        thread="B", instr_addr=image.instruction_labeled("B3").addr,
        occurrence=1, switch_to="A", instr_label="B3")
    never = Preemption(
        thread="A", instr_addr=image.instruction_labeled("A5").addr,
        occurrence=3, switch_to="B", instr_label="A5")
    # Constraining B's first instruction agrees with the start order, so
    # it changes nothing and must be minimized away.
    trivial = OrderConstraint(
        thread="B", instr_addr=image.instruction_labeled("B2").addr,
        occurrence=1, instr_label="B2")
    return Schedule(
        start_order=("B", "A"),
        preemptions=[
            _preempt(image, "B", "B11", "A"),
            dead,
            _preempt(image, "A", "A12", "B"),
            never,
        ],
        constraints=[trivial])


class TestMinimization:
    def test_redundant_elements_are_removed(self):
        image = fig2_image()
        bloated = _bloated_schedule(image)
        baseline = ScheduleController(fig2_machine(), bloated).run()
        assert baseline.failed

        result = minimize_schedule(fig2_machine, bloated)
        assert result.was_reduced
        assert result.removed_preemptions == 2
        assert result.removed_constraints == 1
        assert len(result.schedule.preemptions) == 2
        assert result.schedule.constraints == []
        assert result.run.failed
        assert result.run.failure.instr_label == "B17"

    def test_minimal_schedule_is_untouched(self):
        bug = get_bug("SYZ-04")
        result = minimize_schedule(bug.machine_factory,
                                   bug.known_failing_schedule)
        assert not result.was_reduced
        assert (result.schedule.preemptions
                == bug.known_failing_schedule.preemptions)

    def test_corpus_known_schedules_are_minimal(self):
        """Every corpus reproducer is one-minimal: dropping any preemption
        must break reproduction."""
        for bug_id in ("CVE-2017-15649", "SYZ-08", "SYZ-11"):
            bug = get_bug(bug_id)
            result = minimize_schedule(bug.machine_factory,
                                       bug.known_failing_schedule)
            assert not result.was_reduced, bug_id

    def test_non_failing_schedule_rejected(self):
        schedule = Schedule(start_order=("A", "B"))
        with pytest.raises(ValueError, match="does not fail"):
            minimize_schedule(fig2_machine, schedule)

    def test_explicit_matcher_pins_the_symptom(self):
        image = fig2_image()
        bloated = _bloated_schedule(image)
        matcher = FailureMatcher(kind=FailureKind.ASSERTION,
                                 location="B17")
        result = minimize_schedule(fig2_machine, bloated, matcher)
        assert result.run.failure.instr_label == "B17"
        assert result.was_reduced

    def test_wrong_matcher_rejected(self):
        bug = get_bug("SYZ-04")
        matcher = FailureMatcher(kind=FailureKind.GPF)
        with pytest.raises(ValueError, match="does not reproduce"):
            minimize_schedule(bug.machine_factory,
                              bug.known_failing_schedule, matcher)

    def test_execution_count_reported(self):
        bug = get_bug("SYZ-04")
        result = minimize_schedule(bug.machine_factory,
                                   bug.known_failing_schedule)
        assert result.schedules_executed >= 2
