"""Tests for deterministic record & replay."""

import pytest

from repro.corpus.registry import get_bug
from repro.hypervisor.controller import ScheduleController, serial_schedule
from repro.hypervisor.replay import (
    Recording,
    ReplayDivergence,
    record,
    replay,
)
from repro.kernel.machine import KernelMachine, ThreadSpec

from helpers import fig2_machine


def _failing_run(bug_id="CVE-2017-2636"):
    bug = get_bug(bug_id)
    run = ScheduleController(bug.machine_factory(),
                             bug.known_failing_schedule).run()
    return bug, run


class TestRecordReplay:
    def test_replay_reproduces_the_crash(self):
        bug, run = _failing_run()
        recording = record(run)
        replayed = replay(bug.machine_factory, recording)
        assert replayed.failed
        assert replayed.failure.signature == run.failure.signature
        assert replayed.signature() == run.signature()

    def test_replay_of_clean_run(self):
        run = ScheduleController(fig2_machine(),
                                 serial_schedule(["A", "B"])).run()
        recording = record(run)
        replayed = replay(fig2_machine, recording)
        assert not replayed.failed

    def test_divergence_detected_on_different_initial_state(self):
        bug, run = _failing_run("CVE-2017-15649")
        recording = record(run)

        def different_machine():
            # po_running starts 0: thread A bails out immediately, so the
            # recorded schedule cannot reproduce the crash.
            return KernelMachine(
                bug.image,
                [ThreadSpec("A", "fanout_add"),
                 ThreadSpec("B", "packet_do_bind")],
                globals_init={"po_running": 0, "po_fanout": 0,
                              "global_list": ()})

        with pytest.raises(ReplayDivergence):
            replay(different_machine, recording)

    def test_non_strict_replay_returns_divergent_run(self):
        bug, run = _failing_run("CVE-2017-15649")
        recording = record(run)

        def different_machine():
            return KernelMachine(
                bug.image,
                [ThreadSpec("A", "fanout_add"),
                 ThreadSpec("B", "packet_do_bind")],
                globals_init={"po_running": 0})

        divergent = replay(different_machine, recording, strict=False)
        assert not divergent.failed


class TestRecordingSerialization:
    def test_roundtrip_through_dict(self):
        bug, run = _failing_run()
        recording = record(run)
        data = recording.to_dict()
        import json
        json.dumps(data)  # must be JSON-safe
        restored = Recording.from_dict(data)
        assert restored.schedule.start_order == recording.schedule.start_order
        assert restored.schedule.preemptions == recording.schedule.preemptions
        assert restored.failure_signature == recording.failure_signature

    def test_restored_recording_replays(self):
        bug, run = _failing_run()
        restored = Recording.from_dict(record(run).to_dict())
        replayed = replay(bug.machine_factory, restored)
        assert replayed.failed
