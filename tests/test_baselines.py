"""Tests for the baseline diagnosers and the Table 1 scoring."""

import pytest

from repro.analysis.requirements import (
    Verdict,
    aitia_row,
    bug_category,
    score_tool,
)
from repro.baselines import (
    ALL_BASELINES,
    CooperativeLocalization,
    Kairux,
    Muvi,
    RecordReplay,
)
from repro.core.diagnose import Aitia
from repro.corpus import registry


@pytest.fixture(scope="module")
def diagnoses():
    registry.load()
    bugs = registry.all_bugs()
    return bugs, [Aitia(b).diagnose() for b in bugs]


def _bug_diag(diagnoses, bug_id):
    bugs, ds = diagnoses
    for b, d in zip(bugs, ds):
        if b.bug_id == bug_id:
            return b, d
    raise KeyError(bug_id)


class TestKairux:
    def test_reports_single_instruction(self, diagnoses):
        bug, d = _bug_diag(diagnoses, "CVE-2017-15649")
        report = Kairux().diagnose(bug, d)
        assert report.diagnosed
        assert "inflection point" in report.summary
        assert report.concise

    def test_not_comprehensive_for_multi_race_chains(self, diagnoses):
        bug, d = _bug_diag(diagnoses, "CVE-2017-15649")
        report = Kairux().diagnose(bug, d)
        assert not report.comprehensive

    def test_is_structurally_pattern_agnostic(self):
        assert not Kairux.uses_predefined_patterns


class TestCooperativeLocalization:
    def test_reports_one_pattern(self, diagnoses):
        bug, d = _bug_diag(diagnoses, "CVE-2017-15649")
        report = CooperativeLocalization().diagnose(bug, d)
        assert report.diagnosed
        assert "violation" in report.summary

    def test_multi_variable_bug_not_comprehensive(self, diagnoses):
        """The paper's key argument: a single-variable pattern cannot fix
        CVE-2017-15649."""
        bug, d = _bug_diag(diagnoses, "CVE-2017-15649")
        report = CooperativeLocalization().diagnose(bug, d)
        assert not report.comprehensive

    def test_some_single_variable_bug_is_comprehensive(self, diagnoses):
        bugs, ds = diagnoses
        hits = [
            CooperativeLocalization().diagnose(b, d).comprehensive
            for b, d in zip(bugs, ds) if not b.multi_variable
        ]
        assert any(hits), "coop must fully diagnose some single-var bug"


class TestMuvi:
    def test_rejects_single_variable_bugs(self, diagnoses):
        bug, d = _bug_diag(diagnoses, "CVE-2018-12232")
        report = Muvi().diagnose(bug, d)
        assert not report.diagnosed
        assert "single-variable" in report.summary

    def test_rejects_loosely_correlated_bugs(self, diagnoses):
        for bug_id in ("CVE-2019-6974", "SYZ-01", "SYZ-04", "SYZ-09"):
            bug, d = _bug_diag(diagnoses, bug_id)
            report = Muvi().diagnose(bug, d)
            assert not report.diagnosed, f"{bug_id} must defeat MUVI"

    def test_diagnoses_tightly_correlated_bug(self, diagnoses):
        bug, d = _bug_diag(diagnoses, "CVE-2017-15649")
        report = Muvi().diagnose(bug, d)
        assert report.diagnosed
        assert report.comprehensive

    def test_explains_few_syzkaller_bugs(self, diagnoses):
        """Section 5.3: only 3 of 12 Table 3 bugs satisfy MUVI's
        assumption (we land within one of that)."""
        bugs, ds = diagnoses
        count = sum(
            Muvi().diagnose(b, d).diagnosed
            for b, d in zip(bugs, ds) if b.source == "syzkaller")
        assert 2 <= count <= 5


class TestRecordReplay:
    def test_comprehensive_but_not_concise(self, diagnoses):
        bug, d = _bug_diag(diagnoses, "CVE-2017-15649")
        report = RecordReplay().diagnose(bug, d)
        assert report.comprehensive
        assert not report.concise  # benign races included


class TestTable1Scoring:
    def test_aitia_row_is_all_yes(self, diagnoses):
        bugs, ds = diagnoses
        row = aitia_row(bugs, ds)
        assert row.comprehensive is Verdict.YES
        assert row.pattern_agnostic is Verdict.YES
        assert row.concise is Verdict.YES
        assert row.bugs_diagnosed == 22

    def test_table1_verdicts_match_paper(self, diagnoses):
        bugs, ds = diagnoses
        expected = {
            "Kairux": (Verdict.NO, Verdict.YES, Verdict.YES),
            "CoopLocalization": (Verdict.PARTIAL, Verdict.NO, Verdict.YES),
            "MUVI": (Verdict.PARTIAL, Verdict.NO, Verdict.YES),
            "Record&Replay": (Verdict.YES, Verdict.YES, Verdict.NO),
        }
        for cls in ALL_BASELINES:
            tool = cls()
            reports = [tool.diagnose(b, d) for b, d in zip(bugs, ds)]
            row = score_tool(tool, bugs, reports)
            assert (row.comprehensive, row.pattern_agnostic,
                    row.concise) == expected[tool.name], tool.name

    def test_bug_category_partition(self):
        cats = {bug_category(b) for b in registry.all_bugs()}
        assert cats == {"single-variable", "multi-variable",
                        "loosely-correlated"}

    def test_evidence_string(self, diagnoses):
        bugs, ds = diagnoses
        row = aitia_row(bugs, ds)
        assert "diagnosed per category" in row.evidence()
