"""Unit tests for smaller pieces: failures, threads, locks, schedules,
the syzkaller front end, and Kcov-free corners."""

import pytest

from repro.core.schedule import OrderConstraint, Preemption, Schedule
from repro.corpus.registry import get_bug
from repro.kernel.failures import CrashReport, Failure, FailureKind
from repro.kernel.locks import LockTable
from repro.kernel.threads import Frame, ThreadContext, ThreadKind
from repro.trace.syzkaller import run_bug_finder


class TestFailureTypes:
    def test_signature_combines_kind_and_location(self):
        f = Failure(FailureKind.KASAN_UAF, thread="A", instr_label="A3")
        assert f.signature == "KASAN_UAF@A3"

    def test_str_is_informative(self):
        f = Failure(FailureKind.GPF, thread="B", instr_label="B4",
                    message="NULL pointer dereference")
        text = str(f)
        assert "general protection fault" in text
        assert "B4" in text and "NULL" in text

    def test_crash_report_exposes_symptom_and_location(self):
        f = Failure(FailureKind.ASSERTION, instr_label="B17")
        report = CrashReport(failure=f, kernel_log="BUG: ...")
        assert report.symptom is FailureKind.ASSERTION
        assert report.location == "B17"


class TestThreadContext:
    def _ctx(self):
        return ThreadContext(tid=0, name="T", kind=ThreadKind.SYSCALL,
                             entry="main", frames=[Frame("main", 2)],
                             regs={"r0": 7}, locks_held=["L"])

    def test_snapshot_restore_roundtrip(self):
        ctx = self._ctx()
        snap = ctx.snapshot()
        ctx.regs["r0"] = 99
        ctx.frames[0].pc = 5
        ctx.locks_held.clear()
        ctx.restore(snap)
        assert ctx.regs == {"r0": 7}
        assert ctx.current_frame().pc == 2
        assert ctx.locks_held == ["L"]

    def test_current_frame_requires_stack(self):
        ctx = self._ctx()
        ctx.frames.clear()
        with pytest.raises(RuntimeError):
            ctx.current_frame()


class TestLockTable:
    def test_recursive_acquire_rejected(self):
        table = LockTable()
        assert table.try_acquire("L", 1)
        with pytest.raises(RuntimeError, match="recursively"):
            table.try_acquire("L", 1)

    def test_release_of_unowned_lock_rejected(self):
        table = LockTable()
        table.try_acquire("L", 1)
        with pytest.raises(RuntimeError, match="owned by"):
            table.release("L", 2)

    def test_waiters_are_woken_once(self):
        table = LockTable()
        table.try_acquire("L", 1)
        assert not table.try_acquire("L", 2)
        assert not table.try_acquire("L", 2)  # re-waiting is idempotent
        woken = table.release("L", 1)
        assert woken == [2]
        assert table.release("L", 2) == [] if table.try_acquire("L", 2) \
            else True

    def test_held_by(self):
        table = LockTable()
        table.try_acquire("L1", 3)
        table.try_acquire("L2", 3)
        assert table.held_by(3) == {"L1", "L2"}

    def test_snapshot_roundtrip(self):
        table = LockTable()
        table.try_acquire("L", 1)
        table.try_acquire("L", 2)
        snap = table.snapshot()
        table.release("L", 1)
        table.restore(snap)
        assert table.owner("L") == 1


class TestScheduleTypes:
    def test_describe_lists_everything(self):
        schedule = Schedule(
            start_order=("A", "B"),
            preemptions=[Preemption("A", 0x10, 1, "B", instr_label="A6")],
            constraints=[OrderConstraint("B", 0x20, 1, instr_label="B2")],
            note="test")
        text = schedule.describe()
        assert "start=A>B" in text
        assert "preempt A@A6#1 -> B" in text
        assert "B@B2#1" in text
        assert "(test)" in text

    def test_preemption_count(self):
        schedule = Schedule(start_order=("A",),
                            preemptions=[Preemption("A", 0x10, 1, None)])
        assert schedule.preemption_count == 1

    def test_constraint_key_and_str(self):
        c = OrderConstraint("B", 0x20, 2, instr_label="B2")
        assert c.key == ("B", 0x20, 2)
        assert str(c) == "B@B2#2"

    def test_preemption_str_without_target(self):
        p = Preemption("A", 0x10, 1, None)
        assert "->" not in str(p)


class TestSyzkallerFrontEnd:
    def test_probes_counted(self):
        bug = get_bug("CVE-2017-2671")
        report = run_bug_finder(bug, benign_probes=2)
        assert report.fuzzing_runs == 3  # two probes + the crash

    def test_kernel_log_has_call_trace(self):
        bug = get_bug("CVE-2017-2671")
        report = run_bug_finder(bug)
        assert "BUG:" in report.crash.kernel_log
        assert "Call trace:" in report.crash.kernel_log

    def test_history_is_fresh_per_call(self):
        bug = get_bug("CVE-2017-2671")
        h1 = run_bug_finder(bug).history
        h2 = run_bug_finder(bug).history
        assert h1 is not h2
        assert len(h1) == len(h2)


class TestDiagnoseRobustness:
    def test_history_without_concurrency_yields_no_slices(self):
        """A report whose history has no overlapping events cannot be
        sliced; the diagnosis reports non-reproduction instead of
        crashing."""
        from repro.core.diagnose import Aitia
        from repro.trace.events import SyscallEvent
        from repro.trace.history import ExecutionHistory
        from repro.trace.syzkaller import SyzkallerReport
        from repro.kernel.failures import CrashReport, Failure, FailureKind

        bug = get_bug("CVE-2017-2671")
        history = ExecutionHistory(failure_time=10.0)
        for i, t in enumerate(bug.threads):
            history.add(SyscallEvent(timestamp=float(3 * i), proc=t.proc,
                                     name=t.syscall, entry=t.entry,
                                     duration=1.0))
        report = SyzkallerReport(
            bug_id=bug.bug_id, history=history,
            crash=CrashReport(failure=Failure(FailureKind.GPF,
                                              instr_label="A4")))
        diagnosis = Aitia(bug, report=report).diagnose()
        assert not diagnosis.reproduced
        assert diagnosis.slices_tried == 0

    def test_machine_step_limit_guards_infinite_loops(self):
        from repro.kernel.builder import ProgramBuilder
        from repro.kernel.machine import (
            MAX_THREAD_STEPS,
            KernelMachine,
            ThreadSpec,
        )

        b = ProgramBuilder()
        with b.function("spin") as f:
            f.nop(label="top")
            f.jmp("top")
        image = b.build()
        m = KernelMachine(image, [ThreadSpec("T", "spin")])
        with pytest.raises(RuntimeError, match="unbounded loop"):
            for _ in range(MAX_THREAD_STEPS + 2):
                m.step("T")

    def test_deadlock_report_names_the_waiters(self):
        from repro.kernel.builder import ProgramBuilder
        from repro.kernel.machine import KernelMachine, ThreadSpec
        from repro.kernel.failures import FailureKind

        b = ProgramBuilder()
        with b.function("a") as f:
            f.lock("L1")
            f.lock("L2", label="A2")
            f.unlock("L2")
            f.unlock("L1")
        with b.function("bb") as f:
            f.lock("L2")
            f.lock("L1", label="B2")
            f.unlock("L1")
            f.unlock("L2")
        image = b.build()
        m = KernelMachine(image, [ThreadSpec("A", "a"),
                                  ThreadSpec("B", "bb")])
        m.step("A")  # A takes L1
        m.step("B")  # B takes L2
        m.step("A")  # A blocks on L2
        m.step("B")  # B blocks on L1
        blocked = [t for t in m.threads]
        failure = m.report_deadlock(blocked)
        assert failure.kind is FailureKind.DEADLOCK
        assert "A->L2" in failure.message
        assert "B->L1" in failure.message

    def test_list_ops_on_non_tuple_cell_start_fresh(self):
        from repro.kernel.builder import ProgramBuilder
        from repro.kernel.machine import KernelMachine, ThreadSpec

        b = ProgramBuilder()
        with b.function("main") as f:
            f.list_add(f.g("cell"), 5)
        image = b.build()
        m = KernelMachine(image, [ThreadSpec("T", "main")],
                          globals_init={"cell": 0})
        while not m.thread("T").done:
            m.step("T")
        assert m.memory.load(m.memory.global_addr("cell")) == (5,)
