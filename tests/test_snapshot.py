"""Tests for whole-machine snapshot / restore."""

import pytest

from repro.hypervisor.snapshot import capture, restore

from helpers import fig2_machine, run_thread, run_until


class TestSnapshotRestore:
    def test_rewind_replays_identically(self):
        m = fig2_machine()
        run_until(m, "A", "A6")
        snap = capture(m)

        # First try: finish A, then B — no failure.
        run_thread(m, "A")
        run_thread(m, "B")
        assert m.failure is None
        first_trace = [t.instr_label for t in m.trace]

        # Rewind and try the same continuation again: identical.
        restore(m, snap)
        run_thread(m, "A")
        run_thread(m, "B")
        assert [t.instr_label for t in m.trace] == first_trace

    def test_rewind_then_different_interleaving(self):
        m = fig2_machine()
        run_until(m, "A", "A6")
        snap = capture(m)

        run_thread(m, "A")
        run_thread(m, "B")
        assert m.failure is None

        # Rewind; this time run B up to B12 first — the failing order.
        restore(m, snap)
        run_until(m, "B", "B12")
        m.step("A")  # A6
        run_thread(m, "B")
        assert m.failure is not None
        assert m.failure.instr_label == "B17"

    def test_restore_clears_failure(self):
        m = fig2_machine()
        run_until(m, "A", "A6")
        snap = capture(m)
        run_until(m, "B", "B12")
        m.step("A")
        run_thread(m, "B")
        assert m.halted
        restore(m, snap)
        assert not m.halted
        assert m.failure is None

    def test_restore_discards_spawned_threads(self):
        from repro.corpus.registry import get_bug
        bug = get_bug("SYZ-04")
        m = bug.machine_factory()
        snap = capture(m)
        baseline_threads = len(m.threads)
        run_thread(m, "A")
        run_thread(m, "B")  # queue_work spawns the kworker
        assert len(m.threads) > baseline_threads
        restore(m, snap)
        assert len(m.threads) == baseline_threads
        # And the machine can run again from the snapshot.
        run_thread(m, "A")
        assert m.thread("A").done

    def test_snapshot_of_halted_machine_rejected(self):
        m = fig2_machine()
        run_until(m, "A", "A6")
        run_until(m, "B", "B12")
        m.step("A")
        run_thread(m, "B")
        assert m.halted
        with pytest.raises(ValueError, match="halted"):
            capture(m)

    def test_restore_onto_wrong_machine_rejected(self):
        from repro.corpus.registry import get_bug
        bug = get_bug("SYZ-04")
        m1 = bug.machine_factory()
        run_thread(m1, "A")
        run_thread(m1, "B")  # spawns a third thread
        snap = capture(m1) if not m1.halted else None
        m2 = fig2_machine()
        if snap is not None:
            with pytest.raises(ValueError, match="does not belong"):
                restore(m2, snap)

    def test_memory_values_rewound(self):
        m = fig2_machine()
        snap = capture(m)
        run_thread(m, "A")
        fanout_addr = m.memory.global_addr("po_fanout")
        assert m.memory.load(fanout_addr) != 0
        restore(m, snap)
        assert m.memory.load(fanout_addr) == 0
