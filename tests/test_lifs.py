"""Tests for Least Interleaving First Search."""

from repro.core.lifs import (
    FailureMatcher,
    LeastInterleavingFirstSearch,
    LifsConfig,
)
from repro.kernel.builder import ProgramBuilder
from repro.kernel.failures import Failure, FailureKind
from repro.kernel.machine import KernelMachine, ThreadSpec

from helpers import fig2_factory


class TestFailureMatcher:
    def test_any_failure_matches_everything(self):
        matcher = FailureMatcher.any_failure()
        assert matcher.matches(Failure(FailureKind.GPF, instr_label="X"))
        assert not matcher.matches(None)

    def test_kind_filter(self):
        matcher = FailureMatcher(kind=FailureKind.ASSERTION)
        assert matcher.matches(Failure(FailureKind.ASSERTION))
        assert not matcher.matches(Failure(FailureKind.GPF))

    def test_location_filter(self):
        matcher = FailureMatcher(location="B17")
        assert matcher.matches(Failure(FailureKind.ASSERTION,
                                       instr_label="B17"))
        assert not matcher.matches(Failure(FailureKind.ASSERTION,
                                           instr_label="A3"))


class TestReproduction:
    def test_reproduces_fig2(self):
        lifs = LeastInterleavingFirstSearch(
            fig2_factory(), ["A", "B"],
            FailureMatcher(kind=FailureKind.ASSERTION))
        result = lifs.search()
        assert result.reproduced
        assert result.failure_run.failure.instr_label == "B17"
        # Figure 2's bug needs two preemptions (Table 2's interleaving
        # count for CVE-2017-15649).
        assert result.interleaving_count == 2
        rendered = {str(r) for r in result.races}
        assert {"A2 => B11", "B2 => A6", "A6 => B12"} <= rendered

    def test_serial_failure_found_at_interleaving_zero(self):
        b = ProgramBuilder()
        with b.function("w") as f:
            f.store(f.g("x"), 1, label="W1")
        with b.function("r") as f:
            f.load("v", f.g("x"), label="R1")
            f.bug_on("v", "saw the write", label="R2")
        image = b.build()

        def factory():
            return KernelMachine(image, [ThreadSpec("W", "w"),
                                         ThreadSpec("R", "r")])

        lifs = LeastInterleavingFirstSearch(factory, ["W", "R"])
        result = lifs.search()
        assert result.reproduced
        assert result.interleaving_count == 0
        assert result.stats.schedules_executed == 1  # first serial order

    def test_race_free_model_is_not_reproduced(self):
        b = ProgramBuilder()
        with b.function("a") as f:
            f.lock("L")
            f.inc(f.g("c"), 1, label="A1")
            f.unlock("L")
        with b.function("bb") as f:
            f.lock("L")
            f.inc(f.g("c"), 1, label="B1")
            f.unlock("L")
        image = b.build()

        def factory():
            return KernelMachine(image, [ThreadSpec("A", "a"),
                                         ThreadSpec("B", "bb")])

        lifs = LeastInterleavingFirstSearch(factory, ["A", "B"])
        result = lifs.search()
        assert not result.reproduced
        assert result.failure_run is None

    def test_search_respects_schedule_budget(self):
        config = LifsConfig(max_schedules=2)
        lifs = LeastInterleavingFirstSearch(
            fig2_factory(), ["A", "B"],
            FailureMatcher(kind=FailureKind.ASSERTION), config=config)
        result = lifs.search()
        assert not result.reproduced
        assert result.stats.schedules_executed <= 2

    def test_wrong_symptom_is_not_accepted(self):
        # Looking for a GPF in a model that only BUG_ONs: never reproduced.
        lifs = LeastInterleavingFirstSearch(
            fig2_factory(), ["A", "B"],
            FailureMatcher(kind=FailureKind.GPF),
            config=LifsConfig(max_interleavings=3))
        result = lifs.search()
        assert not result.reproduced


class TestSearchStrategy:
    def test_rounds_ascend_in_interleaving_count(self):
        lifs = LeastInterleavingFirstSearch(
            fig2_factory(), ["A", "B"],
            FailureMatcher(kind=FailureKind.ASSERTION))
        result = lifs.search()
        rounds = result.stats.per_round_executed
        assert 0 in rounds and 1 in rounds and 2 in rounds
        assert rounds[0] == 2  # both serial orders

    def test_pruning_happens(self):
        lifs = LeastInterleavingFirstSearch(
            fig2_factory(), ["A", "B"],
            FailureMatcher(kind=FailureKind.ASSERTION))
        result = lifs.search()
        # The global_list access (A12) has no conflicting access from B in
        # early rounds, so at least one candidate must be pruned.
        assert result.stats.candidates_pruned > 0

    def test_equivalent_runs_detected(self):
        lifs = LeastInterleavingFirstSearch(
            fig2_factory(), ["A", "B"],
            FailureMatcher(kind=FailureKind.ASSERTION))
        result = lifs.search()
        assert result.stats.equivalent_runs > 0

    def test_sample_runs_respect_cap(self):
        config = LifsConfig(keep_runs=3)
        lifs = LeastInterleavingFirstSearch(
            fig2_factory(), ["A", "B"],
            FailureMatcher(kind=FailureKind.ASSERTION), config=config)
        result = lifs.search()
        assert len(result.sample_runs) <= 3


class TestDynamicDiscovery:
    def test_race_steered_kworker_is_found(self):
        """Figure 5: the kworker only exists when A1 => B1; LIFS must
        discover it dynamically and reproduce the K1 => A3 failure."""
        b = ProgramBuilder()
        with b.function("a") as f:
            f.store(f.g("m1"), 1, label="A1")
            f.load("x", f.g("m2"), label="A2")
            f.load("p", f.g("m3"), label="A3a")
            f.bug_on("p", "K1 won", label="A3")
        with b.function("bb") as f:
            f.load("v", f.g("m1"), label="B1")
            f.store(f.g("m2"), 7, label="B2")
            f.brz("v", "out", label="B3a")
            f.queue_work("k", label="B3")
            f.ret(label="out")
        with b.function("k") as f:
            f.store(f.g("m3"), 1, label="K1")
        image = b.build()

        def factory():
            return KernelMachine(image, [ThreadSpec("A", "a"),
                                         ThreadSpec("B", "bb")])

        lifs = LeastInterleavingFirstSearch(
            factory, ["A", "B"], FailureMatcher(kind=FailureKind.ASSERTION))
        result = lifs.search()
        assert result.reproduced
        threads = {t.thread for t in result.failure_run.trace}
        assert any(t.startswith("kworker/") for t in threads)
        rendered = {str(r) for r in result.races}
        assert "K1 => A3a" in rendered
