"""Tests for the cost model and table renderer."""

import pytest

from repro.analysis.metrics import CostModel, StageCost
from repro.analysis.tables import Table, render_table


class TestCostModel:
    def test_crashing_run_costs_a_reboot(self):
        model = CostModel()
        crash = model.run_cost(steps=100, crashed=True)
        ok = model.run_cost(steps=100, crashed=False)
        assert crash - ok == pytest.approx(
            model.reboot_s - model.snapshot_restore_s)

    def test_stage_cost_components(self):
        model = CostModel(schedule_setup_s=1.0, instruction_s=0.0,
                          snapshot_restore_s=0.0, reboot_s=10.0)
        cost = model.stage_cost(schedules=5, total_steps=0, crashes=2)
        assert cost.seconds == pytest.approx(5 * 1.0 + 2 * 10.0)
        assert cost.schedules == 5
        assert cost.crashes == 2

    def test_parallel_seconds(self):
        cost = StageCost(schedules=10, crashes=0, seconds=64.0)
        assert cost.parallel_seconds(32) == pytest.approx(2.0)
        assert cost.parallel_seconds(0) == pytest.approx(64.0)

    def test_reboots_dominate_ca_shape(self):
        """The calibrated constants must keep the paper's shape: a CA
        schedule (mostly crashing) costs ~25x a LIFS schedule (mostly
        clean)."""
        model = CostModel()
        ca = model.run_cost(steps=100, crashed=True)
        lifs = model.run_cost(steps=100, crashed=False)
        assert ca / lifs > 10


class TestTableRenderer:
    def test_rows_align_with_columns(self):
        table = Table("T", ["a", "bb"])
        table.add_row(1, 2.5)
        out = table.render()
        assert "T" in out and "a" in out and "2.5" in out

    def test_row_arity_checked(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_floats_formatted_to_one_decimal(self):
        out = render_table("T", ["x"], [[3.14159]])
        assert "3.1" in out and "3.14" not in out

    def test_separator_line_present(self):
        out = render_table("T", ["col1", "col2"], [["a", "b"]])
        assert any(set(line) <= {"-", "+", " "}
                   for line in out.splitlines()[2:3])
