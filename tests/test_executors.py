"""Tests for the unified dispatch layer (repro.engine.executors).

Covers the content-addressed :class:`CheckpointStore` wire protocol
(checkpoint bytes cross a boundary at most once; v1 payloads are
rejected with the upgrade path), the :class:`FleetExecutor` contract
(spin-up threshold, hybrid dispatch, bit-identity with sequential
execution), fleet fault tolerance (a worker SIGKILLed mid-wave is
respawned and its task re-run inline without changing the diagnosis),
and executor selection through :class:`EnginePolicy` /
:func:`make_executor`.
"""

import os
import pickle
import signal

import pytest

from repro.core.causality import CaConfig
from repro.core.diagnose import Aitia
from repro.core.lifs import LifsConfig
from repro.core.schedule import Schedule  # noqa: F401 — vocabulary
from repro.corpus.registry import get_bug
from repro.engine import EnginePolicy
from repro.engine.executors import (
    DEFAULT_SPINUP_REQUESTS,
    FleetExecutor,
    InlineExecutor,
    make_executor,
)
import repro.engine.executors as executors_module
from repro.engine.protocol import RunPlan, RunRequest
from repro.hypervisor.controller import ScheduleController, serial_schedule
from repro.hypervisor.snapshot import CheckpointPolicy, boot_checkpoint
from repro.kernel.snapshot import (
    CheckpointStore,
    dumps_state,
    loads_state,
    snapshot_state_key,
)
from repro.observe import MemorySink, Tracer

from helpers import fig2_machine

SCHEDULES = [serial_schedule(["A", "B"]),
             serial_schedule(["B", "A"]),
             serial_schedule(["A", "B", "A"]),
             serial_schedule(["B", "A", "B"])]


def _run_facts(run):
    return (
        [(t.thread, t.instr_addr, t.seq, t.occurrence) for t in run.trace],
        [(a.thread, a.instr_addr, a.data_addr, a.seq) for a in run.accesses],
        run.failure,
        run.steps,
        run.interleavings,
    )


def _plan(schedules=None, resume_from=None):
    return RunPlan([RunRequest(schedule=s, resume_from=resume_from)
                    for s in (schedules or SCHEDULES)], phase="test")


def _sequential(schedules=None, resume_from=None):
    outcomes = []
    for request in _plan(schedules, resume_from).requests:
        machine = fig2_machine()
        controller = ScheduleController(
            machine, request.schedule, watch_races=request.watch_races,
            resume_from=request.resume_from)
        outcomes.append(controller.run())
    return outcomes


def _eager_fleet(jobs=2, tracer=None):
    executor = make_executor(machine_factory=fig2_machine, jobs=jobs,
                             tracer=tracer, spinup_requests=0, eager=True)
    assert isinstance(executor, FleetExecutor)
    return executor


def _collect(executor, plan):
    outcomes = [None] * len(plan.requests)
    for index, outcome in executor.submit(plan):
        assert outcomes[index] is None  # exactly-once per request
        outcomes[index] = outcome
    assert all(o is not None for o in outcomes)
    return outcomes


# ----------------------------------------------------------------------
# Wire protocol: the CheckpointStore envelope (WIRE_VERSION=2).
# ----------------------------------------------------------------------
class TestCheckpointStoreWire:
    def _checkpoint(self):
        return boot_checkpoint(fig2_machine())

    def test_store_round_trip_is_exact(self):
        ckpt = self._checkpoint()
        sender, receiver = CheckpointStore(), CheckpointStore()
        known = set()
        payload = dumps_state(ckpt, store=sender, known=known)
        clone = loads_state(payload, store=receiver)
        assert snapshot_state_key(clone.machine) \
            == snapshot_state_key(ckpt.machine)
        assert clone.horizon_seq == ckpt.horizon_seq

    def test_checkpoint_bytes_cross_the_wire_at_most_once(self):
        ckpt = self._checkpoint()
        sender, receiver = CheckpointStore(), CheckpointStore()
        sender_known, receiver_known = set(), set()
        first = dumps_state((ckpt, "first"), store=sender,
                            known=sender_known)
        second = dumps_state((ckpt, "second"), store=sender,
                            known=sender_known)
        # The second payload carries only the reference, not the blob.
        assert len(second) < len(first) / 2
        got_first = loads_state(first, store=receiver,
                                known=receiver_known)
        got_second = loads_state(second, store=receiver,
                                 known=receiver_known)
        # Reference identity on the receiving side: the same key
        # resolves to the same interned object.
        assert got_first[0] is got_second[0]

    def test_known_set_suppresses_reshipping(self):
        ckpt = self._checkpoint()
        store = CheckpointStore()
        key = store.put(ckpt)
        # Receiver already holds the key (e.g. fork-inherited): payload
        # must carry no blob at all.
        payload = dumps_state(ckpt, store=store, known={key})
        envelope = pickle.loads(payload)
        assert envelope[1] == {}  # no fresh blobs
        assert loads_state(payload, store=store) is ckpt

    def test_missing_store_reference_fails_actionably(self):
        ckpt = self._checkpoint()
        store = CheckpointStore()
        key = store.put(ckpt)
        payload = dumps_state(ckpt, store=store, known={key})
        with pytest.raises(ValueError, match="CheckpointStore"):
            loads_state(payload)  # references but no store
        with pytest.raises(KeyError, match="never seen"):
            loads_state(payload, store=CheckpointStore())

    def test_storeless_payloads_are_self_contained(self):
        ckpt = self._checkpoint()
        clone = loads_state(dumps_state(ckpt))
        assert snapshot_state_key(clone.machine) \
            == snapshot_state_key(ckpt.machine)

    def test_v1_payload_rejected_with_upgrade_path(self):
        blob = pickle.dumps((1, b"legacy inline machine state"))
        with pytest.raises(ValueError) as excinfo:
            loads_state(blob)
        message = str(excinfo.value)
        assert "wire version 1" in message
        assert "CheckpointStore" in message
        assert "make_executor" in message

    def test_unknown_version_rejected(self):
        blob = pickle.dumps((9, {}, b"body"))
        with pytest.raises(ValueError, match="unsupported snapshot wire "
                                             "version 9"):
            loads_state(blob)

    def test_store_interns_by_content(self):
        store = CheckpointStore()
        ckpt = self._checkpoint()
        key = store.put(ckpt)
        assert store.put(ckpt) == key  # id-memo path
        assert key in store and len(store) == 1
        assert store.get(key) is ckpt


# ----------------------------------------------------------------------
# FleetExecutor: dispatch contract and bit-identity.
# ----------------------------------------------------------------------
class TestFleetExecutor:
    def test_outcomes_match_sequential_execution(self):
        expected = _sequential()
        executor = _eager_fleet(jobs=2)
        try:
            assert executor.engage(len(SCHEDULES))
            got = _collect(executor, _plan())
        finally:
            executor.close()
        assert [_run_facts(o.run) for o in got] \
            == [_run_facts(r) for r in expected]

    def test_resumed_requests_match_sequential(self):
        ckpt = boot_checkpoint(fig2_machine())
        expected = _sequential(resume_from=ckpt)
        executor = _eager_fleet(jobs=2)
        try:
            assert executor.engage(len(SCHEDULES))
            got = _collect(executor, _plan(resume_from=ckpt))
        finally:
            executor.close()
        assert [_run_facts(o.run) for o in got] \
            == [_run_facts(r) for r in expected]
        assert all(o.resumed for o in got)

    def test_spinup_threshold_defers_forking(self):
        executor = make_executor(machine_factory=fig2_machine, jobs=2)
        try:
            assert executor.spinup_requests == DEFAULT_SPINUP_REQUESTS
            # Demand below the threshold: no fork, caller runs inline.
            assert not executor.engage(DEFAULT_SPINUP_REQUESTS - 1)
            assert not executor.fleet.started
            # Crossing the threshold forks (non-blocking).
            executor.engage(1)
            assert executor.fleet.started
        finally:
            executor.close()

    def test_submit_without_ready_workers_runs_inline(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        executor = make_executor(machine_factory=fig2_machine, jobs=2,
                                 tracer=tracer)
        try:
            got = _collect(executor, _plan())  # fleet never started
        finally:
            executor.close()
        tracer.close()
        assert [_run_facts(o.run) for o in got] \
            == [_run_facts(r) for r in _sequential()]
        assert sink.counter_totals()["hv.wave.inline"] == len(SCHEDULES)

    def test_workers_stay_resident_across_plans(self):
        executor = _eager_fleet(jobs=2)
        try:
            assert executor.engage(len(SCHEDULES))
            _collect(executor, _plan())
            pids_first = {w.process.pid for w in executor.fleet.workers}
            _collect(executor, _plan())
            pids_second = {w.process.pid for w in executor.fleet.workers}
            assert pids_first == pids_second
            assert executor.fleet.respawns == 0
        finally:
            executor.close()

    def test_make_executor_serial_builds_inline(self):
        executor = make_executor(machine_factory=fig2_machine, jobs=1)
        assert isinstance(executor, InlineExecutor)
        assert not executor.parallel


# ----------------------------------------------------------------------
# Fault tolerance: a resident worker SIGKILLed mid-wave.
# ----------------------------------------------------------------------
def _install_kill_once(monkeypatch, flag_path):
    """Poison the worker-side task body (fork-inherited) so exactly one
    task SIGKILLs its worker; every other task executes normally.  The
    O_CREAT|O_EXCL latch makes the 'exactly one' deterministic across
    concurrent workers."""
    original = executors_module._execute_task

    def kill_once(task, machine_factory, state, max_continuations):
        try:
            fd = os.open(flag_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return original(task, machine_factory, state,
                            max_continuations)
        os.close(fd)
        os.kill(os.getpid(), signal.SIGKILL)

    monkeypatch.setattr(executors_module, "_execute_task", kill_once)


class TestFleetFaultTolerance:
    def test_sigkilled_worker_is_respawned_and_task_reruns_inline(
            self, monkeypatch, tmp_path):
        flag = str(tmp_path / "killed")
        _install_kill_once(monkeypatch, flag)
        sink = MemorySink()
        tracer = Tracer(sink)
        executor = _eager_fleet(jobs=2, tracer=tracer)
        try:
            assert executor.engage(len(SCHEDULES))
            got = _collect(executor, _plan())
            assert os.path.exists(flag)  # the kill genuinely happened
            # The lost task was transparently re-executed in the parent,
            # so the wave's results are still bit-identical.
            assert [_run_facts(o.run) for o in got] \
                == [_run_facts(r) for r in _sequential()]
            # The fleet replaced the dead worker within budget...
            assert executor.fleet.respawns >= 1
            assert any(w.alive for w in executor.fleet.workers)
            # ...and the next wave dispatches remotely again.
            got2 = _collect(executor, _plan())
            assert [_run_facts(o.run) for o in got2] \
                == [_run_facts(r) for r in _sequential()]
        finally:
            executor.close()
        tracer.close()
        counters = sink.counter_totals()
        assert counters.get("hv.wave.fallbacks", 0) >= 1

    def test_diagnosis_survives_worker_kill_bit_identically(
            self, monkeypatch, tmp_path):
        bug = get_bug("CVE-2017-15649")
        seq = Aitia(bug, lifs_config=LifsConfig(),
                    ca_config=CaConfig()).diagnose()
        _install_kill_once(monkeypatch, str(tmp_path / "killed"))
        # Instance attributes on the configs drop the spin-up threshold
        # to zero (config fields win outright in EnginePolicy.resolve),
        # so the fleet forks — and loses a worker — even on this small
        # diagnosis.
        lifs, ca = LifsConfig(wave_jobs=2), CaConfig(wave_jobs=2)
        lifs.fleet_spinup_requests = 0
        ca.fleet_spinup_requests = 0
        par = Aitia(bug, lifs_config=lifs, ca_config=ca).diagnose()
        assert par.chain.render() == seq.chain.render()
        assert par.lifs_result.stats.schedules_executed \
            == seq.lifs_result.stats.schedules_executed
        assert par.ca_result.stats.schedules_executed \
            == seq.ca_result.stats.schedules_executed
        assert sorted(u.uid for u in par.ca_result.root_cause_units) \
            == sorted(u.uid for u in seq.ca_result.root_cause_units)


# ----------------------------------------------------------------------
# Policy resolution: the executor knob.
# ----------------------------------------------------------------------
class TestExecutorPolicy:
    def test_default_is_fleet(self):
        assert EnginePolicy.resolve().executor == "fleet"

    def test_config_field_wins(self):
        policy = EnginePolicy.resolve(LifsConfig(executor="inline"),
                                      executor="fleet")
        assert policy.executor == "inline"

    def test_api_tier_beats_cli_tier(self):
        policy = EnginePolicy.resolve(executor="inline",
                                      cli_executor="fleet")
        assert policy.executor == "inline"

    def test_legacy_wave_name_aliases_to_fleet(self):
        assert EnginePolicy.resolve(executor="wave").executor == "fleet"

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            EnginePolicy.resolve(executor="threads")

    def test_inline_executor_diagnosis_matches_fleet(self):
        bug = get_bug("SYZ-01")
        fleet = Aitia(bug, lifs_config=LifsConfig(wave_jobs=2),
                      ca_config=CaConfig(wave_jobs=2)).diagnose()
        inline = Aitia(
            bug,
            lifs_config=LifsConfig(wave_jobs=2, executor="inline"),
            ca_config=CaConfig(wave_jobs=2, executor="inline")).diagnose()
        assert inline.chain.render() == fleet.chain.render()
        assert inline.lifs_result.stats.schedules_executed \
            == fleet.lifs_result.stats.schedules_executed
