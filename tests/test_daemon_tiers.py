"""Tests for the two-tier result store (hot LRU over cold shards)."""

import os

import pytest

from repro.daemon.tiers import HotTier, ShardedColdStore, TieredStore
from repro.service.signature import shard_index


def _digest(n: int) -> str:
    # Vary the leading hex chars: shard_index shards by digest prefix.
    return f"{n:04x}" + "0" * 12


class TestHotTier:
    def test_hit_miss_counters(self):
        hot = HotTier(capacity=4)
        assert hot.get("d") is None
        hot.put("d", {"v": 1})
        assert hot.get("d") == {"v": 1}
        assert (hot.hits, hot.misses) == (1, 1)

    def test_lru_eviction_order(self):
        hot = HotTier(capacity=2)
        hot.put("a", {})
        hot.put("b", {})
        hot.get("a")          # refresh a: b is now least-recent
        hot.put("c", {})      # evicts b
        assert "a" in hot and "c" in hot and "b" not in hot
        assert hot.evictions == 1

    def test_put_existing_refreshes_not_grows(self):
        hot = HotTier(capacity=2)
        hot.put("a", {"v": 1})
        hot.put("a", {"v": 2})
        assert len(hot) == 1
        assert hot.get("a") == {"v": 2}

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            HotTier(capacity=0)


class TestShardedColdStore:
    def test_round_trip_and_shard_layout(self, tmp_path):
        cold = ShardedColdStore(str(tmp_path), shards=4)
        for n in range(16):
            cold.put(_digest(n), {"n": n})
        assert len(cold) == 16
        assert cold.get(_digest(3)) == {"n": 3}
        assert set(cold.digests()) == {_digest(n) for n in range(16)}
        files = [f for f in os.listdir(tmp_path) if f.endswith(".jsonl")]
        assert len(files) == 4

    def test_digest_lands_in_stable_shard_across_reopen(self, tmp_path):
        ShardedColdStore(str(tmp_path), shards=8).put(_digest(5), {"v": 1})
        reopened = ShardedColdStore(str(tmp_path), shards=8)
        assert reopened.get(_digest(5)) == {"v": 1}
        shard = shard_index(_digest(5), 8)
        path = os.path.join(str(tmp_path), f"shard-{shard:02d}.jsonl")
        assert os.path.getsize(path) > 0

    def test_compact_and_close(self, tmp_path):
        cold = ShardedColdStore(str(tmp_path), shards=2)
        for _ in range(3):
            cold.put(_digest(1), {"v": 1})
        cold.compact()
        cold.close()
        assert ShardedColdStore(str(tmp_path), shards=2).get(
            _digest(1)) == {"v": 1}


class TestTieredStore:
    def test_miss_then_cold_then_hot(self, tmp_path):
        store = TieredStore(directory=str(tmp_path), hot_capacity=8)
        assert store.lookup(_digest(1)) == (None, "")
        store.put(_digest(1), {"v": 1})

        # A fresh store over the same directory: first lookup is cold
        # (and promotes), the second is hot.
        fresh = TieredStore(directory=str(tmp_path), hot_capacity=8)
        record, tier = fresh.lookup(_digest(1))
        assert (record, tier) == ({"v": 1}, "cold")
        record, tier = fresh.lookup(_digest(1))
        assert (record, tier) == ({"v": 1}, "hot")
        assert fresh.cold_hits == 1

    def test_put_is_visible_in_both_tiers(self, tmp_path):
        store = TieredStore(directory=str(tmp_path))
        store.put(_digest(2), {"v": 2})
        assert store.lookup(_digest(2))[1] == "hot"
        assert store.cold.get(_digest(2)) == {"v": 2}  # durably cold too

    def test_eviction_falls_back_to_cold(self, tmp_path):
        store = TieredStore(directory=str(tmp_path), hot_capacity=2)
        for n in range(5):
            store.put(_digest(n), {"n": n})
        # Oldest digests were evicted from the hot tier but still hit.
        record, tier = store.lookup(_digest(0))
        assert (record, tier) == ({"n": 0}, "cold")

    def test_memory_only_without_directory(self):
        store = TieredStore()
        store.put("d", {"v": 1})
        assert store.get("d") == {"v": 1}
        assert "d" in store

    def test_stats_shape(self, tmp_path):
        store = TieredStore(directory=str(tmp_path), hot_capacity=2)
        store.put(_digest(1), {})
        store.get(_digest(1))
        store.get("missing")
        stats = store.stats()
        assert stats["hot_hits"] == 1
        assert stats["cold_size"] == 1
        assert stats["lookups"] == stats["hot_hits"] + stats["hot_misses"]
