#!/usr/bin/env python
"""Conciseness in action: triaging benign races out of a failure.

The Linux kernel is full of intentional data races — statistics
counters, flag twiddling — that make race *detectors* noisy (the paper
cites DataCollider: 104 of 113 detected races benign).  Causality
Analysis removes them by evidence, not heuristics: a race whose flip
still crashes the kernel did not contribute.

This example diagnoses the software-RAID bug (Table 3 #10, salted with
32 racy counters), prints every detected race with its verdict, and
compares against what a raw race detector / replay tool would hand the
developer.

Run:  python examples/benign_race_triage.py
"""

from repro import Aitia
from repro.baselines import RecordReplay
from repro.corpus import get_bug


def main() -> None:
    bug = get_bug("SYZ-10")
    diagnosis = Aitia(bug).diagnose()
    analysis = diagnosis.ca_result

    total = len(diagnosis.lifs_result.races)
    print(f"{bug.bug_id}: {bug.title}")
    print(f"data races detected in the failing execution: {total}")
    print()

    print("verdict per race (Causality Analysis):")
    for unit in analysis.root_cause_units:
        print(f"  ROOT CAUSE  {unit}")
    shown = 0
    for unit in analysis.benign_units:
        if shown < 8:
            print(f"  benign      {unit}")
            shown += 1
    remaining = len(analysis.benign_units) - shown
    if remaining > 0:
        print(f"  benign      ... and {remaining} more statistics-counter "
              f"races")
    print()

    print(f"causality chain ({diagnosis.chain.race_count} races):")
    print(f"  {diagnosis.chain.render()}")
    print()

    replay = RecordReplay().diagnose(bug, diagnosis)
    print("what a record&replay tool reports instead:")
    print(f"  {replay.summary}")
    print()
    ratio = total / max(diagnosis.chain.race_count, 1)
    print(f"conciseness: the chain is {ratio:.0f}x smaller than the raw "
          f"race list, with zero manual triage (paper section 5.2: "
          f"108.4 -> 3.0 races on the real kernel).")


if __name__ == "__main__":
    main()
