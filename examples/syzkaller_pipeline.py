#!/usr/bin/env python
"""The full bug-finder pipeline on the KVM irqfd bug (Figure 9).

This is how AITIA is meant to be used in practice (paper section 4):
a fuzzer crashes the kernel and leaves behind an ftrace event history
and a coredump; AITIA models the history, slices it into groups of
concurrent threads (closing file-descriptor semantics), reproduces the
crash with LIFS slice by slice, and diagnoses the root cause.

The diagnosed bug is Table 3's #4: a use-after-free whose causality
chain crosses the thread boundary into a kworker.

Run:  python examples/syzkaller_pipeline.py
"""

from repro import Aitia
from repro.corpus import get_bug
from repro.trace.slicer import Slicer
from repro.trace.syzkaller import run_bug_finder


def main() -> None:
    bug = get_bug("SYZ-04")

    # --- The bug finder crashes the kernel ------------------------------
    report = run_bug_finder(bug)
    print("=== 1. bug finder report ===")
    print(f"crash: {report.crash.failure}")
    print("kernel log excerpt:")
    for line in report.crash.kernel_log.splitlines()[:4]:
        print(f"  {line}")
    print()
    print("execution history (ftrace):")
    print("  " + report.history.render().replace("\n", "\n  "))
    print()

    # --- Modeling: slicing -----------------------------------------------
    slices = Slicer(report.history).slices()
    print("=== 2. slices, backward from the failure ===")
    for s in slices:
        print(f"  {s.describe()}")
    print()

    # --- Reproducing + diagnosing ----------------------------------------
    diagnosis = Aitia(bug, report=report).diagnose()
    print("=== 3. diagnosis ===")
    print(diagnosis.render())
    print()
    print("Note the chain's middle hop: flipping the list race A1 => B1")
    print("makes the kworker invocation itself disappear — a race-steered")
    print("control flow across the thread boundary (Figure 4-(a)).")


if __name__ == "__main__":
    main()
