#!/usr/bin/env python
"""Full walkthrough of CVE-2017-15649 — the paper's running example
(Figures 2, 3 and 6).

The AF_PACKET fanout bug: ``setsockopt(PACKET_FANOUT)`` and ``bind``
communicate through two correlated fields, ``po->running`` and
``po->fanout``.  A race-steered control flow sends ``bind`` into
``fanout_unlink`` for a socket that was never linked, hitting BUG_ON.

This example runs each stage separately to show what it produces:
LIFS's search statistics and failure-causing sequence, then Causality
Analysis's flip-by-flip log, then the causality chain with its
multi-variable conjunction node.

Run:  python examples/diagnose_cve_2017_15649.py
"""

from repro.core.causality import CausalityAnalysis
from repro.core.lifs import FailureMatcher, LeastInterleavingFirstSearch
from repro.corpus import get_bug
from repro.kernel.failures import FailureKind


def main() -> None:
    bug = get_bug("CVE-2017-15649")
    print(bug.title)
    print("=" * len(bug.title))
    print()
    print("The modeled kernel code:")
    print(bug.image.disassemble("fanout_add"))
    print(bug.image.disassemble("unregister_hook"))
    print()

    # --- Stage 1: LIFS -------------------------------------------------
    lifs = LeastInterleavingFirstSearch(
        bug.machine_factory, ["A", "B"],
        target=FailureMatcher(kind=FailureKind.ASSERTION, location="B17"))
    result = lifs.search()
    stats = result.stats
    print(f"LIFS: reproduced after {stats.schedules_executed} schedules "
          f"({stats.candidates_pruned} candidates pruned by partial-order "
          f"reduction, {stats.equivalent_runs} equivalent runs)")
    print(f"per interleaving count: {dict(stats.per_round_executed)}")
    print(f"reproducing run used {result.interleaving_count} "
          f"interleavings")
    print("failure-causing sequence:")
    print("  " + " => ".join(
        f"{t.thread}:{t.instr_label}" for t in result.failure_run.trace
        if "stat" not in t.instr_label))
    print()

    # --- Stage 2: Causality Analysis -----------------------------------
    ca = CausalityAnalysis(bug.machine_factory, result)
    analysis = ca.analyze()
    print(f"Causality Analysis: {len(result.races)} data races tested, "
          f"{analysis.benign_race_count} benign, "
          f"{len(analysis.root_cause_units)} in the root cause set "
          f"({analysis.stats.schedules_executed} schedules, "
          f"{analysis.stats.reboots} VM reboots)")
    for test in analysis.tests:
        if "stat" in str(test.unit):
            continue
        verdict = "still fails -> benign" if test.failed \
            else "failure averted -> root cause"
        print(f"  step {test.step}: flip {test.unit}: {verdict}")
    print()

    # --- The chain ------------------------------------------------------
    print("Causality chain (compare with the paper's Figure 3):")
    print(f"  {analysis.chain.render()}")
    print()
    print("The conjunction node is the multi-variable atomicity violation")
    print("the developers actually fixed: po->running and po->fanout must")
    print("be accessed atomically, i.e. (B2 => A6) and (A2 => B11) must")
    print("not hold simultaneously.")


if __name__ == "__main__":
    main()
