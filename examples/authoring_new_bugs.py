#!/usr/bin/env python
"""Author your own kernel concurrency bug and let AITIA diagnose it.

This example builds a fresh "subsystem" with the ProgramBuilder DSL —
a refcounted connection object torn down by one path while another path
is still using it — and runs the diagnosis pipeline over it without any
corpus support.  Use it as a template for modeling new bugs.

Run:  python examples/authoring_new_bugs.py
"""

from repro import Aitia, LeastInterleavingFirstSearch
from repro.core.causality import CausalityAnalysis
from repro.kernel.builder import ProgramBuilder
from repro.kernel.machine import KernelMachine, ThreadSpec


def build_image():
    b = ProgramBuilder()

    # Boot-time state: one connection, refcount 1.
    with b.function("conn_create") as f:
        f.alloc("c", 16, tag="conn", label="S1")
        f.store(f.g("conn_ptr"), f.r("c"), label="S2")
        f.store(f.g("conn_refs"), 1, label="S3")

    # Path 1: send() — grab the connection, use it.
    with b.function("conn_send") as f:
        f.load("refs", f.g("conn_refs"), label="A1")
        f.brz("refs", "A_out", label="A1b")
        f.load("c", f.g("conn_ptr"), label="A2")
        f.inc(f.g("tx_packets"), 1, label="A3")  # benign stats race
        f.store(f.at("c", 8), 0xAB, label="A4")  # use: UAF point
        f.ret(label="A_out")

    # Path 2: teardown() — drop the last reference and free.
    with b.function("conn_teardown") as f:
        f.inc(f.g("tx_packets"), 1, label="B1")  # benign stats race
        f.store(f.g("conn_refs"), 0, label="B2")
        f.load("c", f.g("conn_ptr"), label="B3")
        f.free("c", label="B4")

    return b.build()


def main() -> None:
    image = build_image()

    def factory():
        return KernelMachine(
            image,
            [ThreadSpec("send", "conn_send"),
             ThreadSpec("teardown", "conn_teardown")],
            setup=[ThreadSpec("boot", "conn_create")])

    # Low-level API: run the two stages by hand.
    lifs = LeastInterleavingFirstSearch(factory, ["send", "teardown"])
    result = lifs.search()
    print(f"reproduced: {result.reproduced} after "
          f"{result.stats.schedules_executed} schedules")
    print(f"failure: {result.failure_run.failure}")

    analysis = CausalityAnalysis(factory, result).analyze()
    print(f"races detected: {len(result.races)}; "
          f"benign excluded: {analysis.benign_race_count}")
    print(f"chain: {analysis.chain.render()}")

    # Or wrap it as a workload for the one-call orchestrator:
    class MyBug:
        bug_id = "example-conn-uaf"
        machine_factory = staticmethod(factory)

    diagnosis = Aitia(MyBug()).diagnose()
    print()
    print(diagnosis.render())


if __name__ == "__main__":
    main()
