#!/usr/bin/env python
"""Archive a fuzzer report to disk and re-diagnose it later.

Real bug-finding pipelines archive crashes: an ftrace log plus the
kernel oops text is everything AITIA needs.  This example saves a
Syzkaller report in the two textual formats, reads them back — as a
triage service would, days later, with no live fuzzer — and produces
the same causality chain.  The minimal reproducer (a replayable
schedule recording) is archived as JSON next to them.

Run:  python examples/archive_and_rediagnose.py
"""

import json
import tempfile
from pathlib import Path

from repro import Aitia
from repro.corpus import get_bug
from repro.hypervisor.replay import Recording, record, replay
from repro.trace.crash import parse_crash_report, render_crash_report
from repro.trace.ftrace import parse_ftrace, render_ftrace
from repro.trace.syzkaller import SyzkallerReport, run_bug_finder


def main() -> None:
    bug = get_bug("SYZ-08")
    workdir = Path(tempfile.mkdtemp(prefix="aitia-archive-"))

    # --- 1. the fuzzer crashes and we archive its output ---------------
    report = run_bug_finder(bug)
    (workdir / "trace.ftrace").write_text(render_ftrace(report.history))
    (workdir / "crash.txt").write_text(render_crash_report(report.crash))
    print(f"archived fuzzer output under {workdir}")
    print(f"  trace.ftrace: {len(report.history)} events")
    print(f"  crash.txt:    {report.crash.failure}")

    # --- 2. later: reload and diagnose ----------------------------------
    restored = SyzkallerReport(
        bug_id=bug.bug_id,
        history=parse_ftrace((workdir / "trace.ftrace").read_text()),
        crash=parse_crash_report((workdir / "crash.txt").read_text()))
    diagnosis = Aitia(bug, report=restored).diagnose()
    print()
    print("re-diagnosis from the archived files:")
    print(f"  chain: {diagnosis.chain.render()}")

    # --- 3. archive the minimal reproducer ------------------------------
    failing = diagnosis.lifs_result.failure_run
    recording = record(failing)
    (workdir / "reproducer.json").write_text(
        json.dumps(recording.to_dict(), indent=2))
    print(f"  reproducer.json: {recording.schedule.describe()}")

    # --- 4. anyone with the checkout can verify it -----------------------
    loaded = Recording.from_dict(
        json.loads((workdir / "reproducer.json").read_text()))
    verified = replay(bug.machine_factory, loaded)
    print(f"  verified: replay crashes identically -> {verified.failure}")


if __name__ == "__main__":
    main()
