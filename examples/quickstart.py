#!/usr/bin/env python
"""Quickstart: diagnose the paper's Figure 1 failure in five lines.

The bug: two semantically correlated variables, ``ptr_valid`` and
``ptr``.  Thread A publishes validity then dereferences; thread B checks
validity then clears the pointer.  One interleaving NULL-dereferences.

Run:  python examples/quickstart.py
"""

from repro import Aitia
from repro.corpus import get_bug


def main() -> None:
    bug = get_bug("FIG-1")
    diagnosis = Aitia(bug).diagnose()

    print(diagnosis.render())
    print()
    print("What the chain tells a developer (paper section 1):")
    print("  if a fix disallows ANY ONE of the interleaving orders in the")
    print("  chain, the failure cannot occur.  Here: either prevent")
    print("  A1 => B1 (B must see the updated validity atomically) or")
    print("  prevent the pointer clear from landing between A's check and")
    print("  use.")
    print()
    print("Failure-causing instruction sequence (LIFS output):")
    for entry in diagnosis.lifs_result.failure_run.trace:
        print(f"  {entry.thread}: {entry.instr_label}")


if __name__ == "__main__":
    main()
