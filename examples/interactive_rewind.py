#!/usr/bin/env python
"""Interactive-style debugging with machine snapshots.

The AITIA hypervisor reverts guest memory between runs; the snapshot
module exposes the same capability for exploration: drive the kernel to
an interesting point, snapshot, try one continuation, rewind, try
another.  This script walks CVE-2017-15649 to the moment *before* the
fatal store and shows both futures side by side.

Run:  python examples/interactive_rewind.py
"""

from repro.corpus import get_bug
from repro.hypervisor.snapshot import capture, restore


def run_thread(machine, name):
    while not machine.thread(name).done and not machine.halted:
        machine.step(name)


def run_until(machine, name, label):
    while True:
        instr = machine.peek(name)
        if instr is None or machine.halted or instr.name == label:
            return
        machine.step(name)


def main() -> None:
    bug = get_bug("CVE-2017-15649")
    machine = bug.machine_factory()

    # Drive to the knife's edge: A validated po->running and allocated the
    # match; B already cleared po->running.  po->fanout is still NULL.
    run_until(machine, "A", "A6")
    run_until(machine, "B", "B12")
    print("state before the decisive step:")
    mem = machine.memory
    print(f"  po_running = "
          f"{mem.load(mem.global_addr('po_running'))}")
    print(f"  po_fanout  = "
          f"{mem.load(mem.global_addr('po_fanout'))}")

    snap = capture(machine)

    # Future 1: B goes first — po->fanout is NULL at B12, B returns.
    run_thread(machine, "B")
    run_thread(machine, "A")
    print(f"\nfuture 1 (B12 before A6): failure = {machine.failure}")

    # Rewind, future 2: A stores po->fanout, then B takes the
    # race-steered branch into fanout_unlink -> BUG_ON.
    restore(machine, snap)
    run_until(machine, "A", "A12")   # executes A6, parks before A12
    run_thread(machine, "B")
    print(f"future 2 (A6 before B12): failure = {machine.failure}")
    print()
    print("Same prefix, one flipped race — exactly the test Causality")
    print("Analysis runs mechanically for every detected data race.")


if __name__ == "__main__":
    main()
