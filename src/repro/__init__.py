"""aitia-repro: a reproduction of "Diagnosing Kernel Concurrency Failures
with AITIA" (EuroSys 2023).

Quickstart::

    from repro import Aitia
    from repro.corpus import get_bug

    bug = get_bug("CVE-2017-15649")
    diagnosis = Aitia(bug).diagnose()
    print(diagnosis.chain.render())

Package map:

* :mod:`repro.kernel`     — the simulated kernel (instruction IR, memory,
  locks, deferred work, failure detectors);
* :mod:`repro.hypervisor` — schedule enforcement (breakpoints, trampoline,
  controller, VM pool);
* :mod:`repro.core`       — AITIA itself: LIFS, Causality Analysis,
  causality chains, the :class:`~repro.core.diagnose.Aitia` orchestrator;
* :mod:`repro.trace`      — execution histories, slicing, the synthetic
  Syzkaller front end;
* :mod:`repro.corpus`     — models of the paper's 22 real-world bugs and
  figure examples;
* :mod:`repro.baselines`  — Kairux, cooperative bug localization, MUVI and
  record&replay comparators (Table 1 / section 5.3);
* :mod:`repro.analysis`   — cost model and table renderers for the
  benchmark harness.
"""

from repro.core.causality import CausalityAnalysis
from repro.core.chain import CausalityChain
from repro.core.diagnose import Aitia, Diagnosis
from repro.core.lifs import FailureMatcher, LeastInterleavingFirstSearch
from repro.core.races import DataRace, find_data_races
from repro.core.schedule import OrderConstraint, Preemption, Schedule

__version__ = "1.0.0"

__all__ = [
    "Aitia",
    "CausalityAnalysis",
    "CausalityChain",
    "DataRace",
    "Diagnosis",
    "FailureMatcher",
    "LeastInterleavingFirstSearch",
    "OrderConstraint",
    "Preemption",
    "Schedule",
    "find_data_races",
    "__version__",
]
