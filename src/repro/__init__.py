"""aitia-repro: a reproduction of "Diagnosing Kernel Concurrency Failures
with AITIA" (EuroSys 2023).

Quickstart — the :mod:`repro.api` facade is the documented entrypoint::

    import repro

    diagnosis = repro.diagnose("CVE-2017-15649")
    print(diagnosis.chain.render())

    # with structured tracing
    from repro.observe import JsonlSink, Tracer
    with Tracer(JsonlSink("trace.jsonl")) as tracer:
        repro.diagnose("CVE-2017-15649", tracer=tracer)

Package map:

* :mod:`repro.kernel`     — the simulated kernel (instruction IR, memory,
  locks, deferred work, failure detectors);
* :mod:`repro.hypervisor` — schedule enforcement (breakpoints, trampoline,
  controller, VM pool);
* :mod:`repro.core`       — AITIA itself: LIFS, Causality Analysis,
  causality chains, the :class:`~repro.core.diagnose.Aitia` orchestrator;
* :mod:`repro.trace`      — execution histories, slicing, the synthetic
  Syzkaller front end;
* :mod:`repro.corpus`     — models of the paper's 22 real-world bugs and
  figure examples;
* :mod:`repro.baselines`  — Kairux, cooperative bug localization, MUVI and
  record&replay comparators (Table 1 / section 5.3);
* :mod:`repro.analysis`   — cost model and table renderers for the
  benchmark harness;
* :mod:`repro.observe`    — structured tracing: spans, counters, sinks,
  and the ``repro trace-report`` renderer;
* :mod:`repro.daemon`     — the long-running triage intake daemon
  behind ``repro serve`` (see ``docs/SERVICE.md``);
* :mod:`repro.api`        — the facade: :func:`repro.api.diagnose`,
  :func:`repro.api.evaluate`, :func:`repro.api.triage`,
  :func:`repro.api.serve`.
"""

from repro.api import TriageReport, diagnose, evaluate, serve, triage
from repro.core.causality import CausalityAnalysis
from repro.core.chain import CausalityChain
from repro.core.diagnose import Aitia, Diagnosis
from repro.core.lifs import FailureMatcher, LeastInterleavingFirstSearch
from repro.core.races import DataRace, find_data_races
from repro.core.schedule import OrderConstraint, Preemption, Schedule
from repro.observe import (
    NULL_TRACER,
    JsonlSink,
    LiveProgressSink,
    MemorySink,
    Tracer,
)

__version__ = "2.0.0"

__all__ = [
    "Aitia",
    "CausalityAnalysis",
    "CausalityChain",
    "DataRace",
    "Diagnosis",
    "FailureMatcher",
    "JsonlSink",
    "LeastInterleavingFirstSearch",
    "LiveProgressSink",
    "MemorySink",
    "NULL_TRACER",
    "OrderConstraint",
    "Preemption",
    "Schedule",
    "Tracer",
    "TriageReport",
    "diagnose",
    "evaluate",
    "find_data_races",
    "serve",
    "triage",
    "__version__",
]
