"""Experience-ranked candidate ordering.

:class:`AdaptivePolicy` sorts a batch by descending
:class:`~repro.policy.experience.ExperienceIndex` score, canonical
``sort_key`` as the tiebreak — so with an *empty* index it degenerates
to exactly the static order.  The ranking is a stable deterministic
function of (index weights, candidate features), never of wall clock or
iteration order, which keeps adaptive diagnoses reproducible run to
run.

Where the savings come from: LIFS stops at the first failure-matching
run, so moving the structurally-familiar candidate to the front of the
final (widest) round converges in a handful of executions instead of a
front-to-back sweep.  CA flip batches execute in full either way;
ranking them costs nothing and surfaces likely root causes first in the
trace.
"""

from __future__ import annotations

from typing import Optional

from repro.policy.experience import ExperienceIndex
from repro.policy.protocol import PolicyContext, SearchPolicy, _metas


class AdaptivePolicy(SearchPolicy):
    """Rank candidates by prior-diagnosis experience."""

    name = "adaptive-noprune"
    reorders = True

    def __init__(self, experience: Optional[ExperienceIndex] = None) -> None:
        super().__init__()
        self.experience = (experience if experience is not None
                           else ExperienceIndex())

    def order(self, plan, context: Optional[PolicyContext] = None):
        if _metas(plan) is None or len(plan.requests) < 2:
            return plan
        experience = self.experience
        scored = []
        for request in plan.requests:
            score = experience.score(request.meta.features)
            if score:
                self.stats.experience_hits += 1
            scored.append((score, request))
        self.stats.ranked += len(scored)
        scored.sort(key=lambda pair: (-pair[0], pair[1].meta.sort_key,
                                      pair[1].meta.index))
        return self._replace_requests(plan, (r for _, r in scored))
