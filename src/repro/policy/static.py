"""Order-preserving policies: the default, and the test shuffler.

:class:`StaticPolicy` executes every candidate in the canonical order —
bit-identical to the pre-policy algorithms.  When a plan is annotated
with :class:`~repro.policy.protocol.CandidateMeta`, "canonical" means
ascending ``sort_key``; algorithms submit in that order already, so on
the real paths this is the identity.  Restoring the order from the keys
(rather than trusting submission order) is what makes the satellite
regression test meaningful: shuffle an annotated plan, and the static
policy puts it back.

:class:`ShufflePolicy` ("shuffle:<seed>") applies a seeded
pseudo-random permutation instead — the adversarial orderer the
permutation-equivalence property test drives.  It exists for tests and
is deliberately not a CLI choice.  The "shuffle-ca:<seed>" spelling
permutes only the Causality Analysis flip batches and leaves the LIFS
search static: flip plans execute in full and remap results by
submission index, so their diagnosis is *exactly* order-invariant —
on every bug, including symmetric ones where the LIFS witness itself
is order-dependent (see the package docstring).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.policy.protocol import PolicyContext, SearchPolicy, _metas


class StaticPolicy(SearchPolicy):
    """Canonical order, no pruning: today's behaviour, the default."""

    name = "static"
    reorders = False

    def order(self, plan, context: Optional[PolicyContext] = None):
        if _metas(plan) is None:
            return plan
        ordered = sorted(plan.requests,
                         key=lambda r: (r.meta.sort_key, r.meta.index))
        return self._replace_requests(plan, ordered)


class ShufflePolicy(SearchPolicy):
    """Seeded pseudo-random order (tests only).

    Any order must yield a bit-identical diagnosis — order affects
    cost, never the answer — so a shuffled execution is the sharpest
    probe of that contract.
    """

    def __init__(self, seed: int, phase_prefix: str = "") -> None:
        super().__init__()
        #: Restrict shuffling to plans whose phase starts with this
        #: (e.g. ``"ca."``).  Empty: shuffle everything.  ``reorders``
        #: tracks it — a CA-only shuffler leaves LIFS on the static
        #: round path.
        self.phase_prefix = phase_prefix
        self.reorders = not phase_prefix
        self.name = (f"shuffle-ca:{seed}" if phase_prefix
                     else f"shuffle:{seed}")
        self.seed = seed

    def order(self, plan, context: Optional[PolicyContext] = None):
        if len(plan.requests) < 2 or _metas(plan) is None:
            return plan  # unannotated plans cannot be remapped — keep order
        if self.phase_prefix:
            phase = (getattr(context, "phase", "")
                     or getattr(plan, "phase", "") or "")
            if not phase.startswith(self.phase_prefix):
                return plan
        shuffled = list(plan.requests)
        # One independent generator per batch, derived from the seed and
        # the batch size, so a given plan always shuffles the same way.
        random.Random(f"{self.seed}:{len(shuffled)}").shuffle(shuffled)
        return self._replace_requests(plan, shuffled)
