"""The search-policy protocol: what policies say about candidate runs.

AITIA's two algorithms emit batches of *candidate* runs — LIFS frontier
extensions, Causality Analysis flip tests.  Which candidates execute, in
what order, and which are discarded without executing is a *policy*
decision, separated here from the algorithms exactly as execution
placement was separated into :mod:`repro.engine`:

* :class:`CandidateMeta` — the policy-facing identity of one candidate
  request: its submission position, a canonical total-order key, and the
  experience features it exposes for ranking;
* :class:`PolicyContext` — what the emitting algorithm knows (phase,
  failing run, kernel image, race units) that a policy may consult;
* :class:`SearchPolicy` — ``order`` / ``prune`` over a
  :class:`~repro.engine.protocol.RunPlan`, plus the ``policy.*``
  accounting (:class:`PolicyStats`).

Policies change *cost*, never the *answer*: any candidate they execute
produces bit-identical runs regardless of position, and anything they
prune is provably (or, for the default, vacuously) irrelevant to the
final diagnosis.  ``tests/test_policy_equivalence.py`` asserts the
order half of that contract by permuting plans at random.

This module depends only on the standard library — plans are handled
duck-typed (``plan.requests`` / ``request.meta``) so the policy layer
imports neither the engine nor the algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class CandidateMeta:
    """Policy-facing identity of one candidate run request.

    Algorithms attach one of these to every orderable
    :class:`~repro.engine.protocol.RunRequest` they batch.  ``index`` is
    the submission position (callers map shaped outcomes back through
    it), ``sort_key`` a canonical total-order key over the batch — ties
    broken by content, never by dict or insertion order — and
    ``features`` the :class:`~repro.policy.experience.ExperienceIndex`
    keys this candidate scores against.
    """

    index: int
    #: Canonical total order within the batch (the static execution
    #: order).  Comparable across every candidate of one plan.
    sort_key: Tuple = ()
    #: Experience-index feature keys for ranking.
    features: Tuple[str, ...] = ()
    #: Which batch family produced it ("lifs.extend", "ca.flip").
    kind: str = ""
    #: LIFS: index of the frontier base being extended, and the new
    #: preemption's divergence seq (checkpoint-resume hint).
    base_index: int = -1
    div_seq: int = -1
    #: CA: uid of the race unit the flip tests.
    uid: int = -1


@dataclass
class PolicyContext:
    """What the emitting algorithm can tell the policy about a batch."""

    #: Which batch this is ("lifs.extend", "ca.identify", "ca.nested",
    #: "ca.recheck").  Pruning policies gate on it.
    phase: str = ""
    #: CA: the reproduced failing run the flips are derived from.
    failure_run: Optional[object] = None
    #: CA: the booted kernel image (instruction lookup for invariants).
    image: Optional[object] = None
    #: CA: every race unit by uid.
    units: Optional[Dict[int, object]] = None
    #: LIFS: the interleaving-count round being extended.
    depth: int = 0


@dataclass
class PolicyStats:
    """``policy.*`` accounting, published through the engine counters."""

    #: Candidates put through experience ranking.
    ranked: int = 0
    #: Candidates discarded without executing.
    pruned: int = 0
    #: Ranked candidates that matched at least one experience feature.
    experience_hits: int = 0


def _metas(plan) -> Optional[List[CandidateMeta]]:
    """Every request's meta, or ``None`` when any request lacks one
    (an unannotated plan is never reordered or pruned)."""
    metas = [getattr(r, "meta", None) for r in plan.requests]
    if any(m is None for m in metas):
        return None
    return metas


class SearchPolicy:
    """Base policy: keep every candidate in submission order."""

    #: Registry name (make_policy spelling that built this instance).
    name = "static"
    #: Whether :meth:`order` may return a different order than the
    #: canonical one — LIFS only takes its batched round path (and pays
    #: candidate materialization) when this is true.
    reorders = False

    def __init__(self) -> None:
        self.stats = PolicyStats()

    def order(self, plan, context: Optional[PolicyContext] = None):
        """Return the plan with its requests in execution order."""
        return plan

    def prune(self, plan, context: Optional[PolicyContext] = None):
        """Split the plan into (kept plan, pruned requests)."""
        return plan, []

    def shape(self, plan, context: Optional[PolicyContext] = None):
        """Prune, then order: the engine's one entry point."""
        kept, pruned = self.prune(plan, context)
        return self.order(kept, context), pruned

    @staticmethod
    def _replace_requests(plan, requests):
        return replace(plan, requests=list(requests))


__all__ = ["CandidateMeta", "PolicyContext", "PolicyStats", "SearchPolicy"]
