"""repro.policy — the pluggable search-policy layer.

Which candidate runs execute, in what order, and which are pruned is a
policy decision, owned here and routed through
:meth:`repro.engine.engine.ScheduleExecutionEngine.shape_plan`.  LIFS
and Causality Analysis annotate their candidate batches with
:class:`CandidateMeta` and never order or discard candidates
themselves.

Registry spellings (``LifsConfig.policy`` / ``CaConfig.policy`` /
``--policy``):

* ``static``           — canonical order, no pruning (the default;
  bit-identical to the pre-policy algorithms);
* ``adaptive``         — experience-ranked ordering *plus* the
  error-invariant pruning pass (the full adaptive stack);
* ``adaptive-noprune`` — ranking only (ablation);
* ``prune``            — pruning over the static order (ablation);
* ``shuffle:<seed>``   — seeded random order (tests only);
* ``shuffle-ca:<seed>`` — seeded random order of the CA flip batches
  only, LIFS stays static (tests only).

Every spelling yields the same final diagnosis — policies change cost,
never the answer — which the corpus ablation benchmark and the
permutation property tests assert.  "Same diagnosis" means the
causality chain, the root-cause set and the failure signature.  The
precise contract has two layers:

* Everything downstream of the reproduced failure run — every CA flip
  batch — is *exactly* order-invariant: flip plans execute in full and
  remap results by submission index.  ``shuffle-ca:<seed>`` probes
  this adversarially on any bug.
* The LIFS witness itself can be order-sensitive: a round may hold
  several fewest-preemptions schedules that all reproduce (symmetric
  workloads even hold mirror-image witnesses with mirrored chains),
  and execution order decides which is found first.  The shipped
  spellings (``static``, ``adaptive``) resolve every such tie
  identically on the whole corpus — asserted per bug, every run, by
  the ablation benchmark and the CI equivalence smoke.
"""

from __future__ import annotations

from typing import Optional

from repro.policy.adaptive import AdaptivePolicy
from repro.policy.experience import (RECORD_DIGEST_PREFIX, ExperienceIndex,
                                     lifs_candidate_features, unit_features)
from repro.policy.invariants import ErrorInvariantAnalysis, InvariantPrunePolicy
from repro.policy.protocol import (CandidateMeta, PolicyContext, PolicyStats,
                                   SearchPolicy)
from repro.policy.static import ShufflePolicy, StaticPolicy

#: The spellings ``--policy`` accepts (test-only spellings excluded).
POLICY_CHOICES = ("static", "adaptive")


def make_policy(name: Optional[str] = None,
                experience: Optional[ExperienceIndex] = None,
                ) -> SearchPolicy:
    """Build the policy a registry spelling names."""
    spelling = (name or "static").strip() or "static"
    if spelling == "static":
        return StaticPolicy()
    if spelling == "adaptive":
        return InvariantPrunePolicy(AdaptivePolicy(experience))
    if spelling == "adaptive-noprune":
        return AdaptivePolicy(experience)
    if spelling == "prune":
        return InvariantPrunePolicy(StaticPolicy())
    if spelling.startswith("shuffle:"):
        return ShufflePolicy(int(spelling.split(":", 1)[1]))
    if spelling.startswith("shuffle-ca:"):
        return ShufflePolicy(int(spelling.split(":", 1)[1]),
                             phase_prefix="ca.")
    raise ValueError(
        f"unknown search policy {spelling!r} (choose 'static', 'adaptive', "
        f"'adaptive-noprune', 'prune' or 'shuffle[-ca]:<seed>')")


__all__ = [
    "AdaptivePolicy", "CandidateMeta", "ErrorInvariantAnalysis",
    "ExperienceIndex", "InvariantPrunePolicy", "POLICY_CHOICES",
    "PolicyContext", "PolicyStats", "RECORD_DIGEST_PREFIX", "SearchPolicy",
    "ShufflePolicy", "StaticPolicy", "lifs_candidate_features",
    "make_policy", "unit_features",
]
