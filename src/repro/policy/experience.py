"""Cross-bug experience: what prior diagnoses teach the next search.

Per Causality-Guided Adaptive Interventional Debugging, interventions
ranked by *learned* root-cause likelihood converge in far fewer
re-executions than a static order.  The :class:`ExperienceIndex` is that
learning, kept deliberately simple and deterministic: a bag of signed
feature weights extracted from completed diagnoses.

* **LIFS features** (+1 each): the preemptions of the reproducing
  schedule — racing-instruction label paired with the kind of thread
  switched to, the enclosing function, and the interleaving depth.  A
  frontier extension matching them is likely the same structural bug
  shape seen before, so it is tried first.
* **CA features** (signed): each root-cause unit's racing label pairs
  and access-kind pairs count +1, each benign unit's −1.  A flip
  candidate's score is then (times seen as root) − (times seen benign).

One record per diagnosis is persisted alongside the triage result store
(record ``kind: "experience"``, under the ``exp:`` digest namespace) and
absorbed by triage/daemon workers at boot and on every completion, so
experience accumulates across the corpus and across daemon uptime.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

#: Persisted record schema version.
RECORD_VERSION = 1
#: Digest-namespace prefix experience records are stored under (keeps
#: them out of the result paths, which look up crash digests verbatim).
RECORD_DIGEST_PREFIX = "exp:"


def lifs_candidate_features(instr_label: str, func: str,
                            switch_kind: str, depth: int,
                            ) -> Tuple[str, ...]:
    """Feature keys of one LIFS preemption candidate (or winner)."""
    features = [f"lifs.label:{instr_label}>{switch_kind}",
                f"lifs.depth:{depth}"]
    if func:
        features.append(f"lifs.func:{func}")
    return tuple(features)


def unit_features(unit) -> Tuple[str, ...]:
    """Feature keys of one CA race unit (duck-typed
    :class:`~repro.core.causality.RaceUnit`)."""
    features = []
    for race in unit.races:
        features.append(
            f"ca.flip:{race.first.instr_label}>{race.second.instr_label}")
        features.append(
            f"ca.kind:{race.first.kind.value}>{race.second.kind.value}")
    if unit.is_critical_section:
        features.append("ca.section")
    return tuple(features)


class ExperienceIndex:
    """Signed feature weights accumulated from completed diagnoses."""

    def __init__(self, weights: Optional[Dict[str, int]] = None) -> None:
        self._weights: Dict[str, int] = dict(weights or {})
        #: How many diagnosis records have been absorbed.
        self.absorbed_records = 0

    def __len__(self) -> int:
        return len(self._weights)

    def __bool__(self) -> bool:
        return bool(self._weights)

    def weight(self, feature: str) -> int:
        return self._weights.get(feature, 0)

    def score(self, features: Iterable[str]) -> int:
        """Sum of signed weights over the candidate's feature keys."""
        weights = self._weights
        return sum(weights.get(f, 0) for f in features)

    # -- building -------------------------------------------------------
    @staticmethod
    def record_of(bug_id: str, diagnosis) -> Dict:
        """The persistable experience record of one completed diagnosis
        (pure — no index state involved)."""
        features: Dict[str, int] = {}

        def bump(keys: Tuple[str, ...], delta: int) -> None:
            for key in keys:
                features[key] = features.get(key, 0) + delta

        lifs_result = getattr(diagnosis, "lifs_result", None)
        run = getattr(lifs_result, "failure_run", None)
        if run is not None:
            kinds = run.thread_kinds
            func_by_addr: Dict[int, str] = {}
            for access in run.accesses:
                func_by_addr.setdefault(access.instr_addr, access.func)
            preemptions = run.schedule.preemptions
            for p in preemptions:
                bump(lifs_candidate_features(
                    p.instr_label, func_by_addr.get(p.instr_addr, ""),
                    kinds.get(p.switch_to, ""), len(preemptions)), +1)
        ca_result = getattr(diagnosis, "ca_result", None)
        if ca_result is not None:
            for unit in ca_result.root_cause_units:
                bump(unit_features(unit), +1)
            for unit in ca_result.benign_units:
                bump(unit_features(unit), -1)
        return {"kind": "experience", "version": RECORD_VERSION,
                "bug_id": bug_id, "features": features}

    def absorb_record(self, record) -> bool:
        """Fold one persisted record in; ignores anything that is not an
        experience record (store iteration passes every record kind)."""
        if not isinstance(record, dict) or record.get("kind") != "experience":
            return False
        for key, delta in (record.get("features") or {}).items():
            self._weights[key] = self._weights.get(key, 0) + int(delta)
        self.absorbed_records += 1
        return True

    def absorb(self, bug_id: str, diagnosis) -> Dict:
        """Extract, fold in, and return a completed diagnosis' record."""
        record = self.record_of(bug_id, diagnosis)
        self.absorb_record(record)
        return record

    def load(self, store) -> int:
        """Absorb every experience record a result store holds (one pass
        over :meth:`~repro.service.store.ResultStore.records`)."""
        loaded = 0
        for _, record in store.records():
            if self.absorb_record(record):
                loaded += 1
        return loaded

    # -- shipping -------------------------------------------------------
    def snapshot(self) -> Dict:
        """A JSON-safe snapshot (worker payloads ship this)."""
        return {"version": RECORD_VERSION, "weights": dict(self._weights)}

    @classmethod
    def from_snapshot(cls, snapshot) -> "ExperienceIndex":
        if not isinstance(snapshot, dict):
            return cls()
        return cls(weights={str(k): int(v) for k, v in
                            (snapshot.get("weights") or {}).items()})
