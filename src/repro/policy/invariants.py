"""Error-invariant pruning of Causality Analysis flip candidates.

Per Error Invariants for Concurrent Traces, many interleaved statements
are provably irrelevant to the error state: reordering them cannot
change whether the failure happens.  CA's identification phase pays one
full kernel run per race unit to learn exactly that — so
:class:`InvariantPrunePolicy` discards, *before executing*, every flip
candidate whose racing locations have no data or control path to the
failure.

The relevance check (:class:`ErrorInvariantAnalysis`) is a dynamic
forward-taint pass over the failing run's totally ordered trace.  For a
unit racing on locations ``D``:

* taint starts at ``D`` and propagates through ``LOAD``/``MOV``/
  ``BINOP``/``STORE`` dataflow (strong updates: an untainted store
  cleanses its cell, except cells of ``D`` themselves);
* a *sink* is any influence on control flow or program structure — a
  tainted branch or ``BUG_ON`` condition, a tainted pointer
  dereference, ``FREE``/``QUEUE_WORK``/``CALL_RCU`` with a tainted
  operand or location, any compound atomic (``CMPXCHG``/``XCHG``/
  ``LIST_*``) touching tainted state, or the failing instruction itself
  touching a tainted location.

No sink anywhere in the run means the flipped order can only permute
values nothing ever observes: the run's control flow, allocation
pattern and failure are preserved, so the unit is *benign by
invariant* and its flip run is skipped.

Memory-leak failures need two extra sinks, because the leak detector
runs *after* the trace and scans every surviving memory cell for
references to live allocations — final memory state is itself
observable.  A unit whose flip can change a cell's final value is
relevant: any write-write race (other than two commuting ``INC``
deltas), and any tainted value still sitting in a cell when the run
ends.  Units whose race endpoints are
not plain ``LOAD``/``STORE``/``INC`` (frees, atomics, list ops) are
never pruned — their reordering has structural effects taint does not
model.  Pruning applies only to the identification phase: nested flips
participate in ambiguity classification and recheck runs feed chain
edges, so both always execute.

The corpus-wide ablation benchmark asserts the net effect: bit-identical
chains, root-cause sets and signatures, with measurably fewer executed
schedules.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.kernel.failures import FailureKind
from repro.kernel.instructions import DEREF, REG, Op
from repro.policy.protocol import PolicyContext, SearchPolicy

#: The only endpoint opcodes a unit may consist of to be prunable.
_FLIPPABLE_ENDPOINTS = frozenset({Op.LOAD, Op.STORE, Op.INC})

#: Compound read-modify-write / structural opcodes: any contact with
#: tainted state is a sink (their semantics couple value, control and
#: structure too tightly for per-field taint).
_COMPOUND_OPS = frozenset({Op.CMPXCHG, Op.XCHG, Op.LIST_ADD, Op.LIST_DEL,
                           Op.LIST_CONTAINS})


class ErrorInvariantAnalysis:
    """Per-failing-run relevance oracle: does reordering a unit's racing
    accesses have any data/control path to the failure?"""

    def __init__(self, failure_run, image) -> None:
        self.run = failure_run
        self.image = image
        self._access_by_seq = {a.seq: a for a in failure_run.accesses}
        self._verdicts = {}

    def relevant(self, unit) -> bool:
        """Whether the unit may influence the failure (``False`` means
        provably prunable).  Cached per unit uid."""
        verdict = self._verdicts.get(unit.uid)
        if verdict is None:
            verdict = self._compute(unit)
            self._verdicts[unit.uid] = verdict
        return verdict

    def _compute(self, unit) -> bool:
        failure = getattr(self.run, "failure", None)
        end_state_observed = (failure is not None
                              and failure.kind is FailureKind.MEMORY_LEAK)
        locations: Set[int] = set()
        for race in unit.races:
            ops = []
            for access in (race.first, race.second):
                instr = self.image.instruction_at(access.instr_addr)
                if instr.op not in _FLIPPABLE_ENDPOINTS:
                    return True
                ops.append(instr.op)
                locations.add(access.data_addr)
            if (end_state_observed
                    and race.first.is_write and race.second.is_write
                    and ops != [Op.INC, Op.INC]):
                # The leak scan reads final memory; a write-write flip
                # (two INC deltas commute) changes the cell's last value.
                return True
        return self._taint_reaches_failure(locations, end_state_observed)

    # -- the taint walk -------------------------------------------------
    def _taint_reaches_failure(self, locations: Set[int],
                               end_state_observed: bool = False) -> bool:
        addr_taint = set(locations)
        reg_taint: Set = set()  # {(thread, reg name)}
        access_by_seq = self._access_by_seq
        instruction_at = self.image.instruction_at
        trace = self.run.trace
        last_index = len(trace) - 1

        def val_tainted(thread, dec) -> bool:
            return dec[0] == REG and (thread, dec[1]) in reg_taint

        def set_reg(thread, name, tainted) -> None:
            if tainted:
                reg_taint.add((thread, name))
            else:
                reg_taint.discard((thread, name))

        for index, entry in enumerate(trace):
            instr = instruction_at(entry.instr_addr)
            op, dec, thread = instr.op, instr.decoded, entry.thread
            access = access_by_seq.get(entry.seq)
            if instr.accesses_memory and access is None:
                return True  # unmodelled access — assume relevant
            # A tainted pointer base means the *address* depends on the
            # racing order: conservative sink, whatever the opcode.
            for operand in dec:
                if (isinstance(operand, tuple) and operand
                        and operand[0] == DEREF
                        and (thread, operand[1]) in reg_taint):
                    return True
            if op is Op.LOAD:
                set_reg(thread, dec[0], access.data_addr in addr_taint)
            elif op is Op.STORE:
                if val_tainted(thread, dec[1]):
                    addr_taint.add(access.data_addr)
                elif access.data_addr not in locations:
                    addr_taint.discard(access.data_addr)
            elif op is Op.INC:
                pass  # constant delta: the cell's taint is unchanged
            elif op is Op.MOV:
                set_reg(thread, dec[0], val_tainted(thread, dec[1]))
            elif op is Op.BINOP:
                set_reg(thread, dec[0], val_tainted(thread, dec[2])
                        or val_tainted(thread, dec[3]))
            elif op in (Op.LEA, Op.ALLOC):
                set_reg(thread, dec[0], False)
            elif op in (Op.BRZ, Op.BRNZ, Op.BUG_ON):
                if val_tainted(thread, dec[0]):
                    return True  # control depends on the racing order
            elif op is Op.FREE:
                if val_tainted(thread, dec[0]):
                    return True
                if access is not None and access.data_addr in addr_taint:
                    return True
            elif op in (Op.QUEUE_WORK, Op.CALL_RCU):
                if val_tainted(thread, dec[1]):
                    return True  # spawned worker sees tainted input
            elif op in _COMPOUND_OPS:
                if access is not None and access.data_addr in addr_taint:
                    return True
                if any(val_tainted(thread, d) for d in dec
                       if isinstance(d, tuple) and d and d[0] == REG):
                    return True
                if op in (Op.CMPXCHG, Op.XCHG, Op.LIST_CONTAINS):
                    set_reg(thread, dec[0], False)
            # JMP / CALL / RET / LOCK / UNLOCK / NOP: no data flow.
            if index == last_index and self.run.failed:
                if access is not None and access.data_addr in addr_taint:
                    return True  # the failing instruction touches taint
        # Leak scan: any tainted value still in a cell at end of run is
        # observed by the end-of-run reachability walk.
        return end_state_observed and len(addr_taint) > len(locations)


class InvariantPrunePolicy(SearchPolicy):
    """Wrap an orderer with the error-invariant pruning pass."""

    def __init__(self, inner: SearchPolicy) -> None:
        super().__init__()
        self.inner = inner
        self.stats = inner.stats  # one shared ``policy.*`` account
        self.reorders = inner.reorders
        self.name = f"prune+{inner.name}"
        self._analysis: Optional[ErrorInvariantAnalysis] = None

    def order(self, plan, context: Optional[PolicyContext] = None):
        return self.inner.order(plan, context)

    def prune(self, plan, context: Optional[PolicyContext] = None):
        if (context is None or context.phase != "ca.identify"
                or context.failure_run is None or context.image is None
                or not context.units):
            return plan, []
        analysis = self._analysis
        if analysis is None or analysis.run is not context.failure_run:
            analysis = ErrorInvariantAnalysis(context.failure_run,
                                              context.image)
            self._analysis = analysis
        kept, pruned = [], []
        for request in plan.requests:
            meta = getattr(request, "meta", None)
            unit = (context.units.get(meta.uid)
                    if meta is not None else None)
            if unit is not None and not analysis.relevant(unit):
                pruned.append(request)
            else:
                kept.append(request)
        if not pruned:
            return plan, []
        self.stats.pruned += len(pruned)
        return self._replace_requests(plan, kept), pruned
