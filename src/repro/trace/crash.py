"""Crash-report text format: the coredump side of the archival story.

Together with :mod:`repro.trace.ftrace` this makes a bug finder's output
fully serializable: the history as an ftrace log, the crash as the
kernel-log text below.  ``parse_crash_report`` recovers the structured
:class:`~repro.kernel.failures.CrashReport` AITIA consumes, so an
archived report can be re-diagnosed later.

Format (the first line is exactly ``str(failure)`` behind a ``BUG:``
prefix, like a real kernel oops header)::

    BUG: KASAN: use-after-free in A at A3: use-after-free write ...
    Call trace:
      A: irqfd_assign+A2
      ...
"""

from __future__ import annotations

import re
from typing import Optional

from repro.kernel.failures import CrashReport, Failure, FailureKind


class CrashParseError(ValueError):
    """Malformed crash-report text."""


#: ``" in THREAD at LABEL"`` location suffix of a failure line.
_LOCATION = re.compile(r"^ in (?P<thread>\S+) at (?P<label>[^:\s]+)")


def render_crash_report(report: CrashReport) -> str:
    """Serialize a crash report as kernel-log text."""
    lines = [f"BUG: {report.failure}"]
    for line in (report.kernel_log or "").splitlines():
        if line.startswith("BUG:"):
            continue  # avoid duplicating the header
        lines.append(line)
    return "\n".join(lines)


def _split_kind(header: str) -> tuple:
    """Match the longest failure-kind value prefixing the header (kind
    values themselves contain colons, e.g. "KASAN: use-after-free")."""
    best: Optional[FailureKind] = None
    for kind in FailureKind:
        if header.startswith(kind.value):
            if best is None or len(kind.value) > len(best.value):
                best = kind
    if best is None:
        raise CrashParseError(f"unknown failure kind in {header!r}")
    return best, header[len(best.value):]


def parse_crash_report(text: str) -> CrashReport:
    """Parse kernel-log text back into a structured crash report."""
    lines = text.splitlines()
    if not lines or not lines[0].startswith("BUG: "):
        raise CrashParseError("missing 'BUG:' header")
    header = lines[0][len("BUG: "):]
    kind, rest = _split_kind(header)

    thread = label = ""
    match = _LOCATION.match(rest)
    if match is not None:
        thread = match.group("thread")
        label = match.group("label")
        rest = rest[match.end():]
    message = rest[2:] if rest.startswith(": ") else ""

    failure = Failure(kind=kind, thread=thread, instr_label=label,
                      message=message)
    return CrashReport(failure=failure, kernel_log="\n".join(lines[1:]))
