"""Slicing an execution history into groups of concurrent threads.

Following paper section 4.2, the slicer:

* groups events whose execution intervals overlap (concurrent events);
* closes file-descriptor semantics: a slice containing a call on fd *n*
  pulls the setup calls (open/socket) of fd *n* in as serial setup;
* splits groups with more than three threads into all sub-slices of at
  most three threads (failures needing four or more contexts are rare);
* orders slices *backward from the failure point*, because the root cause
  is usually close to the failure; AITIA tries slices in this order until
  LIFS reproduces the failure.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.trace.events import KthreadInvocation, SyscallEvent
from repro.trace.history import Event, ExecutionHistory

#: Kernel concurrency failures involving more than this many contexts are
#: rare (paper footnote 3), so larger groups are split.
MAX_THREADS_PER_SLICE = 3


@dataclass(frozen=True)
class Slice:
    """One candidate input for LIFS: concurrent events plus serial setup."""

    concurrent: Tuple[Event, ...]
    setup: Tuple[SyscallEvent, ...] = ()
    #: Distance rank from the failure (0 = closest).
    rank: int = 0

    @property
    def thread_count(self) -> int:
        return len(self.concurrent)

    @property
    def syscall_events(self) -> List[SyscallEvent]:
        return [e for e in self.concurrent if isinstance(e, SyscallEvent)]

    @property
    def kthread_events(self) -> List[KthreadInvocation]:
        return [e for e in self.concurrent
                if isinstance(e, KthreadInvocation)]

    def describe(self) -> str:
        names = []
        for e in self.concurrent:
            if isinstance(e, SyscallEvent):
                names.append(f"{e.proc}:{e.name}")
            else:
                names.append(f"{e.kind.value}:{e.func}")
        setup = f" (+{len(self.setup)} setup)" if self.setup else ""
        return f"slice#{self.rank} [{', '.join(names)}]{setup}"


class Slicer:
    """Builds the ordered slice list for one history."""

    def __init__(self, history: ExecutionHistory,
                 max_threads: int = MAX_THREADS_PER_SLICE) -> None:
        self.history = history
        self.max_threads = max_threads

    # ------------------------------------------------------------------
    def concurrent_groups(self) -> List[List[Event]]:
        """Maximal groups of pairwise-overlapping-in-time events, ordered
        by their latest end time (most recent last)."""
        events = [e for e in self.history.before_failure()
                  if not getattr(e, "is_setup", False)]
        events.sort(key=lambda e: e.start)
        groups: List[List[Event]] = []
        current: List[Event] = []
        current_end = float("-inf")
        for event in events:
            if current and event.start < current_end:
                current.append(event)
                current_end = max(current_end, event.end)
            else:
                if len(current) > 1:
                    groups.append(current)
                current = [event]
                current_end = event.end
        if len(current) > 1:
            groups.append(current)
        return groups

    def _close_fd_semantics(self, events: Sequence[Event]) -> Tuple[SyscallEvent, ...]:
        fds = {e.fd for e in events
               if isinstance(e, SyscallEvent) and e.fd is not None}
        setup: List[SyscallEvent] = []
        for fd in sorted(fds):
            for call in self.history.setup_for_fd(fd):
                if call not in setup:
                    setup.append(call)
        setup.sort(key=lambda e: e.timestamp)
        return tuple(setup)

    def slices(self) -> List[Slice]:
        """All candidate slices, backward from the failure point."""
        groups = self.concurrent_groups()
        # Backward from the failure: latest group first.
        groups.sort(key=lambda g: max(e.end for e in g), reverse=True)

        slices: List[Slice] = []
        rank = 0
        for group in groups:
            subgroups: List[List[Event]]
            if len(group) <= self.max_threads:
                subgroups = [group]
            else:
                # Split, preferring combinations containing the latest
                # events (closest to the failure).
                ordered = sorted(group, key=lambda e: e.end, reverse=True)
                subgroups = [sorted(combo, key=lambda e: e.start)
                             for combo in itertools.combinations(
                                 ordered, self.max_threads)]
            for sub in subgroups:
                slices.append(Slice(
                    concurrent=tuple(sub),
                    setup=self._close_fd_semantics(sub),
                    rank=rank))
                rank += 1
        return slices
