"""Execution-history modeling (paper section 4.2).

AITIA's input comes from a bug-finding system: timestamped system-call
traces (ftrace), kernel background-thread invocation events, and failure
information extracted from a coredump.  This package models that input:

* :mod:`repro.trace.events` — timestamped syscall / kthread events;
* :mod:`repro.trace.history` — the execution history of one fuzzing run;
* :mod:`repro.trace.slicer` — splitting the history into *slices* of up to
  three concurrent threads, backward from the failure, closing file-
  descriptor semantics (open/close of fds used inside a slice);
* :mod:`repro.trace.syzkaller` — a synthetic Syzkaller-like front end that
  replays corpus workloads and emits histories plus crash reports.
"""

from repro.trace.crash import parse_crash_report, render_crash_report
from repro.trace.events import KthreadInvocation, SyscallEvent
from repro.trace.ftrace import parse_ftrace, render_ftrace
from repro.trace.fuzzer import FuzzResult, RandomScheduleFuzzer
from repro.trace.history import ExecutionHistory
from repro.trace.slicer import Slice, Slicer
from repro.trace.syzkaller import SyzkallerReport, run_bug_finder

__all__ = [
    "ExecutionHistory",
    "FuzzResult",
    "RandomScheduleFuzzer",
    "KthreadInvocation",
    "Slice",
    "Slicer",
    "SyscallEvent",
    "SyzkallerReport",
    "parse_crash_report",
    "parse_ftrace",
    "render_crash_report",
    "render_ftrace",
    "run_bug_finder",
]
