"""A randomized concurrency fuzzer: how crashes are *found*.

The synthetic Syzkaller front end normally replays each corpus bug's
known failing schedule (the "lucky interleaving" a real fuzzer
stumbled on).  This module removes the oracle: a seeded random
scheduler drives the machine directly, context-switching at random
instruction boundaries — the way stress testing actually trips kernel
races — until a run crashes or the budget runs out.

The winning interleaving is recorded as per-step thread choices and
distilled into a replayable :class:`~repro.core.schedule.Schedule` of
preemptions, so everything downstream (crash report, LIFS, Causality
Analysis) works unchanged.  Determinism: same seed, same crash.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.core.schedule import Preemption, Schedule
from repro.hypervisor.controller import ScheduleController
from repro.kernel.failures import Failure
from repro.kernel.machine import KernelMachine


@dataclass
class FuzzResult:
    """Outcome of one fuzzing campaign."""

    crashed: bool
    failure: Optional[Failure]
    runs_executed: int
    seed: int
    #: A replayable preemption schedule distilled from the crashing run
    #: (None when no crash was found).
    schedule: Optional[Schedule] = None


def _random_run(machine: KernelMachine, rng: random.Random,
                switch_probability: float) -> List[Tuple[str, int, int, str]]:
    """Drive one run with random context switches; returns the switch
    points as (thread, instr_addr, occurrence, target) — i.e. where the
    scheduler preempted a thread that still had work and who it switched
    to."""
    switches: List[Tuple[str, int, int, str]] = []
    current: Optional[str] = None
    while not machine.halted and not machine.all_done():
        runnable = [t.name for t in machine.runnable_threads()]
        if not runnable:
            break  # all blocked: the run wedged (treated as no crash)
        if current not in runnable:
            current = rng.choice(runnable)
        elif len(runnable) > 1 and rng.random() < switch_probability:
            target = rng.choice([n for n in runnable if n != current])
            pending = machine.peek(current)
            if pending is not None:
                switches.append((
                    current, pending.addr,
                    machine.next_occurrence(current, pending.addr),
                    target))
            current = target
        machine.step(current)
    machine.finish()
    return switches


class RandomScheduleFuzzer:
    """A seeded random concurrency fuzzer over one workload."""

    def __init__(
        self,
        machine_factory: Callable[[], KernelMachine],
        seed: int = 0,
        max_runs: int = 2000,
        switch_probability: float = 0.2,
    ) -> None:
        self.machine_factory = machine_factory
        self.seed = seed
        self.max_runs = max_runs
        self.switch_probability = switch_probability

    def fuzz(self) -> FuzzResult:
        """Run random schedules until one crashes."""
        rng = random.Random(self.seed)
        for run_index in range(1, self.max_runs + 1):
            machine = self.machine_factory()
            switches = _random_run(machine, rng, self.switch_probability)
            if machine.failure is not None:
                schedule = self._distill(machine, switches)
                return FuzzResult(
                    crashed=True, failure=machine.failure,
                    runs_executed=run_index, seed=self.seed,
                    schedule=schedule)
        return FuzzResult(crashed=False, failure=None,
                          runs_executed=self.max_runs, seed=self.seed)

    def _distill(self, machine: KernelMachine,
                 switches: List[Tuple[str, int, int]]) -> Schedule:
        """Turn the crashing run's random switch points into a replayable
        preemption schedule, verify it reproduces the same crash, and
        delta-debug it down to a minimal reproducer."""
        traced = {entry.thread for entry in machine.trace}
        first_thread = machine.trace[0].thread if machine.trace else \
            machine.threads[0].name
        order = [first_thread] + [
            t.name for t in machine.threads
            if t.name != first_thread and (t.name in traced or not t.done)]
        preemptions = [
            Preemption(thread=thread, instr_addr=addr,
                       occurrence=occurrence, switch_to=target,
                       instr_label=machine.image.instruction_at(addr).name)
            for thread, addr, occurrence, target in switches
        ]
        schedule = Schedule(start_order=tuple(order),
                            preemptions=preemptions,
                            note=f"fuzzer seed={self.seed}")
        replay = ScheduleController(self.machine_factory(), schedule).run()
        if replay.failure is None or \
                replay.failure.signature != machine.failure.signature:
            # The default resume policy diverged from the random walk;
            # keep the schedule as a hint but flag the weaker guarantee.
            return Schedule(
                start_order=tuple(order), preemptions=preemptions,
                note=f"fuzzer seed={self.seed} (approximate reproducer)")
        # Exact reproducer: shrink the random junk away.
        from repro.core.minimize import minimize_schedule
        minimal = minimize_schedule(self.machine_factory, schedule)
        return Schedule(
            start_order=minimal.schedule.start_order,
            preemptions=minimal.schedule.preemptions,
            constraints=minimal.schedule.constraints,
            note=f"fuzzer seed={self.seed} (minimized)")


def reproduce_random_walk(machine_factory: Callable[[], KernelMachine],
                          seed: int, runs: int,
                          switch_probability: float = 0.2) -> KernelMachine:
    """Re-execute the fuzzer's exact random walk up to (and including) its
    ``runs``-th run and return that run's machine — the byte-identical way
    to revisit a fuzzer-found crash when the distilled schedule is only
    approximate."""
    rng = random.Random(seed)
    machine = machine_factory()
    for _ in range(runs):
        machine = machine_factory()
        _random_run(machine, rng, switch_probability)
    return machine
