"""A synthetic Syzkaller-like bug-finding front end.

The paper takes AITIA's inputs from Syzkaller: when the fuzzer crashes the
kernel, it leaves behind an ftrace event log and a coredump.  Here the
"fuzzer" replays a corpus workload: it executes a few benign schedules
(fuzzing that found nothing), then the workload's crashing schedule, and
packages the resulting failure information together with the workload's
timestamped execution history — decoy syscalls included, so the slicer has
real work to do.

A *workload* is any object exposing:

* ``bug_id`` — identifier string;
* ``machine_factory()`` — a fresh :class:`~repro.kernel.machine.KernelMachine`;
* ``known_failing_schedule`` — a :class:`~repro.core.schedule.Schedule`
  that manifests the failure (the fuzzer's lucky interleaving);
* ``history()`` — the :class:`~repro.trace.history.ExecutionHistory` of the
  fuzzing run.

Importantly, AITIA never sees the crashing schedule — only the history and
the crash report, exactly like the real pipeline.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List

from repro.core.schedule import Schedule
from repro.hypervisor.controller import ScheduleController
from repro.kernel.failures import CrashReport
from repro.trace.history import ExecutionHistory


@dataclass
class SyzkallerReport:
    """What the bug finder hands to AITIA."""

    bug_id: str
    history: ExecutionHistory
    crash: CrashReport
    #: How many schedules the fuzzer executed before hitting the crash.
    fuzzing_runs: int = 0


def run_bug_finder(workload, benign_probes: int = 2,
                   fuzz_seed: int = None,
                   max_fuzz_runs: int = 5000) -> SyzkallerReport:
    """Fuzz the workload until it crashes; return the report AITIA consumes.

    By default the crash comes from the workload's recorded lucky
    interleaving (after ``benign_probes`` serial probes that find
    nothing).  With ``fuzz_seed`` set, the crash is *discovered* by the
    seeded random scheduler in :mod:`repro.trace.fuzzer` instead — no
    oracle involved.
    """
    runs = 0
    if fuzz_seed is not None:
        from repro.trace.fuzzer import RandomScheduleFuzzer
        fuzzer = RandomScheduleFuzzer(workload.machine_factory,
                                      seed=fuzz_seed,
                                      max_runs=max_fuzz_runs)
        result = fuzzer.fuzz()
        if not result.crashed:
            raise RuntimeError(
                f"workload {workload.bug_id}: random fuzzing found no "
                f"crash in {max_fuzz_runs} runs (seed {fuzz_seed})")
        controller = ScheduleController(workload.machine_factory(),
                                        result.schedule)
        crash_run = controller.run()
        if crash_run.failure is None:
            # The distilled schedule was approximate; revisit the crash by
            # replaying the fuzzer's exact random walk.
            from repro.trace.fuzzer import reproduce_random_walk
            machine = reproduce_random_walk(
                workload.machine_factory, fuzz_seed,
                result.runs_executed, fuzzer.switch_probability)
            crash_run = _FuzzRunShim(machine)
        runs += result.runs_executed
        log_lines = [f"BUG: {crash_run.failure}", "Call trace:"]
        log_lines.extend(
            f"  {entry.thread}: {entry.func}+{entry.instr_label}"
            for entry in crash_run.trace[-6:])
        crash = CrashReport(failure=crash_run.failure,
                            kernel_log="\n".join(log_lines),
                            extra={"schedules": runs,
                                   "fuzz_seed": fuzz_seed})
        return SyzkallerReport(bug_id=workload.bug_id,
                               history=workload.history(),
                               crash=crash, fuzzing_runs=runs)

    thread_names = [t.name for t in workload.machine_factory().threads]
    for order in itertools.islice(
            itertools.permutations(thread_names), benign_probes):
        controller = ScheduleController(
            workload.machine_factory(),
            Schedule(start_order=tuple(order), note="fuzzing probe"))
        controller.run()
        runs += 1

    controller = ScheduleController(workload.machine_factory(),
                                    workload.known_failing_schedule)
    crash_run = controller.run()
    runs += 1
    if crash_run.failure is None:
        raise RuntimeError(
            f"workload {workload.bug_id}: the known failing schedule did "
            f"not crash — the model is inconsistent")

    log_lines: List[str] = [
        f"BUG: {crash_run.failure}",
        "Call trace:",
    ]
    log_lines.extend(
        f"  {entry.thread}: {entry.func}+{entry.instr_label}"
        for entry in crash_run.trace[-6:])
    crash = CrashReport(failure=crash_run.failure,
                        kernel_log="\n".join(log_lines),
                        extra={"schedules": runs})
    return SyzkallerReport(bug_id=workload.bug_id,
                           history=workload.history(),
                           crash=crash, fuzzing_runs=runs)


class _FuzzRunShim:
    """Adapter exposing a crashed machine as the bits of a RunResult the
    report builder needs (failure + trace)."""

    def __init__(self, machine) -> None:
        self.failure = machine.failure
        self.trace = machine.trace
