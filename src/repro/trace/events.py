"""Timestamped events of an execution history.

Every entry carries a fine-grained timestamp (and a duration for
syscalls) so the slicer can identify *concurrent* events, exactly the
information AITIA extracts from ftrace event logs (paper section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.kernel.threads import ThreadKind


@dataclass(frozen=True)
class SyscallEvent:
    """One executed system call.

    ``entry`` names the kernel function (in the simulated image) the call
    enters; ``proc`` is the issuing user process/thread; ``fd`` is the file
    descriptor the call operates on, used for semantic closure (a slice
    containing ``write(fd)`` also needs ``open``/``close`` of the same fd).
    """

    timestamp: float
    proc: str
    name: str
    entry: str
    args: Tuple = ()
    fd: Optional[int] = None
    duration: float = 1.0
    #: True for calls that only set state up (open, socket, ...) and are
    #: replayed serially before a slice's concurrent part.
    is_setup: bool = False

    @property
    def start(self) -> float:
        return self.timestamp

    @property
    def end(self) -> float:
        return self.timestamp + self.duration

    def overlaps(self, other: "SyscallEvent") -> bool:
        """Temporal overlap — the concurrency test used when slicing."""
        return self.start < other.end and other.start < self.end

    def __str__(self) -> str:
        fd = f", fd={self.fd}" if self.fd is not None else ""
        return f"[{self.timestamp:.3f}] {self.proc}: {self.name}({fd.strip(', ')})"


@dataclass(frozen=True)
class KthreadInvocation:
    """An invocation of a kernel background thread (deferred work, RCU
    callback), with the source of the invocation as ftrace reports it."""

    timestamp: float
    kind: ThreadKind
    func: str
    source_proc: str
    source_syscall: str = ""
    duration: float = 1.0

    @property
    def start(self) -> float:
        return self.timestamp

    @property
    def end(self) -> float:
        return self.timestamp + self.duration

    def __str__(self) -> str:
        return (f"[{self.timestamp:.3f}] {self.kind.value}:{self.func} "
                f"(from {self.source_proc}/{self.source_syscall})")
