"""A textual ftrace-style event-log format for execution histories.

AITIA's real input is an ftrace event log collected while Syzkaller was
fuzzing (paper section 4.2).  This module gives histories a concrete
on-disk form so reports can be archived and re-diagnosed later:

    # tracer: aitia
    #   TIMESTAMP  PROC        EVENT
       12.000000   A           sys_enter: setsockopt(fd=3) dur=3.000
       12.100000   B           sys_enter: bind(fd=3) dur=3.000
       13.000000   kworker     invoke: kworker func=irqfd_shutdown src=B/ioctl dur=2.000
       15.500000   -           panic

``render_ftrace`` and ``parse_ftrace`` round-trip exactly (verified by
the property suite).
"""

from __future__ import annotations


from repro.kernel.threads import ThreadKind
from repro.trace.events import KthreadInvocation, SyscallEvent
from repro.trace.history import ExecutionHistory

HEADER = "# tracer: aitia"


class FtraceParseError(ValueError):
    """Malformed ftrace log."""


def render_ftrace(history: ExecutionHistory) -> str:
    """Serialize a history to the textual log format."""
    lines = [HEADER, "#   TIMESTAMP  PROC  EVENT"]
    for event in history.events:
        if isinstance(event, SyscallEvent):
            fd = f"fd={event.fd}" if event.fd is not None else "fd=-"
            setup = " setup" if event.is_setup else ""
            lines.append(
                f"{event.timestamp:12.6f} {event.proc} "
                f"sys_enter: {event.name}({fd}) entry={event.entry} "
                f"dur={event.duration:.3f}{setup}")
        elif isinstance(event, KthreadInvocation):
            src = f"{event.source_proc}/{event.source_syscall or '-'}"
            lines.append(
                f"{event.timestamp:12.6f} {event.source_proc} "
                f"invoke: {event.kind.value} func={event.func} "
                f"src={src} dur={event.duration:.3f}")
        else:  # pragma: no cover — the history only holds the two kinds
            raise TypeError(f"unknown event type {type(event)!r}")
    if history.failure_time is not None:
        lines.append(f"{history.failure_time:12.6f} - panic")
    return "\n".join(lines)


def _parse_kv(token: str, key: str) -> str:
    if not token.startswith(key + "="):
        raise FtraceParseError(f"expected {key}=..., got {token!r}")
    return token[len(key) + 1:]


def parse_ftrace(text: str) -> ExecutionHistory:
    """Parse the textual log format back into a history."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines or lines[0].strip() != HEADER:
        raise FtraceParseError("missing ftrace header")
    history = ExecutionHistory()
    for line in lines[1:]:
        if line.lstrip().startswith("#"):
            continue
        parts = line.split()
        try:
            timestamp = float(parts[0])
        except (IndexError, ValueError) as exc:
            raise FtraceParseError(f"bad timestamp in {line!r}") from exc
        if len(parts) >= 3 and parts[2] == "panic" or (
                len(parts) >= 2 and parts[1] == "-"):
            history.failure_time = timestamp
            continue
        proc, kind = parts[1], parts[2]
        if kind == "sys_enter:":
            call, _, fd_part = parts[3].partition("(")
            fd_token = fd_part.rstrip(")")
            fd_value = _parse_kv(fd_token, "fd")
            fd = None if fd_value == "-" else int(fd_value)
            entry = _parse_kv(parts[4], "entry")
            duration = float(_parse_kv(parts[5], "dur"))
            is_setup = len(parts) > 6 and parts[6] == "setup"
            history.add(SyscallEvent(
                timestamp=timestamp, proc=proc, name=call, entry=entry,
                fd=fd, duration=duration, is_setup=is_setup))
        elif kind == "invoke:":
            thread_kind = ThreadKind(parts[3])
            func = _parse_kv(parts[4], "func")
            src = _parse_kv(parts[5], "src")
            source_proc, _, source_syscall = src.partition("/")
            duration = float(_parse_kv(parts[6], "dur"))
            history.add(KthreadInvocation(
                timestamp=timestamp, kind=thread_kind, func=func,
                source_proc=source_proc,
                source_syscall="" if source_syscall == "-"
                else source_syscall,
                duration=duration))
        else:
            raise FtraceParseError(f"unknown event kind in {line!r}")
    return history
