"""The execution history of one fuzzing run.

An ordered, timestamped mix of system calls and kernel-thread invocation
events, ending at (or containing) a failure.  This is what AITIA models
from ftrace output before slicing (paper section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.trace.events import KthreadInvocation, SyscallEvent

Event = Union[SyscallEvent, KthreadInvocation]


@dataclass
class ExecutionHistory:
    """All events of one run, sorted by timestamp."""

    events: List[Event] = field(default_factory=list)
    #: Timestamp at which the failure manifested (the end of the history
    #: when the kernel panicked).
    failure_time: Optional[float] = None

    def add(self, event: Event) -> None:
        self.events.append(event)
        self.events.sort(key=lambda e: e.timestamp)

    @property
    def syscalls(self) -> List[SyscallEvent]:
        return [e for e in self.events if isinstance(e, SyscallEvent)]

    @property
    def kthread_invocations(self) -> List[KthreadInvocation]:
        return [e for e in self.events if isinstance(e, KthreadInvocation)]

    def before_failure(self) -> List[Event]:
        """Events that started before the failure manifested."""
        if self.failure_time is None:
            return list(self.events)
        return [e for e in self.events if e.start <= self.failure_time]

    def syscalls_with_fd(self, fd: int) -> List[SyscallEvent]:
        return [e for e in self.syscalls if e.fd == fd]

    def setup_for_fd(self, fd: int) -> List[SyscallEvent]:
        """The setup calls (open/socket/...) of a file descriptor, searched
        over the whole history — the fd-semantics closure of section 4.2."""
        return [e for e in self.syscalls if e.fd == fd and e.is_setup]

    def __len__(self) -> int:
        return len(self.events)

    def render(self) -> str:
        lines = [str(e) for e in self.events]
        if self.failure_time is not None:
            lines.append(f"[{self.failure_time:.3f}] *** FAILURE ***")
        return "\n".join(lines)
