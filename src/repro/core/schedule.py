"""Schedules: how AITIA tells the hypervisor what interleaving to enforce.

Two primitives cover both stages of the system:

* :class:`Preemption` — "when thread T is about to execute instruction I
  (for the n-th time), park it on the trampoline and switch to thread S".
  LIFS reproduce schedules are a start order plus a list of preemptions
  (paper section 4.3, "Generating a schedule").
* :class:`OrderConstraint` — "instruction I of thread T (n-th occurrence)
  must be the next constrained instruction to execute".  Causality Analysis
  diagnosis schedules are an ordered queue of constraints over the racing
  instructions of the failure-causing sequence, with exactly one data race
  flipped (paper section 4.5).

Both address instructions by *(thread, code address, occurrence)*, which is
precisely what a hardware breakpoint plus a hit counter gives the real
AITIA hypervisor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class Preemption:
    """Park ``thread`` right before instruction ``instr_addr`` (its
    ``occurrence``-th dynamic execution) and switch to ``switch_to`` (or let
    the default policy pick when ``None``)."""

    thread: str
    instr_addr: int
    occurrence: int = 1
    switch_to: Optional[str] = None
    #: Display name of the instruction, for reports.
    instr_label: str = ""

    def matches(self, thread: str, instr_addr: int, occurrence: int) -> bool:
        return (self.thread == thread and self.instr_addr == instr_addr
                and self.occurrence == occurrence)

    def __str__(self) -> str:
        label = self.instr_label or f"0x{self.instr_addr:x}"
        to = f" -> {self.switch_to}" if self.switch_to else ""
        return f"preempt {self.thread}@{label}#{self.occurrence}{to}"


@dataclass(frozen=True)
class OrderConstraint:
    """One entry of a diagnosis schedule's total order over constrained
    instructions."""

    thread: str
    instr_addr: int
    occurrence: int = 1
    instr_label: str = ""

    @property
    def key(self) -> Tuple[str, int, int]:
        return (self.thread, self.instr_addr, self.occurrence)

    def matches(self, thread: str, instr_addr: int, occurrence: int) -> bool:
        return self.key == (thread, instr_addr, occurrence)

    def __str__(self) -> str:
        label = self.instr_label or f"0x{self.instr_addr:x}"
        return f"{self.thread}@{label}#{self.occurrence}"


@dataclass
class Schedule:
    """A complete scheduling manifestation handed to the hypervisor.

    ``start_order`` fixes the serial order of the initial threads (the
    first entry starts; when a thread finishes, the earliest unfinished
    entry resumes/starts).  Background threads spawned during the run are
    appended to the end of the effective order as they appear.
    """

    start_order: Tuple[str, ...]
    preemptions: List[Preemption] = field(default_factory=list)
    constraints: List[OrderConstraint] = field(default_factory=list)
    #: Free-form origin note ("lifs round 2", "flip A6=>B12"), for reports.
    note: str = ""

    def key(self) -> Tuple:
        """Canonical identity of this schedule: start order, preemption
        points and constraint order — everything that affects execution,
        nothing that doesn't (notes and display labels are excluded).
        Two schedules with equal keys enforce the same interleaving, so
        this is what dedup maps (the LIFS tried-set, the engine's
        speculation memo) key on."""
        return (
            tuple(self.start_order),
            tuple((p.thread, p.instr_addr, p.occurrence, p.switch_to)
                  for p in self.preemptions),
            tuple(c.key for c in self.constraints),
        )

    def describe(self) -> str:
        parts = [f"start={'>'.join(self.start_order)}"]
        parts.extend(str(p) for p in self.preemptions)
        if self.constraints:
            parts.append("order: " + " => ".join(str(c) for c in self.constraints))
        if self.note:
            parts.append(f"({self.note})")
        return "; ".join(parts)

    @property
    def preemption_count(self) -> int:
        return len(self.preemptions)
