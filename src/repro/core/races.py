"""Data races: definitions and derivation from an executed run.

The definitions follow the Linux kernel memory model as the paper does
(section 2): *conflicting accesses* touch the same location from different
threads with at least one write; a *data race* is a conflicting pair not
ordered by a common lock.

From a totally ordered run we derive the dynamic race events the way the
paper's examples do: per memory location, every pair of consecutive
conflicting accesses performed by different threads is one data race with
an observed interleaving order.  For Figure 2 this yields exactly the four
races the paper lists — (A2 => B11), (B2 => A6), (A6 => B12), (A12 => B17).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.kernel.access import MemoryAccess

#: Static identity of one side of a race: (thread, instruction address,
#: occurrence).  Stable across runs because thread names and code addresses
#: are deterministic.
EndpointKey = Tuple[str, int, int]


@dataclass(frozen=True)
class DataRace:
    """One dynamic data race with its observed interleaving order:
    ``first`` executed before ``second``."""

    first: MemoryAccess
    second: MemoryAccess

    def __post_init__(self) -> None:
        if not self.first.conflicts_with(self.second):
            raise ValueError(
                f"{self.first} and {self.second} are not conflicting accesses")

    # -- identities -----------------------------------------------------
    @property
    def first_key(self) -> EndpointKey:
        return (self.first.thread, self.first.instr_addr, self.first.occurrence)

    @property
    def second_key(self) -> EndpointKey:
        return (self.second.thread, self.second.instr_addr,
                self.second.occurrence)

    @property
    def key(self) -> Tuple[EndpointKey, EndpointKey]:
        """Directed identity: same racing instructions, same order."""
        return (self.first_key, self.second_key)

    @property
    def pair_key(self) -> FrozenSet[EndpointKey]:
        """Undirected identity: same racing instructions, either order."""
        return frozenset((self.first_key, self.second_key))

    # -- descriptive properties ------------------------------------------
    @property
    def location(self) -> int:
        return self.first.data_addr

    @property
    def threads(self) -> Tuple[str, str]:
        return (self.first.thread, self.second.thread)

    @property
    def is_lock_ordered(self) -> bool:
        """True when a common lock orders the two accesses (not a race by
        the kernel memory model; kept only for diagnostics)."""
        return bool(self.first.lockset & self.second.lockset)

    def flipped_str(self) -> str:
        return f"{self.second.instr_label} => {self.first.instr_label}"

    def __str__(self) -> str:
        return f"{self.first.instr_label} => {self.second.instr_label}"


class RaceSet:
    """An ordered collection of data races with key-based lookup."""

    def __init__(self, races: Iterable[DataRace] = ()) -> None:
        self._races: List[DataRace] = []
        self._by_key: Dict[Tuple[EndpointKey, EndpointKey], DataRace] = {}
        for race in races:
            self.add(race)

    def add(self, race: DataRace) -> None:
        if race.key not in self._by_key:
            self._by_key[race.key] = race
            self._races.append(race)

    def __iter__(self):
        return iter(self._races)

    def __len__(self) -> int:
        return len(self._races)

    def __contains__(self, race: DataRace) -> bool:
        return race.key in self._by_key

    def get(self, key) -> Optional[DataRace]:
        return self._by_key.get(key)

    def ordered_by_second_access(self) -> List[DataRace]:
        """Races sorted by the position of their *second* access — the order
        Causality Analysis pops them in ("from backward", section 3.4)."""
        return sorted(self._races, key=lambda r: r.second.seq)

    def __repr__(self) -> str:
        return f"RaceSet({', '.join(str(r) for r in self._races)})"


def find_data_races(accesses: Sequence[MemoryAccess],
                    include_lock_ordered: bool = False) -> RaceSet:
    """Derive the dynamic data races of one executed run.

    Per location, each access races with the *latest preceding* access of
    every other thread when the pair conflicts (at least one write): for
    the per-location access sequence ``A1(R) B1(R) B2(W) A3(R)`` this
    yields ``A1 => B2`` and ``B2 => A3``, matching how the paper lists the
    races of its examples (Figure 2 lists exactly (A2,B11), (A6,B2),
    (A6,B12), (A12,B17)).  Pairs ordered by a common lock are excluded
    unless ``include_lock_ordered`` (they are not data races under the
    kernel memory model).
    """
    by_location: Dict[int, List[MemoryAccess]] = {}
    for access in accesses:
        by_location.setdefault(access.data_addr, []).append(access)

    races = RaceSet()
    for location_accesses in by_location.values():
        last_by_thread: Dict[str, MemoryAccess] = {}
        for cur in location_accesses:
            for thread, prev in last_by_thread.items():
                if thread == cur.thread:
                    continue
                if not (prev.is_write or cur.is_write):
                    continue
                if not include_lock_ordered and (prev.lockset & cur.lockset):
                    continue
                races.add(DataRace(first=prev, second=cur))
            last_by_thread[cur.thread] = cur
    return races


def find_conflicting_instructions(
    accesses: Sequence[MemoryAccess],
) -> Dict[Tuple[str, int], FrozenSet[str]]:
    """Map each (thread, instruction address) to the set of *other* threads
    whose accesses conflict with it anywhere in the run.

    This is the knowledge LIFS builds up across runs to choose candidate
    preemption points: preempting at an instruction is only useful when the
    thread being switched to conflicts with it (the DPOR insight).
    """
    by_location: Dict[int, List[MemoryAccess]] = {}
    for access in accesses:
        by_location.setdefault(access.data_addr, []).append(access)

    conflicts: Dict[Tuple[str, int], set] = {}
    for location_accesses in by_location.values():
        for a in location_accesses:
            for b in location_accesses:
                if a.thread == b.thread:
                    continue
                if not (a.is_write or b.is_write):
                    continue
                conflicts.setdefault((a.thread, a.instr_addr), set()).add(b.thread)
    return {key: frozenset(value) for key, value in conflicts.items()}


def count_memory_instructions(accesses: Sequence[MemoryAccess]) -> int:
    """Number of distinct memory-accessing instruction executions in a run —
    the paper's conciseness denominator (section 5.2 reports an average of
    9592.8 per failed execution)."""
    return len(accesses)
