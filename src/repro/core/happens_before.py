"""Vector-clock happens-before analysis over executed runs.

The default race derivation (:mod:`repro.core.races`) uses the lockset
heuristic: a conflicting pair ordered by a *common* lock is not a race.
That matches the Linux-kernel memory-model definition the paper adopts,
but it misses transitive ordering — a pair ordered through a chain of
lock hand-offs or a thread spawn is not concurrent either, and reporting
it as a race sends Causality Analysis off to test a pair that no
schedule can flip.

This module computes real happens-before, KCSAN-style, with vector
clocks over three edge types:

* **program order** within each thread;
* **lock release -> acquire**: an UNLOCK publishes the releasing
  thread's clock into the lock; the next LOCK of the same lock joins it;
* **spawn**: a ``queue_work``/``call_rcu`` publishes the parent's clock
  into the child.

:func:`find_data_races_hb` then reports exactly the conflicting pairs
that are concurrent under this relation.  Every happens-before race is
also a lockset race (the converse does not hold), which the property
suite verifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.races import DataRace, RaceSet
from repro.kernel.access import MemoryAccess
from repro.kernel.instructions import Op
from repro.kernel.machine import SpawnEvent, TraceEntry
from repro.kernel.program import KernelImage


@dataclass(frozen=True)
class VectorClock:
    """An immutable vector clock: thread name -> logical time."""

    times: tuple = ()

    @staticmethod
    def of(mapping: Dict[str, int]) -> "VectorClock":
        return VectorClock(tuple(sorted(mapping.items())))

    def as_dict(self) -> Dict[str, int]:
        return dict(self.times)

    def get(self, thread: str) -> int:
        for name, t in self.times:
            if name == thread:
                return t
        return 0

    def join(self, other: "VectorClock") -> "VectorClock":
        merged = self.as_dict()
        for name, t in other.times:
            merged[name] = max(merged.get(name, 0), t)
        return VectorClock.of(merged)

    def tick(self, thread: str) -> "VectorClock":
        merged = self.as_dict()
        merged[thread] = merged.get(thread, 0) + 1
        return VectorClock.of(merged)

    def leq(self, other: "VectorClock") -> bool:
        """Pointwise <= : self happened before (or equals) other."""
        other_map = other.as_dict()
        return all(t <= other_map.get(name, 0) for name, t in self.times)

    def __str__(self) -> str:
        inner = ", ".join(f"{name}:{t}" for name, t in self.times)
        return f"<{inner}>"


class HappensBeforeIndex:
    """Per-event vector clocks for one executed run."""

    def __init__(self, clocks_by_seq: Dict[int, VectorClock],
                 thread_of_seq: Dict[int, str]) -> None:
        self._clocks = clocks_by_seq
        self._threads = thread_of_seq

    def clock(self, seq: int) -> VectorClock:
        return self._clocks[seq]

    def happens_before(self, seq1: int, seq2: int) -> bool:
        """Event at seq1 happens-before the event at seq2."""
        if seq1 == seq2:
            return False
        if seq1 not in self._clocks or seq2 not in self._clocks:
            raise KeyError(f"unknown event seq {seq1} or {seq2}")
        if self._threads[seq1] == self._threads[seq2]:
            return seq1 < seq2
        return self._clocks[seq1].leq(self._clocks[seq2])

    def concurrent(self, seq1: int, seq2: int) -> bool:
        return (seq1 != seq2
                and not self.happens_before(seq1, seq2)
                and not self.happens_before(seq2, seq1))


def compute_happens_before(
    trace: Sequence[TraceEntry],
    image: KernelImage,
    spawn_events: Sequence[SpawnEvent] = (),
) -> HappensBeforeIndex:
    """Build the happens-before index of one run."""
    thread_clock: Dict[str, VectorClock] = {}
    lock_clock: Dict[str, VectorClock] = {}
    pending_spawn: Dict[str, VectorClock] = {}
    clocks: Dict[int, VectorClock] = {}
    threads: Dict[int, str] = {}

    spawns_by_seq: Dict[int, SpawnEvent] = {e.seq: e for e in spawn_events}

    for entry in trace:
        thread = entry.thread
        clock = thread_clock.get(thread, VectorClock())
        # A freshly spawned thread starts with its parent's clock.
        if thread in pending_spawn:
            clock = clock.join(pending_spawn.pop(thread))

        instr = image.instruction_at(entry.instr_addr)
        if instr.op is Op.LOCK:
            released = lock_clock.get(instr.operands[0])
            if released is not None:
                clock = clock.join(released)

        clock = clock.tick(thread)

        if instr.op is Op.UNLOCK:
            lock_clock[instr.operands[0]] = clock
        if entry.seq in spawns_by_seq:
            child = spawns_by_seq[entry.seq].child
            pending_spawn[child] = clock

        thread_clock[thread] = clock
        clocks[entry.seq] = clock
        threads[entry.seq] = thread

    return HappensBeforeIndex(clocks, threads)


def find_data_races_hb(
    accesses: Sequence[MemoryAccess],
    trace: Sequence[TraceEntry],
    image: KernelImage,
    spawn_events: Sequence[SpawnEvent] = (),
) -> RaceSet:
    """Data races under real happens-before: conflicting pairs whose
    events are concurrent.  Pairing follows the same latest-preceding-
    access rule as :func:`repro.core.races.find_data_races`, so the two
    derivations are directly comparable."""
    index = compute_happens_before(trace, image, spawn_events)
    by_location: Dict[int, List[MemoryAccess]] = {}
    for access in accesses:
        by_location.setdefault(access.data_addr, []).append(access)

    races = RaceSet()
    for location_accesses in by_location.values():
        last_by_thread: Dict[str, MemoryAccess] = {}
        for cur in location_accesses:
            for thread, prev in last_by_thread.items():
                if thread == cur.thread:
                    continue
                if not (prev.is_write or cur.is_write):
                    continue
                if not index.concurrent(prev.seq, cur.seq):
                    continue
                races.add(DataRace(first=prev, second=cur))
            last_by_thread[cur.thread] = cur
    return races
