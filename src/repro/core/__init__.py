"""AITIA's core algorithms.

* :mod:`repro.core.races` — conflicting accesses and data races, using the
  Linux-kernel memory-model definitions the paper adopts;
* :mod:`repro.core.schedule` — reproduce/diagnosis schedules: preemptions
  for LIFS, order constraints for Causality Analysis;
* :mod:`repro.core.lifs` — Least Interleaving First Search (section 3.3);
* :mod:`repro.core.causality` — Causality Analysis (section 3.4);
* :mod:`repro.core.chain` — causality chains, the paper's root-cause form;
* :mod:`repro.core.diagnose` — the :class:`~repro.core.diagnose.Aitia`
  orchestrator tying history modeling, reproduction and diagnosis together.
"""

from repro.core.causality import CausalityAnalysis, CausalityResult
from repro.core.chain import CausalityChain, ChainNode
from repro.core.diagnose import Aitia, Diagnosis
from repro.core.happens_before import (
    HappensBeforeIndex,
    VectorClock,
    compute_happens_before,
    find_data_races_hb,
)
from repro.core.lifs import LeastInterleavingFirstSearch, LifsResult
from repro.core.minimize import MinimizationResult, minimize_schedule
from repro.core.races import DataRace, RaceSet, find_data_races
from repro.core.schedule import OrderConstraint, Preemption, Schedule

__all__ = [
    "Aitia",
    "CausalityAnalysis",
    "CausalityChain",
    "CausalityResult",
    "ChainNode",
    "DataRace",
    "Diagnosis",
    "HappensBeforeIndex",
    "LeastInterleavingFirstSearch",
    "LifsResult",
    "MinimizationResult",
    "OrderConstraint",
    "Preemption",
    "RaceSet",
    "Schedule",
    "VectorClock",
    "compute_happens_before",
    "find_data_races",
    "find_data_races_hb",
    "minimize_schedule",
]
