"""Causality chains — the paper's root-cause representation.

A causality chain is a DAG (usually a path) over data races: an edge
``r1 -> r2`` means flipping ``r1`` makes ``r2`` disappear through a
race-steered control flow, and the final node leads to the failure.
Races whose flips independently avert the failure and that steer the same
downstream race merge into a conjunction node, like
``(A2 => B11) ∧ (B2 => A6)`` in Figure 3.

The chain carries the paper's actionable message: *if a fix disallows any
one of the interleaving orders in the chain, the failure cannot occur.*
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.races import DataRace
from repro.kernel.failures import Failure


@dataclass(frozen=True)
class ChainNode:
    """One node: a conjunction of one or more data races whose flips avert
    the failure and that share the same direct successors."""

    races: Tuple[DataRace, ...]
    ambiguous: bool = False

    @property
    def is_conjunction(self) -> bool:
        return len(self.races) > 1

    def __str__(self) -> str:
        body = " ∧ ".join(str(r) for r in self.races)
        if self.is_conjunction:
            body = f"({body})"
        if self.ambiguous:
            body += " [ambiguous]"
        return body


@dataclass
class CausalityChain:
    """The diagnosis output: root-cause races, their causal edges, and the
    failure they lead to."""

    nodes: List[ChainNode]
    #: Edges as (from_index, to_index) into ``nodes``.
    edges: List[Tuple[int, int]]
    failure: Optional[Failure]

    @property
    def races(self) -> List[DataRace]:
        return [race for node in self.nodes for race in node.races]

    @property
    def race_count(self) -> int:
        """"# of races in chain" of Table 3."""
        return len(self.races)

    @property
    def has_ambiguity(self) -> bool:
        return any(node.ambiguous for node in self.nodes)

    def successors(self, index: int) -> List[int]:
        return [j for i, j in self.edges if i == index]

    def predecessors(self, index: int) -> List[int]:
        return [i for i, j in self.edges if j == index]

    def terminal_nodes(self) -> List[int]:
        """Nodes with no successors — the races immediately causing the
        failure."""
        return [i for i in range(len(self.nodes)) if not self.successors(i)]

    def render(self) -> str:
        """One-line rendering, e.g.
        ``(A2 => B11 ∧ B2 => A6) -> A6 => B12 -> B17 => A12 -> BUG_ON``."""
        if not self.nodes:
            return "<empty chain>"
        ordered = self._topological_order()
        parts = [str(self.nodes[i]) for i in ordered]
        failure = self.failure.kind.value if self.failure else "failure"
        return " -> ".join(parts + [failure])

    def _topological_order(self) -> List[int]:
        in_degree = {i: 0 for i in range(len(self.nodes))}
        for _, j in self.edges:
            in_degree[j] += 1
        ready = sorted(i for i, d in in_degree.items() if d == 0)
        order: List[int] = []
        while ready:
            i = ready.pop(0)
            order.append(i)
            for j in sorted(self.successors(i)):
                in_degree[j] -= 1
                if in_degree[j] == 0:
                    ready.append(j)
            ready.sort()
        # A cycle would indicate a bug in chain construction; surface the
        # remaining nodes deterministically rather than dropping them.
        order.extend(i for i in range(len(self.nodes)) if i not in order)
        return order

    def contains_race_between(self, label_a: str, label_b: str) -> bool:
        """Whether the chain contains a race between the two named
        instructions, in either order (used by tests and benchmarks)."""
        for race in self.races:
            labels = {race.first.instr_label, race.second.instr_label}
            if labels == {label_a, label_b}:
                return True
        return False


def _strongly_connected_components(
    vertices: Sequence[int], edges: Dict[int, Set[int]],
) -> List[List[int]]:
    """Iterative Tarjan SCC over a tiny graph of unit ids."""
    index_of: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Dict[int, bool] = {}
    stack: List[int] = []
    components: List[List[int]] = []
    counter = [0]

    for root in vertices:
        if root in index_of:
            continue
        work = [(root, iter(sorted(edges.get(root, ()))))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            vertex, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack[succ] = True
                    work.append((succ, iter(sorted(edges.get(succ, ())))))
                    advanced = True
                    break
                if on_stack.get(succ):
                    lowlink[vertex] = min(lowlink[vertex], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[vertex])
            if lowlink[vertex] == index_of[vertex]:
                component: List[int] = []
                while True:
                    node = stack.pop()
                    on_stack[node] = False
                    component.append(node)
                    if node == vertex:
                        break
                components.append(sorted(component))
    return components


def build_chain(
    root_cause_units: Sequence["object"],
    edges_between_units: Dict[int, Set[int]],
    failure: Optional[Failure],
    ambiguous_unit_ids: Optional[Set[int]] = None,
) -> CausalityChain:
    """Assemble a :class:`CausalityChain` from Causality Analysis output.

    ``root_cause_units`` are the confirmed
    :class:`~repro.core.causality.RaceUnit` objects, ``edges_between_units``
    maps unit id -> ids of units whose races disappear when it is flipped,
    and ``ambiguous_unit_ids`` marks units whose contribution could not be
    isolated (section 3.4).

    Units that make *each other* disappear (a strongly connected component
    of the disappearance graph) are the multi-variable conjunctions of
    Figure 3: flipping any one of them unravels the whole group, so they
    merge into a single conjunction node.  Remaining edges get a transitive
    reduction so the rendered chain shows only direct causality.
    """
    ambiguous_unit_ids = ambiguous_unit_ids or set()
    unit_list = list(root_cause_units)
    valid_ids = {unit.uid for unit in unit_list}
    unit_by_id = {unit.uid: unit for unit in unit_list}
    edges = {
        uid: {s for s in succs if s in valid_ids and s != uid}
        for uid, succs in edges_between_units.items() if uid in valid_ids
    }

    components = _strongly_connected_components(sorted(valid_ids), edges)
    # Deterministic node order: components whose races appear earlier in the
    # failure run come first.
    components.sort(key=lambda comp: min(unit_by_id[u].last_seq
                                         for u in comp))

    nodes: List[ChainNode] = []
    node_of_unit: Dict[int, int] = {}
    for component in components:
        races = tuple(
            race
            for uid in sorted(component,
                              key=lambda u: unit_by_id[u].last_seq)
            for race in unit_by_id[uid].races)
        ambiguous = any(uid in ambiguous_unit_ids for uid in component)
        node_index = len(nodes)
        nodes.append(ChainNode(races=races, ambiguous=ambiguous))
        for uid in component:
            node_of_unit[uid] = node_index

    node_edges: Set[Tuple[int, int]] = set()
    for uid, succs in edges.items():
        for succ in succs:
            i, j = node_of_unit[uid], node_of_unit[succ]
            if i != j:
                node_edges.add((i, j))

    # Transitive reduction (the graph is a DAG after SCC contraction).
    def reachable(frm: int, to: int, skip: Tuple[int, int]) -> bool:
        seen = {frm}
        work = [frm]
        while work:
            cur = work.pop()
            for (i, j) in node_edges:
                if (i, j) == skip or i != cur or j in seen:
                    continue
                if j == to:
                    return True
                seen.add(j)
                work.append(j)
        return False

    reduced = {
        (i, j) for (i, j) in node_edges
        if not reachable(i, j, skip=(i, j))
    }

    return CausalityChain(nodes=nodes, edges=sorted(reduced),
                          failure=failure)
