"""Least Interleaving First Search (paper section 3.3).

LIFS reproduces a reported concurrency failure by exploring interleavings
of *conflicting* instructions, fewest preemptions first:

1. **Interleaving count 0** — every serial order of the slice's threads is
   executed.  These runs discover each thread's memory-accessing
   instructions (the kcov + disassembly step of section 4.3) and seed the
   conflict knowledge.
2. **Interleaving count k** — every non-failing run with k-1 preemptions is
   extended with one more preemption, placed *after* the previous ones
   (front-to-back search) and only at instructions whose data address is
   also accessed, conflictingly, by the thread being switched to.  The
   latter is the dynamic-partial-order-reduction insight: preempting where
   the target thread cannot conflict yields an equivalent trace, so those
   candidates are pruned without running (the grey branches of Figure 5).
3. Runs whose Mazurkiewicz signature repeats an earlier run are recorded as
   equivalent rather than explored further.

New instructions executed because of race-steered control flows enter the
knowledge base as soon as a run reveals them, extending the candidate set
on the fly — the property that lets LIFS handle the asynchronous patterns
of Figure 4 without predefined bug shapes.

The search stops at the first run whose failure matches the reported
symptom and returns the totally ordered failure-causing instruction
sequence together with every data race observed in it.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.races import RaceSet, find_data_races
from repro.core.schedule import Preemption, Schedule
from repro.hypervisor.controller import RunResult, ScheduleController
from repro.kernel.failures import Failure, FailureKind
from repro.kernel.machine import KernelMachine
from repro.observe.tracer import as_tracer


@dataclass(frozen=True)
class FailureMatcher:
    """Does an observed failure match the reported one?

    ``kind=None`` matches any failure; ``location=None`` matches any
    instruction.  Crash reports give both (section 4.2).
    """

    kind: Optional[FailureKind] = None
    location: Optional[str] = None

    def matches(self, failure: Optional[Failure]) -> bool:
        if failure is None:
            return False
        if self.kind is not None and failure.kind is not self.kind:
            return False
        if self.location is not None and failure.instr_label != self.location:
            return False
        return True

    @classmethod
    def any_failure(cls) -> "FailureMatcher":
        return cls()


@dataclass
class LifsConfig:
    """Search bounds."""

    max_interleavings: int = 4
    max_schedules: int = 20_000
    #: How many full (non-failing) run results to retain for baselines and
    #: inspection; the frontier itself keeps only what extension needs.
    keep_runs: int = 64
    #: Ablation switch: disable the DPOR-style candidate pruning (preempt
    #: at *every* memory instruction, conflicting or not).  Exists to
    #: measure how much the paper's partial-order reduction buys.
    conflict_pruning: bool = True
    #: Ablation switch: extend equivalent (same-signature) runs instead of
    #: skipping their subtrees.
    equivalence_dedup: bool = True


@dataclass
class SearchStats:
    schedules_executed: int = 0
    candidates_pruned: int = 0
    equivalent_runs: int = 0
    total_steps: int = 0
    failing_runs: int = 0
    per_round_executed: Dict[int, int] = field(default_factory=dict)
    per_round_pruned: Dict[int, int] = field(default_factory=dict)
    per_round_equivalent: Dict[int, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0


@dataclass
class LifsResult:
    """Outcome of one LIFS search over one slice."""

    reproduced: bool
    failure_run: Optional[RunResult]
    races: RaceSet
    stats: SearchStats
    #: Paper-style interleaving count of the reproducing run (preempted and
    #: later resumed pairs).
    interleaving_count: int = 0
    sample_runs: List[RunResult] = field(default_factory=list)

    @property
    def failure_sequence(self):
        """The totally ordered failure-causing instruction sequence."""
        if self.failure_run is None:
            return []
        return self.failure_run.trace

    @property
    def schedule(self) -> Optional[Schedule]:
        return self.failure_run.schedule if self.failure_run else None


class _Knowledge:
    """What LIFS has learned from executed runs: who accesses which data
    address and how, plus which threads spawn which background threads."""

    def __init__(self) -> None:
        #: data_addr -> {(thread, is_write)}
        self.accessors: Dict[int, Set[Tuple[str, bool]]] = {}
        #: parent thread -> {child threads it has been seen spawning}
        self.spawn_children: Dict[str, Set[str]] = {}

    def absorb(self, run: RunResult) -> None:
        for access in run.accesses:
            self.accessors.setdefault(access.data_addr, set()).add(
                (access.thread, access.is_write))
        for spawn in run.spawn_events:
            self.spawn_children.setdefault(spawn.parent, set()).add(
                spawn.child)

    def _with_descendants(self, thread: str) -> Set[str]:
        family = {thread}
        work = [thread]
        while work:
            for child in self.spawn_children.get(work.pop(), ()):
                if child not in family:
                    family.add(child)
                    work.append(child)
        return family

    def conflicts(self, data_addr: int, accessor_is_write: bool,
                  target_thread: str) -> bool:
        """Would switching to the target thread allow a conflicting access
        to this address — by the target itself or by a background thread
        it (transitively) invokes?  The latter is what makes preempting
        toward an asynchronous free worthwhile (Figure 4-(a))."""
        family = self._with_descendants(target_thread)
        for thread, is_write in self.accessors.get(data_addr, ()):
            if thread in family and (is_write or accessor_is_write):
                return True
        return False


class LeastInterleavingFirstSearch:
    """One LIFS instance over one slice of threads."""

    def __init__(
        self,
        machine_factory: Callable[[], KernelMachine],
        initial_threads: Sequence[str],
        target: Optional[FailureMatcher] = None,
        config: Optional[LifsConfig] = None,
        tracer=None,
    ) -> None:
        self.machine_factory = machine_factory
        self.initial_threads = tuple(initial_threads)
        self.target = target or FailureMatcher.any_failure()
        self.config = config or LifsConfig()
        self.tracer = as_tracer(tracer)
        self.stats = SearchStats()
        self._knowledge = _Knowledge()
        self._signatures: Set[Tuple] = set()
        self._tried_schedules: Set[Tuple] = set()
        self._sample_runs: List[RunResult] = []

    # ------------------------------------------------------------------
    def search(self) -> LifsResult:
        with self.tracer.span("lifs", stage="lifs",
                              threads=len(self.initial_threads)) as span:
            started = time.perf_counter()
            result = self._search()
            self.stats.elapsed_seconds = time.perf_counter() - started
            self._trace_outcome(span, result)
        return result

    def _trace_outcome(self, span, result: LifsResult) -> None:
        """Publish the search accounting: per-depth points, aggregate
        counters, and the span's summary attributes."""
        stats = self.stats
        if not self.tracer.enabled:
            return
        depths = (set(stats.per_round_executed) | set(stats.per_round_pruned)
                  | set(stats.per_round_equivalent))
        for depth in sorted(depths):
            self.tracer.point(
                "lifs.depth", stage="lifs", depth=depth,
                executed=stats.per_round_executed.get(depth, 0),
                pruned=stats.per_round_pruned.get(depth, 0),
                equivalent=stats.per_round_equivalent.get(depth, 0))
        self.tracer.count("lifs.schedules", stats.schedules_executed)
        self.tracer.count("lifs.pruned", stats.candidates_pruned)
        self.tracer.count("lifs.equivalent", stats.equivalent_runs)
        self.tracer.count("lifs.failing_runs", stats.failing_runs)
        self.tracer.count("lifs.searches")
        span.set(reproduced=result.reproduced,
                 schedules=stats.schedules_executed,
                 pruned=stats.candidates_pruned,
                 equivalent=stats.equivalent_runs,
                 interleavings=result.interleaving_count,
                 races=len(result.races))

    def _search(self) -> LifsResult:
        frontier: List[RunResult] = []

        # Interleaving count 0: serial executions in every thread order.
        for order in itertools.permutations(self.initial_threads):
            schedule = Schedule(start_order=order,
                                note=f"lifs serial {'>'.join(order)}")
            run, duplicate = self._execute(schedule, round_index=0)
            if run is None:
                return self._give_up()
            if self.target.matches(run.failure):
                return self._success(run)
            if not run.failed and not duplicate:
                frontier.append(run)

        for round_index in range(1, self.config.max_interleavings + 1):
            next_frontier: List[RunResult] = []
            for base in frontier:
                for schedule in self._extensions(base):
                    run, duplicate = self._execute(schedule, round_index)
                    if run is None:
                        return self._give_up()
                    if self.target.matches(run.failure):
                        return self._success(run)
                    # Equivalent runs are recorded but not extended — the
                    # DPOR-style subtree skip of Figure 5.
                    keep = not duplicate or not self.config.equivalence_dedup
                    if not run.failed and keep:
                        next_frontier.append(run)
            if not next_frontier:
                break
            frontier = next_frontier

        return self._give_up()

    # ------------------------------------------------------------------
    def _execute(
        self, schedule: Schedule, round_index: int,
    ) -> Tuple[Optional[RunResult], bool]:
        """Run one schedule.  Returns ``(run, is_equivalent)``; ``run`` is
        ``None`` when the schedule budget is exhausted."""
        if self.stats.schedules_executed >= self.config.max_schedules:
            return None, False
        controller = ScheduleController(self.machine_factory(), schedule,
                                        tracer=self.tracer)
        run = controller.run()
        self.stats.schedules_executed += 1
        self.stats.total_steps += run.steps
        if run.failed:
            self.stats.failing_runs += 1
        self.stats.per_round_executed[round_index] = (
            self.stats.per_round_executed.get(round_index, 0) + 1)
        self._knowledge.absorb(run)
        signature = run.signature()
        duplicate = signature in self._signatures
        if duplicate:
            self.stats.equivalent_runs += 1
            self.stats.per_round_equivalent[round_index] = (
                self.stats.per_round_equivalent.get(round_index, 0) + 1)
        else:
            self._signatures.add(signature)
        if len(self._sample_runs) < self.config.keep_runs:
            self._sample_runs.append(run)
        return run, duplicate

    def _extensions(self, base: RunResult):
        """Candidate schedules extending ``base`` with one more preemption,
        front-to-back after the base's last fired preemption."""
        # Front-to-back: new preemptions only after the point where the
        # base run's last preemption *fired* (parked its thread).
        last_seq = max(base.fired_seqs) if base.fired_seqs else 0

        accesses_by_seq = {a.seq: a for a in base.accesses}
        thread_kinds = base.thread_kinds
        spawn_seq = {e.child: e.seq for e in base.spawn_events}
        threads = base.thread_names
        remaining_after: Dict[str, int] = {}
        for entry in base.trace:
            remaining_after[entry.thread] = entry.seq

        for entry in base.trace:
            if entry.seq <= last_seq:
                continue
            access = accesses_by_seq.get(entry.seq)
            if access is None:
                continue  # not a memory-accessing instruction
            if thread_kinds.get(entry.thread) == "irq":
                continue  # hardware IRQ handlers are not preemptible
            for target in threads:
                if target == entry.thread:
                    continue
                if spawn_seq.get(target, 0) > entry.seq:
                    continue  # not spawned yet at this point
                if remaining_after.get(target, 0) <= entry.seq:
                    continue  # target had no remaining work here
                if self.config.conflict_pruning and \
                        not self._knowledge.conflicts(
                            access.data_addr, access.is_write, target):
                    self.stats.candidates_pruned += 1
                    depth = len(base.schedule.preemptions) + 1
                    self.stats.per_round_pruned[depth] = (
                        self.stats.per_round_pruned.get(depth, 0) + 1)
                    continue
                preemption = Preemption(
                    thread=entry.thread, instr_addr=entry.instr_addr,
                    occurrence=entry.occurrence, switch_to=target,
                    instr_label=entry.instr_label)
                schedule = Schedule(
                    start_order=base.schedule.start_order,
                    preemptions=list(base.schedule.preemptions) + [preemption],
                    note=f"lifs depth {len(base.schedule.preemptions) + 1}")
                key = self._schedule_key(schedule)
                if key in self._tried_schedules:
                    continue
                self._tried_schedules.add(key)
                yield schedule

    @staticmethod
    def _schedule_key(schedule: Schedule) -> Tuple:
        return (
            schedule.start_order,
            tuple((p.thread, p.instr_addr, p.occurrence, p.switch_to)
                  for p in schedule.preemptions),
        )

    # ------------------------------------------------------------------
    def _success(self, run: RunResult) -> LifsResult:
        races = find_data_races(run.accesses)
        return LifsResult(
            reproduced=True, failure_run=run, races=races, stats=self.stats,
            interleaving_count=run.interleavings,
            sample_runs=list(self._sample_runs))

    def _give_up(self) -> LifsResult:
        return LifsResult(
            reproduced=False, failure_run=None, races=RaceSet(),
            stats=self.stats, sample_runs=list(self._sample_runs))
