"""Least Interleaving First Search (paper section 3.3).

LIFS reproduces a reported concurrency failure by exploring interleavings
of *conflicting* instructions, fewest preemptions first:

1. **Interleaving count 0** — every serial order of the slice's threads is
   executed.  These runs discover each thread's memory-accessing
   instructions (the kcov + disassembly step of section 4.3) and seed the
   conflict knowledge.
2. **Interleaving count k** — every non-failing run with k-1 preemptions is
   extended with one more preemption, placed *after* the previous ones
   (front-to-back search) and only at instructions whose data address is
   also accessed, conflictingly, by the thread being switched to.  The
   latter is the dynamic-partial-order-reduction insight: preempting where
   the target thread cannot conflict yields an equivalent trace, so those
   candidates are pruned without running (the grey branches of Figure 5).
3. Runs whose Mazurkiewicz signature repeats an earlier run are recorded as
   equivalent rather than explored further.

New instructions executed because of race-steered control flows enter the
knowledge base as soon as a run reveals them, extending the candidate set
on the fly — the property that lets LIFS handle the asynchronous patterns
of Figure 4 without predefined bug shapes.

The search stops at the first run whose failure matches the reported
symptom and returns the totally ordered failure-causing instruction
sequence together with every data race observed in it.
"""

from __future__ import annotations

import bisect
import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.races import RaceSet, find_data_races
from repro.core.schedule import Preemption, Schedule
from repro.hypervisor.controller import RunResult, ScheduleController
from repro.hypervisor.snapshot import RunCheckpoint
from repro.kernel.failures import Failure, FailureKind
from repro.kernel.machine import KernelMachine
from repro.observe.tracer import as_tracer

from repro.engine import (LIFS_COUNTER_NAMES, EnginePolicy, RunPlan,
                          RunRequest, ScheduleExecutionEngine)
from repro.policy import (CandidateMeta, PolicyContext,
                          lifs_candidate_features)


@dataclass(frozen=True)
class FailureMatcher:
    """Does an observed failure match the reported one?

    ``kind=None`` matches any failure; ``location=None`` matches any
    instruction.  Crash reports give both (section 4.2).
    """

    kind: Optional[FailureKind] = None
    location: Optional[str] = None

    def matches(self, failure: Optional[Failure]) -> bool:
        if failure is None:
            return False
        if self.kind is not None and failure.kind is not self.kind:
            return False
        if self.location is not None and failure.instr_label != self.location:
            return False
        return True

    @classmethod
    def any_failure(cls) -> "FailureMatcher":
        return cls()


@dataclass
class LifsConfig:
    """Search bounds."""

    max_interleavings: int = 4
    max_schedules: int = 20_000
    #: How many full (non-failing) run results to retain for baselines and
    #: inspection; the frontier itself keeps only what extension needs.
    keep_runs: int = 64
    #: Ablation switch: disable the DPOR-style candidate pruning (preempt
    #: at *every* memory instruction, conflicting or not).  Exists to
    #: measure how much the paper's partial-order reduction buys.
    conflict_pruning: bool = True
    #: Ablation switch: extend equivalent (same-signature) runs instead of
    #: skipping their subtrees.
    equivalence_dedup: bool = True
    #: Prefix-checkpoint engine (docs/PERFORMANCE.md): run every schedule on
    #: one vehicle machine, resumed from the latest checkpoint before the
    #: point where the schedule diverges from its base run, instead of
    #: rebooting and re-interpreting the shared prefix.  Results are
    #: bit-identical with the engine on or off (the ``--no-snapshot``
    #: ablation); only ``snapshot.*`` accounting differs.
    use_snapshots: bool = True
    #: Capture a checkpoint every N executed instructions (besides the boot
    #: checkpoint and one at every preemption fire).
    snapshot_interval: int = 8
    #: Per-run cap on captured checkpoints.
    max_checkpoints_per_run: int = 64
    #: Cap on memoized run continuations (suffix splicing); each entry
    #: pins its donor run for the duration of the search.
    max_continuations: int = 65536
    #: Debugging aid: dedup on the full nested Mazurkiewicz signature
    #: tuples instead of the stable 64-bit digest.
    full_signatures: bool = False
    #: Retain full ``RunResult``s for ``sample_runs`` instead of the
    #: lightweight summaries that are replayed on demand.
    keep_full_runs: bool = False
    #: Parallel wave width (``--parallel-waves``): with N > 1 each depth
    #: round's frontier extensions are speculatively executed as one wave
    #: across N child processes, and the sequential pass consumes the
    #: precomputed results instead of re-running them.  Results are
    #: bit-identical to ``wave_jobs=1`` (the speculative candidate set is
    #: always a subset of the authoritative one — see
    #: docs/PERFORMANCE.md); only wave/snapshot accounting differs.
    wave_jobs: int = 1
    #: Which parallel dispatch backend serves waves (``--executor``):
    #: ``"fleet"`` (the persistent fork-server fleet, the default) or
    #: ``"inline"`` (never fork; waves run in-process).  Irrelevant at
    #: ``wave_jobs=1``.  Diagnoses are bit-identical either way.
    executor: str = "fleet"
    #: Which :mod:`repro.policy` search policy shapes frontier-extension
    #: batches (``--policy``): ``"static"`` (the canonical lazy
    #: front-to-back order, the default) or ``"adaptive"``
    #: (experience-ranked candidates, so a structurally familiar
    #: reproduction surfaces in fewer executed schedules).  Final
    #: diagnoses are identical under every policy; only cost accounting
    #: differs.
    policy: str = "static"


@dataclass
class SearchStats:
    schedules_executed: int = 0
    candidates_pruned: int = 0
    equivalent_runs: int = 0
    total_steps: int = 0
    failing_runs: int = 0
    per_round_executed: Dict[int, int] = field(default_factory=dict)
    per_round_pruned: Dict[int, int] = field(default_factory=dict)
    per_round_equivalent: Dict[int, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    #: Schedules resumed from a checkpoint / booted fresh; their sum always
    #: equals ``schedules_executed``.
    snapshot_hits: int = 0
    snapshot_misses: int = 0
    #: Checkpoints captured across all runs.
    snapshot_checkpoints: int = 0
    #: Suffix steps actually interpreted by resumed runs.
    resumed_steps: int = 0
    #: Prefix + boot-setup steps resumed runs did *not* interpret.
    saved_steps: int = 0
    #: Steps the interpreter really executed (suffixes plus setup on fresh
    #: boots).  With snapshots off this equals total_steps + setup per run;
    #: ``total_steps`` itself keeps whole-run semantics either way.
    interpreted_steps: int = 0
    #: Runs whose suffix was grafted from a memoized continuation after
    #: state convergence (the engine's continuation cache; see
    #: docs/PERFORMANCE.md), and the steps those grafts covered without
    #: interpretation.
    snapshot_splices: int = 0
    snapshot_spliced_steps: int = 0


@dataclass(frozen=True)
class RunSummary:
    """Lightweight record of one executed schedule: what retention keeps
    instead of a full ``RunResult`` (whose trace and access log pin the
    whole run in memory).  The schedule plus the deterministic controller
    are enough to rematerialize the full run on demand."""

    schedule: Schedule
    failure: Optional[Failure]
    steps: int
    interleavings: int
    signature_hash: int

    @property
    def failed(self) -> bool:
        return self.failure is not None


@dataclass
class LifsResult:
    """Outcome of one LIFS search over one slice."""

    reproduced: bool
    failure_run: Optional[RunResult]
    races: RaceSet
    stats: SearchStats
    #: Paper-style interleaving count of the reproducing run (preempted and
    #: later resumed pairs).
    interleaving_count: int = 0
    #: Summaries of the first ``LifsConfig.keep_runs`` executed schedules.
    run_summaries: List[RunSummary] = field(default_factory=list)
    _replayer: Optional[Callable[[Schedule], RunResult]] = field(
        default=None, repr=False, compare=False)
    _materialized: Optional[List[RunResult]] = field(
        default=None, repr=False, compare=False)

    @property
    def sample_runs(self) -> List[RunResult]:
        """Full ``RunResult``s for the retained schedules.

        Replayed on demand (execution is deterministic, so the replay is
        exact) and cached; with ``LifsConfig.keep_full_runs`` the search
        hands over the original runs instead.
        """
        if self._materialized is None:
            if self._replayer is None:
                self._materialized = []
            else:
                self._materialized = [self._replayer(s.schedule)
                                      for s in self.run_summaries]
        return self._materialized

    @property
    def failure_sequence(self):
        """The totally ordered failure-causing instruction sequence."""
        if self.failure_run is None:
            return []
        return self.failure_run.trace

    @property
    def schedule(self) -> Optional[Schedule]:
        return self.failure_run.schedule if self.failure_run else None


class _Knowledge:
    """What LIFS has learned from executed runs: who accesses which data
    address and how, plus which threads spawn which background threads."""

    def __init__(self) -> None:
        #: data_addr -> {(thread, is_write)}
        self.accessors: Dict[int, Set[Tuple[str, bool]]] = {}
        #: parent thread -> {child threads it has been seen spawning}
        self.spawn_children: Dict[str, Set[str]] = {}

    def absorb(self, run: RunResult) -> None:
        for access in run.accesses:
            self.accessors.setdefault(access.data_addr, set()).add(
                (access.thread, access.is_write))
        for spawn in run.spawn_events:
            self.spawn_children.setdefault(spawn.parent, set()).add(
                spawn.child)

    def _with_descendants(self, thread: str) -> Set[str]:
        family = {thread}
        work = [thread]
        while work:
            for child in self.spawn_children.get(work.pop(), ()):
                if child not in family:
                    family.add(child)
                    work.append(child)
        return family

    def conflicts(self, data_addr: int, accessor_is_write: bool,
                  target_thread: str) -> bool:
        """Would switching to the target thread allow a conflicting access
        to this address — by the target itself or by a background thread
        it (transitively) invokes?  The latter is what makes preempting
        toward an asynchronous free worthwhile (Figure 4-(a))."""
        family = self._with_descendants(target_thread)
        for thread, is_write in self.accessors.get(data_addr, ()):
            if thread in family and (is_write or accessor_is_write):
                return True
        return False


class LeastInterleavingFirstSearch:
    """One LIFS instance over one slice of threads."""

    def __init__(
        self,
        machine_factory: Callable[[], KernelMachine],
        initial_threads: Sequence[str],
        target: Optional[FailureMatcher] = None,
        config: Optional[LifsConfig] = None,
        tracer=None,
        experience=None,
    ) -> None:
        self.machine_factory = machine_factory
        self.initial_threads = tuple(initial_threads)
        self.target = target or FailureMatcher.any_failure()
        self.config = config or LifsConfig()
        self.tracer = as_tracer(tracer)
        self.stats = SearchStats()
        self._knowledge = _Knowledge()
        self._signatures: Set = set()
        self._tried_schedules: Set[Tuple] = set()
        self._run_summaries: List[RunSummary] = []
        self._kept_runs: List[RunResult] = []
        # All execution placement (snapshot resume/splice, parallel waves,
        # coverage pinning, speculation dedup) lives in the engine; the
        # search only decides *which* schedules to run and in what order.
        self.engine = ScheduleExecutionEngine(
            machine_factory, EnginePolicy.for_lifs(self.config),
            tracer=self.tracer, experience=experience)

    # ------------------------------------------------------------------
    def search(self) -> LifsResult:
        with self.tracer.span("lifs", stage="lifs",
                              threads=len(self.initial_threads)) as span:
            started = time.perf_counter()
            result = self._search()
            # Early exit (reproduction, budget) may leave speculative wave
            # results unconsumed; they are discarded, never merged, so the
            # diagnosis stays identical to a sequential search.
            self.engine.discard_speculation()
            self._absorb_engine_stats()
            self.stats.elapsed_seconds = time.perf_counter() - started
            self._trace_outcome(span, result)
            # The engine (and any resident fleet workers it forked)
            # serves exactly this search; retire it so batch callers —
            # the 22-bug evaluation, the triage service — never
            # accumulate worker processes across diagnoses.
            self.engine.close()
        return result

    def _absorb_engine_stats(self) -> None:
        """Copy the engine's execution accounting into the search stats
        (the engine serves exactly this search, so the copy is total)."""
        engine_stats = self.engine.stats
        self.stats.snapshot_hits = engine_stats.snapshot_hits
        self.stats.snapshot_misses = engine_stats.snapshot_misses
        self.stats.snapshot_checkpoints = engine_stats.checkpoints_captured
        self.stats.resumed_steps = engine_stats.resumed_steps
        self.stats.saved_steps = engine_stats.saved_steps
        self.stats.interpreted_steps = engine_stats.interpreted_steps
        self.stats.snapshot_splices = engine_stats.splices
        self.stats.snapshot_spliced_steps = engine_stats.spliced_steps

    def _trace_outcome(self, span, result: LifsResult) -> None:
        """Publish the search accounting: per-depth points, aggregate
        counters, and the span's summary attributes."""
        stats = self.stats
        if not self.tracer.enabled:
            return
        depths = (set(stats.per_round_executed) | set(stats.per_round_pruned)
                  | set(stats.per_round_equivalent))
        for depth in sorted(depths):
            self.tracer.point(
                "lifs.depth", stage="lifs", depth=depth,
                executed=stats.per_round_executed.get(depth, 0),
                pruned=stats.per_round_pruned.get(depth, 0),
                equivalent=stats.per_round_equivalent.get(depth, 0))
        self.tracer.count("lifs.schedules", stats.schedules_executed)
        self.tracer.count("lifs.pruned", stats.candidates_pruned)
        self.tracer.count("lifs.equivalent", stats.equivalent_runs)
        self.tracer.count("lifs.failing_runs", stats.failing_runs)
        self.tracer.count("lifs.searches")
        self.engine.emit_counters(LIFS_COUNTER_NAMES)
        span.set(reproduced=result.reproduced,
                 schedules=stats.schedules_executed,
                 pruned=stats.candidates_pruned,
                 equivalent=stats.equivalent_runs,
                 interleavings=result.interleaving_count,
                 races=len(result.races))

    def _search(self) -> LifsResult:
        # Frontier entries carry the checkpoints valid for extending the
        # run: the base's shared-prefix checkpoints plus the run's own.
        frontier: List[Tuple[RunResult, List[RunCheckpoint]]] = []

        # Interleaving count 0: serial executions in every thread order.
        for order in itertools.permutations(self.initial_threads):
            schedule = Schedule(start_order=order,
                                note=f"lifs serial {'>'.join(order)}")
            run, duplicate, checkpoints = self._execute(schedule,
                                                        round_index=0)
            if run is None:
                return self._give_up()
            if self.target.matches(run.failure):
                return self._success(run)
            if not run.failed and not duplicate:
                frontier.append((run, checkpoints))

        extend = (self._extend_round_ranked
                  if self.engine.search_policy.reorders
                  else self._extend_round_static)
        for round_index in range(1, self.config.max_interleavings + 1):
            self._speculate_round(frontier)
            result, next_frontier = extend(frontier, round_index)
            if result is not None:
                return result
            if not next_frontier:
                break
            frontier = next_frontier

        return self._give_up()

    def _extend_round_static(
        self, frontier, round_index: int,
    ) -> Tuple[Optional[LifsResult], List]:
        """One frontier round in the canonical lazy order — the static
        policy.  Candidates are generated base by base *while* earlier
        siblings execute, so each sees the conflict knowledge its
        predecessors just grew: the exact pre-policy semantics, bit for
        bit."""
        next_frontier: List[Tuple[RunResult, List[RunCheckpoint]]] = []
        for base, base_ckpts in frontier:
            base_ckpts = list(base_ckpts)
            horizons = [c.horizon_seq for c in base_ckpts]
            for schedule, div_seq in self._extensions(base):
                # Latest checkpoint strictly before the divergence
                # point: base and extension behave identically up to
                # there, and the preempted occurrence must not have
                # executed yet or the preemption would never fire.
                i = bisect.bisect_left(horizons, div_seq)
                resume = base_ckpts[i - 1] if i else None
                run, duplicate, checkpoints = self._execute(
                    schedule, round_index, resume_from=resume)
                if run is None:
                    return self._give_up(), []
                if self.target.matches(run.failure):
                    return self._success(run), []
                self._harvest(schedule, checkpoints, base_ckpts,
                              horizons)
                # Equivalent runs are recorded but not extended — the
                # DPOR-style subtree skip of Figure 5.
                keep = not duplicate or not self.config.equivalence_dedup
                if not run.failed and keep:
                    next_frontier.append((run, self._child_checkpoints(
                        schedule, run, base_ckpts, checkpoints)))
        return None, next_frontier

    def _extend_round_ranked(
        self, frontier, round_index: int,
    ) -> Tuple[Optional[LifsResult], List]:
        """One frontier round through the search policy (reordering
        policies only): materialize the round's candidates, let
        :meth:`~repro.engine.engine.ScheduleExecutionEngine.shape_plan`
        rank the batch, execute in shaped order.

        Materialization repeats to a fixed point: executed runs grow the
        conflict knowledge, and grown knowledge can unlock extensions the
        first materialization pruned (the conflict check is monotone in
        the knowledge, which only grows), so the candidate set here
        always covers everything the lazy static order would have
        generated.  Execution *order* inside the round — and with it
        which failure-matching run surfaces first — is the policy's
        choice; the ablation benchmark asserts the resulting diagnoses
        stay bit-identical across policies on the whole corpus."""
        # Per-base mutable checkpoint pools, shared across fixed-point
        # iterations so harvested captures keep densifying the prefix.
        pools = []
        for base, base_ckpts in frontier:
            pool = list(base_ckpts)
            pools.append((base, pool, [c.horizon_seq for c in pool]))
        next_frontier: List[Tuple[RunResult, List[RunCheckpoint]]] = []
        while True:
            requests: List[RunRequest] = []
            for base_index, (base, _, _) in enumerate(pools):
                access_by_seq = {a.seq: a for a in base.accesses}
                kinds = base.thread_kinds
                for schedule, div_seq in self._extensions(base):
                    preemption = schedule.preemptions[-1]
                    access = access_by_seq.get(div_seq)
                    requests.append(RunRequest(
                        schedule=schedule, capture_checkpoints=True,
                        meta=CandidateMeta(
                            index=len(requests), kind="lifs.extend",
                            base_index=base_index, div_seq=div_seq,
                            sort_key=(base_index, div_seq,
                                      preemption.switch_to),
                            features=lifs_candidate_features(
                                preemption.instr_label,
                                access.func if access is not None else "",
                                kinds.get(preemption.switch_to, ""),
                                round_index))))
            if not requests:
                return None, next_frontier
            shaped, _pruned = self.engine.shape_plan(
                RunPlan(requests, phase="lifs.extend"),
                PolicyContext(phase="lifs.extend", depth=round_index))
            for request in shaped.requests:
                meta = request.meta
                _base, pool, horizons = pools[meta.base_index]
                i = bisect.bisect_left(horizons, meta.div_seq)
                resume = pool[i - 1] if i else None
                run, duplicate, checkpoints = self._execute(
                    request.schedule, round_index, resume_from=resume)
                if run is None:
                    return self._give_up(), []
                if self.target.matches(run.failure):
                    return self._success(run), []
                self._harvest(request.schedule, checkpoints, pool, horizons)
                keep = not duplicate or not self.config.equivalence_dedup
                if not run.failed and keep:
                    next_frontier.append((run, self._child_checkpoints(
                        request.schedule, run, pool, checkpoints)))

    def _harvest(self, schedule: Schedule,
                 checkpoints: Sequence[RunCheckpoint],
                 base_ckpts: List[RunCheckpoint],
                 horizons: List[int]) -> None:
        """Fold an extension run's pre-divergence checkpoints back into the
        base's pool.  Until its new preemption fires, the extension *is* the
        base run, so those captures densify the shared prefix — siblings
        (generated in ascending divergence order) then resume from just
        before their own divergence point instead of an early, coarse
        checkpoint."""
        if not self.engine.snapshots_active or not schedule.preemptions:
            return
        new_preemption = schedule.preemptions[-1]
        for ckpt in checkpoints:
            # fired grows monotonically along the checkpoint list; the
            # first capture past the divergence ends the shared prefix.
            if any(p == new_preemption for p, _ in ckpt.fired):
                break
            i = bisect.bisect_left(horizons, ckpt.horizon_seq)
            if i < len(horizons) and horizons[i] == ckpt.horizon_seq:
                continue
            horizons.insert(i, ckpt.horizon_seq)
            base_ckpts.insert(i, ckpt)

    def _child_checkpoints(
        self, schedule: Schedule, run: RunResult,
        base_ckpts: List[RunCheckpoint],
        own: List[RunCheckpoint],
    ) -> List[RunCheckpoint]:
        """Checkpoints valid for extensions of ``run``: the base's prefix
        checkpoints up to the point where ``run`` diverged (its new
        preemption's fire seq) plus the checkpoints ``run`` captured
        itself, deduplicated by horizon."""
        if not self.engine.snapshots_active:
            return []
        new_preemption = schedule.preemptions[-1]
        fire_seq = None
        for p, seq in zip(run.fired_preemptions, run.fired_seqs):
            if p == new_preemption:
                fire_seq = seq
                break
        if fire_seq is None:
            # The new preemption never fired: the run never diverged from
            # its base, so every base checkpoint stays valid.
            inherited = base_ckpts
        else:
            inherited = [c for c in base_ckpts if c.horizon_seq <= fire_seq]
        merged: Dict[int, RunCheckpoint] = {}
        for ckpt in itertools.chain(inherited, own):
            merged.setdefault(ckpt.horizon_seq, ckpt)
        return [merged[h] for h in sorted(merged)]

    # ------------------------------------------------------------------
    def _speculate_round(self, frontier) -> None:
        """Speculatively execute this round's frontier extensions as one
        parallel wave through the engine.

        Candidates are generated with the knowledge available at *round
        start* — staler than what the authoritative sequential pass will
        hold when it reaches later bases, and conflict knowledge only
        grows, so staler knowledge prunes **more**: the speculative set is
        always a subset of the authoritative one.  The sequential pass
        stays the single source of truth — the engine answers matching
        requests from its speculation memo by schedule key and runs
        anything the speculation missed inline, so results are
        bit-identical to a sequential search.  Candidate generation here
        works on *copies* of the dedup set and skips stats, leaving the
        authoritative pass to account for every candidate exactly as
        ``wave_jobs=1`` would.
        """
        if not self.engine.wave_ready():
            return
        budget = self.config.max_schedules - self.stats.schedules_executed
        if budget <= 0:
            return
        tried = set(self._tried_schedules)
        requests: List[RunRequest] = []
        for base, base_ckpts in frontier:
            horizons = [c.horizon_seq for c in base_ckpts]
            for schedule, div_seq in self._extensions(
                    base, tried=tried, count_stats=False):
                if len(requests) >= budget:
                    break
                i = bisect.bisect_left(horizons, div_seq)
                requests.append(RunRequest(
                    schedule=schedule,
                    resume_from=base_ckpts[i - 1] if i else None,
                    capture_checkpoints=True))
            if len(requests) >= budget:
                break
        self.engine.speculate(RunPlan(requests, phase="lifs.speculate"))

    def _execute(
        self, schedule: Schedule, round_index: int,
        resume_from: Optional[RunCheckpoint] = None,
    ) -> Tuple[Optional[RunResult], bool, List[RunCheckpoint]]:
        """Run one schedule through the engine.  Returns
        ``(run, is_equivalent, checkpoints)``; ``run`` is ``None`` when
        the schedule budget is exhausted."""
        if self.stats.schedules_executed >= self.config.max_schedules:
            return None, False, []
        outcome = self.engine.run(RunRequest(
            schedule=schedule, resume_from=resume_from,
            capture_checkpoints=True))
        run = outcome.run
        self.stats.schedules_executed += 1
        self.stats.total_steps += run.steps
        duplicate = self._account_run(schedule, run, round_index)
        return run, duplicate, list(outcome.checkpoints)

    def _account_run(self, schedule: Schedule, run: RunResult,
                     round_index: int) -> bool:
        """Search-level bookkeeping shared by inline and wave-merged runs;
        returns whether the run's signature repeats an earlier one."""
        if run.failed:
            self.stats.failing_runs += 1
        self.stats.per_round_executed[round_index] = (
            self.stats.per_round_executed.get(round_index, 0) + 1)
        self._knowledge.absorb(run)
        digest = run.signature_hash()
        key = run.signature() if self.config.full_signatures else digest
        duplicate = key in self._signatures
        if duplicate:
            self.stats.equivalent_runs += 1
            self.stats.per_round_equivalent[round_index] = (
                self.stats.per_round_equivalent.get(round_index, 0) + 1)
        else:
            self._signatures.add(key)
        if len(self._run_summaries) < self.config.keep_runs:
            self._run_summaries.append(RunSummary(
                schedule=schedule, failure=run.failure, steps=run.steps,
                interleavings=run.interleavings, signature_hash=digest))
            if self.config.keep_full_runs:
                self._kept_runs.append(run)
        return duplicate

    def _replay(self, schedule: Schedule) -> RunResult:
        """Deterministically rematerialize a retained run (fresh boot, no
        tracer — accounting already happened during the search)."""
        return ScheduleController(self.machine_factory(), schedule).run()

    def _extensions(self, base: RunResult,
                    tried: Optional[Set[Tuple]] = None,
                    count_stats: bool = True):
        """Candidate ``(schedule, divergence_seq)`` pairs extending ``base``
        with one more preemption, front-to-back after the base's last fired
        preemption.

        ``divergence_seq`` is the new preemption's trace-entry seq: base and
        extension behave identically up to (but excluding) that entry, so
        the caller may resume the extension from any checkpoint whose
        horizon is strictly before it.

        The speculative wave pass (:meth:`_speculate_round`) previews the
        same generator with ``tried`` set to a *copy* of the dedup set and
        ``count_stats=False``, so the authoritative sequential pass later
        observes untouched dedup state and accounts for every candidate
        itself.
        """
        seen = self._tried_schedules if tried is None else tried
        # Front-to-back: new preemptions only after the point where the
        # base run's last preemption *fired* (parked its thread).
        last_seq = max(base.fired_seqs) if base.fired_seqs else 0

        accesses_by_seq = {a.seq: a for a in base.accesses}
        thread_kinds = base.thread_kinds
        spawn_seq = {e.child: e.seq for e in base.spawn_events}
        threads = base.thread_names
        remaining_after: Dict[str, int] = {}
        for entry in base.trace:
            remaining_after[entry.thread] = entry.seq

        for entry in base.trace:
            if entry.seq <= last_seq:
                continue
            access = accesses_by_seq.get(entry.seq)
            if access is None:
                continue  # not a memory-accessing instruction
            if thread_kinds.get(entry.thread) == "irq":
                continue  # hardware IRQ handlers are not preemptible
            for target in threads:
                if target == entry.thread:
                    continue
                if spawn_seq.get(target, 0) > entry.seq:
                    continue  # not spawned yet at this point
                if remaining_after.get(target, 0) <= entry.seq:
                    continue  # target had no remaining work here
                if self.config.conflict_pruning and \
                        not self._knowledge.conflicts(
                            access.data_addr, access.is_write, target):
                    if count_stats:
                        self.stats.candidates_pruned += 1
                        depth = len(base.schedule.preemptions) + 1
                        self.stats.per_round_pruned[depth] = (
                            self.stats.per_round_pruned.get(depth, 0) + 1)
                    continue
                preemption = Preemption(
                    thread=entry.thread, instr_addr=entry.instr_addr,
                    occurrence=entry.occurrence, switch_to=target,
                    instr_label=entry.instr_label)
                schedule = Schedule(
                    start_order=base.schedule.start_order,
                    preemptions=list(base.schedule.preemptions) + [preemption],
                    note=f"lifs depth {len(base.schedule.preemptions) + 1}")
                key = schedule.key()
                if key in seen:
                    continue
                seen.add(key)
                yield schedule, entry.seq

    # ------------------------------------------------------------------
    def _success(self, run: RunResult) -> LifsResult:
        races = find_data_races(run.accesses)
        return LifsResult(
            reproduced=True, failure_run=run, races=races, stats=self.stats,
            interleaving_count=run.interleavings,
            run_summaries=list(self._run_summaries),
            _replayer=self._replay,
            _materialized=(list(self._kept_runs)
                           if self.config.keep_full_runs else None))

    def _give_up(self) -> LifsResult:
        return LifsResult(
            reproduced=False, failure_run=None, races=RaceSet(),
            stats=self.stats,
            run_summaries=list(self._run_summaries),
            _replayer=self._replay,
            _materialized=(list(self._kept_runs)
                           if self.config.keep_full_runs else None))
