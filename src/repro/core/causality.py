"""Causality Analysis (paper section 3.4).

Given the failure-causing instruction sequence produced by LIFS and the
data races detected in it, Causality Analysis determines which races
actually contribute to the failure and how they chain together:

1. **Identification** — every race (popped backward from the failure) is
   *flipped*: a new instruction order is derived from the failure sequence
   with only that race's direction reversed, expressed as an order-
   constraint schedule, and executed.  If the kernel no longer produces the
   reported failure, the race is a root cause; if it still fails, the race
   is benign and is excluded — this is what keeps causality chains concise.
2. **Chain building** — for each root-cause race, the flip run is inspected
   for other root-cause races that *disappeared* (their instructions never
   executed): flipping r1 making r2 disappear means r1 steers the control
   flow that reaches r2, giving the edge ``r1 -> r2``.

Two practical complications from the paper are handled:

* **Liveness** — races whose accesses sit inside lock-protected critical
  sections are grouped into a single :class:`RaceUnit` per section pair and
  flipped as a unit, with enforcement anchored at the section's ``LOCK``
  instruction so no thread is ever parked while holding a lock another
  thread needs.
* **Ambiguity** — a race that *surrounds* a nested race cannot be flipped
  alone (the required order is cyclic).  The nested race is flipped first,
  then the surrounding one together with it; if both flips independently
  avert the failure, the surrounding race is reported as *ambiguous*
  (Figure 7).
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.chain import CausalityChain, build_chain
from repro.core.lifs import FailureMatcher, LifsResult
from repro.core.races import DataRace, EndpointKey
from repro.core.schedule import OrderConstraint, Schedule
from repro.hypervisor.controller import RunResult
from repro.kernel.instructions import Op
from repro.kernel.machine import KernelMachine
from repro.observe.tracer import as_tracer

from repro.engine import (CA_COUNTER_NAMES, EnginePolicy, RunPlan,
                          RunRequest, ScheduleExecutionEngine)
from repro.policy import CandidateMeta, PolicyContext, unit_features


@dataclass(frozen=True)
class _Event:
    """One racing-instruction execution in the failure run."""

    key: EndpointKey  # (thread, instr_addr, occurrence)
    seq: int
    label: str

    @property
    def thread(self) -> str:
        return self.key[0]


@dataclass
class RaceUnit:
    """The unit Causality Analysis flips: one data race, or every race
    between the same pair of critical-section instances."""

    uid: int
    races: Tuple[DataRace, ...]
    first_seq: int
    last_seq: int
    is_critical_section: bool = False

    @property
    def endpoint_keys(self) -> List[EndpointKey]:
        keys: List[EndpointKey] = []
        for race in self.races:
            keys.append(race.first_key)
            keys.append(race.second_key)
        return keys

    def __str__(self) -> str:
        body = " ∧ ".join(str(r) for r in self.races)
        return f"[{body}]" if self.is_critical_section else body


@dataclass
class UnitTest:
    """Log entry for one flip test (drives the Figure 6 benchmark)."""

    step: int
    unit: RaceUnit
    flipped_uids: FrozenSet[int]
    constraints: int
    failed: bool
    disappeared_uids: FrozenSet[int]
    note: str = ""


@dataclass
class CaStats:
    schedules_executed: int = 0
    reboots: int = 0
    total_steps: int = 0
    elapsed_seconds: float = 0.0
    #: Flip runs resumed from the boot checkpoint / booted fresh; their
    #: sum always equals ``schedules_executed``.
    snapshot_hits: int = 0
    snapshot_misses: int = 0
    #: Boot-setup and spliced-suffix steps resumed flips did *not*
    #: re-interpret.
    saved_steps: int = 0
    #: Steps the interpreter really executed (runs, plus setup on fresh
    #: boots); ``total_steps`` keeps whole-run semantics either way.
    interpreted_steps: int = 0
    #: Flips whose suffix was grafted from an earlier flip after state
    #: convergence, and the steps those grafts covered.
    snapshot_splices: int = 0
    snapshot_spliced_steps: int = 0


@dataclass
class CausalityResult:
    """Everything Causality Analysis produced for one failure."""

    chain: CausalityChain
    root_cause_units: List[RaceUnit]
    benign_units: List[RaceUnit]
    ambiguous_uids: Set[int]
    unflippable_units: List[RaceUnit]
    edges: Dict[int, Set[int]]
    tests: List[UnitTest]
    stats: CaStats

    @property
    def total_races_tested(self) -> int:
        return sum(len(u.races)
                   for u in self.root_cause_units + self.benign_units)

    @property
    def benign_race_count(self) -> int:
        return sum(len(u.races) for u in self.benign_units)


@dataclass
class CaConfig:
    """Behaviour switches."""

    #: Re-execute root-cause flips during chain building (the paper runs
    #: the two phases separately; disabling reuses cached identification
    #: runs).
    recheck_edges: bool = True
    #: Upper bound on flip runs, as a safety net for huge race sets.
    max_tests: int = 5_000
    #: Ablation switch: disable grouping critical-section races into one
    #: flip unit (the liveness treatment of section 3.4).
    collapse_critical_sections: bool = True
    #: Refine the race set with the vector-clock happens-before analysis
    #: before testing: pairs ordered transitively (lock hand-offs, spawn
    #: edges) are provably unflippable, so testing them is wasted work.
    use_happens_before: bool = False
    #: Prefix-checkpoint engine: run every flip on one vehicle machine
    #: restored from a boot checkpoint instead of rebooting per flip, and
    #: splice memoized suffixes once a flip's reordered window resolves
    #: and its state converges back onto an earlier flip's trajectory.
    #: Results are bit-identical with the engine on or off (the
    #: ``--no-snapshot`` ablation); only ``ca.snapshot_*`` accounting
    #: differs.
    use_snapshots: bool = True
    #: Cap on memoized flip continuations (suffix splicing).
    max_continuations: int = 65536
    #: Parallel wave width (``--parallel-waves``): with N > 1 each phase's
    #: independent flip tests are batched and executed across N child
    #: processes.  Flip constraints depend only on the failure run's
    #: static structure — never on other flips' results — so each phase
    #: can be planned upfront and its results processed in submission
    #: order, keeping the diagnosis bit-identical to ``wave_jobs=1``.
    wave_jobs: int = 1
    #: Which parallel dispatch backend serves waves (``--executor``):
    #: ``"fleet"`` (the persistent fork-server fleet, the default) or
    #: ``"inline"`` (never fork; waves run in-process).  Irrelevant at
    #: ``wave_jobs=1``.  Diagnoses are bit-identical either way.
    executor: str = "fleet"
    #: Which :mod:`repro.policy` search policy shapes the flip batches
    #: (``--policy``): ``"static"`` (submission order, no pruning, the
    #: default) or ``"adaptive"`` (experience-ranked ordering plus
    #: error-invariant pruning of identification flips).  Diagnoses are
    #: bit-identical under every policy; only cost accounting differs.
    policy: str = "static"


class CausalityAnalysis:
    """One Causality Analysis instance over one reproduced failure."""

    def __init__(
        self,
        machine_factory: Callable[[], KernelMachine],
        lifs_result: LifsResult,
        target: Optional[FailureMatcher] = None,
        config: Optional[CaConfig] = None,
        tracer=None,
        experience=None,
    ) -> None:
        if not lifs_result.reproduced or lifs_result.failure_run is None:
            raise ValueError("Causality Analysis needs a reproduced failure")
        self.tracer = as_tracer(tracer)
        self.machine_factory = machine_factory
        self.lifs_result = lifs_result
        self.failure_run = lifs_result.failure_run
        failure = self.failure_run.failure
        self.target = target or FailureMatcher(
            kind=failure.kind, location=failure.instr_label)
        self.config = config or CaConfig()
        # All execution placement (snapshot resume/splice, parallel waves,
        # coverage pinning) lives in the engine.  CA needs a booted image
        # up front anyway, so the engine primes eagerly: the boot machine
        # doubles as the snapshot vehicle, and a kcov-instrumented boot
        # pins every flip inline (resuming would skip the setup's coverage
        # callbacks; a child's callbacks would fire in the wrong process).
        self.engine = ScheduleExecutionEngine(
            machine_factory, EnginePolicy.for_ca(self.config),
            tracer=self.tracer, experience=experience)
        self.image = self.engine.prime().image
        self.stats = CaStats()
        self._start_order = self.failure_run.schedule.start_order

        self.races = lifs_result.races
        if self.config.use_happens_before:
            from repro.core.happens_before import find_data_races_hb
            self.races = find_data_races_hb(
                self.failure_run.accesses, self.failure_run.trace,
                self.image, self.failure_run.spawn_events)

        self._sections = self._compute_sections()
        self.units = self._build_units()
        self._events = self._collect_events()
        self._trace_by_seq = {e.seq: e for e in self.failure_run.trace}

    # ------------------------------------------------------------------
    # Critical sections
    # ------------------------------------------------------------------
    def _compute_sections(self) -> Dict[int, FrozenSet[Tuple[str, int]]]:
        """Map each trace seq to the critical-section instance holding it:
        a frozenset of (lock name, acquisition seq) pairs.

        A hardware IRQ handler is one implicit critical section anchored
        at its first instruction: the handler runs atomically on real
        hardware, so flips may reorder the whole injection but never park
        a thread mid-handler."""
        if not self.config.collapse_critical_sections:
            return {}
        held: Dict[str, Dict[str, int]] = {}
        irq_entry: Dict[str, int] = {}
        kinds = self.failure_run.thread_kinds
        sections: Dict[int, FrozenSet[Tuple[str, int]]] = {}
        for entry in self.failure_run.trace:
            instr = self.image.instruction_at(entry.instr_addr)
            thread_held = held.setdefault(entry.thread, {})
            if kinds.get(entry.thread) == "irq":
                first = irq_entry.setdefault(entry.thread, entry.seq)
                thread_held[f"<irq:{entry.thread}>"] = first
            if instr.op is Op.LOCK:
                thread_held[instr.operands[0]] = entry.seq
            elif instr.op is Op.UNLOCK:
                thread_held.pop(instr.operands[0], None)
            sections[entry.seq] = frozenset(thread_held.items())
        return sections

    def _section_of(self, seq: int) -> FrozenSet[Tuple[str, int]]:
        return self._sections.get(seq, frozenset())

    # ------------------------------------------------------------------
    # Units
    # ------------------------------------------------------------------
    def _build_units(self) -> List[RaceUnit]:
        groups: Dict[Tuple, List[DataRace]] = {}
        for race in self.races:
            first_section = self._section_of(race.first.seq)
            second_section = self._section_of(race.second.seq)
            if first_section or second_section:
                key = ("section", race.threads, first_section, second_section)
            else:
                key = ("single", race.key)
            groups.setdefault(key, []).append(race)

        units: List[RaceUnit] = []
        for key, races in groups.items():
            races.sort(key=lambda r: r.second.seq)
            seqs = [r.first.seq for r in races] + [r.second.seq for r in races]
            units.append(RaceUnit(
                uid=len(units), races=tuple(races),
                first_seq=min(seqs), last_seq=max(seqs),
                is_critical_section=(key[0] == "section" and len(races) > 1)))
        # Canonical total order: ``last_seq`` as before, but ties broken
        # by content (first_seq, then the sorted endpoint-key tuples)
        # instead of the incidental grouping-dict insertion order — so
        # unit uids, and everything keyed on them, are stable however
        # the race set was iterated.
        units.sort(key=lambda u: (
            u.last_seq, u.first_seq,
            tuple(sorted((r.first_key, r.second_key) for r in u.races))))
        for i, unit in enumerate(units):
            unit.uid = i
        return units

    def _collect_events(self) -> Dict[EndpointKey, _Event]:
        events: Dict[EndpointKey, _Event] = {}
        for unit in self.units:
            for race in unit.races:
                for access in (race.first, race.second):
                    key = (access.thread, access.instr_addr, access.occurrence)
                    if key not in events:
                        events[key] = _Event(key=key, seq=access.seq,
                                             label=access.instr_label)
        return events

    # ------------------------------------------------------------------
    # Flip schedules
    # ------------------------------------------------------------------
    def _flip_constraints(
        self, flipped_uids: Set[int],
    ) -> Optional[List[OrderConstraint]]:
        """The diagnosis schedule flipping exactly the given units while
        preserving every other race's order, or ``None`` when that order is
        cyclic (a surrounded race, Figure 7)."""
        events = self._events
        edges: Dict[EndpointKey, Set[EndpointKey]] = {
            key: set() for key in events}

        # Program order between racing events of the same thread.
        by_thread: Dict[str, List[_Event]] = {}
        for event in events.values():
            by_thread.setdefault(event.thread, []).append(event)
        for thread_events in by_thread.values():
            thread_events.sort(key=lambda e: e.seq)
            for prev, cur in zip(thread_events, thread_events[1:]):
                edges[prev.key].add(cur.key)

        # Spawn causality: a background thread's events can only happen
        # after the instruction that invoked it, which is program-ordered
        # in the parent.  Without these edges a flip could schedule a
        # kworker's access before the queue_work that creates it.
        for spawn in self.failure_run.spawn_events:
            child_events = by_thread.get(spawn.child)
            if not child_events:
                continue
            parent_before = [e for e in by_thread.get(spawn.parent, [])
                             if e.seq <= spawn.seq]
            if parent_before:
                edges[parent_before[-1].key].add(child_events[0].key)

        # Race orders: original direction, except flipped units.
        for unit in self.units:
            flip = unit.uid in flipped_uids
            for race in unit.races:
                if flip:
                    edges[race.second_key].add(race.first_key)
                else:
                    edges[race.first_key].add(race.second_key)

        order = self._topo_sort(events, edges)
        if order is None:
            return None
        return self._anchor_constraints(order)

    def _topo_sort(
        self,
        events: Dict[EndpointKey, _Event],
        edges: Dict[EndpointKey, Set[EndpointKey]],
    ) -> Optional[List[_Event]]:
        in_degree = {key: 0 for key in events}
        for sources in edges.values():
            for dst in sources:
                in_degree[dst] += 1
        heap = [(events[k].seq, k) for k, d in in_degree.items() if d == 0]
        heapq.heapify(heap)
        order: List[_Event] = []
        while heap:
            _, key = heapq.heappop(heap)
            order.append(events[key])
            for dst in edges[key]:
                in_degree[dst] -= 1
                if in_degree[dst] == 0:
                    heapq.heappush(heap, (events[dst].seq, dst))
        if len(order) != len(events):
            return None  # cycle
        return order

    def _anchor_constraints(
        self, order: Sequence[_Event],
    ) -> List[OrderConstraint]:
        """Turn an event order into order constraints, anchoring events
        inside critical sections at the section's LOCK instruction so the
        enforcement never parks a lock holder mid-section."""
        constraints: List[OrderConstraint] = []
        seen: Set[Tuple[str, int, int]] = set()
        for event in order:
            section = self._section_of(event.seq)
            key = event.key
            label = event.label
            if section:
                lock_seq = min(acq for _, acq in section)
                entry = self._trace_by_seq.get(lock_seq)
                if entry is not None:
                    key = (entry.thread, entry.instr_addr, entry.occurrence)
                    label = entry.instr_label
            if key in seen:
                continue
            seen.add(key)
            constraints.append(OrderConstraint(
                thread=key[0], instr_addr=key[1], occurrence=key[2],
                instr_label=label))
        return constraints

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute_flips(
        self, requests: List[Tuple[List[OrderConstraint], str, str]],
        phase: str = "ca.flips",
        units: Optional[List[RaceUnit]] = None,
    ) -> List[Optional[RunResult]]:
        """Execute a batch of independent flip tests through the engine;
        results come back in submission order.

        ``requests`` is ``[(constraints, note, stage), ...]``; ``units``
        (parallel to it) names the race unit each flip tests, which is
        what the search policy orders and prunes on.  The batch is
        shaped by the engine's policy first — the static default keeps
        the submission order and prunes nothing — then executed as one
        :class:`RunPlan`: sequentially (snapshot-resumed on the vehicle,
        or fresh boots when the policy says so) or fanned out as one
        parallel wave.  Flip constraints depend only on the failure
        run's static structure, never on other flips' results, so any
        placement *and any execution order* yields the same runs;
        outcomes are mapped back to submission positions through each
        request's candidate meta.  A pruned candidate comes back as
        ``None`` — the caller classifies it without a run.  CA replays
        each executed outcome's ``ca.flip`` span and its own stats at
        merge time; suffix splicing happens only in sequential placement
        (wave children execute independently), which changes accounting,
        never bits.
        """
        flip_units: List[Optional[RaceUnit]] = (
            list(units) if units is not None else [None] * len(requests))
        run_requests: List[RunRequest] = []
        for index, ((constraints, note, _), unit) in enumerate(
                zip(requests, flip_units)):
            meta = None
            if unit is not None:
                # Canonical key: the backward-from-the-failure order the
                # identification phase plans in (descending last_seq,
                # unit uid as the content-stable tiebreak).
                meta = CandidateMeta(
                    index=index, kind="ca.flip", uid=unit.uid,
                    sort_key=(-unit.last_seq, unit.uid),
                    features=unit_features(unit))
            run_requests.append(RunRequest(
                schedule=Schedule(start_order=self._start_order,
                                  constraints=constraints, note=note),
                watch_races=False, meta=meta))
        context = PolicyContext(
            phase=phase, failure_run=self.failure_run, image=self.image,
            units={u.uid: u for u in self.units})
        shaped, _pruned = self.engine.shape_plan(
            RunPlan(run_requests, phase=phase), context)
        runs: List[Optional[RunResult]] = [None] * len(requests)
        for position, (request, outcome) in enumerate(
                zip(shaped.requests, self.engine.run_plan(shaped))):
            index = (request.meta.index if request.meta is not None
                     else position)
            constraints, note, stage = requests[index]
            run = outcome.run
            with self.tracer.span("ca.flip", stage=stage, note=note,
                                  constraints=len(constraints)) as span:
                span.set(failed=run.failed, steps=run.steps)
            self.stats.schedules_executed += 1
            self.stats.total_steps += run.steps
            if run.failed:
                # A failing diagnosis run requires a VM reboot (the
                # dominant cost of the diagnosing stage per section 5.1).
                self.stats.reboots += 1
            runs[index] = run
        return runs

    @staticmethod
    def _executed_set(run: RunResult) -> Set[EndpointKey]:
        return {(e.thread, e.instr_addr, e.occurrence) for e in run.trace}

    @staticmethod
    def _unit_occurred(unit: RaceUnit, executed: Set[EndpointKey]) -> bool:
        return all(key in executed for key in unit.endpoint_keys)

    # ------------------------------------------------------------------
    # Main analysis
    # ------------------------------------------------------------------
    def analyze(self) -> CausalityResult:
        with self.tracer.span("ca", stage="ca",
                              units=len(self.units)) as span:
            started = time.perf_counter()
            result = self._analyze()
            self._absorb_engine_stats()
            self.stats.elapsed_seconds = time.perf_counter() - started
            result.stats = self.stats
            self._trace_outcome(span, result)
            # Retire the engine's resident fleet workers (if any) —
            # each analysis owns its engine, and batch callers must not
            # accumulate forked workers across diagnoses.
            self.engine.close()
        return result

    def _absorb_engine_stats(self) -> None:
        """Copy the engine's placement accounting into :class:`CaStats`
        so results keep their historical shape."""
        engine_stats = self.engine.stats
        self.stats.snapshot_hits = engine_stats.snapshot_hits
        self.stats.snapshot_misses = engine_stats.snapshot_misses
        self.stats.saved_steps = engine_stats.saved_steps
        self.stats.interpreted_steps = engine_stats.interpreted_steps
        self.stats.snapshot_splices = engine_stats.splices
        self.stats.snapshot_spliced_steps = engine_stats.spliced_steps

    def _trace_outcome(self, span, result: CausalityResult) -> None:
        """Publish the analysis accounting as counters + span attrs."""
        if not self.tracer.enabled:
            return
        self.tracer.count("ca.schedules", self.stats.schedules_executed)
        self.tracer.count("ca.flips", len(result.tests))
        self.tracer.count("ca.reboots", self.stats.reboots)
        self.tracer.count("ca.root_cause_units",
                          len(result.root_cause_units))
        self.tracer.count("ca.benign_units", len(result.benign_units))
        self.tracer.count("ca.benign_races", result.benign_race_count)
        self.tracer.count("ca.ambiguous_units", len(result.ambiguous_uids))
        self.engine.emit_counters(CA_COUNTER_NAMES)
        span.set(schedules=self.stats.schedules_executed,
                 flips=len(result.tests),
                 reboots=self.stats.reboots,
                 root_cause_units=len(result.root_cause_units),
                 benign_units=len(result.benign_units))

    def _analyze(self) -> CausalityResult:
        root: List[RaceUnit] = []
        benign: List[RaceUnit] = []
        unflippable: List[RaceUnit] = []
        ambiguous: Set[int] = set()
        tests: List[UnitTest] = []
        runs: Dict[int, Tuple[RunResult, FrozenSet[int]]] = {}
        deferred: List[RaceUnit] = []
        root_uids: Set[int] = set()

        # Flip constraints derive from the failure run's static structure,
        # never from other flips' results, so each phase is *planned* in
        # full (fixing step numbers, deferrals and flip sets exactly as the
        # flip-at-a-time loop would), *executed* as one batch of
        # independent tests — a wave, when a parallel executor is
        # configured — and *processed* in submission order.

        # Identification, backward from the failure.
        pending = deque(sorted(self.units, key=lambda u: u.last_seq,
                               reverse=True))
        step = 0
        plan: List[Tuple[int, RaceUnit, List[OrderConstraint]]] = []
        while pending and step < self.config.max_tests:
            unit = pending.popleft()
            constraints = self._flip_constraints({unit.uid})
            if constraints is None:
                deferred.append(unit)
                continue
            step += 1
            plan.append((step, unit, constraints))
        flip_runs = self._execute_flips(
            [(c, f"flip {u}", "ca") for _, u, c in plan],
            phase="ca.identify", units=[u for _, u, _ in plan])
        for (test_step, unit, constraints), run in zip(plan, flip_runs):
            if run is None:
                # Invariant-pruned: the unit's racing locations have no
                # data/control path to the failure, so its flip provably
                # still fails — benign without executing.
                tests.append(UnitTest(
                    step=test_step, unit=unit,
                    flipped_uids=frozenset({unit.uid}),
                    constraints=len(constraints), failed=True,
                    disappeared_uids=frozenset(), note="invariant-pruned"))
                benign.append(unit)
                continue
            runs[unit.uid] = (run, frozenset({unit.uid}))
            failed = self.target.matches(run.failure)
            executed = self._executed_set(run)
            disappeared = frozenset(
                v.uid for v in self.units
                if v.uid != unit.uid and not self._unit_occurred(v, executed))
            tests.append(UnitTest(step=test_step, unit=unit,
                                  flipped_uids=frozenset({unit.uid}),
                                  constraints=len(constraints), failed=failed,
                                  disappeared_uids=disappeared))
            if failed:
                benign.append(unit)
            else:
                root.append(unit)
                root_uids.add(unit.uid)

        # Surrounded races: flip nested units first, then the surrounding
        # one together with them.  (``_pick_nested`` is static, so the
        # flip sets are plannable too.)
        nested_plan: List[Tuple[int, RaceUnit, FrozenSet[int],
                                List[OrderConstraint]]] = []
        for unit in deferred:
            flipped = {unit.uid}
            constraints = self._flip_constraints(flipped)
            while constraints is None:
                nested = self._pick_nested(unit, flipped)
                if nested is None:
                    break
                flipped.add(nested.uid)
                constraints = self._flip_constraints(flipped)
            if constraints is None:
                unflippable.append(unit)
                continue
            step += 1
            nested_plan.append((step, unit, frozenset(flipped), constraints))
        nested_runs = self._execute_flips(
            [(c, f"flip {u} (+nested)", "ca")
             for _, u, _, c in nested_plan],
            phase="ca.nested", units=[u for _, u, _, _ in nested_plan])
        for (test_step, unit, flipped, constraints), run in zip(nested_plan,
                                                                nested_runs):
            if run is None:  # pragma: no cover — nested flips never prune
                unflippable.append(unit)
                continue
            runs[unit.uid] = (run, flipped)
            failed = self.target.matches(run.failure)
            executed = self._executed_set(run)
            disappeared = frozenset(
                v.uid for v in self.units
                if v.uid not in flipped
                and not self._unit_occurred(v, executed))
            tests.append(UnitTest(step=test_step, unit=unit,
                                  flipped_uids=flipped,
                                  constraints=len(constraints), failed=failed,
                                  disappeared_uids=disappeared,
                                  note="nested-first"))
            if failed:
                benign.append(unit)
                continue
            root.append(unit)
            root_uids.add(unit.uid)
            # Ambiguity: the nested flip alone also averted the failure, so
            # the surrounding race's own contribution cannot be isolated.
            if any(uid in root_uids for uid in flipped if uid != unit.uid):
                ambiguous.add(unit.uid)

        # Chain building: which root-cause units disappear under which
        # root-cause flips.
        edges: Dict[int, Set[int]] = {}
        with self.tracer.span("chain", stage="chain",
                              root_cause_units=len(root)) as chain_span:
            recheck_plan: List[Tuple[RaceUnit, FrozenSet[int],
                                     List[OrderConstraint]]] = []
            if self.config.recheck_edges:
                for unit in root:
                    if unit.uid in ambiguous:
                        continue
                    _, flipped = runs[unit.uid]
                    constraints = self._flip_constraints(set(flipped))
                    if constraints is not None:
                        recheck_plan.append((unit, flipped, constraints))
            recheck_runs = self._execute_flips(
                [(c, f"chain {u}", "chain") for u, _, c in recheck_plan],
                phase="ca.recheck", units=[u for u, _, _ in recheck_plan])
            for (unit, flipped, _), run in zip(recheck_plan, recheck_runs):
                if run is None:  # pragma: no cover — rechecks never prune
                    continue
                runs[unit.uid] = (run, flipped)
            for unit in root:
                run, flipped = runs[unit.uid]
                executed = self._executed_set(run)
                for other in root:
                    if other.uid == unit.uid or other.uid in flipped:
                        continue
                    if not self._unit_occurred(other, executed):
                        edges.setdefault(unit.uid, set()).add(other.uid)

            chain = build_chain(root, edges, self.failure_run.failure,
                                ambiguous_unit_ids=ambiguous)
            chain_span.set(
                edges=sum(len(dsts) for dsts in edges.values()),
                races_in_chain=chain.race_count,
                ambiguous=chain.has_ambiguity)
        return CausalityResult(
            chain=chain, root_cause_units=root, benign_units=benign,
            ambiguous_uids=ambiguous, unflippable_units=unflippable,
            edges=edges, tests=tests, stats=self.stats)

    def _pick_nested(self, unit: RaceUnit,
                     flipped: Set[int]) -> Optional[RaceUnit]:
        """The innermost not-yet-flipped unit nested inside ``unit``'s
        span."""
        candidates = [
            v for v in self.units
            if v.uid not in flipped
            and unit.first_seq <= v.first_seq
            and v.last_seq <= unit.last_seq
            and (unit.first_seq < v.first_seq
                 or v.last_seq < unit.last_seq)
        ]
        if not candidates:
            return None
        # Canonical total-order key: innermost by first_seq as before,
        # ties broken by smallest last_seq (the tighter span) and then
        # smallest uid — previously ties fell back to list order, i.e.
        # the incidental unit enumeration.
        return max(candidates,
                   key=lambda v: (v.first_seq, -v.last_seq, -v.uid))
