"""The AITIA orchestrator (paper section 4.1).

:class:`Aitia` ties the full pipeline together:

1. **Input** — a bug finder's report: execution history + crash report
   (:mod:`repro.trace.syzkaller`);
2. **Modeling** — the history is sliced into groups of up to three
   concurrent threads, backward from the failure
   (:mod:`repro.trace.slicer`);
3. **Reproducing** — LIFS runs on each slice in order until one reproduces
   the reported failure (:mod:`repro.core.lifs`);
4. **Diagnosing** — Causality Analysis flips every detected race and
   builds the causality chain (:mod:`repro.core.causality`);
5. **Output** — a :class:`Diagnosis` with the chain and the evaluation
   accounting (schedules, interleavings, simulated stage times).

The workload object must expose ``bug_id``, ``machine_factory()`` (the
canonical concurrent threads, used when no report is given) and, for the
report-driven path, ``factory_for_slice(slice)`` plus
``slice_thread_names(slice)``; the corpus's
:class:`~repro.corpus.spec.BugModel` implements all of these.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.analysis.metrics import CostModel, StageCost
from repro.core.causality import CaConfig, CausalityAnalysis, CausalityResult
from repro.core.chain import CausalityChain
from repro.core.lifs import (
    FailureMatcher,
    LeastInterleavingFirstSearch,
    LifsConfig,
    LifsResult,
)
from repro.hypervisor.manager import DEFAULT_VM_COUNT
from repro.observe.tracer import as_tracer
from repro.policy import ExperienceIndex


@dataclass
class Diagnosis:
    """The complete output for one bug."""

    bug_id: str
    reproduced: bool
    chain: Optional[CausalityChain]
    lifs_result: Optional[LifsResult]
    ca_result: Optional[CausalityResult]
    slice_used: Optional[object] = None
    slices_tried: int = 0
    #: LIFS schedules spent on slices that failed to reproduce (the
    #: reproducers the manager runs in parallel before one wins).
    rejected_slice_schedules: int = 0
    lifs_cost: Optional[StageCost] = None
    ca_cost: Optional[StageCost] = None
    vm_count: int = DEFAULT_VM_COUNT

    @property
    def interleaving_count(self) -> int:
        return self.lifs_result.interleaving_count if self.lifs_result else 0

    @property
    def lifs_schedules(self) -> int:
        return (self.lifs_result.stats.schedules_executed
                if self.lifs_result else 0)

    @property
    def total_lifs_schedules(self) -> int:
        """Schedules across every slice tried, not just the winner."""
        return self.lifs_schedules + self.rejected_slice_schedules

    @property
    def ca_schedules(self) -> int:
        return (self.ca_result.stats.schedules_executed
                if self.ca_result else 0)

    def render(self) -> str:
        lines = [f"=== AITIA diagnosis: {self.bug_id} ==="]
        if not self.reproduced:
            lines.append("failure NOT reproduced")
            return "\n".join(lines)
        failure = self.lifs_result.failure_run.failure
        lines.append(f"failure: {failure}")
        if self.slice_used is not None:
            lines.append(f"slice:   {self.slice_used.describe()}")
        lines.append(
            f"LIFS:    {self.lifs_schedules} schedules, "
            f"{self.interleaving_count} interleaving(s)"
            + (f", {self.lifs_cost.seconds:.1f}s simulated"
               if self.lifs_cost else ""))
        lines.append(
            f"CA:      {self.ca_schedules} schedules, "
            f"{len(self.ca_result.root_cause_units)} root-cause unit(s), "
            f"{self.ca_result.benign_race_count} benign race(s) excluded"
            + (f", {self.ca_cost.seconds:.1f}s simulated"
               if self.ca_cost else ""))
        lines.append(f"chain:   {self.chain.render()}")
        if self.chain.has_ambiguity:
            lines.append("note:    chain contains an ambiguous race (§3.4)")
        return "\n".join(lines)


class Aitia:
    """Root-cause diagnosis for one reported kernel concurrency failure."""

    def __init__(
        self,
        workload,
        report=None,
        lifs_config: Optional[LifsConfig] = None,
        ca_config: Optional[CaConfig] = None,
        cost_model: Optional[CostModel] = None,
        vm_count: int = DEFAULT_VM_COUNT,
        tracer=None,
        experience: Optional[ExperienceIndex] = None,
    ) -> None:
        self.workload = workload
        self.report = report
        self.lifs_config = lifs_config
        self.ca_config = ca_config
        self.cost_model = cost_model or CostModel()
        self.vm_count = vm_count
        self.tracer = as_tracer(tracer)
        #: Cross-diagnosis experience index driving the adaptive search
        #: policy.  ``None`` means no priors and no learning; when given,
        #: the same index object serves both stages and absorbs this
        #: diagnosis's outcome at completion, so a sequence of diagnoses
        #: sharing one index warms it as it goes.
        self.experience = experience

    # ------------------------------------------------------------------
    def diagnose(self) -> Diagnosis:
        """Run the full pipeline and return the diagnosis."""
        with self.tracer.span("diagnose", stage="diagnose",
                              bug=self.workload.bug_id) as span:
            if self.report is not None:
                diagnosis = self._diagnose_from_report()
            else:
                diagnosis = self._diagnose_direct()
            span.set(reproduced=diagnosis.reproduced,
                     slices_tried=diagnosis.slices_tried,
                     lifs_schedules=diagnosis.total_lifs_schedules,
                     ca_schedules=diagnosis.ca_schedules)
        if self.experience is not None and diagnosis.reproduced:
            self.experience.absorb_record(ExperienceIndex.record_of(
                self.workload.bug_id, diagnosis))
        return diagnosis

    # ------------------------------------------------------------------
    def _matcher(self) -> FailureMatcher:
        if self.report is not None:
            crash = self.report.crash
            return FailureMatcher(kind=crash.symptom, location=crash.location)
        return FailureMatcher.any_failure()

    def _diagnose_direct(self) -> Diagnosis:
        """Diagnose without trace modeling: use the workload's canonical
        concurrent threads (the CVE-style evaluation of section 5.1, where
        the failing syscall pair is known)."""
        with self.tracer.span("slice", stage="slice", mode="direct") as span:
            factory = self.workload.machine_factory
            names = [t.name for t in factory().threads]
            span.set(slices=1, threads=len(names))
        lifs = LeastInterleavingFirstSearch(
            factory, names, target=self._matcher(), config=self.lifs_config,
            tracer=self.tracer, experience=self.experience)
        lifs_result = lifs.search()
        if not lifs_result.reproduced:
            return Diagnosis(bug_id=self.workload.bug_id, reproduced=False,
                             chain=None, lifs_result=lifs_result,
                             ca_result=None, vm_count=self.vm_count)
        return self._run_ca(factory, lifs_result, slice_used=None,
                            slices_tried=0)

    def _diagnose_from_report(self) -> Diagnosis:
        """The full pipeline: model the history, slice it, reproduce with
        LIFS slice by slice, then diagnose."""
        from repro.trace.slicer import Slicer  # local to avoid a cycle

        with self.tracer.span("slice", stage="slice", mode="report") as span:
            slicer = Slicer(self.report.history)
            slices = slicer.slices()
            span.set(slices=len(slices), history=len(self.report.history))
        matcher = self._matcher()
        tried = 0
        rejected_schedules = 0
        last_result: Optional[LifsResult] = None
        for candidate in slices:
            tried += 1
            factory = self.workload.factory_for_slice(candidate)
            names = self.workload.slice_thread_names(candidate)
            lifs = LeastInterleavingFirstSearch(
                factory, names, target=matcher, config=self.lifs_config,
                tracer=self.tracer, experience=self.experience)
            lifs_result = lifs.search()
            last_result = lifs_result
            if lifs_result.reproduced:
                diagnosis = self._run_ca(factory, lifs_result,
                                         slice_used=candidate,
                                         slices_tried=tried)
                diagnosis.rejected_slice_schedules = rejected_schedules
                return diagnosis
            rejected_schedules += lifs_result.stats.schedules_executed
        return Diagnosis(bug_id=self.workload.bug_id, reproduced=False,
                         chain=None, lifs_result=last_result, ca_result=None,
                         slices_tried=tried, vm_count=self.vm_count,
                         rejected_slice_schedules=rejected_schedules)

    def _run_ca(self, factory: Callable, lifs_result: LifsResult,
                slice_used, slices_tried: int) -> Diagnosis:
        ca = CausalityAnalysis(factory, lifs_result, target=self._matcher()
                               if self.report else None,
                               config=self.ca_config, tracer=self.tracer,
                               experience=self.experience)
        ca_result = ca.analyze()
        lifs_cost = self.cost_model.stage_cost(
            schedules=lifs_result.stats.schedules_executed,
            total_steps=lifs_result.stats.total_steps,
            crashes=lifs_result.stats.failing_runs)
        ca_cost = self.cost_model.stage_cost(
            schedules=ca_result.stats.schedules_executed,
            total_steps=ca_result.stats.total_steps,
            crashes=ca_result.stats.reboots)
        return Diagnosis(
            bug_id=self.workload.bug_id, reproduced=True,
            chain=ca_result.chain, lifs_result=lifs_result,
            ca_result=ca_result, slice_used=slice_used,
            slices_tried=slices_tried, lifs_cost=lifs_cost, ca_cost=ca_cost,
            vm_count=self.vm_count)
