"""Schedule minimization: shrink a failing reproducer.

LIFS already searches fewest-interleavings-first, so its output is
usually minimal — but schedules arriving from elsewhere (a fuzzer's
lucky interleaving, a hand-written reproducer, a diagnosis schedule) may
carry preemptions and constraints that do not matter.  A minimal
reproducer is what a developer wants attached to a bug report.

The algorithm is one-minimal delta debugging (ddmin's final phase):
repeatedly drop one schedule element and keep the reduction whenever the
reported failure still manifests, until no single element can be
removed.  Every candidate is verified by execution, so the result is
guaranteed to reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.lifs import FailureMatcher
from repro.core.schedule import Schedule
from repro.hypervisor.controller import RunResult, ScheduleController
from repro.kernel.machine import KernelMachine


@dataclass
class MinimizationResult:
    """Outcome of one minimization."""

    schedule: Schedule
    run: RunResult
    removed_preemptions: int
    removed_constraints: int
    schedules_executed: int

    @property
    def was_reduced(self) -> bool:
        return self.removed_preemptions + self.removed_constraints > 0


def _attempt(machine_factory: Callable[[], KernelMachine],
             schedule: Schedule,
             matcher: FailureMatcher) -> Optional[RunResult]:
    run = ScheduleController(machine_factory(), schedule).run()
    return run if matcher.matches(run.failure) else None


def minimize_schedule(
    machine_factory: Callable[[], KernelMachine],
    schedule: Schedule,
    matcher: Optional[FailureMatcher] = None,
) -> MinimizationResult:
    """Return a one-minimal schedule that still reproduces the failure.

    ``matcher`` defaults to "the failure the input schedule produces";
    passing an explicit matcher pins the symptom (recommended when
    minimizing fuzzer-found schedules that can crash in several ways).
    """
    executed = 0
    if matcher is None:
        baseline = ScheduleController(machine_factory(), schedule).run()
        executed += 1
        if baseline.failure is None:
            raise ValueError(
                "the input schedule does not fail; nothing to minimize")
        matcher = FailureMatcher(kind=baseline.failure.kind,
                                 location=baseline.failure.instr_label)

    current = schedule
    current_run = _attempt(machine_factory, current, matcher)
    executed += 1
    if current_run is None:
        raise ValueError(
            "the input schedule does not reproduce the target failure")

    removed_p = removed_c = 0
    progress = True
    while progress:
        progress = False
        for i in range(len(current.preemptions)):
            candidate = Schedule(
                start_order=current.start_order,
                preemptions=(current.preemptions[:i]
                             + current.preemptions[i + 1:]),
                constraints=list(current.constraints),
                note=f"{current.note} [minimized]".strip())
            run = _attempt(machine_factory, candidate, matcher)
            executed += 1
            if run is not None:
                current, current_run = candidate, run
                removed_p += 1
                progress = True
                break
        if progress:
            continue
        for i in range(len(current.constraints)):
            candidate = Schedule(
                start_order=current.start_order,
                preemptions=list(current.preemptions),
                constraints=(current.constraints[:i]
                             + current.constraints[i + 1:]),
                note=f"{current.note} [minimized]".strip())
            run = _attempt(machine_factory, candidate, matcher)
            executed += 1
            if run is not None:
                current, current_run = candidate, run
                removed_c += 1
                progress = True
                break

    return MinimizationResult(
        schedule=current, run=current_run,
        removed_preemptions=removed_p, removed_constraints=removed_c,
        schedules_executed=executed)
