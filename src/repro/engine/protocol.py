"""The run-service protocol: what algorithms say to the engine.

AITIA's two algorithms — LIFS search and Causality Analysis — are pure
strategies over one primitive: "execute this schedule on the kernel and
give me the run result" (paper section 3).  The protocol types here are
that primitive's vocabulary:

* :class:`RunRequest`  — one schedule to execute, plus how (resume hint,
  race watching, checkpoint capture);
* :class:`RunPlan`     — a batch of independent requests (a LIFS frontier
  round, a CA flip phase) the engine may fan out as one wave;
* :class:`RunOutcome`  — the run plus the placement facts accounting
  needs (resumed? prefix/setup/spliced steps, captured checkpoints);
* :class:`EnginePolicy` — which backends the engine composes, resolved
  once from an algorithm config, api kwargs and CLI flags;
* :class:`EngineStats` — the engine-side accounting, published as
  counters by :meth:`ScheduleExecutionEngine.emit_counters`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - annotations only, no import cycle
    from repro.core.schedule import Schedule
    from repro.hypervisor.controller import RunResult
    from repro.hypervisor.snapshot import CheckpointPolicy, RunCheckpoint

#: Default fleet spin-up threshold (see :class:`EnginePolicy`).
DEFAULT_FLEET_SPINUP_REQUESTS = 48


def _cfg(config, name):
    """A config field, or ``None`` when absent/unset."""
    if config is None:
        return None
    return getattr(config, name, None)


def _pick(*values, default):
    """First non-``None`` value, else the default."""
    for value in values:
        if value is not None:
            return value
    return default


@dataclass(frozen=True)
class EnginePolicy:
    """Everything the engine needs to pick and parameterize backends.

    One policy instance selects the whole backend composition: snapshots
    on/off (``SnapshotBackend`` vs ``InlineBackend``) and the parallel
    executor (``repro.engine.executors`` — fleet kind, width, spin-up
    threshold), plus checkpoint density, continuation memo size and the
    per-task timeout/respawn budget.
    """

    use_snapshots: bool = True
    #: Capture a checkpoint every N executed instructions.
    snapshot_interval: int = 8
    #: Per-run cap on captured checkpoints.
    max_checkpoints_per_run: int = 64
    #: Cap on memoized run continuations (suffix splicing).
    max_continuations: int = 65536
    #: Parallel wave width; 1 keeps execution sequential.
    wave_jobs: int = 1
    #: Per-task wave deadline and worker respawn budget; ``None`` keeps
    #: the :mod:`repro.engine.executors` defaults.
    wave_timeout_s: Optional[float] = None
    wave_max_retries: Optional[int] = None
    #: Which executor serves parallel plans: ``"fleet"`` (persistent
    #: fork-server workers, :mod:`repro.engine.executors`) or
    #: ``"inline"`` (never fan out, whatever ``wave_jobs`` says).
    executor: str = "fleet"
    #: How many parallel requests an engine must demand before the
    #: fleet forks its workers — small diagnoses never cross it and
    #: never pay a fork.
    fleet_spinup_requests: int = DEFAULT_FLEET_SPINUP_REQUESTS
    #: Which :mod:`repro.policy` search policy shapes candidate plans
    #: (``"static"``, ``"adaptive"``, ...).  Resolved here so precedence
    #: (config > api kwarg > CLI) is decided once; the engine builds the
    #: policy object lazily at construction.
    search_policy: str = "static"

    @classmethod
    def resolve(cls, config=None, *,
                snapshots: Optional[bool] = None,
                wave_jobs: Optional[int] = None,
                executor: Optional[str] = None,
                search_policy: Optional[str] = None,
                cli_snapshots: Optional[bool] = None,
                cli_wave_jobs: Optional[int] = None,
                cli_executor: Optional[str] = None,
                cli_search_policy: Optional[str] = None) -> "EnginePolicy":
        """Resolve a policy with precedence config > api kwarg > CLI flag.

        ``config`` is an algorithm config (``LifsConfig`` / ``CaConfig``
        or anything duck-typed like one); when it is given, its fields
        win outright — an explicit config is the strongest statement of
        intent.  ``snapshots`` / ``wave_jobs`` / ``executor`` /
        ``search_policy`` are the :mod:`repro.api` keyword tier, the
        ``cli_*`` names the parsed command-line tier; ``None`` anywhere
        means "unset, fall through".
        """
        chosen = str(_pick(_cfg(config, "executor"), executor,
                           cli_executor, default="fleet"))
        if chosen == "wave":  # pre-2.1 name for the parallel placement
            chosen = "fleet"
        if chosen not in ("fleet", "inline"):
            raise ValueError(
                f"unknown executor {chosen!r} (choose 'fleet' or 'inline')")
        return cls(
            use_snapshots=bool(_pick(
                _cfg(config, "use_snapshots"), snapshots, cli_snapshots,
                default=True)),
            snapshot_interval=_pick(
                _cfg(config, "snapshot_interval"), default=8),
            max_checkpoints_per_run=_pick(
                _cfg(config, "max_checkpoints_per_run"), default=64),
            max_continuations=_pick(
                _cfg(config, "max_continuations"), default=65536),
            wave_jobs=int(_pick(
                _cfg(config, "wave_jobs"), wave_jobs, cli_wave_jobs,
                default=1)),
            executor=chosen,
            fleet_spinup_requests=int(_pick(
                _cfg(config, "fleet_spinup_requests"),
                default=DEFAULT_FLEET_SPINUP_REQUESTS)),
            search_policy=str(_pick(
                _cfg(config, "policy"), search_policy, cli_search_policy,
                default="static")))

    @classmethod
    def for_lifs(cls, config) -> "EnginePolicy":
        """The policy a ``LifsConfig`` implies."""
        return cls.resolve(config=config)

    @classmethod
    def for_ca(cls, config) -> "EnginePolicy":
        """The policy a ``CaConfig`` implies (flip runs never capture
        checkpoints, so the checkpoint knobs stay at their defaults)."""
        return cls.resolve(config=config)


@dataclass(frozen=True)
class RunRequest:
    """One schedule the algorithm wants executed."""

    schedule: Schedule
    #: Explicit resume point (a prefix checkpoint).  ``None`` lets the
    #: engine resume from its boot checkpoint when snapshots are on, or
    #: boot fresh otherwise.
    resume_from: Optional[RunCheckpoint] = None
    watch_races: bool = True
    #: Capture prefix checkpoints during the run (LIFS harvests them for
    #: extension resume; flip runs never need them).
    capture_checkpoints: bool = False
    #: The resolved capture policy.  Algorithms leave this ``None`` (the
    #: engine derives it from ``capture_checkpoints`` and its own
    #: policy); it is filled in when a request is *prepared* for an
    #: executor, which executes exactly what the request says.
    checkpoint_policy: Optional[CheckpointPolicy] = None
    #: Free-form origin label, for diagnostics.
    label: str = ""
    #: Policy-facing candidate identity (a
    #: :class:`repro.policy.protocol.CandidateMeta`): submission index,
    #: canonical sort key and experience features.  Opaque to every
    #: backend — placement never reads it — and stripped when a request
    #: is prepared for an executor, so it never crosses to a worker.
    meta: Optional[object] = None


@dataclass
class RunPlan:
    """A batch of independent requests executed as one phase."""

    requests: List[RunRequest]
    #: Phase label ("lifs.speculate", "ca.identify", ...), surfaced as
    #: the ``engine.plan`` trace point so reports can show which backend
    #: served each phase.
    phase: str = ""


@dataclass(frozen=True)
class RunOutcome:
    """One request's result plus the placement facts accounting needs."""

    run: RunResult
    #: Checkpoints the run captured (for LIFS harvest/extension resume).
    checkpoints: Tuple[RunCheckpoint, ...] = ()
    #: Whether the run resumed from a checkpoint and the prefix steps
    #: that resume skipped.
    resumed: bool = False
    prefix_steps: int = 0
    #: Boot-setup steps of the machine the run used.
    setup_steps: int = 0
    #: Steps grafted from a memoized continuation (suffix splicing).
    spliced_steps: int = 0
    #: Whether the engine answered this request from its dedup map of
    #: speculatively computed outcomes instead of executing it again.
    dedup_hit: bool = False
    #: Which backend produced the run ("inline", "snapshot", "fleet").
    backend: str = "inline"
    #: Whether the run executed *untraced* (in a fleet worker, or as an
    #: untraced speculative run in the parent) — the engine re-emits the
    #: per-run ``hv.*`` counters for remote outcomes when it merges or
    #: consumes them, and only for those, so every run is counted
    #: exactly once.
    remote: bool = False

    def signature_hash(self) -> int:
        """The run's stable 64-bit Mazurkiewicz-signature digest — the
        identity callers dedup equivalent runs on."""
        return self.run.signature_hash()


@dataclass
class EngineStats:
    """Engine-side accounting, independent of any algorithm's stats."""

    requests: int = 0
    plans: int = 0
    #: Requests answered from the speculation dedup map.
    dedup_hits: int = 0
    #: Requests resumed from a checkpoint / booted fresh; their sum
    #: always equals ``requests``.
    snapshot_hits: int = 0
    snapshot_misses: int = 0
    checkpoints_captured: int = 0
    #: Suffix steps actually interpreted by resumed runs.
    resumed_steps: int = 0
    #: Prefix + boot-setup + spliced steps resumed runs did not
    #: interpret.
    saved_steps: int = 0
    #: Steps the interpreter really executed (suffixes, plus setup on
    #: fresh boots).
    interpreted_steps: int = 0
    #: Runs whose suffix was grafted from a memoized continuation, and
    #: the steps those grafts covered.
    splices: int = 0
    spliced_steps: int = 0
    #: Requests served per backend name.
    backend_requests: Dict[str, int] = field(default_factory=dict)


#: How :class:`EngineStats` fields map onto the LIFS counter names the
#: trace report renders (``snapshot.*`` + ``lifs.interpreted_steps``).
LIFS_COUNTER_NAMES = {
    "snapshot_hits": "snapshot.hits",
    "snapshot_misses": "snapshot.misses",
    "checkpoints_captured": "snapshot.captured",
    "resumed_steps": "snapshot.resumed_steps",
    "saved_steps": "snapshot.saved_steps",
    "splices": "snapshot.splices",
    "spliced_steps": "snapshot.spliced_steps",
    "interpreted_steps": "lifs.interpreted_steps",
}

#: The Causality Analysis spellings of the same accounting.
CA_COUNTER_NAMES = {
    "snapshot_hits": "ca.snapshot_hits",
    "snapshot_misses": "ca.snapshot_misses",
    "saved_steps": "ca.snapshot_saved_steps",
    "splices": "ca.snapshot_splices",
    "spliced_steps": "ca.snapshot_spliced_steps",
    "interpreted_steps": "ca.interpreted_steps",
}
