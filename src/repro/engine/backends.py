"""Composable execution backends behind the schedule-execution engine.

Each backend turns a :class:`~repro.engine.protocol.RunRequest` (or a
batch of them) into :class:`~repro.engine.protocol.RunOutcome`\\ s; the
:class:`~repro.engine.engine.ScheduleExecutionEngine` selects between
them per request and owns all accounting.  The contract every backend
must keep is the bit-identity invariant the whole pipeline is built on:
where and how a schedule executes never changes the run's bits — only
the placement facts reported on the outcome (resumed/prefix/setup/
spliced steps) differ.

* :class:`InlineBackend`   — boot a fresh machine per request, run in
  the parent.  The ``--no-snapshot`` baseline and the only legal
  backend for coverage-instrumented machines (kcov callbacks must fire
  in this process, over every instruction).
* :class:`SnapshotBackend` — one vehicle machine restored in place from
  boot/prefix checkpoints (:class:`CheckpointPolicy` captures,
  :class:`ContinuationCache` suffix splicing).  docs/PERFORMANCE.md.

Parallel placement is no longer a backend: plans stream through the
executor layer (:mod:`repro.engine.executors` — the persistent
fork-server fleet), with resume points and capture policies resolved
*into* each request by the engine, so every placement executes exactly
the run the snapshot/inline path would have produced.

Neither is candidate *selection*: which requests of a plan execute, and
in what order, is decided before any backend sees them, by the
:mod:`repro.policy` search policy behind the engine's ``shape_plan``.
Backends must treat ``RunRequest.meta`` (the policy's candidate
bookkeeping) as opaque and never read it — the engine strips it when
preparing requests for an executor.

Adding a backend means implementing ``run`` returning outcomes whose
runs are bit-identical to :class:`InlineBackend`'s, and teaching the
engine's selection logic when it applies — see docs/ARCHITECTURE.md.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.hypervisor.controller import (ContinuationCache,
                                         ScheduleController, SpliceSession)
from repro.hypervisor.snapshot import (CheckpointPolicy, RunCheckpoint,
                                       boot_checkpoint)

from repro.engine.protocol import RunOutcome, RunRequest

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.engine.engine import ScheduleExecutionEngine
    from repro.kernel.machine import KernelMachine


class InlineBackend:
    """Fresh boot per request, executed in the parent process."""

    name = "inline"

    def __init__(self, engine: "ScheduleExecutionEngine") -> None:
        self._engine = engine

    def run(self, request: RunRequest) -> RunOutcome:
        machine = self._engine.machine_factory()
        self._engine.note_coverage(machine)
        controller = ScheduleController(
            machine, request.schedule, watch_races=request.watch_races,
            tracer=self._engine.tracer)
        run = controller.run()
        return RunOutcome(
            run=run, checkpoints=tuple(controller.checkpoints),
            resumed=False, prefix_steps=0,
            setup_steps=machine.setup_steps,
            spliced_steps=controller.spliced_steps, backend=self.name)


class SnapshotBackend:
    """One vehicle machine, restored in place per request.

    The vehicle and its boot checkpoint are adopted either eagerly
    (:meth:`ScheduleExecutionEngine.prime`, the CA pattern) or lazily
    from the first fresh boot's captured boot checkpoint (the LIFS
    pattern).  ``active`` starts at the policy's ``use_snapshots`` and
    is permanently demoted the moment a coverage-instrumented machine
    is seen: resuming would skip the prefix's coverage callbacks.
    """

    name = "snapshot"

    def __init__(self, engine: "ScheduleExecutionEngine") -> None:
        self._engine = engine
        self.active = bool(engine.policy.use_snapshots)
        self.vehicle: Optional["KernelMachine"] = None
        self.boot_checkpoint: Optional[RunCheckpoint] = None
        self.continuations = ContinuationCache(
            engine.policy.max_continuations)

    def adopt(self, machine: "KernelMachine") -> None:
        """Eagerly make ``machine`` the vehicle (boot state captured now)."""
        self.vehicle = machine
        self.boot_checkpoint = boot_checkpoint(machine)

    def checkpoint_policy(
            self, request: RunRequest) -> Optional[CheckpointPolicy]:
        if not self.active or not request.capture_checkpoints:
            return None
        policy = self._engine.policy
        return CheckpointPolicy(
            interval=policy.snapshot_interval,
            max_checkpoints=policy.max_checkpoints_per_run)

    def resolve_resume(self, request: RunRequest) -> Optional[RunCheckpoint]:
        """The checkpoint this request resumes from: the request's own
        prefix checkpoint, else the boot checkpoint, else a fresh boot."""
        if not self.active:
            return None
        if request.resume_from is not None:
            return request.resume_from
        return self.boot_checkpoint

    def run(self, request: RunRequest) -> RunOutcome:
        resume = self.resolve_resume(request)
        session: Optional[SpliceSession] = None
        if resume is not None:
            machine = self.vehicle
            session = self.continuations.session()
            controller = ScheduleController(
                machine, request.schedule, watch_races=request.watch_races,
                tracer=self._engine.tracer, resume_from=resume,
                checkpoint_policy=self.checkpoint_policy(request),
                splice_probe=session.probe)
        else:
            # No resume point yet: boot fresh, and — unless this boot
            # reveals a coverage machine and demotes the backend — adopt
            # the boot as the vehicle and splice like any other run.
            machine = self._engine.machine_factory()
            self._engine.note_coverage(machine)
            if self.active:
                session = self.continuations.session()
            controller = ScheduleController(
                machine, request.schedule, watch_races=request.watch_races,
                tracer=self._engine.tracer,
                checkpoint_policy=self.checkpoint_policy(request),
                splice_probe=session.probe if session else None)
            if self.active:
                self.vehicle = machine
        run = controller.run()
        if session is not None:
            session.donate(run)
        if self.active and self.boot_checkpoint is None:
            # Harvest the run-entry capture as the boot checkpoint that
            # replaces per-schedule reboots from here on.
            for ckpt in controller.checkpoints:
                if ckpt.steps == 0 and not ckpt.fired:
                    self.boot_checkpoint = ckpt
                    break
        return RunOutcome(
            run=run, checkpoints=tuple(controller.checkpoints),
            resumed=resume is not None,
            prefix_steps=resume.steps if resume is not None else 0,
            setup_steps=machine.setup_steps,
            spliced_steps=controller.spliced_steps, backend=self.name)
