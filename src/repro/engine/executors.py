"""The unified dispatch API: every process fan-out behind one door.

The codebase grew three overlapping process-dispatch APIs — the triage
``WorkerPool`` (process per attempt), the ``WaveExecutor`` (process per
wave chunk) and the daemon's drain loop on top of the pool.  This
module collapses them behind one front door, :func:`make_executor`,
built on the persistent fork-server fleet of :mod:`repro.engine.fleet`:

* **Schedule executors** serve the engine's
  :class:`~repro.engine.protocol.RunPlan`\\ s:
  ``Executor.submit(plan) -> stream of (index, RunOutcome)`` in
  completion order.  :class:`FleetExecutor` keeps resident workers that
  boot once and receive only schedule suffixes plus checkpoint-store
  keys (:class:`~repro.kernel.snapshot.CheckpointStore` — a
  checkpoint's bytes cross each pipe at most once);
  :class:`InlineExecutor` is the sequential placement of the same
  contract.
* **Job executors** serve triage/evaluation :class:`TriageJob`\\ s:
  ``run(jobs, on_complete) -> jobs`` with per-job timeout, worker-death
  retry with backoff, and streaming completion callbacks.
  :class:`JobExecutor` runs them on a resident fleet (one fork per
  worker lifetime, not per attempt);
  :class:`~repro.service.pool.InProcessPool` remains the ``jobs=1``
  placement.

Both keep the bit-identity contract: where a schedule executes never
changes the run's bits, only the placement facts on the outcome.

Migration from the deprecated constructors::

    # before                                   # after
    WaveExecutor(jobs=4, machine_factory=f)    make_executor(machine_factory=f, jobs=4)
    WorkerPool(worker, jobs=4, retry=r)        make_executor(worker=worker, jobs=4, retry=r)
    make_pool(worker, jobs=n)                  make_executor(worker=worker, jobs=n)
"""

from __future__ import annotations

import functools
import time
from collections import deque
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Callable, Dict, Iterator, List, Optional,
                    Tuple)

from repro.engine.fleet import WorkerFleet, fleet_available
from repro.engine.protocol import RunOutcome, RunPlan, RunRequest
from repro.hypervisor.controller import (ContinuationCache, RunResult,
                                         ScheduleController)
from repro.kernel.snapshot import CheckpointStore, dumps_state, loads_state
from repro.observe.tracer import as_tracer

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.core.schedule import Schedule
    from repro.hypervisor.snapshot import CheckpointPolicy, RunCheckpoint
    from repro.kernel.machine import KernelMachine

#: Per-task deadline: one schedule is far below the controller's step
#: limit, so a task this late is a wedged worker, not a slow one.
DEFAULT_TASK_TIMEOUT_S = 600.0

#: How many parallel requests an engine must demand before the fleet
#: forks.  Small diagnoses never cross it, so they never pay a single
#: fork; large ones amortize the spin-up across thousands of requests.
DEFAULT_SPINUP_REQUESTS = 48


@dataclass(frozen=True)
class FleetTask:
    """One schedule shipped to a resident worker (``dumps_state`` wire
    shape; the resume checkpoint travels as a store reference)."""

    schedule: "Schedule"
    resume_from: Optional["RunCheckpoint"] = None
    watch_races: bool = True
    checkpoint_policy: Optional["CheckpointPolicy"] = None


@dataclass(frozen=True)
class FleetResult:
    """A worker's reply (captured checkpoints travel as references)."""

    run: RunResult
    checkpoints: Tuple["RunCheckpoint", ...]
    setup_steps: int
    resumed: bool
    prefix_steps: int
    spliced_steps: int


def _execute_task(task: FleetTask, machine_factory, state: dict,
                  max_continuations: int) -> FleetResult:
    """Run one task on a worker's resident state.

    A resuming task restores onto the worker's vehicle machine (booted
    once, first use) and splices through the worker's own continuation
    cache; a fresh-boot task boots its own machine, mirroring the
    sequential snapshot-miss path.  Both are bit-identical to parent
    execution: the controller is deterministic in (machine state,
    schedule), and neither resuming nor splicing changes a run's bits.
    """
    session = None
    if task.resume_from is not None:
        vehicle = state.get("vehicle")
        if vehicle is None:
            vehicle = state["vehicle"] = machine_factory()
        cache = state.get("continuations")
        if cache is None:
            cache = state["continuations"] = ContinuationCache(
                max_continuations)
        session = cache.session()
        controller = ScheduleController(
            vehicle, task.schedule, watch_races=task.watch_races,
            resume_from=task.resume_from,
            checkpoint_policy=task.checkpoint_policy,
            splice_probe=session.probe)
    else:
        vehicle = machine_factory()
        controller = ScheduleController(
            vehicle, task.schedule, watch_races=task.watch_races,
            checkpoint_policy=task.checkpoint_policy)
    run = controller.run()
    if session is not None:
        session.donate(run)
    return FleetResult(
        run=run, checkpoints=tuple(controller.checkpoints),
        setup_steps=vehicle.setup_steps,
        resumed=task.resume_from is not None,
        prefix_steps=task.resume_from.steps if task.resume_from else 0,
        spliced_steps=controller.spliced_steps)


def _schedule_runner(machine_factory, store: CheckpointStore,
                     max_continuations: int):
    """Build the worker-side task loop body.

    ``store`` is the parent's checkpoint store; under ``fork`` each
    worker inherits a copy-on-write replica at spawn time, so the keys
    present at fork never need their bytes re-shipped in either
    direction.  The worker's ``known`` set mirrors what the parent
    tracks for it (``FleetWorker.known_keys``) — both sides start from
    the fork-time key set and grow it with every payload.
    """
    def run_task(payload: bytes, state: dict) -> bytes:
        worker_store = state.get("store")
        if worker_store is None:
            worker_store = state["store"] = store
            state["known"] = set(store.keys())
        known = state["known"]
        task = loads_state(payload, store=worker_store, known=known)
        result = _execute_task(task, machine_factory, state,
                               max_continuations)
        return dumps_state(result, store=worker_store, known=known)
    return run_task


class _LocalRunner:
    """Parent-side execution for executors used without an engine (the
    deprecated ``WaveExecutor`` shim): resumed requests restore onto a
    lazily booted vehicle, fresh requests boot their own machine."""

    def __init__(self, machine_factory, backend: str) -> None:
        self.machine_factory = machine_factory
        self.backend = backend
        self.vehicle: Optional["KernelMachine"] = None

    def run(self, request: RunRequest) -> RunOutcome:
        if request.resume_from is not None:
            if self.vehicle is None:
                self.vehicle = self.machine_factory()
            machine = self.vehicle
        else:
            machine = self.machine_factory()
        controller = ScheduleController(
            machine, request.schedule, watch_races=request.watch_races,
            resume_from=request.resume_from,
            checkpoint_policy=request.checkpoint_policy)
        run = controller.run()
        return RunOutcome(
            run=run, checkpoints=tuple(controller.checkpoints),
            resumed=request.resume_from is not None,
            prefix_steps=(request.resume_from.steps
                          if request.resume_from else 0),
            setup_steps=machine.setup_steps,
            spliced_steps=controller.spliced_steps,
            backend=self.backend, remote=False)


class InlineExecutor:
    """The sequential placement of the executor contract (``jobs=1``)."""

    name = "inline"
    parallel = False

    def __init__(self, machine_factory, tracer=None) -> None:
        self.machine_factory = machine_factory
        self.tracer = as_tracer(tracer)
        self._local = _LocalRunner(machine_factory, self.name)

    def engage(self, request_count: int) -> bool:
        return False

    def submit(self, plan: RunPlan, local_run=None,
               ) -> Iterator[Tuple[int, RunOutcome]]:
        local = local_run if local_run is not None else self._local.run
        if self.tracer.enabled and plan.requests:
            self.tracer.count("hv.wave.inline", len(plan.requests))
        for index, request in enumerate(plan.requests):
            yield index, local(request)

    def close(self) -> None:
        pass


class FleetExecutor:
    """Stream a plan's requests across resident fork-server workers.

    Workers boot once (:mod:`repro.engine.fleet`) and stay resident
    across plans: each keeps a vehicle machine, its own continuation
    cache and a fork-inherited :class:`CheckpointStore` replica, so a
    dispatched task is one pipe message of (schedule, store keys) —
    never a machine-state pickle after the first reference.

    Dispatch is *hybrid*: while workers chew on dispatched requests the
    parent executes further requests itself (``local_run``), so a fleet
    never makes a plan slower than running it sequentially — on a
    single core the parent does most of the work and the overhead is
    bounded by IPC.  A task lost to a worker death (SIGKILL, OOM) or a
    deadline is transparently re-executed via ``local_run`` (counted as
    ``hv.wave.fallbacks``) after the fleet respawns the worker, so a
    plan never loses or duplicates a result.
    """

    name = "fleet"

    def __init__(self, machine_factory, jobs: int, *,
                 tracer=None,
                 timeout_s: float = DEFAULT_TASK_TIMEOUT_S,
                 context: str = "fork",
                 spinup_requests: int = DEFAULT_SPINUP_REQUESTS,
                 max_continuations: int = 65536,
                 max_respawns: Optional[int] = None,
                 eager: bool = False) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.machine_factory = machine_factory
        self.jobs = jobs
        self.tracer = as_tracer(tracer)
        self.timeout_s = timeout_s
        self.spinup_requests = spinup_requests
        self.eager = eager
        self._context = context
        self._demand = 0
        #: The parent's content-addressed checkpoint store; workers fork
        #: with a copy-on-write replica of its state at spawn time.
        self.store = CheckpointStore()
        runner = _schedule_runner(machine_factory, self.store,
                                  max_continuations)
        self.fleet = WorkerFleet(
            runner, jobs, context=context,
            max_respawns=max_respawns if max_respawns is not None
            else 4 * jobs,
            on_spawn=self._seed_known)
        self._local = _LocalRunner(machine_factory, self.name)

    def _seed_known(self, worker) -> None:
        # Fork inherits the store by address: every key the parent holds
        # at spawn time is already on the worker's side of the pipe.
        worker.known_keys = set(self.store.keys())

    @property
    def parallel(self) -> bool:
        return self.jobs > 1 and fleet_available(self._context)

    # ------------------------------------------------------------------
    def engage(self, request_count: int) -> bool:
        """Register demand for ``request_count`` parallel requests;
        returns whether dispatch is genuinely available right now.

        The fleet only forks once cumulative demand crosses the spin-up
        threshold (``eager`` skips the threshold), so small diagnoses
        never pay a single fork.  Until a worker announces readiness the
        answer stays ``False`` and callers run sequentially — spin-up
        never blocks the pipeline.
        """
        if not self.parallel:
            return False
        self._demand += request_count
        if not self.fleet.started and (self.eager
                                       or self._demand
                                       >= self.spinup_requests):
            self.fleet.start()
        if not self.fleet.started:
            return False
        self.fleet.poll(0.0)
        if self.eager and not self.fleet.ready_idle():
            deadline = time.monotonic() + 5.0
            while (time.monotonic() < deadline
                   and not self.fleet.ready_idle()
                   and any(w.alive for w in self.fleet.workers)):
                self.fleet.poll(0.05)
        return bool(self.fleet.ready_idle())

    def submit(self, plan: RunPlan, local_run=None,
               ) -> Iterator[Tuple[int, RunOutcome]]:
        """Execute every request, yielding ``(submission_index,
        outcome)`` pairs in completion order."""
        requests = plan.requests
        if not requests:
            return
        local = local_run if local_run is not None else self._local.run
        if self.fleet.started:
            self.fleet.poll(0.0)
        if not self.fleet.started or not self.fleet.ready_idle():
            if self.tracer.enabled:
                self.tracer.count("hv.wave.inline", len(requests))
            for index, request in enumerate(requests):
                yield index, local(request)
            return
        pending = deque(range(len(requests)))
        in_flight = 0
        remote = fallbacks = assists = 0
        while pending or in_flight:
            # Fill every ready idle worker from the front of the queue.
            while pending:
                ready = self.fleet.ready_idle()
                if not ready:
                    break
                worker = ready[0]
                index = pending.popleft()
                payload = dumps_state(self._task_of(requests[index]),
                                      store=self.store,
                                      known=worker.known_keys)
                if self.fleet.dispatch(worker, index, payload,
                                       timeout_s=self.timeout_s):
                    in_flight += 1
                else:
                    pending.appendleft(index)
            if pending:
                # Workers are saturated: the parent lends a hand instead
                # of idling on the pipe.
                index = pending.popleft()
                yield index, local(requests[index])
                assists += 1
                events = self.fleet.poll(0.0)
            elif in_flight:
                deadline = self.fleet.next_deadline()
                wait = 0.25
                if deadline is not None:
                    wait = max(0.0, min(deadline - time.monotonic(), wait))
                events = self.fleet.poll(wait)
            else:
                break
            for event in events:
                in_flight -= 1
                if event.kind == "ok":
                    remote += 1
                    yield event.task_id, self._decode(event.worker,
                                                      event.body)
                else:
                    # Worker exception, death or deadline: re-execute in
                    # the parent so the plan still completes — and with
                    # the exact behaviour (including any deterministic
                    # error) sequential execution would have shown.
                    fallbacks += 1
                    yield event.task_id, local(requests[event.task_id])
        if self.tracer.enabled:
            self.tracer.count("hv.wave.batches")
            self.tracer.count("hv.wave.jobs", len(requests))
            self.tracer.count("hv.wave.dispatched", remote)
            if assists:
                self.tracer.count("hv.wave.inline", assists)
            if fallbacks:
                self.tracer.count("hv.wave.fallbacks", fallbacks)
            self.tracer.point("hv.wave.batch", stage="hv",
                              jobs=len(requests),
                              width=len(self.fleet.workers),
                              fallbacks=fallbacks)

    def _task_of(self, request: RunRequest) -> FleetTask:
        return FleetTask(schedule=request.schedule,
                         resume_from=request.resume_from,
                         watch_races=request.watch_races,
                         checkpoint_policy=request.checkpoint_policy)

    def _decode(self, worker, payload: bytes) -> RunOutcome:
        result: FleetResult = loads_state(payload, store=self.store,
                                          known=worker.known_keys)
        return RunOutcome(
            run=result.run, checkpoints=result.checkpoints,
            resumed=result.resumed, prefix_steps=result.prefix_steps,
            setup_steps=result.setup_steps,
            spliced_steps=result.spliced_steps,
            backend=self.name, remote=True)

    def close(self) -> None:
        self.fleet.close()


# ----------------------------------------------------------------------
# Job executors: the TriageJob contract on the same fleet substrate.

def _call_job_worker(worker, payload: dict, state: dict) -> dict:
    return worker(payload)


class JobExecutor:
    """Run :class:`~repro.service.queue.TriageJob`\\ s on a resident
    worker fleet.

    Same contract as the deprecated process-per-attempt ``WorkerPool``
    — per-job deadline (drained once more before the kill, so a result
    posted at the wire is never misreported as a timeout), worker-death
    retry with the :class:`~repro.service.queue.RetryPolicy` backoff,
    deterministic worker exceptions reported as ``failed`` without
    retry — but workers fork once and stay resident across ``run()``
    calls, so repeated drains (the daemon's steady state) stop paying a
    fork + import per attempt.
    """

    name = "jobs"
    parallel = True

    def __init__(self, worker: Callable[[dict], dict], jobs: int = 2,
                 retry=None, context: Optional[str] = None) -> None:
        from repro.service.queue import RetryPolicy

        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if context is None:
            context = "fork" if fleet_available("fork") else None
        self.worker = worker
        self.jobs = jobs
        self.retry = retry or RetryPolicy()
        kwargs = {} if context is None else {"context": context}
        self.fleet = WorkerFleet(
            functools.partial(_call_job_worker, worker), jobs, **kwargs)

    def run(self, jobs, on_complete=None):
        """Execute every job to a terminal outcome; returns the same
        objects, mutated in place (order preserved)."""
        from repro.service.queue import JobOutcome

        self.fleet.start()
        pending: List[tuple] = [(0.0, job) for job in jobs
                                if not job.done]  # (not_before, job)
        # Budget worker respawns to what the retry policy can consume:
        # every attempt of every job may cost one worker, plus the
        # fleet's own width.
        self.fleet.max_respawns = (
            self.fleet.respawns
            + len(pending) * (self.retry.max_retries + 1) + self.jobs)
        run_started = time.monotonic()
        in_flight: Dict[int, tuple] = {}  # task_id -> (job, started_at)
        next_task_id = 0
        while pending or in_flight:
            now = time.monotonic()
            idle = self.fleet.idle()
            while idle:
                idx = next((i for i, (nb, _) in enumerate(pending)
                            if nb <= now), None)
                if idx is None:
                    break
                worker = idle.pop()
                _, job = pending.pop(idx)
                job.outcome = JobOutcome.RUNNING
                job.attempts += 1
                if job.attempts == 1:
                    job.queue_wait_s = now - run_started
                task_id = next_task_id
                next_task_id += 1
                if self.fleet.dispatch(worker, task_id, job.payload,
                                       timeout_s=job.timeout_s):
                    in_flight[task_id] = (job, now)
                else:
                    # Dead at send time: same treatment as a worker that
                    # died mid-job.
                    self._lost(job, None, pending, on_complete)
            if not in_flight and pending \
                    and not any(w.alive for w in self.fleet.workers):
                # Respawn budget exhausted with work left: fail loudly
                # instead of spinning forever.
                for _, job in pending:
                    job.outcome = JobOutcome.FAILED
                    job.error = "worker fleet exhausted its respawn budget"
                    if on_complete is not None:
                        on_complete(job)
                pending = []
                break
            events = self.fleet.poll(0.02)
            now = time.monotonic()
            for event in events:
                entry = in_flight.pop(event.task_id, None)
                if entry is None:  # pragma: no cover — stale completion
                    continue
                job, started_at = entry
                job.seconds += now - started_at
                if event.kind == "ok":
                    job.outcome = JobOutcome.SUCCEEDED
                    job.result = event.body
                elif event.kind == "error":
                    job.outcome = JobOutcome.FAILED
                    job.error = event.body
                elif event.kind == "timeout":
                    # Deterministic simulator: a job that blew its
                    # deadline once will blow it again — never retried.
                    job.outcome = JobOutcome.TIMED_OUT
                    job.error = f"exceeded {job.timeout_s:.1f}s timeout"
                else:  # lost — worker died without posting a result
                    self._lost(job, event.body, pending, on_complete)
                    continue
                if on_complete is not None:
                    on_complete(job)
        return list(jobs)

    def _lost(self, job, exitcode, pending, on_complete) -> bool:
        """Worker-death bookkeeping; ``True`` when the job was requeued
        (not terminal yet)."""
        from repro.service.queue import JobOutcome

        if job.attempts <= self.retry.max_retries:
            job.outcome = JobOutcome.PENDING
            delay = self.retry.delay(job.attempts)
            pending.append((time.monotonic() + delay, job))
            return True
        job.outcome = JobOutcome.FAILED
        job.error = (f"worker died (exit {exitcode}) "
                     f"after {job.attempts} attempt(s)")
        if on_complete is not None:
            on_complete(job)
        return False

    def close(self) -> None:
        self.fleet.close()


# ----------------------------------------------------------------------
def make_executor(*, machine_factory=None, worker=None, jobs: int = 1,
                  tracer=None, retry=None, context: Optional[str] = None,
                  timeout_s: Optional[float] = None,
                  spinup_requests: Optional[int] = None,
                  max_continuations: int = 65536,
                  max_respawns: Optional[int] = None,
                  eager: bool = False):
    """The one front door for process dispatch.

    Exactly one of ``machine_factory``/``worker`` selects the family:

    * ``machine_factory=`` builds a **schedule executor** (the engine
      contract: ``submit(RunPlan) -> stream of (index, RunOutcome)``):
      :class:`InlineExecutor` at ``jobs <= 1``, else a
      :class:`FleetExecutor` of resident fork-server workers.
    * ``worker=`` builds a **job executor** (the triage contract:
      ``run(jobs, on_complete)``):
      :class:`~repro.service.pool.InProcessPool` at ``jobs <= 1`` or
      where forking is impossible (daemonic workers), else a
      :class:`JobExecutor` on the fleet.

    Every executor has ``close()``; long-lived owners (the engine, the
    daemon) must call it to retire the resident workers.
    """
    if (machine_factory is None) == (worker is None):
        raise TypeError(
            "make_executor() takes exactly one of machine_factory= "
            "(schedule executor) or worker= (job executor)")
    if machine_factory is not None:
        if jobs <= 1:
            return InlineExecutor(machine_factory, tracer=tracer)
        return FleetExecutor(
            machine_factory, jobs, tracer=tracer,
            timeout_s=(timeout_s if timeout_s is not None
                       else DEFAULT_TASK_TIMEOUT_S),
            context=context or "fork",
            spinup_requests=(spinup_requests if spinup_requests is not None
                             else DEFAULT_SPINUP_REQUESTS),
            max_continuations=max_continuations,
            max_respawns=max_respawns, eager=eager)
    from repro.service.pool import InProcessPool

    if jobs <= 1 or not fleet_available(context or "fork"):
        return InProcessPool(worker)
    return JobExecutor(worker, jobs=jobs, retry=retry, context=context)
