"""The persistent fork-server worker fleet.

:class:`WorkerFleet` is the process substrate under every executor in
:mod:`repro.engine.executors`: a fixed-width set of resident child
processes that boot **once** and then service an unbounded stream of
tasks over duplex pipes.  This replaces the process-per-attempt /
process-per-wave designs (one ``fork`` + module re-import + state
pickle per batch) whose dispatch overhead measured 3–8× *slower* than
sequential execution on small waves (``bench_waves.json``, pre-fleet).

Design points:

* **Fork inheritance** — workers are started under the ``fork`` start
  method by default, so unpicklable closures (machine factories) and
  large shared structures (the parent's
  :class:`~repro.kernel.snapshot.CheckpointStore`) are inherited by
  address at spawn time, copy-on-write.
* **Resident state** — each worker keeps a ``state`` dict across tasks
  (vehicle machine, continuation cache, store replica), which is what
  makes the fleet a *fork server*: the boot cost is paid once per
  worker lifetime, not once per task.
* **Streaming completion** — :meth:`WorkerFleet.poll` surfaces results
  as events in completion order; callers merge by task id, so no
  barrier join is ever required.
* **Fault containment** — a worker that dies (SIGKILL, OOM, segfault)
  is detected by pipe EOF / exit code, reported as a ``lost`` event
  carrying its in-flight task, and respawned within a bounded budget;
  a worker past a task deadline is drained once more, then killed and
  respawned (``timeout`` event).  The *caller* decides whether a lost
  task retries, falls back inline, or fails — the fleet only guarantees
  no task silently disappears.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Set

from multiprocessing.connection import wait as _connection_wait

#: Tag of the hello message each worker posts once it is servicing.
_READY = "__fleet_ready__"

#: A worker task runner: ``(payload, state) -> result``.  ``state`` is
#: the worker-resident dict that survives across tasks.
Runner = Callable[[Any, dict], Any]


def fleet_available(context: str = "fork") -> bool:
    """Whether a fleet can genuinely fork resident workers here.

    Requires the requested start method (machine factories are closures
    and must be fork-inherited, not pickled) and a non-daemonic parent —
    daemonic processes may not have children, so a fleet inside a
    ``--jobs N`` triage worker must degrade instead of crashing.
    """
    return (context in multiprocessing.get_all_start_methods()
            and not multiprocessing.current_process().daemon)


def _fleet_worker_main(runner: Runner, conn) -> None:
    """Resident worker loop: announce readiness, then serve tasks until
    the ``None`` sentinel or a closed pipe."""
    state: dict = {}
    try:
        conn.send((_READY, None, None))
    except (BrokenPipeError, OSError):  # pragma: no cover — parent gone
        return
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        task_id, payload = message
        try:
            result = runner(payload, state)
            reply = (task_id, "ok", result)
        except BaseException as exc:  # noqa: BLE001 — report, don't die
            reply = (task_id, "error", f"{type(exc).__name__}: {exc}")
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):  # pragma: no cover
            break
    try:
        conn.close()
    except OSError:  # pragma: no cover
        pass


class FleetWorker:
    """One resident worker process and its parent-side bookkeeping."""

    def __init__(self, ctx, runner: Runner, wid: int) -> None:
        self.wid = wid
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_fleet_worker_main, args=(runner, child_conn),
            daemon=True, name=f"repro-fleet-{wid}")
        self.process.start()
        child_conn.close()  # parent keeps its own end only
        self.ready = False
        self.closed = False
        #: Task currently in flight on this worker (``None`` when idle).
        self.task_id: Optional[int] = None
        self.dispatched_at = 0.0
        self.deadline: Optional[float] = None
        #: Checkpoint-store keys this worker is known to hold (seeded at
        #: spawn from the fork-inherited store, grown by every send).
        self.known_keys: Set[str] = set()

    @property
    def alive(self) -> bool:
        return not self.closed and self.process.exitcode is None

    @property
    def idle(self) -> bool:
        return self.alive and self.task_id is None

    def clear_task(self) -> None:
        self.task_id = None
        self.deadline = None

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=1.0)
            if self.process.is_alive():  # pragma: no cover — stubborn child
                self.process.kill()
                self.process.join(timeout=1.0)
        if not self.closed:
            self.closed = True
            try:
                self.conn.close()
            except OSError:  # pragma: no cover
                pass


@dataclass(frozen=True)
class FleetEvent:
    """One completion/failure surfaced by :meth:`WorkerFleet.poll`.

    ``kind`` is ``"ok"`` (``body`` is the runner's result), ``"error"``
    (``body`` is the exception text), ``"lost"`` (the worker died with
    the task in flight; ``body`` is its exit code) or ``"timeout"``.
    """

    kind: str
    worker: FleetWorker
    task_id: int
    body: Any = None


class WorkerFleet:
    """A fixed-width fleet of resident fork-server workers."""

    def __init__(self, runner: Runner, jobs: int, *,
                 context: str = "fork",
                 max_respawns: int = 16,
                 on_spawn: Optional[Callable[[FleetWorker], None]] = None,
                 ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.runner = runner
        self.jobs = jobs
        self.context_name = context
        self.max_respawns = max_respawns
        self.respawns = 0
        self.on_spawn = on_spawn
        self.workers: List[FleetWorker] = []
        self.started = False
        self._spawned = 0

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Fork the fleet (idempotent, non-blocking): workers announce
        readiness through their pipes; callers see it via :meth:`poll`."""
        if self.started:
            return
        self.started = True
        ctx = multiprocessing.get_context(self.context_name)
        self._ctx = ctx
        for _ in range(self.jobs):
            self._spawn()

    def _spawn(self) -> FleetWorker:
        worker = FleetWorker(self._ctx, self.runner, self._spawned)
        self._spawned += 1
        if self.on_spawn is not None:
            self.on_spawn(worker)
        self.workers.append(worker)
        return worker

    def close(self) -> None:
        """Shut the fleet down: sentinel, short join, kill stragglers."""
        for worker in self.workers:
            if worker.alive:
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
        for worker in self.workers:
            worker.process.join(timeout=0.5)
            worker.kill()
        self.workers = []
        self.started = False

    # -- dispatch -------------------------------------------------------
    def ready_idle(self) -> List[FleetWorker]:
        """Workers that have announced readiness and hold no task."""
        return [w for w in self.workers if w.idle and w.ready]

    def idle(self) -> List[FleetWorker]:
        """Alive workers with no task (ready or still booting — the pipe
        buffers, so dispatching to a booting worker is fine)."""
        return [w for w in self.workers if w.idle]

    def busy(self) -> List[FleetWorker]:
        return [w for w in self.workers if w.task_id is not None]

    def dispatch(self, worker: FleetWorker, task_id: int, payload,
                 timeout_s: Optional[float] = None) -> bool:
        """Send one task; ``False`` (after reaping + respawning) when the
        worker turned out to be dead at send time."""
        try:
            worker.conn.send((task_id, payload))
        except (BrokenPipeError, OSError):
            self._reap(worker, [])
            return False
        worker.task_id = task_id
        worker.dispatched_at = time.monotonic()
        worker.deadline = (worker.dispatched_at + timeout_s
                           if timeout_s is not None else None)
        return True

    # -- completion -----------------------------------------------------
    def poll(self, timeout: float = 0.0) -> List[FleetEvent]:
        """Drain every readable pipe (waiting up to ``timeout`` for the
        first message), reap dead workers, expire deadlines."""
        events: List[FleetEvent] = []
        by_conn = {w.conn: w for w in self.workers if not w.closed}
        if by_conn:
            try:
                readable = _connection_wait(list(by_conn), timeout)
            except OSError:  # pragma: no cover — race with a closing pipe
                readable = []
            for conn in readable:
                self._drain_worker(by_conn[conn], events)
        self._expire(events)
        return events

    def _drain_worker(self, worker: FleetWorker,
                      events: List[FleetEvent]) -> None:
        while True:
            try:
                if not worker.conn.poll():
                    return
                message = worker.conn.recv()
            except (EOFError, OSError):
                self._reap(worker, events)
                return
            tag = message[0]
            if tag == _READY:
                worker.ready = True
                continue
            task_id, status, body = message
            worker.clear_task()
            events.append(FleetEvent(status, worker, task_id, body))

    def _expire(self, events: List[FleetEvent]) -> None:
        now = time.monotonic()
        for worker in list(self.workers):
            if worker.deadline is None or now <= worker.deadline:
                continue
            # A result posted between the last poll and the deadline
            # check must not be discarded by the kill below — drain the
            # pipe once more before declaring the timeout.
            self._drain_worker(worker, events)
            if worker.task_id is None or not worker.alive:
                continue
            task_id = worker.task_id
            worker.clear_task()
            worker.kill()
            self._remove_and_respawn(worker)
            events.append(FleetEvent("timeout", worker, task_id))

    def _reap(self, worker: FleetWorker, events: List[FleetEvent]) -> None:
        """A worker's pipe hit EOF / its process died: surface the lost
        task (if any) and respawn within budget."""
        exitcode = worker.process.exitcode
        task_id = worker.task_id
        worker.clear_task()
        worker.kill()
        self._remove_and_respawn(worker)
        if task_id is not None:
            events.append(FleetEvent("lost", worker, task_id, exitcode))

    def _remove_and_respawn(self, worker: FleetWorker) -> None:
        if worker in self.workers:
            self.workers.remove(worker)
        if self.started and self.respawns < self.max_respawns:
            self.respawns += 1
            self._spawn()

    def next_deadline(self) -> Optional[float]:
        deadlines = [w.deadline for w in self.workers
                     if w.deadline is not None]
        return min(deadlines) if deadlines else None
