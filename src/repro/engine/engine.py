"""The schedule-execution engine: one run service for every algorithm.

:class:`ScheduleExecutionEngine` owns everything between "algorithm
wants runs" and "hypervisor interprets instructions": backend selection
(inline / snapshot / wave) under one :class:`EnginePolicy`, coverage
pinning, speculative-wave dedup keyed by :meth:`Schedule.key`, the
unified snapshot accounting, and the single place that publishes the
``snapshot.*`` / ``ca.snapshot_*`` / ``engine.*`` counters.

Algorithms (LIFS, Causality Analysis, the VM pool) stay pure: they emit
:class:`RunRequest`/:class:`RunPlan` values and consume
:class:`RunOutcome`\\ s — no algorithm touches ``WaveExecutor``,
``ContinuationCache`` or ``CheckpointPolicy`` directly.

Invariants the engine maintains (and the equivalence tests assert):

* **Bit identity** — for any request, every backend produces the same
  ``RunResult`` bits; policies change placement and accounting only.
* **Coverage pinning** — the first boot of a machine with a kcov
  callback permanently demotes snapshots *and* waves: coverage
  callbacks must fire in this process, over every instruction.
* **Opt-in dedup** — the dedup map only ever holds outcomes from an
  explicit :meth:`speculate` call and is cleared on the next one;
  a plain :meth:`run`/:meth:`run_plan` never silently reuses an earlier
  result (Causality Analysis deliberately re-executes identical
  schedules when rechecking chain edges).
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

from repro.hypervisor.waves import emit_run_counters
from repro.observe.tracer import as_tracer

from repro.engine.backends import InlineBackend, SnapshotBackend, WaveBackend
from repro.engine.protocol import (EnginePolicy, EngineStats, RunOutcome,
                                   RunPlan, RunRequest)

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from typing import Callable

    from repro.kernel.machine import KernelMachine


class ScheduleExecutionEngine:
    """Execute schedules on behalf of one algorithm instance.

    An engine is built per algorithm instance (one for a LIFS search,
    one for a Causality Analysis) so its stats and continuation memo
    describe exactly that consumer's work.
    """

    def __init__(self, machine_factory: "Callable[[], KernelMachine]",
                 policy: Optional[EnginePolicy] = None,
                 tracer=None) -> None:
        self.machine_factory = machine_factory
        self.policy = policy or EnginePolicy()
        self.tracer = as_tracer(tracer)
        self.stats = EngineStats()
        self.inline_backend = InlineBackend(self)
        self.snapshot_backend = SnapshotBackend(self)
        self.wave_backend: Optional[WaveBackend] = None
        if self.policy.wave_jobs > 1:
            self.wave_backend = WaveBackend(self)
        #: ``None`` until the first boot reveals whether the factory's
        #: machines carry a coverage callback.
        self._coverage: Optional[bool] = None
        #: Speculation dedup map: ``Schedule.key() -> RunOutcome``.
        self._memo: Dict[Tuple, RunOutcome] = {}

    # -- machine knowledge ---------------------------------------------
    @property
    def snapshots_active(self) -> bool:
        """Whether runs currently resume from checkpoints (policy said
        so and no coverage machine has demoted the backend)."""
        return self.snapshot_backend.active

    def note_coverage(self, machine: "KernelMachine") -> None:
        """Record what a boot revealed about the machine factory.

        A coverage callback means every instruction must be interpreted
        in this process: snapshots (prefix skipping) and waves (child
        processes) are both permanently pinned off.
        """
        if self._coverage is None:
            self._coverage = machine.coverage_cb is not None
        if machine.coverage_cb is not None:
            self.snapshot_backend.active = False

    def prime(self) -> "KernelMachine":
        """Eagerly boot one machine and, when the policy allows, adopt
        it as the snapshot vehicle (the Causality Analysis pattern —
        CA needs a booted image up front anyway).  Returns the machine;
        a halted or coverage-instrumented boot demotes snapshots."""
        machine = self.machine_factory()
        self.note_coverage(machine)
        snapshot = self.snapshot_backend
        if snapshot.active and not machine.halted:
            snapshot.adopt(machine)
        else:
            snapshot.active = False
        return machine

    def wave_ready(self, probe: bool = False) -> bool:
        """Whether a plan would genuinely fan out to child processes.

        With ``probe=True`` an unknown coverage status is resolved by
        booting one machine; without it, unknown is treated as safe —
        the first sequential run always boots (and checks) before any
        wave is launched.
        """
        if self.wave_backend is None or not self.wave_backend.parallel:
            return False
        if self._coverage is None and probe:
            self.note_coverage(self.machine_factory())
        return not self._coverage

    # -- execution ------------------------------------------------------
    def run(self, request: RunRequest) -> RunOutcome:
        """Execute one request (or answer it from the speculation memo)."""
        if self._memo:
            outcome = self._memo.pop(request.schedule.key(), None)
            if outcome is not None:
                outcome = replace(outcome, dedup_hit=True)
                self.stats.dedup_hits += 1
                # The child ran untraced; re-emit its per-run counters.
                emit_run_counters(self.tracer, outcome.run)
                self._account(outcome)
                return outcome
        if self.snapshot_backend.active:
            outcome = self.snapshot_backend.run(request)
        else:
            outcome = self.inline_backend.run(request)
        self._account(outcome)
        return outcome

    def run_plan(self, plan: RunPlan) -> List[RunOutcome]:
        """Execute a batch; outcomes come back in submission order.

        The batch fans out as one wave when a parallel wave backend is
        available and the plan is wide enough; otherwise it is exactly
        the sequential :meth:`run` loop.
        """
        self.stats.plans += 1
        use_wave = len(plan.requests) >= 2 and self.wave_ready()
        backend = (self.wave_backend.name if use_wave
                   else (self.snapshot_backend.name
                         if self.snapshot_backend.active
                         else self.inline_backend.name))
        self._trace_plan(plan, backend)
        if not use_wave:
            return [self.run(request) for request in plan.requests]
        outcomes = self.wave_backend.run_plan(plan.requests)
        for outcome in outcomes:
            # Children run untraced; the parent re-emits each run's
            # ``hv.*`` counters at merge time so sequential identities
            # (``hv.runs == lifs.schedules + ca.schedules``) still hold.
            emit_run_counters(self.tracer, outcome.run)
            self._account(outcome)
        return outcomes

    def speculate(self, plan: RunPlan) -> None:
        """Precompute a plan as one wave and stash the outcomes in the
        dedup map for later :meth:`run` calls to consume by schedule key.

        Any previous speculation is dropped first (uncounted — the
        caller decides what "discarded" means via
        :meth:`discard_speculation`).  Nothing is accounted here:
        speculative work only enters the stats when it is consumed, so
        an over-eager speculation can never perturb the diagnosis.
        """
        self._memo = {}
        if len(plan.requests) < 2 or not self.wave_ready():
            return
        self.stats.plans += 1
        self._trace_plan(plan, self.wave_backend.name)
        outcomes = self.wave_backend.run_plan(plan.requests)
        self._memo = {request.schedule.key(): outcome
                      for request, outcome in zip(plan.requests, outcomes)}

    def discard_speculation(self) -> int:
        """Drop unconsumed speculative outcomes (early exit), counting
        them as ``hv.wave.discarded``; returns how many were dropped."""
        dropped = len(self._memo)
        if dropped:
            self.tracer.count("hv.wave.discarded", dropped)
            self._memo = {}
        return dropped

    # -- accounting -----------------------------------------------------
    def _account(self, outcome: RunOutcome) -> None:
        """Fold one outcome into the engine stats.

        One formula covers every backend: ``suffix = steps - prefix -
        spliced`` is what the interpreter actually executed for a
        resumed run; a fresh boot additionally interprets its setup.
        """
        stats = self.stats
        stats.requests += 1
        stats.backend_requests[outcome.backend] = (
            stats.backend_requests.get(outcome.backend, 0) + 1)
        suffix = (outcome.run.steps - outcome.prefix_steps
                  - outcome.spliced_steps)
        if outcome.resumed:
            stats.snapshot_hits += 1
            stats.resumed_steps += suffix
            stats.saved_steps += (outcome.prefix_steps + outcome.setup_steps
                                  + outcome.spliced_steps)
            stats.interpreted_steps += suffix
        else:
            stats.snapshot_misses += 1
            stats.interpreted_steps += (outcome.run.steps
                                        + outcome.setup_steps)
        if outcome.spliced_steps:
            stats.splices += 1
            stats.spliced_steps += outcome.spliced_steps
        stats.checkpoints_captured += len(outcome.checkpoints)

    def _trace_plan(self, plan: RunPlan, backend: str) -> None:
        if self.tracer.enabled and plan.requests:
            self.tracer.point("engine.plan", stage="engine",
                              phase=plan.phase, backend=backend,
                              requests=len(plan.requests))

    def emit_counters(self, names: Mapping[str, str]) -> None:
        """Publish the engine accounting as trace counters.

        ``names`` maps :class:`EngineStats` field names to the counter
        names the consumer's report section expects
        (:data:`LIFS_COUNTER_NAMES` / :data:`CA_COUNTER_NAMES`); the
        engine's own ``engine.*`` counters are always emitted alongside.
        """
        if not self.tracer.enabled:
            return
        for field_name, counter in names.items():
            self.tracer.count(counter, getattr(self.stats, field_name))
        self.tracer.count("engine.requests", self.stats.requests)
        self.tracer.count("engine.plans", self.stats.plans)
        self.tracer.count("engine.dedup_hits", self.stats.dedup_hits)
        for backend, count in sorted(self.stats.backend_requests.items()):
            self.tracer.count(f"engine.backend.{backend}", count)
