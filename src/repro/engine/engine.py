"""The schedule-execution engine: one run service for every algorithm.

:class:`ScheduleExecutionEngine` owns everything between "algorithm
wants runs" and "hypervisor interprets instructions": backend selection
(inline / snapshot / fleet) under one :class:`EnginePolicy`, coverage
pinning, speculative-wave dedup keyed by :meth:`Schedule.key`, the
unified snapshot accounting, and the single place that publishes the
``snapshot.*`` / ``ca.snapshot_*`` / ``engine.*`` counters.  Parallel
plans stream through the persistent fork-server fleet behind
:func:`repro.engine.executors.make_executor`.

Algorithms (LIFS, Causality Analysis, the VM pool) stay pure: they emit
:class:`RunRequest`/:class:`RunPlan` values and consume
:class:`RunOutcome`\\ s — no algorithm touches the fleet,
``ContinuationCache`` or ``CheckpointPolicy`` directly.

Invariants the engine maintains (and the equivalence tests assert):

* **Bit identity** — for any request, every backend produces the same
  ``RunResult`` bits; policies change placement and accounting only.
* **Coverage pinning** — the first boot of a machine with a kcov
  callback permanently demotes snapshots *and* waves: coverage
  callbacks must fire in this process, over every instruction.
* **Opt-in dedup** — the dedup map only ever holds outcomes from an
  explicit :meth:`speculate` call and is cleared on the next one;
  a plain :meth:`run`/:meth:`run_plan` never silently reuses an earlier
  result (Causality Analysis deliberately re-executes identical
  schedules when rechecking chain edges).
"""

from __future__ import annotations

import os

from dataclasses import replace
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

from repro.hypervisor.waves import emit_run_counters
from repro.observe.tracer import NULL_TRACER, as_tracer

from repro.engine.backends import InlineBackend, SnapshotBackend
from repro.engine.executors import make_executor
from repro.engine.protocol import (EnginePolicy, EngineStats, RunOutcome,
                                   RunPlan, RunRequest)
from repro.policy import make_policy

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from typing import Callable

    from repro.kernel.machine import KernelMachine


class ScheduleExecutionEngine:
    """Execute schedules on behalf of one algorithm instance.

    An engine is built per algorithm instance (one for a LIFS search,
    one for a Causality Analysis) so its stats and continuation memo
    describe exactly that consumer's work.
    """

    def __init__(self, machine_factory: "Callable[[], KernelMachine]",
                 policy: Optional[EnginePolicy] = None,
                 tracer=None, experience=None) -> None:
        self.machine_factory = machine_factory
        self.policy = policy or EnginePolicy()
        self.tracer = as_tracer(tracer)
        self.stats = EngineStats()
        #: The search policy shaping candidate plans (repro.policy).
        #: ``experience`` is the caller's ExperienceIndex — shared
        #: across diagnoses by triage/daemon workers so ranking improves
        #: over the corpus and over uptime.
        self.search_policy = make_policy(self.policy.search_policy,
                                         experience=experience)
        self.inline_backend = InlineBackend(self)
        self.snapshot_backend = SnapshotBackend(self)
        #: The parallel executor (``None`` when the policy keeps
        #: execution sequential).  Built through the one dispatch front
        #: door; the fleet does not fork until demand crosses the
        #: policy's spin-up threshold.  An explicit threshold of zero
        #: means "always fleet": the first engage forks *and waits* for
        #: worker readiness instead of degrading inline.  On a
        #: single-core host forked workers cannot overlap with the
        #: parent — dispatch serialization is pure overhead — so the
        #: fleet only engages where parallelism can pay, unless the
        #: zero threshold explicitly forces it (tests, benchmarks).
        self.executor = None
        fleet_can_pay = ((os.cpu_count() or 1) > 1
                         or self.policy.fleet_spinup_requests <= 0)
        if self.policy.wave_jobs > 1 and self.policy.executor == "fleet" \
                and fleet_can_pay:
            self.executor = make_executor(
                machine_factory=machine_factory,
                jobs=self.policy.wave_jobs, tracer=self.tracer,
                timeout_s=self.policy.wave_timeout_s,
                max_respawns=self.policy.wave_max_retries,
                spinup_requests=self.policy.fleet_spinup_requests,
                max_continuations=self.policy.max_continuations,
                eager=self.policy.fleet_spinup_requests <= 0)
        #: ``None`` until the first boot reveals whether the factory's
        #: machines carry a coverage callback.
        self._coverage: Optional[bool] = None
        #: Speculation dedup map: ``Schedule.key() -> RunOutcome``.
        self._memo: Dict[Tuple, RunOutcome] = {}

    # -- machine knowledge ---------------------------------------------
    @property
    def snapshots_active(self) -> bool:
        """Whether runs currently resume from checkpoints (policy said
        so and no coverage machine has demoted the backend)."""
        return self.snapshot_backend.active

    def note_coverage(self, machine: "KernelMachine") -> None:
        """Record what a boot revealed about the machine factory.

        A coverage callback means every instruction must be interpreted
        in this process: snapshots (prefix skipping) and waves (child
        processes) are both permanently pinned off.
        """
        if self._coverage is None:
            self._coverage = machine.coverage_cb is not None
        if machine.coverage_cb is not None:
            self.snapshot_backend.active = False

    def prime(self) -> "KernelMachine":
        """Eagerly boot one machine and, when the policy allows, adopt
        it as the snapshot vehicle (the Causality Analysis pattern —
        CA needs a booted image up front anyway).  Returns the machine;
        a halted or coverage-instrumented boot demotes snapshots."""
        machine = self.machine_factory()
        self.note_coverage(machine)
        snapshot = self.snapshot_backend
        if snapshot.active and not machine.halted:
            snapshot.adopt(machine)
        else:
            snapshot.active = False
        return machine

    def wave_ready(self, probe: bool = False) -> bool:
        """Whether a plan would genuinely fan out to child processes.

        With ``probe=True`` an unknown coverage status is resolved by
        booting one machine; without it, unknown is treated as safe —
        the first sequential run always boots (and checks) before any
        wave is launched.
        """
        if self.executor is None or not self.executor.parallel:
            return False
        if self._coverage is None and probe:
            self.note_coverage(self.machine_factory())
        return not self._coverage

    # -- execution ------------------------------------------------------
    def run(self, request: RunRequest) -> RunOutcome:
        """Execute one request (or answer it from the speculation memo)."""
        if self._memo:
            outcome = self._memo.pop(request.schedule.key(), None)
            if outcome is not None:
                outcome = replace(outcome, dedup_hit=True)
                self.stats.dedup_hits += 1
                if outcome.remote:
                    # The run executed untraced (fleet worker or
                    # untraced parent assist); re-emit its counters now
                    # that it is consumed.
                    emit_run_counters(self.tracer, outcome.run)
                self._account(outcome)
                return outcome
        outcome = self._execute_local(request)
        self._account(outcome)
        return outcome

    def _execute_local(self, request: RunRequest) -> RunOutcome:
        """One traced in-parent execution through the snapshot/inline
        machinery.  Accepts raw *and* prepared requests: the snapshot
        backend resolves a missing resume point / capture policy and
        leaves an already-resolved one as-is."""
        if self.snapshot_backend.active:
            return self.snapshot_backend.run(request)
        return self.inline_backend.run(request)

    def _execute_speculative(self, request: RunRequest) -> RunOutcome:
        """A parent-assist run inside a speculative plan: executed with
        tracing suppressed and marked ``remote`` — exactly like a fleet
        worker's run, its counters are only emitted if it is consumed,
        so over-eager speculation never perturbs trace totals."""
        saved = self.tracer
        self.tracer = NULL_TRACER
        try:
            outcome = self._execute_local(request)
        finally:
            self.tracer = saved
        return replace(outcome, remote=True)

    def _prepare(self, request: RunRequest) -> RunRequest:
        """Resolve a request for an executor: pin its resume point and
        capture policy so any placement executes exactly the run the
        snapshot/inline path would have produced.  Candidate meta is
        policy bookkeeping for the parent only — stripped here so it
        never ships to a worker."""
        snapshot = self.snapshot_backend
        return replace(request,
                       resume_from=snapshot.resolve_resume(request),
                       checkpoint_policy=snapshot.checkpoint_policy(request),
                       meta=None)

    def run_plan(self, plan: RunPlan) -> List[RunOutcome]:
        """Execute a batch; outcomes come back in submission order.

        The batch streams through the fleet executor when one is
        available, engaged (spin-up threshold crossed) and the plan is
        wide enough; otherwise it is exactly the sequential :meth:`run`
        loop.  Fleet workers run untraced, so the parent re-emits each
        remote run's ``hv.*`` counters at merge time — sequential
        identities (``hv.runs == lifs.schedules + ca.schedules``) hold
        either way.
        """
        self.stats.plans += 1
        use_fleet = (len(plan.requests) >= 2 and self.wave_ready()
                     and self.executor.engage(len(plan.requests)))
        backend = (self.executor.name if use_fleet
                   else (self.snapshot_backend.name
                         if self.snapshot_backend.active
                         else self.inline_backend.name))
        self._trace_plan(plan, backend)
        if not use_fleet:
            return [self.run(request) for request in plan.requests]
        prepared = RunPlan([self._prepare(r) for r in plan.requests],
                           phase=plan.phase)
        outcomes: List[Optional[RunOutcome]] = [None] * len(plan.requests)
        for index, outcome in self.executor.submit(
                prepared, local_run=self._execute_local):
            if outcome.remote:
                emit_run_counters(self.tracer, outcome.run)
            self._account(outcome)
            outcomes[index] = outcome
        return outcomes  # type: ignore[return-value]

    def shape_plan(self, plan: RunPlan, context=None):
        """Route a candidate plan through the search policy.

        Returns ``(shaped plan, pruned requests)``: the policy first
        discards candidates it can prove irrelevant, then orders the
        rest.  Callers execute the shaped plan and map outcomes back to
        submission positions through each request's ``meta.index``.
        The default static policy returns the canonical order and
        prunes nothing, so routing every batch through here is free.
        """
        shaped, pruned = self.search_policy.shape(plan, context)
        if pruned and self.tracer.enabled:
            self.tracer.point("policy.prune", stage="policy",
                              phase=plan.phase, pruned=len(pruned),
                              kept=len(shaped.requests))
        return shaped, pruned

    def speculate(self, plan: RunPlan) -> None:
        """Precompute a plan through the fleet and stash the outcomes in
        the dedup map for later :meth:`run` calls to consume by schedule
        key.

        Any previous speculation is dropped first (uncounted — the
        caller decides what "discarded" means via
        :meth:`discard_speculation`).  Nothing is accounted or traced
        here: speculative work only enters the stats (and the counter
        totals) when it is consumed, so an over-eager speculation can
        never perturb the diagnosis.  Until the fleet is engaged the
        call is a no-op and requests simply run authoritatively.
        """
        self._memo = {}
        if len(plan.requests) < 2 or not self.wave_ready():
            return
        if not self.executor.engage(len(plan.requests)):
            return
        self.stats.plans += 1
        self._trace_plan(plan, self.executor.name)
        prepared = RunPlan([self._prepare(r) for r in plan.requests],
                           phase=plan.phase)
        memo: Dict[Tuple, RunOutcome] = {}
        for index, outcome in self.executor.submit(
                prepared, local_run=self._execute_speculative):
            memo[plan.requests[index].schedule.key()] = outcome
        self._memo = memo

    def discard_speculation(self) -> int:
        """Drop unconsumed speculative outcomes (early exit), counting
        them as ``hv.wave.discarded``; returns how many were dropped."""
        dropped = len(self._memo)
        if dropped:
            self.tracer.count("hv.wave.discarded", dropped)
            self._memo = {}
        return dropped

    def close(self) -> None:
        """Retire the engine's resident fleet workers (no-op when the
        fleet never spun up).  Algorithms call this when their search
        ends; an unclosed engine's workers are daemonic and die with the
        parent process regardless."""
        if self.executor is not None:
            self.executor.close()

    # -- accounting -----------------------------------------------------
    def _account(self, outcome: RunOutcome) -> None:
        """Fold one outcome into the engine stats.

        One formula covers every backend: ``suffix = steps - prefix -
        spliced`` is what the interpreter actually executed for a
        resumed run; a fresh boot additionally interprets its setup.
        """
        stats = self.stats
        stats.requests += 1
        stats.backend_requests[outcome.backend] = (
            stats.backend_requests.get(outcome.backend, 0) + 1)
        suffix = (outcome.run.steps - outcome.prefix_steps
                  - outcome.spliced_steps)
        if outcome.resumed:
            stats.snapshot_hits += 1
            stats.resumed_steps += suffix
            stats.saved_steps += (outcome.prefix_steps + outcome.setup_steps
                                  + outcome.spliced_steps)
            stats.interpreted_steps += suffix
        else:
            stats.snapshot_misses += 1
            stats.interpreted_steps += (outcome.run.steps
                                        + outcome.setup_steps)
        if outcome.spliced_steps:
            stats.splices += 1
            stats.spliced_steps += outcome.spliced_steps
        stats.checkpoints_captured += len(outcome.checkpoints)

    def _trace_plan(self, plan: RunPlan, backend: str) -> None:
        if self.tracer.enabled and plan.requests:
            self.tracer.point("engine.plan", stage="engine",
                              phase=plan.phase, backend=backend,
                              requests=len(plan.requests))

    def emit_counters(self, names: Mapping[str, str]) -> None:
        """Publish the engine accounting as trace counters.

        ``names`` maps :class:`EngineStats` field names to the counter
        names the consumer's report section expects
        (:data:`LIFS_COUNTER_NAMES` / :data:`CA_COUNTER_NAMES`); the
        engine's own ``engine.*`` counters are always emitted alongside.
        """
        if not self.tracer.enabled:
            return
        for field_name, counter in names.items():
            self.tracer.count(counter, getattr(self.stats, field_name))
        self.tracer.count("engine.requests", self.stats.requests)
        self.tracer.count("engine.plans", self.stats.plans)
        self.tracer.count("engine.dedup_hits", self.stats.dedup_hits)
        for backend, count in sorted(self.stats.backend_requests.items()):
            self.tracer.count(f"engine.backend.{backend}", count)
        policy_stats = self.search_policy.stats
        self.tracer.count("policy.ranked", policy_stats.ranked)
        self.tracer.count("policy.pruned", policy_stats.pruned)
        self.tracer.count("policy.experience_hits",
                          policy_stats.experience_hits)
