"""repro.engine — the unified schedule-execution engine.

One run service between "algorithm wants runs" and "hypervisor
interprets instructions".  LIFS and Causality Analysis emit
:class:`RunRequest`/:class:`RunPlan` values and consume
:class:`RunOutcome`\\ s; the :class:`ScheduleExecutionEngine` decides
*where* and *how* each schedule executes — inline fresh boots, snapshot
resume/splice on a vehicle machine, or streaming dispatch across the
persistent fork-server worker fleet — under one :class:`EnginePolicy`
resolved from algorithm configs, api keywords and CLI flags.  See
docs/ARCHITECTURE.md.

* :mod:`repro.engine.protocol`  — the request/plan/outcome vocabulary,
  :class:`EnginePolicy` resolution and :class:`EngineStats`;
* :mod:`repro.engine.backends`  — the in-parent backends
  (:class:`InlineBackend`, :class:`SnapshotBackend`);
* :mod:`repro.engine.executors` — the one process-dispatch front door
  (:func:`make_executor`: :class:`InlineExecutor` /
  :class:`FleetExecutor` for schedule plans, :class:`JobExecutor` for
  triage jobs);
* :mod:`repro.engine.fleet`     — the fork-server worker substrate;
* :mod:`repro.engine.engine`    — the engine itself.
"""

from repro.engine.backends import InlineBackend, SnapshotBackend
from repro.engine.engine import ScheduleExecutionEngine
from repro.engine.executors import (
    FleetExecutor,
    InlineExecutor,
    JobExecutor,
    make_executor,
)
from repro.engine.protocol import (
    CA_COUNTER_NAMES,
    LIFS_COUNTER_NAMES,
    EnginePolicy,
    EngineStats,
    RunOutcome,
    RunPlan,
    RunRequest,
)

__all__ = [
    "CA_COUNTER_NAMES",
    "LIFS_COUNTER_NAMES",
    "EnginePolicy",
    "EngineStats",
    "FleetExecutor",
    "InlineBackend",
    "InlineExecutor",
    "JobExecutor",
    "RunOutcome",
    "RunPlan",
    "RunRequest",
    "ScheduleExecutionEngine",
    "SnapshotBackend",
    "make_executor",
]
