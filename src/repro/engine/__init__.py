"""repro.engine — the unified schedule-execution engine.

One run service between "algorithm wants runs" and "hypervisor
interprets instructions".  LIFS and Causality Analysis emit
:class:`RunRequest`/:class:`RunPlan` values and consume
:class:`RunOutcome`\\ s; the :class:`ScheduleExecutionEngine` decides
*where* and *how* each schedule executes — inline fresh boots, snapshot
resume/splice on a vehicle machine, or parallel waves across child
processes — under one :class:`EnginePolicy` resolved from algorithm
configs, api keywords and CLI flags.  See docs/ARCHITECTURE.md.

* :mod:`repro.engine.protocol` — the request/plan/outcome vocabulary,
  :class:`EnginePolicy` resolution and :class:`EngineStats`;
* :mod:`repro.engine.backends` — the composable backends
  (:class:`InlineBackend`, :class:`SnapshotBackend`,
  :class:`WaveBackend`);
* :mod:`repro.engine.engine` — the engine itself.
"""

from repro.engine.backends import InlineBackend, SnapshotBackend, WaveBackend
from repro.engine.engine import ScheduleExecutionEngine
from repro.engine.protocol import (
    CA_COUNTER_NAMES,
    LIFS_COUNTER_NAMES,
    EnginePolicy,
    EngineStats,
    RunOutcome,
    RunPlan,
    RunRequest,
)

__all__ = [
    "CA_COUNTER_NAMES",
    "LIFS_COUNTER_NAMES",
    "EnginePolicy",
    "EngineStats",
    "InlineBackend",
    "RunOutcome",
    "RunPlan",
    "RunRequest",
    "ScheduleExecutionEngine",
    "SnapshotBackend",
    "WaveBackend",
]
