"""Command-line interface.

::

    python -m repro list                      # the corpus
    python -m repro show CVE-2017-15649      # model + metadata
    python -m repro diagnose CVE-2017-15649  # direct diagnosis + report
    python -m repro diagnose SYZ-04 --pipeline   # fuzzer-report pipeline
    python -m repro diagnose CVE-2017-15649 --trace t.jsonl  # + tracing
    python -m repro trace-report t.jsonl     # summarize a trace
    python -m repro replay CVE-2017-15649    # record + verify replay
    python -m repro evaluate --json out.json # the whole evaluation
    python -m repro evaluate --jobs 4        # ... across 4 processes
    python -m repro triage --corpus --jobs 4 # crash-triage service
    python -m repro triage reports/ --store store.jsonl   # intake dir
    python -m repro serve --port 8080 --data-dir daemon-data  # daemon
    python -m repro minimize SYZ-08          # delta-debug a reproducer
    python -m repro fuzz SYZ-04 --diagnose   # oracle-free end to end

Every pipeline subcommand (diagnose / evaluate / triage) routes through
the :mod:`repro.api` facade and shares one flag vocabulary via parent
parsers: ``--trace PATH`` (JSONL span/counter trace), ``--jobs N``,
``--timeout S`` and (triage) ``--store PATH`` are spelled and defaulted
identically everywhere they appear.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import api
from repro.analysis.report import render_report
from repro.analysis.tables import Table
from repro.corpus import registry
from repro.engine import EnginePolicy

#: One shared default for every subcommand that takes ``--timeout``.
DEFAULT_TIMEOUT_S = 300.0


def _parent_parsers():
    """The shared flag vocabulary, as argparse parent parsers.

    ``trace``: --trace for every pipeline subcommand; ``waves``:
    --parallel-waves for everything that diagnoses; ``pool``: --jobs
    and --timeout for the multi-bug subcommands; ``store``: --store for
    the triage service.  (The 1.x hidden aliases --workers,
    --job-timeout and --result-store were removed in 2.0.)
    """
    trace = argparse.ArgumentParser(add_help=False)
    trace.add_argument("--trace", metavar="PATH",
                       help="write a JSONL span/counter trace of this "
                            "run to PATH (see 'repro trace-report')")

    waves = argparse.ArgumentParser(add_help=False)
    waves.add_argument("--parallel-waves", dest="parallel_waves", type=int,
                       default=1, metavar="N",
                       help="execute each diagnosis's independent "
                            "schedule batches (LIFS frontier rounds, CA "
                            "flip tests) across N child processes "
                            "(default 1: sequential); results are "
                            "bit-identical, only hv.wave.* accounting "
                            "differs")
    waves.add_argument("--executor", choices=("fleet", "inline"),
                       default=None,
                       help="wave dispatch backend: 'fleet' (persistent "
                            "fork-server workers, the default) or "
                            "'inline' (never fork; waves run "
                            "in-process); irrelevant without "
                            "--parallel-waves")
    from repro.policy import POLICY_CHOICES
    waves.add_argument("--policy", choices=POLICY_CHOICES, default=None,
                       help="search policy: 'static' (canonical order, "
                            "the default) or 'adaptive' (rank candidate "
                            "runs by prior-diagnosis experience and "
                            "prune flips ruled out by error "
                            "invariants); diagnoses are bit-identical, "
                            "only policy.* accounting differs")

    pool = argparse.ArgumentParser(add_help=False)
    pool.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="worker processes (default 1: in-process)")
    pool.add_argument("--timeout", type=float, default=DEFAULT_TIMEOUT_S,
                      metavar="S",
                      help="per-job timeout in seconds (default "
                           f"{DEFAULT_TIMEOUT_S:.0f})")

    store = argparse.ArgumentParser(add_help=False)
    store.add_argument("--store", metavar="PATH",
                       help="persistent JSONL result store; repeat "
                            "signatures answer from it as cache hits")
    return trace, waves, pool, store


def _engine_policy(args: argparse.Namespace) -> EnginePolicy:
    """Resolve the run's engine policy from the CLI flags.

    CLI flags sit at the lowest precedence tier: an explicit algorithm
    config or api keyword (neither expressible from the command line)
    would win over them, per :meth:`EnginePolicy.resolve`.
    """
    no_snapshot = getattr(args, "no_snapshot", False)
    return EnginePolicy.resolve(
        cli_snapshots=False if no_snapshot else None,
        cli_wave_jobs=getattr(args, "parallel_waves", None),
        cli_executor=getattr(args, "executor", None),
        cli_search_policy=getattr(args, "policy", None))


def _open_tracer(args: argparse.Namespace):
    """The run's tracer, from ``--trace`` (None when untraced)."""
    path = getattr(args, "trace", None)
    if not path:
        return None
    from repro.observe import JsonlSink, Tracer
    return Tracer(JsonlSink(path))


def _close_tracer(tracer, args: argparse.Namespace) -> None:
    if tracer is not None:
        tracer.close()
        print(f"trace written to {args.trace}")


def _cmd_list(args: argparse.Namespace) -> int:
    registry.load()
    table = Table("aitia-repro corpus",
                  ["bug id", "source", "subsystem", "failure",
                   "multi-var", "threads"])
    bugs = (registry.figure_examples() + registry.all_bugs()
            + registry.extension_bugs())
    for bug in bugs:
        multi = "loose" if bug.loosely_correlated else (
            "yes" if bug.multi_variable else "no")
        table.add_row(bug.bug_id, bug.source, bug.subsystem,
                      bug.bug_type.name, multi, len(bug.threads))
    print(table.render())
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    bug = registry.get_bug(args.bug_id)
    print(f"{bug.bug_id}: {bug.title}")
    print(f"subsystem: {bug.subsystem}; failure: {bug.bug_type.value}")
    print()
    print(bug.description)
    print()
    print("racing contexts:")
    for thread in bug.threads:
        print(f"  {thread.proc}: {thread.syscall} -> {thread.entry}() "
              f"[{thread.kind.value}]")
    print()
    print(bug.image.disassemble())
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    bug = registry.get_bug(args.bug_id)
    report = None
    if args.pipeline:
        from repro.trace.syzkaller import run_bug_finder
        report = run_bug_finder(bug)
        print(f"[bug finder] {report.crash.failure}")
        print(f"[bug finder] history of {len(report.history)} events")
    tracer = _open_tracer(args)
    policy = _engine_policy(args)
    try:
        diagnosis = api.diagnose(bug, report=report, vm_count=args.vms,
                                 snapshots=policy.use_snapshots,
                                 wave_jobs=policy.wave_jobs,
                                 executor=policy.executor,
                                 policy=policy.search_policy,
                                 tracer=tracer)
    finally:
        _close_tracer(tracer, args)
    print(render_report(diagnosis, image=bug.image))
    return 0 if diagnosis.reproduced else 1


def _cmd_evaluate(args: argparse.Namespace) -> int:
    tracer = _open_tracer(args)
    policy = _engine_policy(args)
    try:
        evaluation = api.evaluate(args.bug_ids or None,
                                  pipeline=args.pipeline, jobs=args.jobs,
                                  timeout_s=args.timeout,
                                  snapshots=policy.use_snapshots,
                                  wave_jobs=policy.wave_jobs,
                                  executor=policy.executor,
                                  policy=policy.search_policy,
                                  tracer=tracer)
    finally:
        _close_tracer(tracer, args)
    table = Table("corpus evaluation",
                  ["bug", "repro", "inter", "LIFS #", "CA #",
                   "races", "chain", "ambiguous"])
    for row in evaluation.rows:
        table.add_row(row.bug_id, "yes" if row.reproduced else "NO",
                      row.interleavings, row.lifs_schedules,
                      row.ca_schedules, row.races_detected,
                      row.races_in_chain,
                      "yes" if row.ambiguous else "no")
    print(table.render())
    averages = evaluation.averages()
    print(f"\naverages: {averages['memory_accesses']:.1f} accesses, "
          f"{averages['races_detected']:.1f} races, "
          f"{averages['races_in_chain']:.1f} chain races; "
          f"ambiguous: {', '.join(evaluation.ambiguous_bugs) or 'none'}")
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(evaluation.to_json())
        print(f"wrote {args.json}")
    return 0


def _cmd_triage(args: argparse.Namespace) -> int:
    from repro.service.store import ResultStore
    from repro.service.triage import TriageService

    if not args.corpus and args.intake is None:
        print("error: give an intake directory or --corpus",
              file=sys.stderr)
        return 2
    if args.intake is not None:
        import os
        if not os.path.isdir(args.intake):
            print(f"error: intake directory {args.intake!r} does not exist",
                  file=sys.stderr)
            return 2
    sources: list = []
    if args.corpus:
        registry.load()
        bugs = ([registry.get_bug(b) for b in args.bugs]
                if args.bugs else registry.all_bugs())
        sources.extend(bugs)
        if args.emit:
            import os
            from repro.service.artifacts import emit_artifact
            os.makedirs(args.emit, exist_ok=True)
            for bug in bugs:
                emit_artifact(bug, args.emit)
    if args.intake is not None:
        sources.append(args.intake)
    tracer = _open_tracer(args)
    store = ResultStore(args.store) if args.store else None
    policy = _engine_policy(args)
    service = TriageService(jobs=args.jobs, store=store,
                            timeout_s=args.timeout,
                            wave_jobs=policy.wave_jobs,
                            executor=policy.executor,
                            policy=policy.search_policy,
                            tracer=tracer)
    try:
        summary = api.triage(sources, pipeline=args.pipeline,
                             service=service)
    finally:
        _close_tracer(tracer, args)
    if summary.empty:
        # Zero reports (an empty intake directory, say) is "nothing to
        # do", not a failure — the daemon treats an idle queue the same
        # way (repro.daemon shares this message).
        from repro.service.triage import EMPTY_INTAKE_MESSAGE
        print(EMPTY_INTAKE_MESSAGE)
        if args.json:
            with open(args.json, "w") as fh:
                fh.write(summary.to_json())
        return 0
    print(summary.render())
    print()
    print(service.metrics.render())
    if args.store:
        print(f"\nstore: {service.store!r}")
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(summary.to_json())
        print(f"wrote {args.json}")
    return 0 if summary.all_ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.daemon.lifecycle import DaemonConfig, run_daemon
    from repro.daemon.tenants import TenantPolicy

    engine = _engine_policy(args)
    config = DaemonConfig(
        host=args.host, port=args.port, data_dir=args.data_dir,
        jobs=args.jobs, timeout_s=args.timeout,
        wave_jobs=engine.wave_jobs,
        policy=engine.search_policy,
        hot_capacity=args.hot_capacity, max_depth=args.max_depth,
        store_shards=args.store_shards, queue_shards=args.queue_shards,
        batch_size=args.batch_size,
        tenant_policy=TenantPolicy(rate=args.rate, burst=args.burst,
                                   max_queued=args.tenant_max_queued),
        paused=args.paused, diagnoser=args.diagnoser,
        port_file=args.port_file)
    if args.trace:
        from repro.observe import JsonlSink, Tracer
        config.tracer = Tracer(JsonlSink(args.trace))
    try:
        return run_daemon(config)
    finally:
        if config.tracer is not None:
            config.tracer.close()


def _cmd_minimize(args: argparse.Namespace) -> int:
    from repro.core.minimize import minimize_schedule

    bug = registry.get_bug(args.bug_id)
    result = minimize_schedule(bug.machine_factory,
                               bug.known_failing_schedule)
    print(f"input:     {bug.known_failing_schedule.describe()}")
    print(f"minimized: {result.schedule.describe()}")
    print(f"removed {result.removed_preemptions} preemption(s) and "
          f"{result.removed_constraints} constraint(s) in "
          f"{result.schedules_executed} verification runs")
    print(f"still fails with: {result.run.failure}")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.trace.fuzzer import RandomScheduleFuzzer

    bug = registry.get_bug(args.bug_id)
    fuzzer = RandomScheduleFuzzer(bug.machine_factory, seed=args.seed,
                                  max_runs=args.max_runs)
    result = fuzzer.fuzz()
    if not result.crashed:
        print(f"no crash in {result.runs_executed} random runs "
              f"(seed {args.seed})")
        return 1
    print(f"crash found after {result.runs_executed} random runs "
          f"(seed {args.seed}):")
    print(f"  {result.failure}")
    if result.schedule is not None:
        print(f"  distilled reproducer: {result.schedule.describe()}")
    if args.diagnose:
        from repro.trace.syzkaller import run_bug_finder
        report = run_bug_finder(bug, fuzz_seed=args.seed,
                                max_fuzz_runs=args.max_runs)
        diagnosis = api.diagnose(bug, report=report)
        print()
        print(render_report(diagnosis, image=bug.image))
        return 0 if diagnosis.reproduced else 1
    return 0


def _cmd_trace_report(args: argparse.Namespace) -> int:
    from repro.observe.report import render_trace_report

    try:
        print(render_trace_report(args.trace_file))
    except BrokenPipeError:
        raise  # output piped into head/less — main() handles it
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.hypervisor.controller import ScheduleController
    from repro.hypervisor.replay import record, replay

    bug = registry.get_bug(args.bug_id)
    run = ScheduleController(bug.machine_factory(),
                             bug.known_failing_schedule).run()
    recording = record(run)
    print(f"recorded: {recording.schedule.describe()}")
    print(f"outcome:  {run.failure}")
    replayed = replay(bug.machine_factory, recording)
    print(f"replayed: identical execution "
          f"({len(replayed.trace)} instructions, same signature)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AITIA (EuroSys 2023) reproduction: diagnose kernel "
                    "concurrency failures as causality chains.")
    sub = parser.add_subparsers(dest="command", required=True)
    trace_parent, waves_parent, pool_parent, store_parent = \
        _parent_parsers()

    sub.add_parser("list", help="list the corpus").set_defaults(
        func=_cmd_list)

    show = sub.add_parser("show", help="print one bug's model")
    show.add_argument("bug_id")
    show.set_defaults(func=_cmd_show)

    diagnose = sub.add_parser("diagnose", help="diagnose one bug",
                              parents=[trace_parent, waves_parent])
    diagnose.add_argument("bug_id")
    diagnose.add_argument("--pipeline", action="store_true",
                          help="go through the synthetic bug finder "
                               "(history + slicing) instead of the "
                               "canonical threads")
    diagnose.add_argument("--no-snapshot", action="store_true",
                          help="ablation: disable the prefix-checkpoint "
                               "engine (snapshot/resume + suffix splicing); "
                               "results are bit-identical, only snapshot.* "
                               "accounting differs")
    diagnose.add_argument("--vms", type=int, default=32,
                          help="VM pool size for the parallel-time "
                               "estimate (default 32)")
    diagnose.set_defaults(func=_cmd_diagnose)

    rep = sub.add_parser("replay",
                         help="record the known failing schedule and "
                              "verify deterministic replay")
    rep.add_argument("bug_id")
    rep.set_defaults(func=_cmd_replay)

    evaluate = sub.add_parser(
        "evaluate", help="run the paper's evaluation over the corpus",
        parents=[trace_parent, waves_parent, pool_parent])
    evaluate.add_argument("bug_ids", nargs="*",
                          help="specific bugs (default: all 22)")
    evaluate.add_argument("--pipeline", action="store_true",
                          help="drive every bug through the synthetic "
                               "bug finder")
    evaluate.add_argument("--no-snapshot", action="store_true",
                          help="ablation: disable the prefix-checkpoint "
                               "engine in both search stages")
    evaluate.add_argument("--json", metavar="PATH",
                          help="also write the structured results as JSON")
    evaluate.set_defaults(func=_cmd_evaluate)

    triage = sub.add_parser(
        "triage", help="run the crash-triage service: intake -> dedup "
                       "-> parallel diagnosis -> cached results",
        parents=[trace_parent, waves_parent, pool_parent, store_parent])
    triage.add_argument("intake", nargs="?", metavar="DIR",
                        help="intake directory of *.crash artifacts")
    triage.add_argument("--corpus", action="store_true",
                        help="triage the corpus bugs instead of (or in "
                             "addition to) an intake directory")
    triage.add_argument("--bugs", nargs="+", metavar="BUG_ID",
                        help="with --corpus: specific bugs "
                             "(default: all 22)")
    triage.add_argument("--pipeline", action="store_true",
                        help="with --corpus: diagnose through the "
                             "synthetic bug finder (history + slicing)")
    triage.add_argument("--emit", metavar="DIR",
                        help="with --corpus: also drop each bug's "
                             "serialized crash artifact into DIR")
    triage.add_argument("--json", metavar="PATH",
                        help="also write the triage summary as JSON")
    triage.set_defaults(func=_cmd_triage)

    serve = sub.add_parser(
        "serve", help="run the long-running triage intake daemon: "
                      "HTTP .crash submission, dedup, journaled queue, "
                      "two-tier result cache, /metrics",
        parents=[trace_parent, waves_parent, pool_parent])
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8080,
                       help="TCP port (0: ephemeral; see --port-file)")
    serve.add_argument("--data-dir", default="daemon-data", metavar="DIR",
                       help="queue journal + cold store shards live here "
                            "(default ./daemon-data)")
    serve.add_argument("--hot-capacity", type=int, default=1024,
                       metavar="N",
                       help="hot-tier LRU capacity in records "
                            "(default 1024)")
    serve.add_argument("--store-shards", type=int, default=8, metavar="N",
                       help="cold-tier JSONL shard count (default 8)")
    serve.add_argument("--queue-shards", type=int, default=4, metavar="N",
                       help="queue journal shard count (default 4)")
    serve.add_argument("--max-depth", type=int, default=256, metavar="N",
                       help="bounded queue depth; submissions past it "
                            "are shed with HTTP 429 (default 256)")
    serve.add_argument("--batch-size", type=int, default=4, metavar="N",
                       help="jobs per drain batch (default 4)")
    serve.add_argument("--rate", type=float, default=0.0, metavar="R",
                       help="per-tenant sustained submissions/second "
                            "(default 0: unlimited)")
    serve.add_argument("--burst", type=float, default=100.0, metavar="B",
                       help="per-tenant burst capacity (default 100)")
    serve.add_argument("--tenant-max-queued", type=int, default=None,
                       metavar="N",
                       help="per-tenant bound on queued+running jobs "
                            "(default: unbounded)")
    serve.add_argument("--paused", action="store_true",
                       help="accept and journal submissions but do not "
                            "drain the queue (recovery testing)")
    serve.add_argument("--port-file", metavar="PATH",
                       help="write the bound host:port here once "
                            "listening (for --port 0)")
    serve.add_argument("--diagnoser", metavar="MODULE:FUNC",
                       help="worker entry override (default: the real "
                            "pipeline; tests use "
                            "repro.daemon.worker:stub_diagnose_job)")
    serve.set_defaults(func=_cmd_serve)

    trace_report = sub.add_parser(
        "trace-report",
        help="summarize a --trace JSONL file: per-stage spans and "
             "seconds, LIFS depth profile, CA flips, counters")
    trace_report.add_argument("trace_file", metavar="TRACE.jsonl")
    trace_report.set_defaults(func=_cmd_trace_report)

    minimize = sub.add_parser(
        "minimize", help="delta-debug a bug's known failing schedule")
    minimize.add_argument("bug_id")
    minimize.set_defaults(func=_cmd_minimize)

    fuzz = sub.add_parser(
        "fuzz", help="find the crash with the seeded random scheduler "
                     "(no recorded reproducer)")
    fuzz.add_argument("bug_id")
    fuzz.add_argument("--seed", type=int, default=7)
    fuzz.add_argument("--max-runs", type=int, default=20000)
    fuzz.add_argument("--diagnose", action="store_true",
                      help="continue into the full AITIA pipeline")
    fuzz.set_defaults(func=_cmd_fuzz)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into head/less that closed early — not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
