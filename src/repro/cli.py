"""Command-line interface.

::

    python -m repro list                      # the corpus
    python -m repro show CVE-2017-15649      # model + metadata
    python -m repro diagnose CVE-2017-15649  # direct diagnosis + report
    python -m repro diagnose SYZ-04 --pipeline   # fuzzer-report pipeline
    python -m repro replay CVE-2017-15649    # record + verify replay
    python -m repro evaluate --json out.json # the whole evaluation
    python -m repro evaluate --jobs 4        # ... across 4 processes
    python -m repro triage --corpus --jobs 4 # crash-triage service
    python -m repro triage reports/ --store store.jsonl   # intake dir
    python -m repro minimize SYZ-08          # delta-debug a reproducer
    python -m repro fuzz SYZ-04 --diagnose   # oracle-free end to end
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.report import render_report
from repro.analysis.tables import Table
from repro.core.diagnose import Aitia
from repro.corpus import registry


def _cmd_list(args: argparse.Namespace) -> int:
    registry.load()
    table = Table("aitia-repro corpus",
                  ["bug id", "source", "subsystem", "failure",
                   "multi-var", "threads"])
    bugs = (registry.figure_examples() + registry.all_bugs()
            + registry.extension_bugs())
    for bug in bugs:
        multi = "loose" if bug.loosely_correlated else (
            "yes" if bug.multi_variable else "no")
        table.add_row(bug.bug_id, bug.source, bug.subsystem,
                      bug.bug_type.name, multi, len(bug.threads))
    print(table.render())
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    bug = registry.get_bug(args.bug_id)
    print(f"{bug.bug_id}: {bug.title}")
    print(f"subsystem: {bug.subsystem}; failure: {bug.bug_type.value}")
    print()
    print(bug.description)
    print()
    print("racing contexts:")
    for thread in bug.threads:
        print(f"  {thread.proc}: {thread.syscall} -> {thread.entry}() "
              f"[{thread.kind.value}]")
    print()
    print(bug.image.disassemble())
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    bug = registry.get_bug(args.bug_id)
    report = None
    if args.pipeline:
        from repro.trace.syzkaller import run_bug_finder
        report = run_bug_finder(bug)
        print(f"[bug finder] {report.crash.failure}")
        print(f"[bug finder] history of {len(report.history)} events")
    diagnosis = Aitia(bug, report=report, vm_count=args.vms).diagnose()
    print(render_report(diagnosis, image=bug.image))
    return 0 if diagnosis.reproduced else 1


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.analysis.evaluation import evaluate_corpus

    bugs = None
    if args.bug_ids:
        bugs = [registry.get_bug(b) for b in args.bug_ids]
    evaluation = evaluate_corpus(bugs, pipeline=args.pipeline,
                                 jobs=args.jobs)
    table = Table("corpus evaluation",
                  ["bug", "repro", "inter", "LIFS #", "CA #",
                   "races", "chain", "ambiguous"])
    for row in evaluation.rows:
        table.add_row(row.bug_id, "yes" if row.reproduced else "NO",
                      row.interleavings, row.lifs_schedules,
                      row.ca_schedules, row.races_detected,
                      row.races_in_chain,
                      "yes" if row.ambiguous else "no")
    print(table.render())
    averages = evaluation.averages()
    print(f"\naverages: {averages['memory_accesses']:.1f} accesses, "
          f"{averages['races_detected']:.1f} races, "
          f"{averages['races_in_chain']:.1f} chain races; "
          f"ambiguous: {', '.join(evaluation.ambiguous_bugs) or 'none'}")
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(evaluation.to_json())
        print(f"wrote {args.json}")
    return 0


def _cmd_triage(args: argparse.Namespace) -> int:
    from repro.service.artifacts import emit_artifact
    from repro.service.store import ResultStore
    from repro.service.triage import TriageService

    if not args.corpus and args.intake is None:
        print("error: give an intake directory or --corpus",
              file=sys.stderr)
        return 2
    store = ResultStore(args.store) if args.store else None
    service = TriageService(jobs=args.jobs, store=store,
                            timeout_s=args.timeout)
    if args.corpus:
        registry.load()
        bugs = ([registry.get_bug(b) for b in args.bugs]
                if args.bugs else registry.all_bugs())
        for bug in bugs:
            service.submit_bug(bug, pipeline=args.pipeline)
            if args.emit:
                import os
                os.makedirs(args.emit, exist_ok=True)
                emit_artifact(bug, args.emit)
    if args.intake is not None:
        import os
        if not os.path.isdir(args.intake):
            print(f"error: intake directory {args.intake!r} does not exist",
                  file=sys.stderr)
            return 2
        service.intake_directory(args.intake)
    summary = service.run()
    print(summary.render())
    print()
    print(service.metrics.render())
    if args.store:
        print(f"\nstore: {service.store!r}")
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(summary.to_json())
        print(f"wrote {args.json}")
    return 0 if (summary.results and summary.all_ok) else 1


def _cmd_minimize(args: argparse.Namespace) -> int:
    from repro.core.minimize import minimize_schedule

    bug = registry.get_bug(args.bug_id)
    result = minimize_schedule(bug.machine_factory,
                               bug.known_failing_schedule)
    print(f"input:     {bug.known_failing_schedule.describe()}")
    print(f"minimized: {result.schedule.describe()}")
    print(f"removed {result.removed_preemptions} preemption(s) and "
          f"{result.removed_constraints} constraint(s) in "
          f"{result.schedules_executed} verification runs")
    print(f"still fails with: {result.run.failure}")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.trace.fuzzer import RandomScheduleFuzzer

    bug = registry.get_bug(args.bug_id)
    fuzzer = RandomScheduleFuzzer(bug.machine_factory, seed=args.seed,
                                  max_runs=args.max_runs)
    result = fuzzer.fuzz()
    if not result.crashed:
        print(f"no crash in {result.runs_executed} random runs "
              f"(seed {args.seed})")
        return 1
    print(f"crash found after {result.runs_executed} random runs "
          f"(seed {args.seed}):")
    print(f"  {result.failure}")
    if result.schedule is not None:
        print(f"  distilled reproducer: {result.schedule.describe()}")
    if args.diagnose:
        from repro.trace.syzkaller import run_bug_finder
        report = run_bug_finder(bug, fuzz_seed=args.seed,
                                max_fuzz_runs=args.max_runs)
        diagnosis = Aitia(bug, report=report).diagnose()
        print()
        print(render_report(diagnosis, image=bug.image))
        return 0 if diagnosis.reproduced else 1
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.hypervisor.controller import ScheduleController
    from repro.hypervisor.replay import record, replay

    bug = registry.get_bug(args.bug_id)
    run = ScheduleController(bug.machine_factory(),
                             bug.known_failing_schedule).run()
    recording = record(run)
    print(f"recorded: {recording.schedule.describe()}")
    print(f"outcome:  {run.failure}")
    replayed = replay(bug.machine_factory, recording)
    print(f"replayed: identical execution "
          f"({len(replayed.trace)} instructions, same signature)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AITIA (EuroSys 2023) reproduction: diagnose kernel "
                    "concurrency failures as causality chains.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the corpus").set_defaults(
        func=_cmd_list)

    show = sub.add_parser("show", help="print one bug's model")
    show.add_argument("bug_id")
    show.set_defaults(func=_cmd_show)

    diagnose = sub.add_parser("diagnose", help="diagnose one bug")
    diagnose.add_argument("bug_id")
    diagnose.add_argument("--pipeline", action="store_true",
                          help="go through the synthetic bug finder "
                               "(history + slicing) instead of the "
                               "canonical threads")
    diagnose.add_argument("--vms", type=int, default=32,
                          help="VM pool size for the parallel-time "
                               "estimate (default 32)")
    diagnose.set_defaults(func=_cmd_diagnose)

    rep = sub.add_parser("replay",
                         help="record the known failing schedule and "
                              "verify deterministic replay")
    rep.add_argument("bug_id")
    rep.set_defaults(func=_cmd_replay)

    evaluate = sub.add_parser(
        "evaluate", help="run the paper's evaluation over the corpus")
    evaluate.add_argument("bug_ids", nargs="*",
                          help="specific bugs (default: all 22)")
    evaluate.add_argument("--pipeline", action="store_true",
                          help="drive every bug through the synthetic "
                               "bug finder")
    evaluate.add_argument("--json", metavar="PATH",
                          help="also write the structured results as JSON")
    evaluate.add_argument("--jobs", type=int, default=1, metavar="N",
                          help="diagnose N bugs concurrently in worker "
                               "processes (default 1: in-process)")
    evaluate.set_defaults(func=_cmd_evaluate)

    triage = sub.add_parser(
        "triage", help="run the crash-triage service: intake -> dedup "
                       "-> parallel diagnosis -> cached results")
    triage.add_argument("intake", nargs="?", metavar="DIR",
                        help="intake directory of *.crash artifacts")
    triage.add_argument("--corpus", action="store_true",
                        help="triage the corpus bugs instead of (or in "
                             "addition to) an intake directory")
    triage.add_argument("--bugs", nargs="+", metavar="BUG_ID",
                        help="with --corpus: specific bugs "
                             "(default: all 22)")
    triage.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default 1: in-process)")
    triage.add_argument("--store", metavar="PATH",
                        help="persistent JSONL result store; repeat "
                             "signatures answer from it as cache hits")
    triage.add_argument("--pipeline", action="store_true",
                        help="with --corpus: diagnose through the "
                             "synthetic bug finder (history + slicing)")
    triage.add_argument("--timeout", type=float, default=300.0,
                        metavar="S", help="per-job timeout in seconds "
                                          "(default 300)")
    triage.add_argument("--emit", metavar="DIR",
                        help="with --corpus: also drop each bug's "
                             "serialized crash artifact into DIR")
    triage.add_argument("--json", metavar="PATH",
                        help="also write the triage summary as JSON")
    triage.set_defaults(func=_cmd_triage)

    minimize = sub.add_parser(
        "minimize", help="delta-debug a bug's known failing schedule")
    minimize.add_argument("bug_id")
    minimize.set_defaults(func=_cmd_minimize)

    fuzz = sub.add_parser(
        "fuzz", help="find the crash with the seeded random scheduler "
                     "(no recorded reproducer)")
    fuzz.add_argument("bug_id")
    fuzz.add_argument("--seed", type=int, default=7)
    fuzz.add_argument("--max-runs", type=int, default=20000)
    fuzz.add_argument("--diagnose", action="store_true",
                      help="continue into the full AITIA pipeline")
    fuzz.set_defaults(func=_cmd_fuzz)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into head/less that closed early — not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
