"""repro.api — the single documented entrypoint to the pipeline.

The library grew three inconsistent front doors (``Aitia(bug)
.diagnose()``, the :mod:`repro.analysis.evaluation` helpers, and
``repro.service.triage``); this facade unifies them behind three
functions the CLI also routes through, so library and command line
share one code path:

* :func:`diagnose` — one bug (by id or object) → :class:`Diagnosis`;
* :func:`evaluate` — a bug set → :class:`CorpusEvaluation`;
* :func:`triage`  — intake directories and/or corpus bugs through the
  crash-triage service → :class:`TriageReport`.

Every function accepts ``tracer=`` (a :class:`repro.observe.Tracer`)
to record structured spans and counters; ``None`` disables tracing at
zero cost.

Example::

    from repro import api
    from repro.observe import MemorySink, Tracer

    tracer = Tracer(MemorySink())
    diagnosis = api.diagnose("CVE-2017-15649", tracer=tracer)
    print(diagnosis.chain.render())
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Union

from repro.core.causality import CaConfig
from repro.core.diagnose import Aitia, Diagnosis
from repro.core.lifs import LifsConfig
from repro.engine import EnginePolicy
from repro.hypervisor.manager import DEFAULT_VM_COUNT

#: The triage facade's report type (the service's summary, re-exported
#: under its documented name).
from repro.service.triage import TriageSummary as TriageReport

__all__ = ["diagnose", "evaluate", "triage", "serve", "TriageReport"]

#: A bug workload object, or its corpus id.
BugLike = Union[str, object]
#: What :func:`triage` accepts: the literal ``"corpus"``, one intake
#: directory path, one bug (or id), or a sequence mixing all of these.
TriageSource = Union[str, object, Sequence[Union[str, object]]]


def _resolve_bug(bug_or_id: BugLike):
    if isinstance(bug_or_id, str):
        from repro.corpus import registry
        return registry.get_bug(bug_or_id)
    return bug_or_id


def diagnose(bug_or_id: BugLike, *,
             report=None,
             pipeline: bool = False,
             lifs: Optional[LifsConfig] = None,
             ca: Optional[CaConfig] = None,
             cost_model=None,
             vm_count: int = DEFAULT_VM_COUNT,
             snapshots: Optional[bool] = None,
             wave_jobs: Optional[int] = None,
             executor: Optional[str] = None,
             policy: Optional[str] = None,
             experience=None,
             tracer=None) -> Diagnosis:
    """Diagnose one kernel concurrency failure.

    ``bug_or_id`` is a corpus id (``"CVE-2017-15649"``) or any workload
    object the :class:`~repro.core.diagnose.Aitia` orchestrator accepts.
    ``pipeline=True`` first runs the synthetic bug finder to obtain a
    crash report + execution history and diagnoses through modeling and
    slicing; an explicit ``report`` skips the bug finder.  ``lifs`` /
    ``ca`` bound the two search stages; ``tracer`` records spans for
    every pipeline stage (slice, LIFS, CA, chain).

    ``snapshots=False`` is the ``--no-snapshot`` ablation: disable the
    prefix-checkpoint engine (see docs/PERFORMANCE.md) in both stages.
    ``wave_jobs`` is the ``--parallel-waves`` width: with N > 1, LIFS
    frontier rounds and CA flip batches fan out to N child processes
    (the parallel wave engine of docs/PERFORMANCE.md).  ``executor``
    selects the wave dispatch backend: ``"fleet"`` (persistent
    fork-server workers, the default) or ``"inline"`` (never fork).
    ``policy="adaptive"`` routes both search stages through the
    adaptive search policy (``--policy``, see docs/PERFORMANCE.md):
    candidate runs are ranked by the ``experience``
    (:class:`~repro.policy.ExperienceIndex`) of prior diagnoses and
    flip candidates ruled out by error invariants are pruned.  Results
    are bit-identical whatever the settings; only the ``snapshot.*`` /
    ``ca.snapshot_*`` / ``hv.wave.*`` / ``policy.*`` accounting
    differs.  All of these are ignored when an explicit ``lifs`` /
    ``ca`` config carries its own ``use_snapshots`` / ``wave_jobs`` /
    ``executor`` / ``policy``.
    """
    bug = _resolve_bug(bug_or_id)
    if report is None and pipeline:
        from repro.trace.syzkaller import run_bug_finder
        report = run_bug_finder(bug)
    resolved = EnginePolicy.resolve(snapshots=snapshots, wave_jobs=wave_jobs,
                                    executor=executor, search_policy=policy)
    if lifs is None:
        lifs = LifsConfig(use_snapshots=resolved.use_snapshots,
                          wave_jobs=resolved.wave_jobs,
                          executor=resolved.executor,
                          policy=resolved.search_policy)
    if ca is None:
        ca = CaConfig(use_snapshots=resolved.use_snapshots,
                      wave_jobs=resolved.wave_jobs,
                      executor=resolved.executor,
                      policy=resolved.search_policy)
    return Aitia(bug, report=report, lifs_config=lifs, ca_config=ca,
                 cost_model=cost_model, vm_count=vm_count,
                 tracer=tracer, experience=experience).diagnose()


def evaluate(bugs: Optional[Sequence[BugLike]] = None, *,
             pipeline: bool = False,
             jobs: int = 1,
             timeout_s: float = 600.0,
             snapshots: Optional[bool] = None,
             wave_jobs: Optional[int] = None,
             executor: Optional[str] = None,
             policy: Optional[str] = None,
             tracer=None):
    """Run the paper's evaluation over a bug set (default: all 22).

    Returns a :class:`~repro.analysis.evaluation.CorpusEvaluation`.
    With ``jobs > 1`` the bugs are diagnosed in parallel worker
    processes; rows are bit-identical to the sequential ones.
    ``snapshots=False`` disables the prefix-checkpoint engine (the
    ``--no-snapshot`` ablation); ``wave_jobs > 1`` fans each diagnosis's
    schedule waves out to child processes (``--parallel-waves``);
    ``executor`` selects the wave dispatch backend (``"fleet"`` /
    ``"inline"``); ``policy="adaptive"`` the adaptive search policy
    (``--policy``).  Rows are bit-identical whatever the settings.
    """
    from repro.analysis.evaluation import evaluate_corpus

    engine = EnginePolicy.resolve(snapshots=snapshots, wave_jobs=wave_jobs,
                                  executor=executor, search_policy=policy)
    resolved = None
    if bugs is not None:
        resolved = [_resolve_bug(b) for b in bugs]
    return evaluate_corpus(resolved, pipeline=pipeline, jobs=jobs,
                           timeout_s=timeout_s,
                           snapshots=engine.use_snapshots,
                           wave_jobs=engine.wave_jobs,
                           executor=engine.executor,
                           policy=engine.search_policy, tracer=tracer)


def _triage_sources(spec: TriageSource) -> List[Union[str, object]]:
    if spec is None or (isinstance(spec, str) and spec == "corpus"):
        from repro.corpus.registry import all_bugs, load
        load()
        return list(all_bugs())
    if isinstance(spec, (str, os.PathLike)) or not hasattr(spec, "__iter__"):
        spec = [spec]
    sources: List[Union[str, object]] = []
    for item in spec:
        if isinstance(item, str) and item == "corpus":
            from repro.corpus.registry import all_bugs, load
            load()
            sources.extend(all_bugs())
        else:
            sources.append(item)
    return sources


def triage(paths_or_corpus: TriageSource = "corpus", *,
           jobs: int = 1,
           store=None,
           pipeline: bool = False,
           timeout_s: Optional[float] = None,
           wave_jobs: Optional[int] = None,
           executor: Optional[str] = None,
           policy: Optional[str] = None,
           tracer=None,
           service=None) -> TriageReport:
    """Run the crash-triage service over intake directories and/or bugs.

    ``paths_or_corpus`` is the literal ``"corpus"`` (all 22 corpus
    bugs), an intake directory of ``*.crash`` artifacts, a bug id/
    object, or a sequence mixing those.  ``store`` is a
    :class:`~repro.service.store.ResultStore` or a JSONL path; repeat
    signatures answer from it as cache hits.  ``wave_jobs > 1`` fans
    each diagnosis's schedule waves out to child processes
    (``--parallel-waves``) — note waves degrade to inline execution
    inside ``jobs > 1`` triage workers, which are daemonic and may not
    fork children of their own.  An explicit ``service`` overrides
    ``jobs``/``store``/``timeout_s``/``wave_jobs``/``tracer`` (useful
    for injecting metrics or retry policies in tests).
    """
    from repro.service.store import ResultStore
    from repro.service.triage import DEFAULT_JOB_TIMEOUT_S, TriageService

    if service is None:
        if isinstance(store, (str, os.PathLike)):
            store = ResultStore(os.fspath(store))
        engine = EnginePolicy.resolve(wave_jobs=wave_jobs,
                                      executor=executor,
                                      search_policy=policy)
        service = TriageService(
            jobs=jobs, store=store,
            timeout_s=DEFAULT_JOB_TIMEOUT_S if timeout_s is None
            else timeout_s,
            wave_jobs=engine.wave_jobs,
            executor=engine.executor,
            policy=engine.search_policy,
            tracer=tracer)
    for source in _triage_sources(paths_or_corpus):
        if isinstance(source, (str, os.PathLike)):
            path = os.fspath(source)
            if not os.path.isdir(path):
                source = _resolve_bug(path)  # a bug id, not a directory
            else:
                service.intake_directory(path)
                continue
        else:
            source = _resolve_bug(source)
        service.submit_bug(source, pipeline=pipeline)
    return service.run()


def serve(*, config=None, **overrides) -> int:
    """Run the long-running triage intake daemon (``repro serve``).

    Blocks until the daemon is shut down (SIGTERM/SIGINT) and returns
    the exit code.  ``config`` is a
    :class:`~repro.daemon.lifecycle.DaemonConfig`; keyword overrides
    are applied on top (or to a default config when none is given)::

        from repro import api
        api.serve(port=8080, data_dir="/var/lib/aitia", jobs=4)

    For an in-process daemon you drive yourself (tests, benchmarks),
    use :func:`repro.daemon.start_daemon` inside a running event loop
    instead.  See ``docs/SERVICE.md`` for the HTTP protocol.
    """
    from dataclasses import replace

    from repro.daemon.lifecycle import DaemonConfig, run_daemon

    if config is None:
        config = DaemonConfig()
    if overrides:
        config = replace(config, **overrides)
    return run_daemon(config)
