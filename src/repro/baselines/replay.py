"""Record & replay failure reproduction (REPT / Mozilla rr style).

Replay tools deterministically reconstruct the failing execution: the
developer gets the complete trace and every data race in it — fully
comprehensive and pattern-agnostic, but with zero filtering, "figuring
out the root cause is still an error-prone task" (section 6).  The
report therefore contains every benign race, so the concise requirement
fails — the Table 1 row for REPT/RR.
"""

from __future__ import annotations

from repro.baselines.base import Baseline, BaselineReport, race_pair

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.core.diagnose import Diagnosis
    from repro.corpus.spec import Bug


class RecordReplay(Baseline):
    name = "Record&Replay"
    uses_predefined_patterns = False

    def diagnose(self, bug: "Bug", diagnosis: "Diagnosis") -> BaselineReport:
        failing = diagnosis.lifs_result.failure_run
        reported = {race_pair(r) for r in diagnosis.lifs_result.races}
        return self._score(
            bug, diagnosis, reported, diagnosed=True,
            summary=f"replayed failing execution: {len(failing.trace)} "
                    f"instructions, {len(reported)} data races "
                    f"(unfiltered)",
            details={"trace_length": len(failing.trace)})
