"""Baseline diagnosers AITIA is compared against (Table 1, section 5.3).

* :mod:`repro.baselines.kairux` — inflection-point localization: the first
  instruction of the failing run that deviates from every non-failing run;
* :mod:`repro.baselines.coop` — cooperative bug localization (Gist /
  Snorlax / CCI style): statistical correlation of predefined
  single-variable interleaving patterns over many sampled runs;
* :mod:`repro.baselines.muvi` — MUVI-style access-correlation inference
  for multi-variable races;
* :mod:`repro.baselines.replay` — record&replay-style failure
  reproduction (REPT / Mozilla rr): faithful, but unfiltered.

All of them run honestly over the same simulated kernel and are scored by
:mod:`repro.analysis.requirements` against the causality-chain ground
truth.
"""

from repro.baselines.base import Baseline, BaselineReport
from repro.baselines.coop import CooperativeLocalization
from repro.baselines.kairux import Kairux
from repro.baselines.muvi import Muvi
from repro.baselines.replay import RecordReplay

ALL_BASELINES = [Kairux, CooperativeLocalization, Muvi, RecordReplay]

__all__ = [
    "ALL_BASELINES",
    "Baseline",
    "BaselineReport",
    "CooperativeLocalization",
    "Kairux",
    "Muvi",
    "RecordReplay",
]
