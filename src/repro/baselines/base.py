"""Common scaffolding for baseline diagnosers.

Each baseline receives the corpus bug and the AITIA diagnosis (which
supplies the failing run, the sampled non-failing runs, and the ground-
truth causality chain to score against) and returns a
:class:`BaselineReport` with the three requirement verdicts of Table 1:

* **comprehensive** — does the output cover *every* race of the causality
  chain (the information a correct fix needs)?
* **pattern_agnostic** — did the method diagnose this bug at all, given
  its assumptions (single-variable patterns, correlated variables, ...)?
* **concise** — is the output free of failure-irrelevant information
  (benign races, full traces)?
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, Optional, Set

from repro.core.races import DataRace

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.core.diagnose import Diagnosis
    from repro.corpus.spec import Bug

#: A race reported by a baseline, as an unordered pair of instruction
#: display names (order is direction; coverage checks ignore it).
RacePair = FrozenSet[str]


def race_pair(race: DataRace) -> RacePair:
    return frozenset((race.first.instr_label, race.second.instr_label))


def chain_pairs(diagnosis: "Diagnosis") -> Set[RacePair]:
    """The ground-truth race set: the causality chain AITIA produced."""
    return {race_pair(r) for r in diagnosis.chain.races}


def benign_pairs(diagnosis: "Diagnosis") -> Set[RacePair]:
    return {
        race_pair(r)
        for unit in diagnosis.ca_result.benign_units
        for r in unit.races
    }


@dataclass
class BaselineReport:
    """One baseline's verdict on one bug."""

    tool: str
    bug_id: str
    diagnosed: bool
    reported_races: Set[RacePair]
    comprehensive: bool
    pattern_agnostic: bool
    concise: bool
    summary: str
    details: Dict = field(default_factory=dict)


class Baseline(abc.ABC):
    """A root-cause diagnosis technique under comparison."""

    name: str = "baseline"
    #: Structural property of the method: does it rely on predefined
    #: interleaving patterns or assumptions about the racing objects?
    #: (Table 1's pattern-agnostic column is about the method, and the
    #: per-category evidence the benchmark prints backs it up.)
    uses_predefined_patterns: bool = False

    @abc.abstractmethod
    def diagnose(self, bug: "Bug", diagnosis: "Diagnosis") -> BaselineReport:
        """Run the technique on the bug and score it against the chain."""

    # ------------------------------------------------------------------
    def _score(self, bug: "Bug", diagnosis: "Diagnosis",
               reported: Set[RacePair], diagnosed: bool,
               summary: str, concise: Optional[bool] = None,
               details: Optional[Dict] = None) -> BaselineReport:
        truth = chain_pairs(diagnosis)
        benign = benign_pairs(diagnosis)
        comprehensive = diagnosed and truth.issubset(reported)
        if concise is None:
            concise = diagnosed and not (reported & benign)
        return BaselineReport(
            tool=self.name, bug_id=bug.bug_id, diagnosed=diagnosed,
            reported_races=reported, comprehensive=comprehensive,
            pattern_agnostic=diagnosed, concise=bool(concise),
            summary=summary, details=details or {})
