"""Cooperative bug localization (Gist / Snorlax / CCI style).

These techniques predefine *single-variable* interleaving patterns —
order violations (two instructions on one variable executed in the
failure-inducing order) and atomicity violations (a remote write between
two local accesses of one variable) — then pick the pattern with the
strongest statistical correlation to the failure across many sampled
executions (section 5.3).

Honest implementation: the sampled runs are the executions LIFS explored
(failing and non-failing); for every candidate pattern we compute how
often it occurs in failing versus non-failing runs and report the top
scorer.  The method structurally cannot express multi-variable chains —
it reports one pattern on one variable — which is exactly the limitation
the paper demonstrates (it mis-fixes CVE-2017-15649 by ordering B17 and
A12 only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.baselines.base import Baseline, BaselineReport
from repro.core.races import find_data_races

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.core.diagnose import Diagnosis
    from repro.corpus.spec import Bug

#: ("order", location, first_label, second_label) or
#: ("atomicity", location, local_label_pair, remote_label)
Pattern = Tuple


def _patterns_of_run(run) -> Set[Pattern]:
    patterns: Set[Pattern] = set()
    races = find_data_races(run.accesses)
    for race in races:
        patterns.add(("order", race.location,
                      race.first.instr_label, race.second.instr_label))
    # Atomicity violations: thread T accesses v, another thread writes v,
    # then T accesses v again.
    by_location: Dict[int, List] = {}
    for access in run.accesses:
        by_location.setdefault(access.data_addr, []).append(access)
    for location, accesses in by_location.items():
        for i, first in enumerate(accesses):
            for j in range(i + 1, len(accesses)):
                middle = accesses[j]
                if middle.thread == first.thread:
                    break
                if not middle.is_write:
                    continue
                for k in range(j + 1, len(accesses)):
                    last = accesses[k]
                    if last.thread == first.thread:
                        patterns.add((
                            "atomicity", location,
                            (first.instr_label, last.instr_label),
                            middle.instr_label))
                        break
                break
    return patterns


@dataclass
class _Scored:
    pattern: Pattern
    failing: int
    passing: int

    def suspiciousness(self, total_failing: int, total_passing: int) -> float:
        """Tarantula/CCI-style suspiciousness: how much more often the
        pattern shows up in failing than in passing executions."""
        fail_ratio = self.failing / total_failing if total_failing else 0.0
        pass_ratio = self.passing / total_passing if total_passing else 0.0
        return fail_ratio - pass_ratio


class CooperativeLocalization(Baseline):
    name = "CoopLocalization"
    uses_predefined_patterns = True

    def diagnose(self, bug: "Bug", diagnosis: "Diagnosis") -> BaselineReport:
        runs = list(diagnosis.lifs_result.sample_runs)
        failing_run = diagnosis.lifs_result.failure_run
        if failing_run not in runs:
            runs.append(failing_run)

        occurrences: Dict[Pattern, _Scored] = {}
        for run in runs:
            for pattern in _patterns_of_run(run):
                scored = occurrences.setdefault(
                    pattern, _Scored(pattern, 0, 0))
                if run.failed:
                    scored.failing += 1
                else:
                    scored.passing += 1

        total_failing = sum(1 for r in runs if r.failed)
        total_passing = len(runs) - total_failing
        candidates = [s for s in occurrences.values() if s.failing]
        if not candidates:
            return self._score(bug, diagnosis, set(), diagnosed=False,
                               summary="no failure-correlated pattern")
        # Highest suspiciousness wins; atomicity violations are preferred
        # on ties (they are the more specific pattern), then rarity in
        # passing runs.
        best = max(candidates, key=lambda s: (
            s.suspiciousness(total_failing, total_passing),
            s.pattern[0] == "atomicity", -s.passing))

        # Translate the winning single-variable pattern into the races it
        # names.
        if best.pattern[0] == "order":
            labels = {best.pattern[2], best.pattern[3]}
        else:
            labels = set(best.pattern[2]) | {best.pattern[3]}
        reported: Set[FrozenSet[str]] = set()
        for race in diagnosis.lifs_result.races:
            pair = frozenset((race.first.instr_label,
                              race.second.instr_label))
            if pair <= labels or (race.first.instr_label in labels
                                  and race.second.instr_label in labels):
                reported.add(pair)

        summary = (f"top pattern: {best.pattern[0]} violation on "
                   f"{best.pattern[2]}/{best.pattern[3]} "
                   f"(fail={best.failing}, ok={best.passing})")
        return self._score(bug, diagnosis, reported, diagnosed=True,
                           summary=summary,
                           details={"pattern": best.pattern,
                                    "sampled_runs": len(runs)})
