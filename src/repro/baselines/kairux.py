"""Kairux-style inflection-point diagnosis (section 5.3).

Kairux defines the root cause of a failure as the *inflection point*: the
first instruction of the failing run that deviates from the longest
common prefix with every non-failing run.  It is pattern-agnostic and
concise, but it reports a *single instruction* — for kernel concurrency
failures whose root cause is a chain of races across threads, that is
never the whole story (the paper's Figure 9 discussion).

The implementation compares the failing run's totally ordered trace with
the non-failing runs LIFS explored (per-thread, because a global prefix
would be dominated by scheduler noise): the inflection point is the
earliest failing-run instruction at which its thread's instruction stream
departs from that thread's stream in every non-failing run.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.baselines.base import Baseline, BaselineReport, race_pair

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.core.diagnose import Diagnosis
    from repro.corpus.spec import Bug


def _per_thread_streams(trace) -> Dict[str, List[Tuple[int, str]]]:
    streams: Dict[str, List[Tuple[int, str]]] = {}
    for entry in trace:
        streams.setdefault(entry.thread, []).append(
            (entry.instr_addr, entry.instr_label))
    return streams


class Kairux(Baseline):
    name = "Kairux"

    def diagnose(self, bug: "Bug", diagnosis: "Diagnosis") -> BaselineReport:
        failing = diagnosis.lifs_result.failure_run
        ok_runs = [r for r in diagnosis.lifs_result.sample_runs
                   if not r.failed]
        failing_streams = _per_thread_streams(failing.trace)

        # For each thread: the longest prefix shared with ANY non-failing
        # run; the thread's deviation point is the next instruction.
        deviation: Dict[str, int] = {}
        for thread, stream in failing_streams.items():
            best = 0
            for run in ok_runs:
                other = _per_thread_streams(run.trace).get(thread, [])
                k = 0
                while k < len(stream) and k < len(other) \
                        and stream[k][0] == other[k][0]:
                    k += 1
                best = max(best, k)
            if best < len(stream):
                deviation[thread] = best

        if not deviation:
            # Every per-thread stream is a prefix of some non-failing run:
            # the only deviation is the crash itself, so the inflection
            # point degenerates to the faulting instruction.
            fault = failing.trace[-1]
            reported = {
                race_pair(r) for r in diagnosis.chain.races
                if fault.instr_label in (r.first.instr_label,
                                         r.second.instr_label)
            }
            return self._score(
                bug, diagnosis, reported, diagnosed=True,
                summary=f"inflection point (crash site): "
                        f"{fault.thread}:{fault.instr_label}",
                concise=True,
                details={"inflection": fault.instr_label,
                         "thread": fault.thread, "crash_fallback": True,
                         "non_failing_runs": len(ok_runs)})

        # The inflection point: the earliest deviating instruction in the
        # failing run's global order.
        first_seq = None
        inflection = None
        counters: Dict[str, int] = {}
        for entry in failing.trace:
            idx = counters.get(entry.thread, 0)
            counters[entry.thread] = idx + 1
            if deviation.get(entry.thread) == idx and (
                    first_seq is None or entry.seq < first_seq):
                first_seq = entry.seq
                inflection = entry

        if inflection is None:
            return self._score(bug, diagnosis, set(), diagnosed=False,
                               summary="no inflection point found")

        # The single reported instruction covers only the chain races it
        # participates in.
        reported = {
            race_pair(r) for r in diagnosis.chain.races
            if inflection.instr_label in (r.first.instr_label,
                                          r.second.instr_label)
        }
        return self._score(
            bug, diagnosis, reported, diagnosed=True,
            summary=f"inflection point: {inflection.thread}:"
                    f"{inflection.instr_label}",
            concise=True,
            details={"inflection": inflection.instr_label,
                     "thread": inflection.thread,
                     "non_failing_runs": len(ok_runs)})
