"""MUVI-style multi-variable access-correlation inference (section 5.3).

MUVI assumes that semantically correlated variables are *accessed
together* most of the time: "if one of these two is accessed, the other
variable should be accessed with a high probability".  It mines access
sets from program executions, flags variable pairs whose co-access
probability is high *in both directions*, and reports non-atomic updates
to correlated pairs.

The honest reproduction mines the entire fuzzing workload, not only the
racing slice: every system call of the bug's execution history is
replayed serially and the per-thread access streams feed the miner.
This is what defeats MUVI on *loosely correlated* objects (section 2.2):
the history is full of calls touching the fd table / tunnel config /
flag variables without ever touching their race partners, so the
co-access ratio collapses below threshold.  Single-variable failures are
outside the approach entirely — no pair exists.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Set

from repro.baselines.base import Baseline, BaselineReport, race_pair
from repro.kernel.machine import KernelMachine, ThreadSpec

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.core.diagnose import Diagnosis
    from repro.corpus.spec import Bug

#: Accesses within this many consecutive accesses of one thread count as
#: "accessed together" (MUVI's acc_set distance).
WINDOW = 8
#: Minimum co-access probability (both directions) for correlation.
CORRELATION_THRESHOLD = 0.55
#: Minimum number of sightings before a pair is considered at all.
MIN_SUPPORT = 2


def _history_access_streams(bug: Bug) -> List[List[int]]:
    """Replay every syscall of the bug's history serially on a fresh
    kernel and return the per-call access streams (data addresses)."""
    history = bug.history()
    events = [e for e in history.syscalls]
    specs = [
        ThreadSpec(name=f"muvi#{i}:{e.proc}:{e.name}", entry=e.entry)
        for i, e in enumerate(events)
    ]
    machine = KernelMachine(bug.image, specs,
                            globals_init=dict(bug.globals_init),
                            leak_check=False)
    streams: List[List[int]] = []
    for spec in specs:
        ctx = machine.thread(spec.name)
        start = len(machine.access_log)
        while not ctx.done and not machine.halted:
            machine.step(ctx.tid)
        streams.append([a.data_addr
                        for a in machine.access_log[start:]])
        if machine.halted:
            break
    return streams


class Muvi(Baseline):
    name = "MUVI"
    uses_predefined_patterns = True

    def diagnose(self, bug: "Bug", diagnosis: "Diagnosis") -> BaselineReport:
        streams = _history_access_streams(bug)
        # Add the racing runs' per-thread streams too (MUVI mines every
        # execution it can get).
        for run in diagnosis.lifs_result.sample_runs[:8]:
            per_thread: Dict[str, List[int]] = {}
            for access in run.accesses:
                per_thread.setdefault(access.thread, []).append(
                    access.data_addr)
            streams.extend(per_thread.values())

        together: Dict[FrozenSet[int], int] = {}
        alone: Dict[int, int] = {}
        for stream in streams:
            for i, addr in enumerate(stream):
                alone[addr] = alone.get(addr, 0) + 1
                window = set(stream[i + 1:i + 1 + WINDOW])
                window.discard(addr)
                for other in window:
                    key = frozenset((addr, other))
                    together[key] = together.get(key, 0) + 1

        correlated: Set[FrozenSet[int]] = set()
        ratios: Dict[FrozenSet[int], float] = {}
        for pair, count in together.items():
            a, b = tuple(pair)
            if min(alone.get(a, 0), alone.get(b, 0)) < MIN_SUPPORT:
                continue
            # Both conditional probabilities must be high: each variable's
            # accesses must usually be accompanied by the other.
            ratio = min(count / alone[a], count / alone[b])
            ratios[pair] = ratio
            if ratio >= CORRELATION_THRESHOLD:
                correlated.add(pair)

        chain_races = diagnosis.chain.races
        # MUVI mines *named variables*; a freed heap object is not a
        # variable, so only global cells count toward the pair test.
        from repro.kernel.memory import HEAP_BASE
        chain_locations = {r.location for r in chain_races
                           if r.location < HEAP_BASE}
        if len(chain_locations) < 2:
            return self._score(
                bug, diagnosis, set(), diagnosed=False,
                summary="single-variable failure: outside MUVI's "
                        "multi-variable assumption",
                details={"correlated_pairs": len(correlated)})

        needed = {frozenset(p)
                  for p in combinations(sorted(chain_locations), 2)}
        covered = {p for p in needed if p in correlated}
        if covered != needed:
            missing_ratio = min(
                (ratios.get(p, 0.0) for p in needed - covered),
                default=0.0)
            return self._score(
                bug, diagnosis, set(), diagnosed=False,
                summary=f"racing variables not access-correlated over the "
                        f"workload (co-access ratio {missing_ratio:.2f} < "
                        f"{CORRELATION_THRESHOLD}) — loosely correlated",
                details={"correlated_pairs": len(correlated)})

        reported = {race_pair(r) for r in chain_races}
        return self._score(
            bug, diagnosis, reported, diagnosed=True,
            summary=f"correlated variable set of {len(chain_locations)} "
                    f"variables updated non-atomically",
            details={"correlated_pairs": len(correlated)})
