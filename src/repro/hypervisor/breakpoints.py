"""Breakpoints and watchpoints.

The AITIA hypervisor installs a *breakpoint* at a memory-accessing
instruction to trap the running thread, disassembles the instruction to
find the address it refers to, and installs a *watchpoint* there so that a
conflicting access from any other context traps too — that is how data
races are detected during LIFS (paper section 4.3, Figure 8).

Here a breakpoint is keyed by code address (optionally per thread and per
occurrence) and a watchpoint by data address.  Hits are recorded; the
controller decides what to do with them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.kernel.access import MemoryAccess


@dataclass(frozen=True)
class Breakpoint:
    """A code breakpoint; ``thread=None`` traps every thread and
    ``occurrence=None`` traps every dynamic execution."""

    instr_addr: int
    thread: Optional[str] = None
    occurrence: Optional[int] = None

    def matches(self, thread: str, instr_addr: int, occurrence: int) -> bool:
        if self.instr_addr != instr_addr:
            return False
        if self.thread is not None and self.thread != thread:
            return False
        if self.occurrence is not None and self.occurrence != occurrence:
            return False
        return True


@dataclass(frozen=True)
class Watchpoint:
    """A data watchpoint on one memory address, installed on behalf of the
    instruction (and thread) whose access address was disassembled."""

    data_addr: int
    owner_thread: str
    owner_instr_addr: int
    owner_label: str = ""


@dataclass(frozen=True)
class WatchpointHit:
    """A conflicting access trapped by a watchpoint: the racing pair the
    hypervisor reports to the user agent."""

    watchpoint: Watchpoint
    access: MemoryAccess


class BreakpointManager:
    """Installed code breakpoints of one VM."""

    def __init__(self) -> None:
        self._by_addr: Dict[int, List[Breakpoint]] = {}

    def install(self, bp: Breakpoint) -> None:
        self._by_addr.setdefault(bp.instr_addr, []).append(bp)

    def remove(self, bp: Breakpoint) -> None:
        bucket = self._by_addr.get(bp.instr_addr, [])
        if bp in bucket:
            bucket.remove(bp)

    def clear(self) -> None:
        self._by_addr.clear()

    def hit(self, thread: str, instr_addr: int,
            occurrence: int) -> Optional[Breakpoint]:
        """The first installed breakpoint matching this execution, if any."""
        for bp in self._by_addr.get(instr_addr, ()):
            if bp.matches(thread, instr_addr, occurrence):
                return bp
        return None

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_addr.values())


class WatchpointManager:
    """Installed data watchpoints of one VM."""

    def __init__(self) -> None:
        self._by_addr: Dict[int, List[Watchpoint]] = {}
        self.hits: List[WatchpointHit] = []

    def install(self, wp: Watchpoint) -> None:
        self._by_addr.setdefault(wp.data_addr, []).append(wp)

    def remove_owned_by(self, thread: str, instr_addr: int) -> None:
        for addr in list(self._by_addr):
            self._by_addr[addr] = [
                wp for wp in self._by_addr[addr]
                if not (wp.owner_thread == thread
                        and wp.owner_instr_addr == instr_addr)
            ]

    def clear(self) -> None:
        self._by_addr.clear()

    def snapshot(self) -> dict:
        """Plain-data capture for run checkpoints; watchpoints and hits are
        frozen, so the lists share them structurally."""
        return {
            "by_addr": {addr: list(wps)
                        for addr, wps in self._by_addr.items() if wps},
            "hits": list(self.hits),
        }

    def restore(self, snap: dict) -> None:
        self._by_addr = {addr: list(wps)
                         for addr, wps in snap["by_addr"].items()}
        self.hits = list(snap["hits"])

    def observe(self, access: MemoryAccess) -> List[WatchpointHit]:
        """Check one executed access against installed watchpoints; a hit is
        recorded when another context touches the watched address and the
        pair conflicts (at least one write)."""
        new_hits: List[WatchpointHit] = []
        for wp in self._by_addr.get(access.data_addr, ()):
            if wp.owner_thread == access.thread:
                continue
            hit = WatchpointHit(watchpoint=wp, access=access)
            self.hits.append(hit)
            new_hits.append(hit)
        return new_hits

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_addr.values())
