"""Deterministic record & replay of enforced runs.

The simulated kernel plus the schedule controller are fully
deterministic, so a *recording* is just the schedule plus the expected
outcome signature: replaying re-enforces the schedule on a fresh machine
and verifies that the execution is bit-for-bit the same Mazurkiewicz
trace.  This is the property the REPT/RR baseline banks on, and it is
what lets AITIA hand a developer a reproducer: the failure-causing
schedule *is* the reproducer.

Recordings serialize to plain dictionaries (JSON-safe), so they can be
stored next to a bug report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.schedule import OrderConstraint, Preemption, Schedule
from repro.hypervisor.controller import RunResult, ScheduleController
from repro.kernel.machine import KernelMachine


class ReplayDivergence(Exception):
    """The replayed execution differs from the recording."""


@dataclass
class Recording:
    """A replayable capture of one enforced run."""

    schedule: Schedule
    failed: bool
    failure_signature: Optional[str]
    trace_length: int
    signature_digest: int

    def to_dict(self) -> Dict:
        return {
            "start_order": list(self.schedule.start_order),
            "preemptions": [
                {"thread": p.thread, "instr_addr": p.instr_addr,
                 "occurrence": p.occurrence, "switch_to": p.switch_to,
                 "instr_label": p.instr_label}
                for p in self.schedule.preemptions
            ],
            "constraints": [
                {"thread": c.thread, "instr_addr": c.instr_addr,
                 "occurrence": c.occurrence, "instr_label": c.instr_label}
                for c in self.schedule.constraints
            ],
            "note": self.schedule.note,
            "failed": self.failed,
            "failure_signature": self.failure_signature,
            "trace_length": self.trace_length,
            "signature_digest": self.signature_digest,
        }

    @staticmethod
    def from_dict(data: Dict) -> "Recording":
        schedule = Schedule(
            start_order=tuple(data["start_order"]),
            preemptions=[Preemption(**p) for p in data["preemptions"]],
            constraints=[OrderConstraint(**c) for c in data["constraints"]],
            note=data.get("note", ""),
        )
        return Recording(
            schedule=schedule, failed=data["failed"],
            failure_signature=data.get("failure_signature"),
            trace_length=data["trace_length"],
            signature_digest=data["signature_digest"],
        )


def record(run: RunResult) -> Recording:
    """Capture a run for later replay."""
    return Recording(
        schedule=run.schedule,
        failed=run.failed,
        failure_signature=run.failure.signature if run.failure else None,
        trace_length=len(run.trace),
        signature_digest=run.signature_hash(),
    )


def replay(machine_factory: Callable[[], KernelMachine],
           recording: Recording, strict: bool = True) -> RunResult:
    """Re-enforce the recorded schedule; verify the execution matches.

    ``strict`` raises :class:`ReplayDivergence` on any mismatch (changed
    kernel image, different initial state); non-strict returns the run
    regardless, for inspection.
    """
    controller = ScheduleController(machine_factory(), recording.schedule)
    run = controller.run()
    if strict:
        problems: List[str] = []
        if run.failed != recording.failed:
            problems.append(
                f"failure outcome differs: recorded failed="
                f"{recording.failed}, replay failed={run.failed}")
        replay_sig = run.failure.signature if run.failure else None
        if replay_sig != recording.failure_signature:
            problems.append(
                f"failure signature differs: {recording.failure_signature}"
                f" vs {replay_sig}")
        if len(run.trace) != recording.trace_length:
            problems.append(
                f"trace length differs: {recording.trace_length} vs "
                f"{len(run.trace)}")
        if run.signature_hash() != recording.signature_digest:
            problems.append("Mazurkiewicz signature differs")
        if problems:
            raise ReplayDivergence("; ".join(problems))
    return run
