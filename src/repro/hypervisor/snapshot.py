"""Whole-machine snapshot / restore and mid-run checkpoints.

The AITIA hypervisor reverts the reproducer VM's memory after every run
(paper section 4.3) instead of rebooting, which is what makes thousands
of LIFS schedules affordable.  Two layers live here:

* :func:`capture` / :func:`restore` — the machine-level snapshot (now
  backed by :mod:`repro.kernel.snapshot`, which carries thread identity so
  a restore can *recreate* threads, not only rewind existing ones).  This
  is what an interactive debugging session wants: run to a point, snap,
  try an interleaving, rewind, try another.
* :class:`RunCheckpoint` — a machine snapshot plus the enforcement state a
  :class:`~repro.hypervisor.controller.ScheduleController` carries (fired
  preemptions, trampoline, watchpoints, active thread, step count).  A
  controller constructed with ``resume_from=checkpoint`` re-enters the run
  at that point and interprets only the suffix; see docs/PERFORMANCE.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.kernel.machine import KernelMachine
from repro.kernel.snapshot import (
    MachineSnapshot,
    restore_machine,
    snapshot_machine,
)

__all__ = [
    "CheckpointPolicy",
    "MachineSnapshot",
    "RunCheckpoint",
    "boot_checkpoint",
    "capture",
    "restore",
]


def capture(machine: KernelMachine) -> MachineSnapshot:
    """Snapshot a machine (typically mid-run, before trying something)."""
    return snapshot_machine(machine)


def restore(machine: KernelMachine, snapshot: MachineSnapshot) -> None:
    """Rewind (or fast-forward) a machine to a snapshot.

    Threads spawned after the capture point are discarded — and threads
    missing from the target machine are recreated — so restores work in
    both directions; logs are reset to the captured prefixes; the failure
    flag is cleared (a crash that happened after the snapshot never
    happened).
    """
    restore_machine(machine, snapshot)


@dataclass(frozen=True)
class CheckpointPolicy:
    """When a controller captures prefix checkpoints during a run: one at
    run entry, one each time a preemption fires, and one every ``interval``
    executed instructions, up to ``max_checkpoints`` total."""

    interval: int = 8
    max_checkpoints: int = 64


@dataclass(frozen=True)
class RunCheckpoint:
    """Pure state captured mid-run — machine plus enforcement bookkeeping.

    A checkpoint holds no references to the controller or machine that
    produced it; any machine booted from the same factory can be restored
    to it.  ``horizon_seq`` is the global trace seq of the last executed
    instruction: the checkpoint is a valid resume point for any schedule
    that behaves identically up to (and including) that seq.
    """

    machine: MachineSnapshot
    #: Global seq of the last instruction executed before capture.
    horizon_seq: int
    #: Controller steps executed before capture (= steps skipped on resume).
    steps: int
    #: Preemptions already fired, with their fire seqs.
    fired: Tuple
    #: ``Trampoline.snapshot()`` / ``WatchpointManager.snapshot()`` dicts;
    #: ``None`` means "fresh" (nothing to restore).
    trampoline: Optional[dict]
    watchpoints: Optional[dict]
    #: The controller's active thread at capture.
    active: Optional[str]
    #: Start order of the capturing schedule; resume validates it when the
    #: checkpoint is past the boot point.
    start_order: Tuple[str, ...]


def boot_checkpoint(machine: KernelMachine) -> RunCheckpoint:
    """A checkpoint of a freshly booted machine, before any enforcement
    state exists.  Boot state is schedule-independent, so this checkpoint
    resumes under *any* schedule — it is what replaces per-run reboots."""
    return RunCheckpoint(
        machine=snapshot_machine(machine),
        horizon_seq=machine._seq,
        steps=0,
        fired=(),
        trampoline=None,
        watchpoints=None,
        active=None,
        start_order=(),
    )
