"""Whole-machine snapshot / restore.

The AITIA hypervisor reverts the reproducer VM's memory after every run
(paper section 4.3) instead of rebooting, which is what makes thousands
of LIFS schedules affordable.  :class:`MachineSnapshot` captures the full
guest state — memory, thread contexts, locks, the global sequence
counter — and restores a machine to it in place.

The run pipeline normally builds fresh machines from a factory (equally
deterministic and simpler); snapshots are the in-place alternative and
are what an interactive debugging session wants: run to a point, snap,
try an interleaving, rewind, try another.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.kernel.machine import KernelMachine


@dataclass
class MachineSnapshot:
    """Captured state of one machine."""

    memory: dict
    threads: List[dict]
    locks: dict
    seq: int
    trace_len: int
    access_len: int
    spawn_len: int
    thread_count: int


def capture(machine: KernelMachine) -> MachineSnapshot:
    """Snapshot a machine (typically mid-run, before trying something)."""
    if machine.halted:
        raise ValueError("cannot snapshot a halted machine")
    return MachineSnapshot(
        memory=machine.memory.snapshot(),
        threads=[t.snapshot() for t in machine.threads],
        locks=machine.locks.snapshot(),
        seq=machine._seq,
        trace_len=len(machine.trace),
        access_len=len(machine.access_log),
        spawn_len=len(machine.spawn_events),
        thread_count=len(machine.threads),
    )


def restore(machine: KernelMachine, snapshot: MachineSnapshot) -> None:
    """Rewind a machine to a snapshot taken from it earlier.

    Threads spawned after the snapshot are discarded; logs are truncated
    back to the capture point; the failure flag is cleared (a crash that
    happened after the snapshot never happened).
    """
    if len(machine.threads) < snapshot.thread_count:
        raise ValueError("snapshot does not belong to this machine")
    machine.memory.restore(snapshot.memory)
    machine.locks.restore(snapshot.locks)
    # Drop threads spawned after the capture point.
    for ctx in machine.threads[snapshot.thread_count:]:
        del machine._by_name[ctx.name]
    del machine.threads[snapshot.thread_count:]
    for ctx, state in zip(machine.threads, snapshot.threads):
        ctx.restore(state)
    machine._seq = snapshot.seq
    del machine.trace[snapshot.trace_len:]
    del machine.access_log[snapshot.access_len:]
    del machine.spawn_events[snapshot.spawn_len:]
    machine.failure = None
