"""Parallel wave vocabulary (and the deprecated per-wave executor).

AITIA's manager drives 32 guest VMs and parallelizes the reproducing
stage across slices and the diagnosing stage across flip tests (paper
sections 4.1 and 4.5).  The search stages produce exactly that shape of
work — a *wave* of schedules with no data dependencies between them —
and the deterministic pure-Python simulator gains genuine wall-clock
speedup from fanning a wave out to child *processes*.

Since the executor redesign, dispatch itself lives in
:mod:`repro.engine.executors`: a persistent fork-server worker fleet
whose workers boot once and stay resident across waves, receiving only
schedule suffixes plus checkpoint-store keys.  This module keeps

* the wave vocabulary (:class:`WaveJob` / :class:`WaveOutcome`) and the
  one-job execution helper (:func:`execute_wave_job`) used inline and
  in tests;
* :func:`emit_run_counters`, the parent-side re-emission of per-run
  ``hv.*`` counters for runs that executed untraced in a worker;
* :class:`WaveExecutor`, now a **deprecated** thin shim over the fleet
  executor — construct executors with
  :func:`repro.engine.executors.make_executor` instead.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.schedule import Schedule
from repro.hypervisor.controller import RunResult, ScheduleController
from repro.hypervisor.snapshot import CheckpointPolicy, RunCheckpoint
from repro.kernel.machine import KernelMachine
from repro.observe.tracer import as_tracer

#: Per-task deadline: one schedule is far below
#: :data:`~repro.hypervisor.controller.MAX_RUN_STEPS`, so a task this
#: late is a wedged worker, not a slow one.
DEFAULT_WAVE_TIMEOUT_S = 600.0


@dataclass(frozen=True)
class WaveJob:
    """One independent schedule submitted to a wave."""

    schedule: Schedule
    #: Resume point (a boot or prefix checkpoint); ``None`` boots a fresh
    #: machine from the executor's factory, exactly like a sequential
    #: snapshot miss.
    resume_from: Optional[RunCheckpoint] = None
    watch_races: bool = True
    checkpoint_policy: Optional[CheckpointPolicy] = None


@dataclass(frozen=True)
class WaveOutcome:
    """One job's result, in submission order."""

    run: RunResult
    #: Checkpoints the run captured (for LIFS harvest/extension resume).
    checkpoints: Tuple[RunCheckpoint, ...]
    #: Boot-setup steps of the machine the job ran on — the callers'
    #: snapshot accounting needs it whether the run resumed or booted.
    setup_steps: int
    #: Whether the job resumed from a checkpoint (snapshot hit) and the
    #: prefix steps that resume skipped.
    resumed: bool
    prefix_steps: int
    #: Steps grafted from the executing side's continuation cache
    #: (resident fleet workers splice like the parent does; splicing
    #: changes accounting, never bits).
    spliced_steps: int = 0


def execute_wave_job(job: WaveJob,
                     machine_factory: Callable[[], KernelMachine],
                     machine: Optional[KernelMachine] = None) -> WaveOutcome:
    """Run one wave job to completion — wherever the caller is.

    A resuming job reuses ``machine`` as its vehicle (the checkpoint
    restore rewrites the whole machine state, so any machine booted from
    the same factory is a valid vehicle); a fresh-boot job always boots
    its own machine, mirroring the sequential snapshot-miss path.
    """
    if job.resume_from is not None and machine is not None:
        vehicle = machine
    else:
        vehicle = machine_factory()
    controller = ScheduleController(
        vehicle, job.schedule, watch_races=job.watch_races,
        resume_from=job.resume_from,
        checkpoint_policy=job.checkpoint_policy)
    run = controller.run()
    return WaveOutcome(
        run=run, checkpoints=tuple(controller.checkpoints),
        setup_steps=vehicle.setup_steps,
        resumed=job.resume_from is not None,
        prefix_steps=job.resume_from.steps if job.resume_from else 0,
        spliced_steps=controller.spliced_steps)


def emit_run_counters(tracer, run: RunResult) -> None:
    """Re-emit the ``hv.*`` counters a traced controller would have
    emitted for ``run``.

    Fleet workers run untraced (their sink is the result pipe, not the
    parent's tracer), so the parent emits the equivalent counters when
    it merges an outcome — keeping totals identical to a sequential run
    and preserving identities like ``hv.runs == lifs.schedules +
    ca.schedules``.
    """
    tracer = as_tracer(tracer)
    if not tracer.enabled:
        return
    tracer.count("hv.runs")
    tracer.count("hv.steps", run.steps)
    tracer.count("hv.preemptions_fired", len(run.fired_preemptions))
    tracer.count("hv.breakpoint_hits",
                 len(run.fired_preemptions) + run.executed_constraints())
    tracer.count("hv.watchpoint_hits", len(run.watch_hits))
    tracer.count("hv.constraints_dropped", len(run.dropped_constraints))
    if run.failed:
        tracer.count("hv.crashes")


class WaveExecutor:
    """**Deprecated** — use :func:`repro.engine.executors.make_executor`.

    This shim keeps the pre-2.1 per-wave API alive for one release on
    top of the persistent fork-server fleet.  Migration::

        # before
        executor = WaveExecutor(jobs=4, machine_factory=factory)
        outcomes = executor.run_wave(wave_jobs)

        # after
        from repro.engine.executors import make_executor
        from repro.engine.protocol import RunPlan, RunRequest

        executor = make_executor(machine_factory=factory, jobs=4)
        plan = RunPlan([RunRequest(schedule=j.schedule,
                                   resume_from=j.resume_from,
                                   watch_races=j.watch_races,
                                   checkpoint_policy=j.checkpoint_policy)
                        for j in wave_jobs])
        executor.engage(len(plan.requests))
        for index, outcome in executor.submit(plan):
            ...  # streaming, completion order
        executor.close()

    Differences from the historical behaviour: workers are resident
    (booted once, reused across ``run_wave`` calls) and a lost chunk
    re-runs per-job instead of per-stripe.  Results are still merged in
    submission order and remain bit-identical.  ``retry`` maps onto the
    fleet's worker-respawn budget.
    """

    def __init__(self, jobs: int,
                 machine_factory: Callable[[], KernelMachine],
                 tracer=None,
                 timeout_s: float = DEFAULT_WAVE_TIMEOUT_S,
                 retry=None,
                 context: Optional[str] = None) -> None:
        warnings.warn(
            "repro.hypervisor.waves.WaveExecutor is deprecated; build "
            "executors with repro.engine.executors.make_executor("
            "machine_factory=..., jobs=...) — see the class docstring "
            "for the migration recipe",
            DeprecationWarning, stacklevel=2)
        from repro.engine.executors import make_executor

        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = jobs
        self.machine_factory = machine_factory
        self.tracer = as_tracer(tracer)
        self.timeout_s = timeout_s
        self._executor = make_executor(
            machine_factory=machine_factory, jobs=jobs, tracer=tracer,
            timeout_s=timeout_s, context=context or "fork",
            max_respawns=(retry.max_retries * jobs
                          if retry is not None else None),
            spinup_requests=0, eager=True)

    @property
    def parallel(self) -> bool:
        """Whether waves genuinely fan out to resident workers (needs
        ``jobs > 1``, the ``fork`` start method and a non-daemonic
        parent — see :func:`repro.engine.fleet.fleet_available`)."""
        return getattr(self._executor, "parallel", False)

    def run_wave(self, wave: Sequence[WaveJob],
                 machine: Optional[KernelMachine] = None,
                 ) -> List[WaveOutcome]:
        """Execute every job; outcomes are returned in submission order.

        ``machine`` is accepted for API compatibility; resident workers
        keep their own vehicle machines, so it is no longer used as the
        restore target.
        """
        from repro.engine.protocol import RunPlan, RunRequest

        if not wave:
            return []
        requests = [RunRequest(schedule=j.schedule,
                               resume_from=j.resume_from,
                               watch_races=j.watch_races,
                               checkpoint_policy=j.checkpoint_policy)
                    for j in wave]
        if len(wave) >= 2:
            self._executor.engage(len(wave))
        outcomes: List[Optional[WaveOutcome]] = [None] * len(wave)
        for index, outcome in self._executor.submit(
                RunPlan(requests, phase="legacy.wave")):
            outcomes[index] = WaveOutcome(
                run=outcome.run, checkpoints=tuple(outcome.checkpoints),
                setup_steps=outcome.setup_steps, resumed=outcome.resumed,
                prefix_steps=outcome.prefix_steps,
                spliced_steps=outcome.spliced_steps)
        return outcomes  # type: ignore[return-value]

    def close(self) -> None:
        """Retire the resident workers backing this shim."""
        self._executor.close()
