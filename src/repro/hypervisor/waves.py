"""Parallel wave execution: real concurrency for independent schedules.

AITIA's manager drives 32 guest VMs and parallelizes the reproducing
stage across slices and the diagnosing stage across flip tests (paper
sections 4.1 and 4.5).  The search stages produce exactly that shape of
work — a *wave* of schedules with no data dependencies between them
(every extension of a LIFS frontier, every flip test of a Causality
Analysis phase) — and the simulator is deterministic pure Python, so
fanning a wave out to child *processes* buys genuine wall-clock speedup
where threads would serialize on the GIL.

:class:`WaveExecutor` is that fan-out.  It deliberately reuses the
fault-tolerant :class:`~repro.service.pool.WorkerPool` machinery
(per-attempt child processes, timeout kill, worker-death retry with
backoff) instead of growing a second pool implementation, and it keeps
the determinism contract the rest of the pipeline is built on:

* results merge back in **submission order** — the caller sees the same
  sequence of :class:`RunResult`s it would have produced sequentially;
* a chunk that times out or loses its worker is transparently
  **re-executed inline** in the parent (counted as ``hv.wave.fallbacks``),
  so a wave never loses or reorders a result;
* each run is bit-identical wherever it executes: the controller is
  deterministic in (machine state, schedule), and resuming from a
  checkpoint never changes a run's bits (the PR-3 resume property).

Wave inputs cross the process boundary through the explicit
serialization path of :mod:`repro.kernel.snapshot` (``dumps_state`` /
``loads_state``): schedules and boot/prefix checkpoints are pickled
into a versioned blob at submission time, so the child works on a
stable copy even under the ``fork`` start method, where the rest of the
payload (the unpicklable machine factory, the shared vehicle machine)
is inherited by address.

Accounting flows through ``hv.wave.*`` counters on the caller's tracer
(children run untraced; the parent re-emits the per-run ``hv.*``
counters at merge time so sequential totals and identities still hold)
and is rendered by ``repro trace-report``.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.schedule import Schedule
from repro.hypervisor.controller import RunResult, ScheduleController
from repro.hypervisor.snapshot import CheckpointPolicy, RunCheckpoint
from repro.kernel.machine import KernelMachine
from repro.kernel.snapshot import dumps_state, loads_state
from repro.observe.tracer import as_tracer
from repro.service.pool import WorkerPool
from repro.service.queue import JobOutcome, RetryPolicy, TriageJob

#: Per-chunk deadline: a chunk is tens-to-hundreds of schedules, each far
#: below :data:`~repro.hypervisor.controller.MAX_RUN_STEPS`, so a chunk
#: this late is a wedged worker, not a slow one.
DEFAULT_WAVE_TIMEOUT_S = 600.0


@dataclass(frozen=True)
class WaveJob:
    """One independent schedule submitted to a wave."""

    schedule: Schedule
    #: Resume point (a boot or prefix checkpoint); ``None`` boots a fresh
    #: machine from the executor's factory, exactly like a sequential
    #: snapshot miss.
    resume_from: Optional[RunCheckpoint] = None
    watch_races: bool = True
    checkpoint_policy: Optional[CheckpointPolicy] = None


@dataclass(frozen=True)
class WaveOutcome:
    """One job's result, in submission order."""

    run: RunResult
    #: Checkpoints the run captured (for LIFS harvest/extension resume).
    checkpoints: Tuple[RunCheckpoint, ...]
    #: Boot-setup steps of the machine the job ran on — the callers'
    #: snapshot accounting needs it whether the run resumed or booted.
    setup_steps: int
    #: Whether the job resumed from a checkpoint (snapshot hit) and the
    #: prefix steps that resume skipped.
    resumed: bool
    prefix_steps: int


def execute_wave_job(job: WaveJob,
                     machine_factory: Callable[[], KernelMachine],
                     machine: Optional[KernelMachine] = None) -> WaveOutcome:
    """Run one wave job to completion — in a child or inline.

    A resuming job reuses ``machine`` as its vehicle (the checkpoint
    restore rewrites the whole machine state, so any machine booted from
    the same factory is a valid vehicle); a fresh-boot job always boots
    its own machine, mirroring the sequential snapshot-miss path.
    """
    if job.resume_from is not None and machine is not None:
        vehicle = machine
    else:
        vehicle = machine_factory()
    controller = ScheduleController(
        vehicle, job.schedule, watch_races=job.watch_races,
        resume_from=job.resume_from,
        checkpoint_policy=job.checkpoint_policy)
    run = controller.run()
    return WaveOutcome(
        run=run, checkpoints=tuple(controller.checkpoints),
        setup_steps=vehicle.setup_steps,
        resumed=job.resume_from is not None,
        prefix_steps=job.resume_from.steps if job.resume_from else 0)


def _wave_chunk_main(payload: dict) -> dict:
    """Worker entry: execute one chunk of wave jobs, in order.

    Must stay a module-level function (the pool may pickle it under the
    ``spawn`` start method).  Jobs arrive as a ``dumps_state`` blob —
    the serialization path for schedules and checkpoints — while the
    machine factory and the optional shared vehicle are fork-inherited.
    """
    jobs: Tuple[WaveJob, ...] = loads_state(payload["jobs_blob"])
    machine_factory = payload["machine_factory"]
    machine = payload.get("machine")
    outcomes = tuple(execute_wave_job(job, machine_factory, machine)
                     for job in jobs)
    return {"outcomes_blob": dumps_state(outcomes)}


def emit_run_counters(tracer, run: RunResult) -> None:
    """Re-emit the ``hv.*`` counters a traced controller would have
    emitted for ``run``.

    Wave children run untraced (their sink is the result pipe, not the
    parent's tracer), so the parent emits the equivalent counters when
    it merges an outcome — keeping totals identical to a sequential run
    and preserving identities like ``hv.runs == lifs.schedules +
    ca.schedules``.
    """
    tracer = as_tracer(tracer)
    if not tracer.enabled:
        return
    tracer.count("hv.runs")
    tracer.count("hv.steps", run.steps)
    tracer.count("hv.preemptions_fired", len(run.fired_preemptions))
    tracer.count("hv.breakpoint_hits",
                 len(run.fired_preemptions) + run.executed_constraints())
    tracer.count("hv.watchpoint_hits", len(run.watch_hits))
    tracer.count("hv.constraints_dropped", len(run.dropped_constraints))
    if run.failed:
        tracer.count("hv.crashes")


class WaveExecutor:
    """Fan independent schedule batches out to child processes.

    ``jobs`` is the concurrency cap.  A wave is striped into at most
    ``jobs`` contiguous-by-stride chunks (chunk *i* takes submissions
    ``i, i+jobs, i+2*jobs, ...``), one child process per chunk, which
    amortizes the fork + pipe cost across many sub-millisecond schedule
    runs.  Results are reassembled by submission index, so the merge
    order never depends on which child finished first.
    """

    def __init__(self, jobs: int,
                 machine_factory: Callable[[], KernelMachine],
                 tracer=None,
                 timeout_s: float = DEFAULT_WAVE_TIMEOUT_S,
                 retry: Optional[RetryPolicy] = None,
                 context: Optional[str] = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = jobs
        self.machine_factory = machine_factory
        self.tracer = as_tracer(tracer)
        self.timeout_s = timeout_s
        self.retry = retry or RetryPolicy()
        self._context = context or "fork"

    @property
    def parallel(self) -> bool:
        """Whether waves genuinely fan out to child processes.

        Requires ``jobs > 1``, the ``fork`` start method (machine
        factories are closures and must be inherited, not pickled) and a
        non-daemonic parent — the service pools run their workers as
        daemons, and daemonic processes may not have children, so a wave
        inside a ``--jobs N`` triage/evaluate worker degrades to inline
        execution instead of crashing.
        """
        return (self.jobs > 1
                and self._context in
                multiprocessing.get_all_start_methods()
                and not multiprocessing.current_process().daemon)

    # ------------------------------------------------------------------
    def run_wave(self, wave: Sequence[WaveJob],
                 machine: Optional[KernelMachine] = None,
                 ) -> List[WaveOutcome]:
        """Execute every job; outcomes are returned in submission order.

        ``machine`` is the caller's vehicle machine: resuming jobs
        restore their checkpoints onto (the child's forked copy of) it
        instead of booting fresh.
        """
        if not wave:
            return []
        if not self.parallel or len(wave) < 2:
            self.tracer.count("hv.wave.inline", len(wave))
            return [execute_wave_job(job, self.machine_factory, machine)
                    for job in wave]

        width = min(self.jobs, len(wave))
        stripes = [list(range(i, len(wave), width)) for i in range(width)]
        chunk_jobs = [
            TriageJob(
                job_id=f"wave-{i}",
                payload={
                    "jobs_blob": dumps_state(
                        tuple(wave[j] for j in stripe)),
                    "machine_factory": self.machine_factory,
                    "machine": machine,
                },
                timeout_s=self.timeout_s)
            for i, stripe in enumerate(stripes)
        ]
        pool = WorkerPool(_wave_chunk_main, jobs=width, retry=self.retry,
                          context=self._context, poll_interval_s=0.002)
        pool.run(chunk_jobs)

        outcomes: List[Optional[WaveOutcome]] = [None] * len(wave)
        dispatched = fallbacks = 0
        for stripe, chunk in zip(stripes, chunk_jobs):
            if chunk.outcome is JobOutcome.SUCCEEDED:
                chunk_outcomes = loads_state(chunk.result["outcomes_blob"])
                for j, outcome in zip(stripe, chunk_outcomes):
                    outcomes[j] = outcome
                dispatched += len(stripe)
            else:
                # Timeout or worker death past the retry budget: the wave
                # must still complete deterministically, so the chunk is
                # re-executed inline on the parent.
                fallbacks += len(stripe)
                for j in stripe:
                    outcomes[j] = execute_wave_job(
                        wave[j], self.machine_factory, machine)
        if self.tracer.enabled:
            self.tracer.count("hv.wave.batches")
            self.tracer.count("hv.wave.jobs", len(wave))
            self.tracer.count("hv.wave.dispatched", dispatched)
            if fallbacks:
                self.tracer.count("hv.wave.fallbacks", fallbacks)
            self.tracer.point("hv.wave.batch", stage="hv",
                              jobs=len(wave), width=width,
                              fallbacks=fallbacks)
        return outcomes  # type: ignore[return-value]
