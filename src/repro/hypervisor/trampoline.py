"""Trampoline: where suspended threads are parked.

The real AITIA redirects a suspended thread's program counter into a busy
loop that keeps calling ``cond_resched()``, so the thread stays responsive
to IPIs and RCU notifications while effectively paused (paper section 4.4).
In the simulated kernel a parked thread simply is not scheduled; this class
keeps the bookkeeping — who is parked, why, and in what nesting order —
and mirrors the saved-context semantics of the real trampoline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional


class ParkReason(enum.Enum):
    PREEMPTED = "preempted"  # LIFS scheduling point fired
    CONSTRAINT = "constraint"  # would execute a constrained instruction early


@dataclass
class ParkedThread:
    thread: str
    reason: ParkReason
    #: Index into the diagnosis schedule's constraint queue (CONSTRAINT only).
    constraint_index: Optional[int] = None
    #: Code address the thread was about to execute when parked.
    instr_addr: int = 0


class Trampoline:
    """Bookkeeping for parked threads.

    Preempted threads form a LIFO resume stack (a preemption switches away
    and the preempted thread resumes when the switched-to work finishes);
    constraint-parked threads are released when their constraint becomes
    the head of the queue or is dropped.
    """

    def __init__(self) -> None:
        self._stack: List[ParkedThread] = []
        self._parked: Dict[str, ParkedThread] = {}

    def park_preempted(self, thread: str, instr_addr: int) -> None:
        entry = ParkedThread(thread, ParkReason.PREEMPTED, instr_addr=instr_addr)
        self._stack.append(entry)
        self._parked[thread] = entry

    def park_on_constraint(self, thread: str, constraint_index: int,
                           instr_addr: int) -> None:
        entry = ParkedThread(thread, ParkReason.CONSTRAINT,
                             constraint_index=constraint_index,
                             instr_addr=instr_addr)
        self._parked[thread] = entry

    def is_parked(self, thread: str) -> bool:
        return thread in self._parked

    def parked_reason(self, thread: str) -> Optional[ParkReason]:
        entry = self._parked.get(thread)
        return entry.reason if entry else None

    def constraint_index(self, thread: str) -> Optional[int]:
        entry = self._parked.get(thread)
        return entry.constraint_index if entry else None

    def release(self, thread: str) -> None:
        entry = self._parked.pop(thread, None)
        if entry is not None and entry in self._stack:
            self._stack.remove(entry)

    def release_constraint_parked(self) -> List[str]:
        """Release every constraint-parked thread (the queue head changed);
        returns the released thread names."""
        released = [
            name for name, entry in self._parked.items()
            if entry.reason is ParkReason.CONSTRAINT
        ]
        for name in released:
            del self._parked[name]
        return released

    def resume_candidates(self) -> List[str]:
        """Preempted threads in LIFO resume order (most recent first)."""
        return [entry.thread for entry in reversed(self._stack)]

    def parked_threads(self) -> List[str]:
        return list(self._parked)

    @property
    def parked_count(self) -> int:
        return len(self._parked)

    def clear(self) -> None:
        self._stack.clear()
        self._parked.clear()

    def snapshot(self) -> dict:
        """Plain-data capture for run checkpoints.  ``parked`` preserves
        insertion order (``release_constraint_parked`` iterates it) and
        ``stack`` records the LIFO resume order by thread name."""
        return {
            "parked": [
                (e.thread, e.reason, e.constraint_index, e.instr_addr)
                for e in self._parked.values()
            ],
            "stack": [e.thread for e in self._stack],
        }

    def restore(self, snap: dict) -> None:
        self._parked = {}
        for thread, reason, constraint_index, instr_addr in snap["parked"]:
            self._parked[thread] = ParkedThread(
                thread, reason, constraint_index=constraint_index,
                instr_addr=instr_addr)
        # Stack entries must alias the parked entries: ``release`` removes
        # by identity membership.
        self._stack = [self._parked[name] for name in snap["stack"]]
