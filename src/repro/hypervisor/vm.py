"""One reproducer/diagnoser virtual machine.

The real AITIA boots a guest VM per reproducer/diagnoser, reverts its
memory after each schedule, and must *reboot* it whenever a run crashes
the guest kernel — the dominant cost of the diagnosing stage (paper
section 5.1).  :class:`VirtualMachine` wraps a machine factory with that
lifecycle and keeps the accounting the evaluation tables are built from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.schedule import Schedule
from repro.hypervisor.controller import RunResult, ScheduleController
from repro.kernel.machine import KernelMachine


@dataclass
class VmAccounting:
    runs: int = 0
    reboots: int = 0
    restores: int = 0
    steps: int = 0


class VirtualMachine:
    """A guest VM executing schedules over fresh kernel instances."""

    def __init__(self, vm_id: int,
                 machine_factory: Callable[[], KernelMachine]) -> None:
        self.vm_id = vm_id
        self.machine_factory = machine_factory
        self.accounting = VmAccounting()

    def execute(self, schedule: Schedule,
                watch_races: bool = True, tracer=None) -> RunResult:
        """Boot (or restore) the guest, enforce the schedule, and account
        for the revert/reboot afterwards."""
        controller = ScheduleController(self.machine_factory(), schedule,
                                        watch_races=watch_races,
                                        tracer=tracer)
        run = controller.run()
        self.record(run)
        return run

    def record(self, run: RunResult) -> None:
        """Account for a run this VM was assigned but that executed
        elsewhere (a parallel wave child): same revert/reboot bookkeeping
        as :meth:`execute`, no second execution."""
        self.accounting.runs += 1
        self.accounting.steps += run.steps
        if run.failed:
            self.accounting.reboots += 1
        else:
            self.accounting.restores += 1
