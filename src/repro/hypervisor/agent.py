"""The user agent: the guest-side half of AITIA's hypercall protocol.

Paper section 4.3 / Figure 8: a user agent runs inside the guest OS.  It
executes the slice's system calls one at a time, collects basic-block
coverage through kcov, maps covered blocks to their memory-accessing
instructions with a disassembly of the kernel, and then drives the
hypervisor through two hypercalls:

* ``hcall_monitor(thread, instr)`` — install a breakpoint at a
  memory-accessing instruction; when the thread hits it, the hypervisor
  parks the thread on the trampoline and installs a watchpoint on the
  data address the instruction references;
* ``hcall_resume(thread)`` — resume another suspended thread; any access
  it (or a background thread it invokes) makes to the watched address is
  trapped and reported as a data race with the monitored instruction.

The production pipeline does all of this implicitly inside
:class:`~repro.hypervisor.controller.ScheduleController`; this module
exposes the workflow as the explicit, paper-shaped API, which the
Figure 8 test and benchmark exercise step by step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.core.schedule import Preemption, Schedule
from repro.hypervisor.controller import RunResult, ScheduleController
from repro.kernel.instructions import Instruction
from repro.kernel.kcov import Kcov
from repro.kernel.machine import KernelMachine


@dataclass(frozen=True)
class ObservedRace:
    """A racing pair reported by the hypervisor: the monitored (parked)
    instruction and the access that tripped its watchpoint."""

    monitored_thread: str
    monitored_label: str
    racing_thread: str
    racing_label: str
    data_addr: int

    def __str__(self) -> str:
        return (f"{self.monitored_label}({self.monitored_thread}) ~ "
                f"{self.racing_label}({self.racing_thread})")


@dataclass
class ThreadProfile:
    """What the agent learned about one thread from a solo run."""

    thread: str
    covered_blocks: List[int]
    memory_instructions: List[Instruction]

    @property
    def memory_labels(self) -> List[str]:
        return [i.name for i in self.memory_instructions]


class UserAgent:
    """One user agent, bound to a machine factory (a slice)."""

    def __init__(self, machine_factory: Callable[[], KernelMachine]) -> None:
        self.machine_factory = machine_factory
        self.image = machine_factory().image

    # ------------------------------------------------------------------
    # Step 1 (Figure 8 left): profile threads with kcov + disassembly.
    # ------------------------------------------------------------------
    def profile_thread(self, thread: str) -> ThreadProfile:
        """Run one thread solo under kcov; map its covered basic blocks to
        memory-accessing instructions via the kernel disassembly."""
        kcov = Kcov(self.image)
        machine = self.machine_factory()
        machine.coverage_cb = kcov
        ctx = machine.thread(thread)
        while not ctx.done and not machine.halted:
            machine.step(thread)
        return ThreadProfile(
            thread=thread,
            covered_blocks=kcov.covered_blocks(thread),
            memory_instructions=kcov.memory_instructions(thread))

    # ------------------------------------------------------------------
    # Step 2 (Figure 8 right): hcall_monitor + hcall_resume.
    # ------------------------------------------------------------------
    def monitor_and_resume(
        self,
        monitored_thread: str,
        monitored_instr: str,
        occurrence: int = 1,
        resume: Optional[str] = None,
    ) -> Tuple[List[ObservedRace], RunResult]:
        """The Figure 8 probe: run ``monitored_thread`` until it hits the
        breakpoint at ``monitored_instr`` (hcall_monitor), park it with a
        watchpoint on the referenced address, resume the other thread
        (hcall_resume), and report every conflicting access the
        watchpoint traps — including from background threads the resumed
        thread invokes.
        """
        instr = self.image.instruction_labeled(monitored_instr)
        if not instr.accesses_memory:
            raise ValueError(
                f"{monitored_instr!r} does not access memory; only "
                f"memory-accessing instructions can be monitored")
        schedule = Schedule(
            start_order=(monitored_thread,),
            preemptions=[Preemption(
                thread=monitored_thread, instr_addr=instr.addr,
                occurrence=occurrence, switch_to=resume,
                instr_label=monitored_instr)],
            note=f"hcall_monitor({monitored_thread}, {monitored_instr})")
        controller = ScheduleController(self.machine_factory(), schedule,
                                        watch_races=True)
        run = controller.run()
        races = [
            ObservedRace(
                monitored_thread=hit.watchpoint.owner_thread,
                monitored_label=hit.watchpoint.owner_label,
                racing_thread=hit.access.thread,
                racing_label=hit.access.instr_label,
                data_addr=hit.access.data_addr)
            for hit in run.watch_hits
        ]
        return races, run

    # ------------------------------------------------------------------
    # Step 3: sweep a thread's memory instructions for racing partners.
    # ------------------------------------------------------------------
    def probe_thread(self, monitored_thread: str,
                     resume: Optional[str] = None) -> List[ObservedRace]:
        """Monitor every memory-accessing instruction the thread covers,
        one probe run each — the way LIFS accumulates its race knowledge
        while searching (section 3.3)."""
        profile = self.profile_thread(monitored_thread)
        observed: List[ObservedRace] = []
        seen = set()
        for instr in profile.memory_instructions:
            races, _ = self.monitor_and_resume(
                monitored_thread, instr.name, resume=resume)
            for race in races:
                key = (race.monitored_label, race.racing_label)
                if key not in seen:
                    seen.add(key)
                    observed.append(race)
        return observed
