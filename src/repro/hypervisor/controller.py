"""Schedule enforcement: the hypervisor side of AITIA's hypercall protocol.

:class:`ScheduleController` boots one run of the simulated kernel and makes
it follow a :class:`~repro.core.schedule.Schedule`:

* **Preemptions** (LIFS reproduce schedules): when the running thread is
  about to execute a scheduled instruction, it is parked on the trampoline
  and control switches to the named thread — the breakpoint/VM-exit dance
  of paper section 4.4.  When a thread finishes, the most recently parked
  thread resumes (LIFO), and background threads spawned during the run are
  scheduled after the initial threads.
* **Order constraints** (Causality Analysis diagnosis schedules): the
  constrained instructions must execute in queue order.  A thread about to
  execute a constrained instruction out of turn is parked until its entry
  becomes the head.  A head entry whose instruction can no longer execute —
  its thread finished, or skipped the instruction via a race-steered
  control flow — is *dropped* and recorded: this is exactly the signal
  Causality Analysis uses to learn that flipping one race made another
  disappear (section 3.4).

While a preempted instruction is parked, a watchpoint is installed on the
data address it was about to touch; conflicting accesses from other threads
are trapped and reported, which is how LIFS identifies data races.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.schedule import OrderConstraint, Preemption, Schedule
from repro.hypervisor.breakpoints import (
    Breakpoint,
    BreakpointManager,
    Watchpoint,
    WatchpointHit,
    WatchpointManager,
)
from repro.hypervisor.snapshot import (
    CheckpointPolicy,
    RunCheckpoint,
    restore_machine,
    snapshot_machine,
)
from repro.hypervisor.trampoline import ParkReason, Trampoline
from repro.kernel.access import MemoryAccess
from repro.kernel.failures import Failure
from repro.kernel.machine import KernelMachine, SpawnEvent, TraceEntry
from repro.kernel.snapshot import machine_state_key
from repro.kernel.threads import ThreadState
from repro.observe.tracer import as_tracer

#: Upper bound on executed instructions per run; exceeding it indicates a
#: broken model rather than a kernel failure.
MAX_RUN_STEPS = 500_000


@dataclass
class RunResult:
    """Everything one enforced run produced."""

    schedule: Schedule
    failure: Optional[Failure]
    trace: List[TraceEntry]
    accesses: List[MemoryAccess]
    spawn_events: List[SpawnEvent]
    fired_preemptions: List[Preemption]
    #: Global seq at which each fired preemption parked its thread (aligned
    #: with ``fired_preemptions``).
    fired_seqs: List[int]
    dropped_constraints: List[OrderConstraint]
    infeasible_constraints: List[OrderConstraint]
    watch_hits: List[WatchpointHit]
    steps: int
    #: Forced context switches (fired preemptions) — the paper's
    #: "interleaving count".
    interleavings: int
    #: Of those, how many preempted threads ran again afterwards.
    resumed_interleavings: int
    thread_names: List[str]
    #: thread name -> kind value ("syscall" / "kworker" / "rcu_softirq" /
    #: "irq"); lets consumers treat IRQ handlers as non-preemptible.
    thread_kinds: Dict[str, str]

    @property
    def failed(self) -> bool:
        return self.failure is not None

    def executed_constraints(self) -> int:
        return len(self.schedule.constraints) - len(self.dropped_constraints)

    def signature(self) -> Tuple:
        """Mazurkiewicz-style equivalence signature: the per-thread
        instruction sequences plus the per-location order of conflicting
        accesses.  Two runs with equal signatures are equivalent in the
        DPOR sense LIFS prunes by (section 3.3)."""
        per_thread: Dict[str, List[int]] = {}
        for entry in self.trace:
            per_thread.setdefault(entry.thread, []).append(entry.instr_addr)
        per_location: Dict[int, List[Tuple[str, int]]] = {}
        for access in self.accesses:
            per_location.setdefault(access.data_addr, []).append(
                (access.thread, access.instr_addr))
        return (
            tuple(sorted((t, tuple(seq)) for t, seq in per_thread.items())),
            tuple(sorted((loc, tuple(seq))
                         for loc, seq in per_location.items())),
        )

    def signature_hash(self) -> int:
        """Stable 64-bit digest of :meth:`signature`.  Unlike ``hash()``
        (salted per process for strings) the digest is identical across
        processes and sessions, so it can be persisted and compared;
        LIFS dedups on it instead of pinning the full nested tuples."""
        digest = hashlib.blake2b(repr(self.signature()).encode("utf-8"),
                                 digest_size=8).digest()
        return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class SpliceTail:
    """An earlier run's already-computed suffix, ready to be grafted onto a
    run whose controller state has *converged* onto the donor's (see
    ``splice_probe`` on :class:`ScheduleController`).  All records are the
    machine's frozen types, so the splice shares them structurally."""

    trace: Tuple[TraceEntry, ...]
    accesses: Tuple[MemoryAccess, ...]
    spawn_events: Tuple[SpawnEvent, ...]
    failure: Optional[Failure]
    #: Controller steps the donor spent past the splice point.
    steps: int
    #: The donor machine's final global seq.
    final_seq: int
    thread_names: Tuple[str, ...]
    thread_kinds: Dict[str, str]


class ContinuationCache:
    """Memo of run continuations shared across a family of runs: suffix
    splicing, the complement of prefix-checkpoint resume.

    Runs exploring interleavings of the same workload are *reorderings* of
    each other and funnel through shared machine states once their
    enforced reorderings resolve.  In LIFS, a preempted thread resumes at
    the lowest scheduling priority, so every extension of a base ends by
    draining the preempted thread's remainder while all other threads are
    done; sibling extensions differ only in how far that thread had
    progressed when preempted.  In Causality Analysis, a flip that leaves
    the failure intact or benign converges back onto the unconstrained
    trajectory after its reordered window.  The first run to interpret
    such a suffix donates it here; every later run that reaches an
    *identical* controller state grafts the memoized suffix
    (:class:`SpliceTail`) instead of re-interpreting it.

    The key is exact — global seq, active thread and the canonical
    :func:`~repro.kernel.snapshot.machine_state_key` — and splicing is
    only probed when enforcement is quiescent (no pending preemption,
    all constraints resolved, nothing parked), where the continuation is
    a pure function of that key.  Runs that genuinely differ (e.g.
    reordered allocations shift heap base addresses) never match and
    simply run on, which is what keeps spliced results bit-identical to
    fresh interpretation.
    """

    def __init__(self, max_entries: int) -> None:
        #: key -> (donor run, horizon seq, donor controller steps there)
        self.entries: Dict[Tuple, Tuple[RunResult, int, int]] = {}
        self.max_entries = max_entries

    def session(self) -> "SpliceSession":
        return SpliceSession(self)


class SpliceSession:
    """One run's view of a :class:`ContinuationCache`.

    ``probe`` is handed to the :class:`ScheduleController`: at each
    quiescent step it computes the state key once, using it both to look
    up a memoized suffix *and* to remember this run's own quiescent
    points.  After the run completes, :meth:`donate` publishes those
    points so later runs can splice from them."""

    def __init__(self, cache: ContinuationCache) -> None:
        self._cache = cache
        #: (key, controller steps) at each quiescent point of this run.
        self._seen: List[Tuple[Tuple, int]] = []

    def probe(self, machine: KernelMachine,
              controller: "ScheduleController") -> Optional[SpliceTail]:
        key = (machine._seq, controller._active, machine_state_key(machine))
        hit = self._cache.entries.get(key)
        if hit is not None:
            donor, horizon, donor_steps = hit
            i = bisect.bisect_right([e.seq for e in donor.trace], horizon)
            return SpliceTail(
                trace=tuple(donor.trace[i:]),
                accesses=tuple(a for a in donor.accesses if a.seq > horizon),
                spawn_events=tuple(e for e in donor.spawn_events
                                   if e.seq > horizon),
                failure=donor.failure,
                steps=donor.steps - donor_steps,
                final_seq=donor.trace[-1].seq,
                thread_names=tuple(donor.thread_names),
                thread_kinds=dict(donor.thread_kinds),
            )
        self._seen.append((key, controller._steps))
        return None

    def donate(self, run: RunResult) -> None:
        entries = self._cache.entries
        limit = self._cache.max_entries
        for key, steps in self._seen:
            if len(entries) >= limit:
                break
            if run.steps <= steps:
                continue  # quiescent point was the final state: no suffix
            entries.setdefault(key, (run, key[0], steps))


class ScheduleController:
    """Runs one machine under one schedule.

    Normally the machine is freshly booted; with ``resume_from`` the
    controller instead restores machine *and* enforcement state from a
    :class:`RunCheckpoint` and interprets only the run's suffix.  The
    suffix unfolds exactly as a fresh run would past the checkpoint — the
    loop is deterministic in (machine state, pending preemptions,
    constraints, trampoline, active thread) — so the resulting
    :class:`RunResult` is bit-identical, including ``steps``, which keeps
    whole-run semantics (prefix + suffix); callers account saved work via
    :attr:`resumed_from_steps`.

    With ``checkpoint_policy`` set, the run captures prefix checkpoints
    (at entry, at each preemption fire, and periodically) into
    :attr:`checkpoints` for later runs to resume from.  Constraint
    schedules are never checkpointed: the constraint-queue cursor is not
    part of a checkpoint.
    """

    def __init__(self, machine: KernelMachine, schedule: Schedule,
                 watch_races: bool = True, tracer=None,
                 resume_from: Optional[RunCheckpoint] = None,
                 checkpoint_policy: Optional[CheckpointPolicy] = None,
                 splice_probe=None) -> None:
        self.machine = machine
        self.schedule = schedule
        self.watch_races = watch_races
        self.tracer = as_tracer(tracer)
        self.trampoline = Trampoline()
        self.breakpoints = BreakpointManager()
        self.watchpoints = WatchpointManager()
        self._pending_preemptions: List[Preemption] = list(schedule.preemptions)
        self._fired: List[Tuple[Preemption, int]] = []  # (preemption, seq)
        self._constraints: List[OrderConstraint] = list(schedule.constraints)
        self._head = 0
        self._dropped: List[OrderConstraint] = []
        self._infeasible: List[OrderConstraint] = []
        self._active: Optional[str] = None
        self._steps = 0
        self._policy = checkpoint_policy if not schedule.constraints else None
        self._steps_since_capture = 0
        self.checkpoints: List[RunCheckpoint] = []
        self._resumed_from = resume_from
        #: callable(machine, controller) -> Optional[SpliceTail]; consulted
        #: once enforcement is quiescent (no pending preemption, nothing
        #: parked).  A returned tail ends the run with a donor run's suffix
        #: grafted on instead of re-interpreting it.
        self._splice_probe = splice_probe
        #: Steps covered by a splice instead of interpretation.
        self.spliced_steps = 0
        self._splice_names: Optional[Tuple[Tuple[str, ...], Dict[str, str]]] \
            = None
        #: Cached _thread_order result, keyed on the thread count (the
        #: roster only grows during a run, and only by spawns at the end).
        self._order_cache: Optional[Tuple[int, List[str]]] = None
        if resume_from is not None:
            self._apply_checkpoint(resume_from)
        for p in self._pending_preemptions:
            self.breakpoints.install(Breakpoint(p.instr_addr, p.thread,
                                                p.occurrence))
        for c in self._constraints:
            self.breakpoints.install(Breakpoint(c.instr_addr, c.thread,
                                                c.occurrence))

    @property
    def resumed_from_steps(self) -> int:
        """Controller steps inherited from the checkpoint (skipped work)."""
        return self._resumed_from.steps if self._resumed_from else 0

    def _apply_checkpoint(self, ckpt: RunCheckpoint) -> None:
        # A checkpoint past the boot point encodes scheduling decisions,
        # which are only valid under the same start order; a boot
        # checkpoint (steps == 0, nothing fired) resumes under any.
        if ckpt.steps and tuple(ckpt.start_order) != \
                tuple(self.schedule.start_order):
            raise ValueError("checkpoint start order does not match schedule")
        restore_machine(self.machine, ckpt.machine)
        if ckpt.trampoline is not None:
            self.trampoline.restore(ckpt.trampoline)
        if ckpt.watchpoints is not None:
            self.watchpoints.restore(ckpt.watchpoints)
        self._fired = list(ckpt.fired)
        for p, _ in self._fired:
            try:
                self._pending_preemptions.remove(p)
            except ValueError:
                raise ValueError(
                    "checkpoint fired a preemption the schedule does not "
                    "contain — it is not a prefix of this run") from None
        self._active = ckpt.active
        self._steps = ckpt.steps

    def _maybe_capture(self) -> None:
        policy = self._policy
        if policy is None or len(self.checkpoints) >= policy.max_checkpoints:
            return
        if self.machine.halted or self.machine.all_done():
            return
        self._steps_since_capture = 0
        self.checkpoints.append(RunCheckpoint(
            machine=snapshot_machine(self.machine),
            horizon_seq=self.machine._seq,
            steps=self._steps,
            fired=tuple(self._fired),
            trampoline=self.trampoline.snapshot(),
            watchpoints=self.watchpoints.snapshot(),
            active=self._active,
            start_order=tuple(self.schedule.start_order),
        ))

    # ------------------------------------------------------------------
    # Thread choice
    # ------------------------------------------------------------------
    def _thread_order(self) -> List[str]:
        """Initial threads in start order, then dynamically spawned threads
        in spawn order.  Recomputed only when the roster grows."""
        cached = self._order_cache
        count = len(self.machine.threads)
        if cached is not None and cached[0] == count:
            return cached[1]
        names = [t.name for t in self.machine.threads]
        ordered = [n for n in self.schedule.start_order if n in names]
        ordered.extend(n for n in names if n not in ordered)
        self._order_cache = (count, ordered)
        return ordered

    def _known(self, name: str) -> bool:
        return name in self.machine._by_name

    def _runnable(self, name: str) -> bool:
        # Schedules may reference background threads that only exist in
        # some interleavings (race-steered invocations); an unspawned
        # thread is simply not runnable.
        thread = self.machine._by_name.get(name)
        if thread is None:
            return False
        return thread.runnable and not self.trampoline.is_parked(name)

    def _head_constraint(self) -> Optional[OrderConstraint]:
        if self._head < len(self._constraints):
            return self._constraints[self._head]
        return None

    def _choose(self) -> Optional[str]:
        # 1. Drive toward the head constraint: its owner must run to reach
        #    the constrained instruction.
        head = self._head_constraint()
        if head is not None:
            if self.trampoline.constraint_index(head.thread) == self._head:
                self.trampoline.release(head.thread)
            if self._runnable(head.thread):
                return head.thread
        # 2. Continue the active thread.
        if self._active is not None and self._runnable(self._active):
            return self._active
        # 3. First runnable, un-parked thread in schedule order.
        for name in self._thread_order():
            if self._runnable(name):
                return name
        # 4. Resume the most recently preempted runnable thread.
        for name in self.trampoline.resume_candidates():
            if self.machine.thread(name).runnable:
                self.trampoline.release(name)
                return name
        return None

    # ------------------------------------------------------------------
    # Stuck resolution
    # ------------------------------------------------------------------
    def _constraint_disappeared(self, head: OrderConstraint) -> bool:
        """Can the head constraint's instruction still execute?"""
        if not self._known(head.thread):
            # The owning background thread was never invoked in this run —
            # a race-steered control flow made it disappear.
            return True
        owner = self.machine.thread(head.thread)
        if owner.done:
            return True
        parked_index = self.trampoline.constraint_index(head.thread)
        if parked_index is not None and parked_index > self._head:
            # The owner reached a *later* constrained instruction without
            # passing the head: a race-steered control flow skipped it.
            return True
        return False

    def _drop_head(self, disappeared: bool) -> None:
        head = self._constraints[self._head]
        self._dropped.append(head)
        if not disappeared:
            self._infeasible.append(head)
        self._head += 1
        self.trampoline.release_constraint_parked()

    def _resolve_stuck(self) -> bool:
        """No thread was choosable.  Returns True when progress was made."""
        head = self._head_constraint()
        if head is not None:
            # Either the head instruction disappeared (its thread finished or
            # skipped it via a race-steered control flow), or enforcing the
            # remaining order is infeasible (e.g. the owner is blocked on a
            # lock held by a parked thread).  Both resolve by dropping the
            # head; Causality Analysis interprets the two cases differently.
            self._drop_head(disappeared=self._constraint_disappeared(head))
            return True
        blocked = [t for t in self.machine.threads
                   if t.state is ThreadState.BLOCKED]
        if blocked and not self.machine.all_done():
            self.machine.report_deadlock(blocked)
        return False

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        machine = self.machine
        if self._policy is not None and self._resumed_from is None:
            # Entry checkpoint: for the very first run this is the boot
            # state, reusable under any schedule.
            self._maybe_capture()
        while not machine.halted and not machine.all_done():
            name = self._choose()
            if name is None:
                if not self._resolve_stuck():
                    break
                continue
            instr = machine.peek(name)
            if instr is None:
                self._active = None
                continue
            occurrence = machine.next_occurrence(name, instr.addr)

            preemption = self._match_preemption(name, instr.addr, occurrence)
            if preemption is not None:
                self._fire_preemption(preemption, name, instr)
                continue

            constraint_index = self._match_constraint(name, instr.addr,
                                                      occurrence)
            if constraint_index is not None and constraint_index != self._head:
                self.trampoline.park_on_constraint(name, constraint_index,
                                                   instr.addr)
                if self._active == name:
                    self._active = None
                continue

            outcome = machine.step(name)
            self._steps += 1
            if self._steps > MAX_RUN_STEPS:
                raise RuntimeError(
                    f"run exceeded {MAX_RUN_STEPS} steps under schedule "
                    f"{self.schedule.describe()}")
            if constraint_index is not None and outcome.executed:
                self._head += 1
                self.trampoline.release_constraint_parked()
            if outcome.executed:
                self._active = name
                for access in outcome.accesses:
                    self.watchpoints.observe(access)
            if outcome.blocked and self._active == name:
                self._active = None
            if outcome.thread_done and self._active == name:
                self._active = None
            self._steps_since_capture += 1
            if self._policy is not None and \
                    self._steps_since_capture >= self._policy.interval:
                self._maybe_capture()
            if self._splice_probe is not None and not machine.halted \
                    and not self._pending_preemptions \
                    and self._head >= len(self._constraints) \
                    and self.trampoline.parked_count == 0:
                tail = self._splice_probe(machine, self)
                if tail is not None:
                    self._apply_splice(tail)
                    break

        # Constraints whose instructions never executed (their thread
        # finished early or the run crashed) disappeared.
        while self._head < len(self._constraints):
            self._drop_head(disappeared=True)

        machine.finish()
        return self._result()

    def _apply_splice(self, tail: SpliceTail) -> None:
        """Graft a converged base run's suffix onto this run.

        The machine's logs, seq counter and failure flag take the base's
        final values; the tail's accesses are replayed through this run's
        *own* watchpoints (the armed set differs from the base's, and hits
        are observation-only, so replaying the access stream records
        exactly the hits interpretation would have).  The machine's live
        thread/memory state is left at the splice point — the caller
        restores a checkpoint before the next run anyway."""
        machine = self.machine
        machine.trace.extend(tail.trace)
        machine.access_log.extend(tail.accesses)
        machine.spawn_events.extend(tail.spawn_events)
        machine._seq = tail.final_seq
        machine.failure = tail.failure
        for access in tail.accesses:
            self.watchpoints.observe(access)
        self._steps += tail.steps
        self.spliced_steps = tail.steps
        self._splice_names = (tail.thread_names, tail.thread_kinds)
        if self.tracer.enabled:
            self.tracer.count("hv.splices")

    def _match_preemption(self, thread: str, instr_addr: int,
                          occurrence: int) -> Optional[Preemption]:
        for p in self._pending_preemptions:
            if p.matches(thread, instr_addr, occurrence):
                return p
        return None

    def _match_constraint(self, thread: str, instr_addr: int,
                          occurrence: int) -> Optional[int]:
        for i in range(self._head, len(self._constraints)):
            if self._constraints[i].matches(thread, instr_addr, occurrence):
                return i
        return None

    def _fire_preemption(self, preemption: Preemption, thread: str,
                         instr) -> None:
        # Pre-fire capture: this state has NOT diverged yet (the preemption
        # is still pending), so a search can reuse it as a checkpoint of
        # the base schedule at exactly the divergence point — siblings that
        # diverge later resume from here instead of an earlier capture.
        self._maybe_capture()
        self._pending_preemptions.remove(preemption)
        self._fired.append((preemption, self.machine.trace[-1].seq
                            if self.machine.trace else 0))
        self.trampoline.park_preempted(thread, instr.addr)
        if self.watch_races:
            data_addr = self.machine.resolve_access_addr(thread, instr)
            if data_addr is not None:
                self.watchpoints.install(Watchpoint(
                    data_addr=data_addr, owner_thread=thread,
                    owner_instr_addr=instr.addr, owner_label=instr.name))
        target = preemption.switch_to
        if target is not None:
            if self.trampoline.is_parked(target) and \
                    self.trampoline.parked_reason(target) is ParkReason.PREEMPTED:
                self.trampoline.release(target)
            self._active = target if self._runnable(target) else None
        else:
            self._active = None
        # A fire point is the horizon past which extensions of this run
        # diverge — always worth a checkpoint.
        self._maybe_capture()

    # ------------------------------------------------------------------
    def _measured_interleavings(self) -> int:
        if not self._fired:
            return 0
        # Only the fired preemptions' threads matter; a reverse scan finds
        # each one's last executed seq and stops as soon as all are seen.
        needed = {p.thread for p, _ in self._fired}
        executed_after: Dict[str, int] = {}
        for entry in reversed(self.machine.trace):
            t = entry.thread
            if t in needed and t not in executed_after:
                executed_after[t] = entry.seq
                if len(executed_after) == len(needed):
                    break
        count = 0
        for preemption, seq in self._fired:
            last = executed_after.get(preemption.thread, 0)
            if last > seq:
                count += 1
        return count

    def _result(self) -> RunResult:
        tracer = self.tracer
        if tracer.enabled:
            tracer.count("hv.runs")
            tracer.count("hv.steps", self._steps)
            tracer.count("hv.preemptions_fired", len(self._fired))
            tracer.count("hv.breakpoint_hits",
                         len(self._fired) + len(self._constraints)
                         - len(self._dropped))
            tracer.count("hv.watchpoint_hits", len(self.watchpoints.hits))
            tracer.count("hv.constraints_dropped", len(self._dropped))
            if self.machine.failure is not None:
                tracer.count("hv.crashes")
        return RunResult(
            schedule=self.schedule,
            failure=self.machine.failure,
            trace=list(self.machine.trace),
            accesses=list(self.machine.access_log),
            spawn_events=list(self.machine.spawn_events),
            fired_preemptions=[p for p, _ in self._fired],
            fired_seqs=[seq for _, seq in self._fired],
            dropped_constraints=list(self._dropped),
            infeasible_constraints=list(self._infeasible),
            watch_hits=list(self.watchpoints.hits),
            steps=self._steps,
            interleavings=len(self._fired),
            resumed_interleavings=self._measured_interleavings(),
            # A spliced run's machine never materializes threads spawned in
            # the grafted tail; the base's final roster is authoritative.
            thread_names=(list(self._splice_names[0]) if self._splice_names
                          else [t.name for t in self.machine.threads]),
            thread_kinds=(dict(self._splice_names[1]) if self._splice_names
                          else {t.name: t.kind.value
                                for t in self.machine.threads}),
        )


def run_schedule(machine_factory, schedule: Schedule,
                 watch_races: bool = True, tracer=None) -> RunResult:
    """Boot a fresh machine from ``machine_factory`` and run ``schedule``."""
    controller = ScheduleController(machine_factory(), schedule,
                                    watch_races=watch_races, tracer=tracer)
    return controller.run()


def serial_schedule(order: Sequence[str], note: str = "") -> Schedule:
    """A schedule with no interleavings: threads run to completion in the
    given order (LIFS interleaving count 0)."""
    return Schedule(start_order=tuple(order), note=note or "serial")
