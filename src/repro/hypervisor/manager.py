"""The VM pool manager.

AITIA's manager (2,889 LoC of GO in the paper) launches multiple guest
VMs — 32 in the evaluation — and parallelizes the reproducing stage across
slices and the diagnosing stage across flip tests (sections 4.1, 4.5).

By default execution is sequential and work is only *assigned* to VMs
round-robin, exactly as the manager would, so per-VM accounting and the
idealized parallel wall-clock estimate are meaningful.  With
``wave_jobs > 1`` a batch handed to :meth:`execute_all` additionally
*runs* in parallel: the pool hands the batch to a snapshot-free
:class:`~repro.engine.ScheduleExecutionEngine` that fans it out to
child processes and merges the results in submission order, so the
caller observes the same result sequence either way.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.core.schedule import Schedule
from repro.hypervisor.controller import RunResult
from repro.hypervisor.vm import VirtualMachine, VmAccounting
from repro.kernel.machine import KernelMachine

DEFAULT_VM_COUNT = 32


class VmPool:
    """A fixed-size pool of reproducer/diagnoser VMs."""

    def __init__(self, machine_factory: Callable[[], KernelMachine],
                 vm_count: int = DEFAULT_VM_COUNT, tracer=None,
                 wave_jobs: int = 1) -> None:
        from repro.observe.tracer import as_tracer

        if vm_count < 1:
            raise ValueError("vm_count must be at least 1")
        self.tracer = as_tracer(tracer)
        self.machine_factory = machine_factory
        self.vms = [VirtualMachine(i, machine_factory)
                    for i in range(vm_count)]
        self._next = 0
        self._engine = None
        if wave_jobs > 1:
            # Imported here: repro.hypervisor.__init__ loads this module
            # before repro.hypervisor.waves, which the engine builds on.
            from repro.engine import EnginePolicy, ScheduleExecutionEngine
            self._engine = ScheduleExecutionEngine(
                machine_factory,
                EnginePolicy(use_snapshots=False, wave_jobs=wave_jobs),
                tracer=self.tracer)
        #: Width of the widest batch that genuinely ran (or, sequentially,
        #: could have run) concurrently since :meth:`reset_accounting`.
        self.max_batch_width = 0

    def execute(self, schedule: Schedule,
                watch_races: bool = True) -> RunResult:
        """Run one schedule on the next VM (round-robin assignment)."""
        vm = self.vms[self._next]
        self._next = (self._next + 1) % len(self.vms)
        self.tracer.count("hv.vm_assignments")
        # A lone schedule is a batch of width 1, never more.
        self.max_batch_width = max(self.max_batch_width, 1)
        return vm.execute(schedule, watch_races=watch_races,
                          tracer=self.tracer)

    def execute_all(self, schedules: Sequence[Schedule],
                    watch_races: bool = True) -> List[RunResult]:
        """Run a batch of independent schedules (a diagnosing-stage wave).

        Each batch restarts assignment at VM 0: a wave of *k* schedules
        occupies exactly ``min(k, vm_count)`` VMs, so consecutive small
        batches pile onto the same VMs instead of drifting round-robin
        across the whole pool and inflating accounting beyond any width
        that actually ran concurrently.

        With a parallel engine the batch is dispatched to child
        processes; results come back in submission order and each is
        recorded on its round-robin VM, so accounting matches the
        sequential path exactly.
        """
        self._next = 0
        width = min(len(schedules), len(self.vms))
        if self._use_waves(len(schedules)):
            width = min(width, self._engine.policy.wave_jobs)
        self.max_batch_width = max(self.max_batch_width, width)
        if self.tracer.enabled and schedules:
            self.tracer.point("hv.vm_batch", stage="hv",
                              schedules=len(schedules), width=width)
        if not self._use_waves(len(schedules)):
            return [self.execute(s, watch_races=watch_races)
                    for s in schedules]

        from repro.engine import RunPlan, RunRequest
        plan = RunPlan([RunRequest(schedule=s, watch_races=watch_races)
                        for s in schedules], phase="vm.batch")
        runs: List[RunResult] = []
        for outcome in self._engine.run_plan(plan):
            vm = self.vms[self._next]
            self._next = (self._next + 1) % len(self.vms)
            self.tracer.count("hv.vm_assignments")
            vm.record(outcome.run)
            runs.append(outcome.run)
        return runs

    def _use_waves(self, batch_size: int) -> bool:
        # wave_ready(probe=True) boots one machine the first time to check
        # for a coverage callback: coverage callbacks live in the parent,
        # so a coverage-instrumented machine pins the pool to inline runs.
        return (self._engine is not None and batch_size >= 2
                and self._engine.wave_ready(probe=True))

    def reset_accounting(self) -> None:
        """Zero all per-VM accounting and restart assignment at VM 0 —
        called between triage batches so each diagnosis reports its own
        honest pool statistics."""
        for vm in self.vms:
            vm.accounting = VmAccounting()
        self._next = 0
        self.max_batch_width = 0

    #: Alias — ``pool.reset()`` reads naturally at triage call sites.
    reset = reset_accounting

    # ------------------------------------------------------------------
    @property
    def total_runs(self) -> int:
        return sum(vm.accounting.runs for vm in self.vms)

    @property
    def total_reboots(self) -> int:
        return sum(vm.accounting.reboots for vm in self.vms)

    @property
    def busy_vms(self) -> int:
        return sum(1 for vm in self.vms if vm.accounting.runs)

    def parallel_speedup(self) -> float:
        """Idealized speedup: the widest batch that ran concurrently.

        Based on :attr:`max_batch_width`, not :attr:`busy_vms` — round
        robin assignment spreads consecutive single runs across many VMs,
        but a VM that only ever ran while the others were idle
        contributes no speedup.  A pool that executed every schedule one
        at a time reports 1.0 no matter how many VMs took an assignment.
        """
        return float(self.max_batch_width or 1)
