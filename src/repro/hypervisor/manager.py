"""The VM pool manager.

AITIA's manager (2,889 LoC of GO in the paper) launches multiple guest
VMs — 32 in the evaluation — and parallelizes the reproducing stage across
slices and the diagnosing stage across flip tests (sections 4.1, 4.5).

Execution here is sequential (a deterministic simulator gains nothing from
real parallelism), but work is *assigned* to VMs round-robin exactly as the
manager would, so per-VM accounting and the idealized parallel wall-clock
estimate (total cost divided across busy VMs) are meaningful.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.core.schedule import Schedule
from repro.hypervisor.controller import RunResult
from repro.hypervisor.vm import VirtualMachine, VmAccounting
from repro.kernel.machine import KernelMachine

DEFAULT_VM_COUNT = 32


class VmPool:
    """A fixed-size pool of reproducer/diagnoser VMs."""

    def __init__(self, machine_factory: Callable[[], KernelMachine],
                 vm_count: int = DEFAULT_VM_COUNT, tracer=None) -> None:
        from repro.observe.tracer import as_tracer

        if vm_count < 1:
            raise ValueError("vm_count must be at least 1")
        self.tracer = as_tracer(tracer)
        self.vms = [VirtualMachine(i, machine_factory)
                    for i in range(vm_count)]
        self._next = 0
        #: Width of the widest batch handed to :meth:`execute_all` since
        #: the last :meth:`reset_accounting` — the number of VMs that
        #: could genuinely run concurrently.
        self.max_batch_width = 0

    def execute(self, schedule: Schedule,
                watch_races: bool = True) -> RunResult:
        """Run one schedule on the next VM (round-robin assignment)."""
        vm = self.vms[self._next]
        self._next = (self._next + 1) % len(self.vms)
        self.tracer.count("hv.vm_assignments")
        return vm.execute(schedule, watch_races=watch_races,
                          tracer=self.tracer)

    def execute_all(self, schedules: Sequence[Schedule],
                    watch_races: bool = True) -> List[RunResult]:
        """Run a batch of independent schedules (a diagnosing-stage wave).

        Each batch restarts assignment at VM 0: a wave of *k* schedules
        occupies exactly ``min(k, vm_count)`` VMs, so consecutive small
        batches pile onto the same VMs instead of drifting round-robin
        across the whole pool and inflating :attr:`busy_vms` (and with
        it :meth:`parallel_speedup`) beyond any width that actually ran
        concurrently.
        """
        self._next = 0
        width = min(len(schedules), len(self.vms))
        self.max_batch_width = max(self.max_batch_width, width)
        if self.tracer.enabled and schedules:
            self.tracer.point("hv.vm_batch", stage="hv",
                              schedules=len(schedules), width=width)
        return [self.execute(s, watch_races=watch_races) for s in schedules]

    def reset_accounting(self) -> None:
        """Zero all per-VM accounting and restart assignment at VM 0 —
        called between triage batches so each diagnosis reports its own
        honest pool statistics."""
        for vm in self.vms:
            vm.accounting = VmAccounting()
        self._next = 0
        self.max_batch_width = 0

    #: Alias — ``pool.reset()`` reads naturally at triage call sites.
    reset = reset_accounting

    # ------------------------------------------------------------------
    @property
    def total_runs(self) -> int:
        return sum(vm.accounting.runs for vm in self.vms)

    @property
    def total_reboots(self) -> int:
        return sum(vm.accounting.reboots for vm in self.vms)

    @property
    def busy_vms(self) -> int:
        return sum(1 for vm in self.vms if vm.accounting.runs)

    def parallel_speedup(self) -> float:
        """Idealized speedup: runs divided over the VMs that did work."""
        return float(self.busy_vms or 1)
