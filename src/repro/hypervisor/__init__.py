"""The AITIA hypervisor analogue.

The real AITIA modifies KVM and QEMU to gain instruction-level control of a
guest kernel: code breakpoints trap threads at scheduling points, data
watchpoints detect conflicting accesses, a trampoline parks suspended
threads, and snapshots revert guest memory between runs (paper section 4).

This package provides the same capabilities over the simulated kernel:

* :mod:`repro.hypervisor.breakpoints` — breakpoint/watchpoint managers;
* :mod:`repro.hypervisor.trampoline` — parking of suspended threads;
* :mod:`repro.hypervisor.controller` — enforcement of reproduce/diagnosis
  schedules (the hypercall protocol of sections 4.3–4.5);
* :mod:`repro.hypervisor.vm` — one bootable VM with reboot accounting;
* :mod:`repro.hypervisor.manager` — the pool of reproducer/diagnoser VMs;
* :mod:`repro.hypervisor.waves` — parallel execution of independent
  schedule batches across child processes (docs/PERFORMANCE.md).
"""

from repro.hypervisor.agent import ObservedRace, UserAgent
from repro.hypervisor.breakpoints import BreakpointManager, WatchpointManager
from repro.hypervisor.controller import RunResult, ScheduleController
from repro.hypervisor.manager import VmPool
from repro.hypervisor.replay import Recording, record, replay
from repro.hypervisor.snapshot import (
    CheckpointPolicy,
    MachineSnapshot,
    RunCheckpoint,
    boot_checkpoint,
    capture,
    restore,
)
from repro.hypervisor.trampoline import Trampoline
from repro.hypervisor.vm import VirtualMachine
from repro.hypervisor.waves import WaveExecutor, WaveJob, WaveOutcome

__all__ = [
    "BreakpointManager",
    "CheckpointPolicy",
    "MachineSnapshot",
    "RunCheckpoint",
    "boot_checkpoint",
    "ObservedRace",
    "Recording",
    "RunResult",
    "ScheduleController",
    "Trampoline",
    "UserAgent",
    "VirtualMachine",
    "VmPool",
    "WatchpointManager",
    "WaveExecutor",
    "WaveJob",
    "WaveOutcome",
    "capture",
    "record",
    "replay",
    "restore",
]
