"""CVE-2017-15649 — AF_PACKET fanout multi-variable race (Figure 2).

``setsockopt(PACKET_FANOUT)`` (thread A) and ``bind`` (thread B)
communicate through two semantically correlated fields of the packet
socket: ``po->fanout`` may only be set while ``po->running`` is 1, and
``po->running`` may only be cleared while ``po->fanout`` is NULL.  When a
thread interleaves between the correlated accesses, ``fanout_unlink``
runs for a socket that was never linked onto ``global_list`` and
``BUG_ON`` fires (B17).

The developers' fix makes the two fields be accessed atomically — i.e.
disallows (B2 => A6) ∧ (A2 => B11), exactly the conjunction node of the
causality chain (Figure 3).
"""

from __future__ import annotations

from repro.corpus.spec import (
    Bug,
    DecoyCall,
    SetupCall,
    SyscallThread,
    emit_stat_updates,
    salt_counters,
)
from repro.kernel.builder import ProgramBuilder
from repro.kernel.failures import FailureKind
from repro.kernel.program import KernelImage

#: The socket cookie used as the list element (stands in for ``sk``).
SK = 0x5C


def build_image() -> KernelImage:
    b = ProgramBuilder()

    counters = salt_counters("packet", 12)

    # Thread A: setsockopt(PACKET_FANOUT) -> fanout_add().
    with b.function("fanout_add") as f:
        emit_stat_updates(f, counters, prefix="A")
        f.load("r0", f.g("po_running"), label="A2")
        f.brz("r0", "A3", label="A2b")
        f.alloc("r1", 16, tag="fanout_match", label="A5")
        # Invariant (violated by the race): po->running != 0 here.
        f.store(f.g("po_fanout"), f.r("r1"), label="A6")
        f.call("fanout_link", label="A8")
        f.ret(label="A3")

    with b.function("fanout_link") as f:
        f.list_add(f.g("global_list"), f.i(SK), label="A12")

    # Thread B: bind() -> packet_do_bind().
    with b.function("packet_do_bind") as f:
        emit_stat_updates(f, counters, prefix="B")
        f.load("r0", f.g("po_fanout"), label="B2")
        f.brnz("r0", "B3", label="B2b")
        # Invariant (violated by the race): po->fanout == NULL here.
        f.call("unregister_hook", label="B5")
        f.ret(label="B3")

    with b.function("unregister_hook") as f:
        f.store(f.g("po_running"), f.i(0), label="B11")
        f.load("r0", f.g("po_fanout"), label="B12")
        f.brz("r0", "B14", label="B12b")
        f.call("fanout_unlink", label="B13")
        f.ret(label="B14")

    with b.function("fanout_unlink") as f:
        f.list_contains("r1", f.g("global_list"), f.i(SK), label="B17a")
        f.binop("r2", "eq", f.r("r1"), f.i(0))
        f.bug_on("r2", "fanout_unlink: sk not on global_list", label="B17")

    # socket() — establishes po->running = 1 before the racing calls.
    with b.function("packet_create") as f:
        f.store(f.g("po_running"), f.i(1), label="S1")
        f.store(f.g("po_fanout"), f.i(0), label="S2")

    # Decoy noise for the execution history.
    with b.function("fuzz_noise") as f:
        f.inc(f.g("noise_counter"), 1, label="N1")

    return b.build()


def make_bug() -> Bug:
    return Bug(
        bug_id="CVE-2017-15649",
        title="AF_PACKET fanout: multi-variable race on po->running / "
              "po->fanout",
        subsystem="Packet socket",
        bug_type=FailureKind.ASSERTION,
        source="cve",
        build_image=build_image,
        threads=[
            SyscallThread(proc="A", syscall="setsockopt", entry="fanout_add",
                          fd=3),
            SyscallThread(proc="B", syscall="bind", entry="packet_do_bind",
                          fd=3),
        ],
        globals_init={"global_list": ()},
        setup=[SetupCall(proc="A", syscall="socket", entry="packet_create",
                         fd=3)],
        decoys=[
            DecoyCall(proc="C", syscall="getpid", entry="fuzz_noise"),
            DecoyCall(proc="C", syscall="ioctl", entry="fuzz_noise"),
        ],
        failing_schedule_spec=[
            ("B", "B11", 1, "A"),
            ("A", "A12", 1, "B"),
        ],
        failing_start_order=["B", "A"],
        failure_location="B17",
        multi_variable=True,
        expected_chain_pairs=[("B2", "A6"), ("A2", "B11"), ("A6", "B12")],
        description=(
            "Multi-variable atomicity violation on po->running and "
            "po->fanout; the race-steered control flow A6 => B12 reaches "
            "BUG_ON in fanout_unlink."),
    )
