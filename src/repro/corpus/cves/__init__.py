"""The 10 CVE bugs of Table 2.

Each module models one CVE's racing structure; ``CVE_BUGS`` lists them in
Table 2's order.
"""

from repro.corpus.cves.cve_2016_10200 import make_bug as cve_2016_10200
from repro.corpus.cves.cve_2016_8655 import make_bug as cve_2016_8655
from repro.corpus.cves.cve_2017_10661 import make_bug as cve_2017_10661
from repro.corpus.cves.cve_2017_15649 import make_bug as cve_2017_15649
from repro.corpus.cves.cve_2017_2636 import make_bug as cve_2017_2636
from repro.corpus.cves.cve_2017_2671 import make_bug as cve_2017_2671
from repro.corpus.cves.cve_2017_7533 import make_bug as cve_2017_7533
from repro.corpus.cves.cve_2018_12232 import make_bug as cve_2018_12232
from repro.corpus.cves.cve_2019_11486 import make_bug as cve_2019_11486
from repro.corpus.cves.cve_2019_6974 import make_bug as cve_2019_6974

CVE_FACTORIES = [
    cve_2019_11486,
    cve_2019_6974,
    cve_2018_12232,
    cve_2017_15649,
    cve_2017_10661,
    cve_2017_7533,
    cve_2017_2671,
    cve_2017_2636,
    cve_2016_10200,
    cve_2016_8655,
]

__all__ = ["CVE_FACTORIES"]
