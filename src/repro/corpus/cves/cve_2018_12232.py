"""CVE-2018-12232 — SockFS: fchownat() races with close() on a socket.

``fchownat`` resolves the socket, does permission work, and then touches
the socket's inode through a second lookup; a concurrent ``close`` tears
the socket down in between, so the second lookup yields NULL and the
kernel takes a general protection fault.

Single-variable TOCTOU: both races are on ``sock_ptr`` itself.
"""

from __future__ import annotations

from repro.corpus.spec import (
    Bug,
    DecoyCall,
    SetupCall,
    SyscallThread,
    emit_stat_updates,
    salt_counters,
)
from repro.kernel.builder import ProgramBuilder
from repro.kernel.failures import FailureKind
from repro.kernel.program import KernelImage


def build_image() -> KernelImage:
    b = ProgramBuilder()
    counters = salt_counters("sockfs", 12)

    with b.function("socket_create") as f:
        f.alloc("s", 16, tag="socket", label="S1")
        f.store(f.g("sock_ptr"), f.r("s"), label="S2")

    # Thread A: fchownat() on the socket path.
    with b.function("sockfs_setattr") as f:
        emit_stat_updates(f, counters, prefix="A")
        f.load("s1", f.g("sock_ptr"), label="A1")
        f.brz("s1", "A_ret", label="A1b")
        f.inc(f.g("sockfs_attr_ops"), 1, label="A2")  # permission work
        f.load("s2", f.g("sock_ptr"), label="A3")
        f.store(f.at("s2"), 1000, label="A4")  # set owner: GPF if NULL
        f.ret(label="A_ret")

    # Thread B: close() -> sock_close().
    with b.function("sock_close") as f:
        emit_stat_updates(f, counters, prefix="B")
        f.load("s", f.g("sock_ptr"), label="B1")
        f.brz("s", "B_ret", label="B1b")
        f.store(f.g("sock_ptr"), 0, label="B2")
        f.ret(label="B_ret")

    with b.function("fuzz_noise") as f:
        f.inc(f.g("sockfs_noise"), 1, label="N1")

    return b.build()


def make_bug() -> Bug:
    return Bug(
        bug_id="CVE-2018-12232",
        title="SockFS: fchownat vs close TOCTOU on the socket pointer "
              "(general protection fault)",
        subsystem="SockFS",
        bug_type=FailureKind.GPF,
        source="cve",
        build_image=build_image,
        threads=[
            SyscallThread(proc="A", syscall="fchownat",
                          entry="sockfs_setattr", fd=6),
            SyscallThread(proc="B", syscall="close", entry="sock_close",
                          fd=6),
        ],
        setup=[SetupCall(proc="A", syscall="socket", entry="socket_create",
                         fd=6)],
        decoys=[DecoyCall(proc="C", syscall="stat", entry="fuzz_noise")],
        # A validates the pointer, B clears it, A's second lookup is NULL:
        # A1 A2 | B1 B2 | A3 A4 -> GPF.
        failing_schedule_spec=[("A", "A3", 1, "B")],
        failure_location="A4",
        multi_variable=False,
        expected_chain_pairs=[("A1", "B2"), ("B2", "A3")],
        description=(
            "Both chain races are on sock_ptr: the check-to-clear order "
            "(A1 => B2) and the clear-to-reload order (B2 => A3)."),
    )
