"""CVE-2019-11486 — TTY line-discipline change racing with tty I/O.

``ioctl(TIOCSETD)`` swaps the tty's line discipline: it marks the ldisc
unavailable, frees the old one and installs a fresh one.  A concurrent
``write()`` checks availability, loads the ldisc pointer, and then
dereferences it; if the swap happens between the load and the use, the
write touches freed memory (KASAN use-after-free).

Multi-variable: ``ldisc_ready`` (availability flag) and ``tty_ldisc``
(the pointer) are semantically correlated — the flag may only be 1 while
the pointer is valid.
"""

from __future__ import annotations

from repro.corpus.spec import (
    Bug,
    DecoyCall,
    SetupCall,
    SyscallThread,
    emit_stat_updates,
    salt_counters,
)
from repro.kernel.failures import FailureKind
from repro.kernel.builder import ProgramBuilder
from repro.kernel.program import KernelImage


def build_image() -> KernelImage:
    b = ProgramBuilder()
    counters = salt_counters("tty", 10)

    # Boot: install the initial line discipline.
    with b.function("tty_open") as f:
        f.alloc("ld", 16, tag="ldisc_old", label="S1")
        f.store(f.g("tty_ldisc"), f.r("ld"), label="S2")
        f.store(f.g("ldisc_ready"), 1, label="S3")

    # Thread A: ioctl(TIOCSETD) -> tty_set_ldisc().
    with b.function("tty_set_ldisc") as f:
        emit_stat_updates(f, counters, prefix="A")
        f.store(f.g("ldisc_ready"), 0, label="A1")
        f.load("old", f.g("tty_ldisc"), label="A2")
        f.free("old", label="A3")
        f.alloc("new", 16, tag="ldisc_new", label="A4")
        f.store(f.g("tty_ldisc"), f.r("new"), label="A5")

    # Thread B: write() -> tty_write() through the current ldisc.
    with b.function("tty_write") as f:
        emit_stat_updates(f, counters, prefix="B")
        f.load("ready", f.g("ldisc_ready"), label="B1")
        f.brz("ready", "B_ret", label="B1b")
        f.load("ld", f.g("tty_ldisc"), label="B2")
        f.load("ops", f.at("ld"), label="B3")
        f.ret(label="B_ret")

    with b.function("fuzz_noise") as f:
        f.inc(f.g("tty_noise"), 1, label="N1")

    return b.build()


def make_bug() -> Bug:
    return Bug(
        bug_id="CVE-2019-11486",
        title="TTY: line-discipline swap races with tty_write "
              "(use-after-free)",
        subsystem="TTY",
        bug_type=FailureKind.KASAN_UAF,
        source="cve",
        build_image=build_image,
        threads=[
            SyscallThread(proc="A", syscall="ioctl", entry="tty_set_ldisc",
                          fd=5),
            SyscallThread(proc="B", syscall="write", entry="tty_write",
                          fd=5),
        ],
        setup=[SetupCall(proc="A", syscall="open", entry="tty_open", fd=5)],
        decoys=[DecoyCall(proc="C", syscall="readlink", entry="fuzz_noise")],
        # B checks the flag and loads the pointer, then A swaps underneath:
        # B1 B2 | A1..A6 | B3 -> UAF read of the freed old ldisc.
        failing_schedule_spec=[("B", "B3", 1, "A")],
        failing_start_order=["B", "A"],
        failure_location="B3",
        multi_variable=True,
        expected_chain_pairs=[("A3", "B3"), ("B1", "A1")],
        description=(
            "ldisc_ready and tty_ldisc must change together; a write that "
            "validated the flag can still dereference the freed old ldisc."),
    )
