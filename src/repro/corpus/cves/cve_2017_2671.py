"""CVE-2017-2671 — ping socket: sendmsg races with disconnect (GPF).

``ping_v4_sendmsg`` looks the socket's group entry up twice (once to
validate, once to use); ``connect(AF_UNSPEC)`` -> ``ping_unhash`` clears
the entry concurrently.  If the clear lands between the two lookups, the
second one yields NULL and the send path takes a general protection
fault.  Single-variable TOCTOU on ``ping_table_entry``.
"""

from __future__ import annotations

from repro.corpus.spec import (
    Bug,
    DecoyCall,
    SetupCall,
    SyscallThread,
    emit_stat_updates,
    salt_counters,
)
from repro.kernel.builder import ProgramBuilder
from repro.kernel.failures import FailureKind
from repro.kernel.program import KernelImage


def build_image() -> KernelImage:
    b = ProgramBuilder()
    counters = salt_counters("ipv4", 8)

    with b.function("ping_bind") as f:
        f.alloc("sk", 16, tag="ping_sock", label="S1")
        f.store(f.g("ping_table_entry"), f.r("sk"), label="S2")

    # Thread A: sendmsg() -> ping_v4_sendmsg().
    with b.function("ping_v4_sendmsg") as f:
        emit_stat_updates(f, counters, prefix="A")
        f.load("sk1", f.g("ping_table_entry"), label="A1")
        f.brz("sk1", "A_ret", label="A1b")
        f.inc(f.g("ping_tx_packets"), 1, label="A2")  # build the skb
        f.load("sk2", f.g("ping_table_entry"), label="A3")
        f.load("prot", f.at("sk2"), label="A4")  # GPF when NULL
        f.ret(label="A_ret")

    # Thread B: connect(AF_UNSPEC) -> ping_unhash().
    with b.function("ping_unhash") as f:
        emit_stat_updates(f, counters, prefix="B")
        f.store(f.g("ping_table_entry"), 0, label="B1")

    with b.function("fuzz_noise") as f:
        f.inc(f.g("ipv4_noise"), 1, label="N1")

    return b.build()


def make_bug() -> Bug:
    return Bug(
        bug_id="CVE-2017-2671",
        title="IPv4 ping: sendmsg vs ping_unhash TOCTOU "
              "(general protection fault)",
        subsystem="IPV4",
        bug_type=FailureKind.GPF,
        source="cve",
        build_image=build_image,
        threads=[
            SyscallThread(proc="A", syscall="sendmsg",
                          entry="ping_v4_sendmsg", fd=10),
            SyscallThread(proc="B", syscall="connect", entry="ping_unhash",
                          fd=10),
        ],
        setup=[SetupCall(proc="A", syscall="bind", entry="ping_bind",
                         fd=10)],
        decoys=[DecoyCall(proc="C", syscall="recvmsg", entry="fuzz_noise")],
        # A validates the entry, B unhashes, A's second lookup is NULL:
        # A1 A2 | B1 | A3 A4 -> GPF.
        failing_schedule_spec=[("A", "A3", 1, "B")],
        failure_location="A4",
        multi_variable=False,
        expected_chain_pairs=[("A1", "B1"), ("B1", "A3")],
        description=(
            "Both chain races are on ping_table_entry: the validate-before-"
            "clear order (A1 => B1) and the clear-before-reload order "
            "(B1 => A3)."),
    )
