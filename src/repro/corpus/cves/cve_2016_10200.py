"""CVE-2016-10200 — L2TP: bind() races with connect() on socket hashing.

``l2tp_ip_bind`` publishes the socket in the bind hash and then marks it
bound; ``l2tp_ip_connect`` samples both and asserts their consistency.
When connect's two reads straddle bind's two writes, it observes a socket
that is hashed but not yet marked bound, and the sanity ``BUG_ON`` fires.

This is the one evaluated failure where AITIA hits the *ambiguity* case
of section 3.4 (Table 2's discussion): the race on ``l2tp_hash``
surrounds the nested race on ``sk_bound``, both flips avert the failure,
so the surrounding race is reported as ambiguous.
"""

from __future__ import annotations

from repro.corpus.spec import (
    Bug,
    DecoyCall,
    SetupCall,
    SyscallThread,
    emit_stat_updates,
    salt_counters,
)
from repro.kernel.builder import ProgramBuilder
from repro.kernel.failures import FailureKind
from repro.kernel.program import KernelImage

SK = 0xB0


def build_image() -> KernelImage:
    b = ProgramBuilder()
    counters = salt_counters("l2tp", 9)

    with b.function("l2tp_socket") as f:
        f.store(f.g("l2tp_hash"), 0, label="S1")
        f.store(f.g("sk_bound"), 0, label="S2")
        f.store(f.g("sk_state"), 1, label="S3")

    # Thread A: bind() -> l2tp_ip_bind(): hash the socket, mark it bound,
    # bump the state generation.
    with b.function("l2tp_ip_bind") as f:
        emit_stat_updates(f, counters, prefix="A")
        f.store(f.g("l2tp_hash"), f.i(SK), label="A1")
        f.store(f.g("sk_bound"), 1, label="A2")
        f.store(f.g("sk_gen"), 1, label="A3")

    # Thread B: connect() -> l2tp_ip_connect(): sample and sanity-check.
    with b.function("l2tp_ip_connect") as f:
        emit_stat_updates(f, counters, prefix="B")
        f.load("bound", f.g("sk_bound"), label="B1")
        f.load("hash", f.g("l2tp_hash"), label="B2")
        f.load("gen", f.g("sk_gen"), label="B3")
        # Inconsistent: hashed, bound, but generation not yet bumped.
        f.binop("hashed", "ne", f.r("hash"), f.i(0))
        f.binop("hb", "and", f.r("hashed"), f.r("bound"))
        f.binop("nogen", "eq", f.r("gen"), f.i(0))
        f.binop("broken", "and", f.r("hb"), f.r("nogen"))
        f.bug_on("broken", "l2tp: socket hashed+bound without generation",
                 label="B4")

    with b.function("fuzz_noise") as f:
        f.inc(f.g("l2tp_noise"), 1, label="N1")

    return b.build()


def make_bug() -> Bug:
    return Bug(
        bug_id="CVE-2016-10200",
        title="L2TP: bind vs connect socket-hash race (assertion, "
              "ambiguous diagnosis)",
        subsystem="L2TP",
        bug_type=FailureKind.ASSERTION,
        source="cve",
        build_image=build_image,
        threads=[
            SyscallThread(proc="A", syscall="bind", entry="l2tp_ip_bind",
                          fd=11),
            SyscallThread(proc="B", syscall="connect",
                          entry="l2tp_ip_connect", fd=11),
        ],
        setup=[SetupCall(proc="A", syscall="socket", entry="l2tp_socket",
                         fd=11)],
        decoys=[DecoyCall(proc="C", syscall="sendto", entry="fuzz_noise")],
        # B samples between A2 and A3: A1 A2 | B1 B2 B3 B4 -> BUG_ON.
        failing_schedule_spec=[("A", "A3", 1, "B")],
        failure_location="B4",
        multi_variable=False,
        expect_ambiguity=True,
        expected_chain_pairs=[("A2", "B1"), ("A1", "B2")],
        description=(
            "The race (A1 => B2) surrounds the nested (A2 => B1); both "
            "flips avert the BUG_ON, so Causality Analysis cannot isolate "
            "the surrounding race's contribution and reports it ambiguous "
            "— the single ambiguity among the 22 evaluated bugs."),
    )
