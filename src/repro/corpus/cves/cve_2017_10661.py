"""CVE-2017-10661 — timerfd: settime races with release (use-after-free).

``timerfd_settime`` checks that the timer context is alive, re-arms the
timer through the context pointer; a concurrent ``close`` removes the
timer from the cancel list, frees the context and clears the alive flag.
When the release slips between the settime's liveness check and its
re-arm, the re-arm writes into freed memory.

Multi-variable: ``timerfd_alive`` (flag), ``timerfd_ctx`` (pointer) and
the ``cancel_list`` are all part of the same implicit protocol.
"""

from __future__ import annotations

from repro.corpus.spec import (
    Bug,
    DecoyCall,
    SetupCall,
    SyscallThread,
    emit_stat_updates,
    salt_counters,
)
from repro.kernel.builder import ProgramBuilder
from repro.kernel.failures import FailureKind
from repro.kernel.program import KernelImage

TIMER_COOKIE = 0x71


def build_image() -> KernelImage:
    b = ProgramBuilder()
    counters = salt_counters("timerfd", 10)

    with b.function("timerfd_create") as f:
        f.alloc("ctx", 24, tag="timerfd_ctx", label="S1")
        f.store(f.g("timerfd_ctx"), f.r("ctx"), label="S2")
        f.store(f.g("timerfd_alive"), 1, label="S3")
        f.store(f.g("timerfd_might_cancel"), 1, label="S4")
        f.list_add(f.g("cancel_list"), f.i(TIMER_COOKIE), label="S5")

    # Thread A: timerfd_settime().
    with b.function("timerfd_settime") as f:
        emit_stat_updates(f, counters, prefix="A")
        f.load("alive", f.g("timerfd_alive"), label="A1")
        f.brz("alive", "A_ret", label="A1b")
        f.load("ctx", f.g("timerfd_ctx"), label="A2")
        f.store(f.at("ctx", 8), 500, label="A3")  # re-arm: UAF point
        f.ret(label="A_ret")

    # Thread B: close() -> timerfd_release().
    with b.function("timerfd_release") as f:
        emit_stat_updates(f, counters, prefix="B")
        f.load("mc", f.g("timerfd_might_cancel"), label="B1")
        f.brz("mc", "B_skip", label="B1b")
        f.list_del(f.g("cancel_list"), f.i(TIMER_COOKIE), label="B2")
        f.load("ctx", f.g("timerfd_ctx"), label="B3")
        f.free("ctx", label="B4")
        f.store(f.g("timerfd_alive"), 0, label="B5")
        f.ret(label="B_skip")

    with b.function("fuzz_noise") as f:
        f.inc(f.g("timerfd_noise"), 1, label="N1")

    return b.build()


def make_bug() -> Bug:
    return Bug(
        bug_id="CVE-2017-10661",
        title="timerfd: settime vs release on the timer context "
              "(use-after-free)",
        subsystem="Timer fd",
        bug_type=FailureKind.KASAN_UAF,
        source="cve",
        build_image=build_image,
        threads=[
            SyscallThread(proc="A", syscall="timerfd_settime",
                          entry="timerfd_settime", fd=8),
            SyscallThread(proc="B", syscall="close",
                          entry="timerfd_release", fd=8),
        ],
        setup=[SetupCall(proc="A", syscall="timerfd_create",
                         entry="timerfd_create", fd=8)],
        decoys=[DecoyCall(proc="C", syscall="read", entry="fuzz_noise")],
        # A passes its liveness check, B tears the context down, A re-arms:
        # A1 A2 | B1..B5 | A3 -> UAF write.
        failing_schedule_spec=[("A", "A3", 1, "B")],
        failure_location="A3",
        multi_variable=True,
        expected_chain_pairs=[("A1", "B5"), ("B4", "A3")],
        description=(
            "The settime's A1 liveness check racing ahead of release's B5 "
            "clear steers A into re-arming a context that B4 already "
            "freed."),
    )
