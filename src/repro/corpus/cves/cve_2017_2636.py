"""CVE-2017-2636 — n_hdlc line discipline: double free of a tx buffer.

``ioctl(TCFLSH)`` (flush) and ``write()`` both pop the first buffer off
the n_hdlc free list and release it.  Without the (missing) lock, both
paths can observe the same buffer and free it twice — the double-free the
CVE's exploit (a13xp0p0v's famous write-up) turns into a privilege
escalation.

Single-variable: both races revolve around ``tx_free_buf`` (the list
head) and the buffer object it points to.
"""

from __future__ import annotations

from repro.corpus.spec import (
    Bug,
    DecoyCall,
    SetupCall,
    SyscallThread,
    emit_stat_updates,
    salt_counters,
)
from repro.kernel.builder import ProgramBuilder
from repro.kernel.failures import FailureKind
from repro.kernel.program import KernelImage


def build_image() -> KernelImage:
    b = ProgramBuilder()
    counters = salt_counters("n_hdlc", 10)

    with b.function("n_hdlc_open") as f:
        f.alloc("buf", 16, tag="n_hdlc_buf", label="S1")
        f.store(f.g("tx_free_buf"), f.r("buf"), label="S2")

    # Thread A: ioctl(TCFLSH) -> flush_tx_queue().
    with b.function("flush_tx_queue") as f:
        emit_stat_updates(f, counters, prefix="A")
        f.load("buf", f.g("tx_free_buf"), label="A1")
        f.brz("buf", "A_ret", label="A1b")
        f.store(f.g("tx_free_buf"), 0, label="A2")
        f.free("buf", label="A3")
        f.ret(label="A_ret")

    # Thread B: write() -> n_hdlc_send_frames() error path.
    with b.function("n_hdlc_send_frames") as f:
        emit_stat_updates(f, counters, prefix="B")
        f.load("buf", f.g("tx_free_buf"), label="B1")
        f.brz("buf", "B_ret", label="B1b")
        f.store(f.g("tx_free_buf"), 0, label="B2")
        f.free("buf", label="B3")
        f.ret(label="B_ret")

    with b.function("fuzz_noise") as f:
        f.inc(f.g("n_hdlc_noise"), 1, label="N1")

    return b.build()


def make_bug() -> Bug:
    return Bug(
        bug_id="CVE-2017-2636",
        title="n_hdlc: flush_tx_queue vs send_frames double free",
        subsystem="TTY",
        bug_type=FailureKind.DOUBLE_FREE,
        source="cve",
        build_image=build_image,
        threads=[
            SyscallThread(proc="A", syscall="ioctl", entry="flush_tx_queue",
                          fd=5),
            SyscallThread(proc="B", syscall="write",
                          entry="n_hdlc_send_frames", fd=5),
        ],
        setup=[SetupCall(proc="A", syscall="open", entry="n_hdlc_open",
                         fd=5)],
        decoys=[DecoyCall(proc="C", syscall="ioctl", entry="fuzz_noise")],
        # Both threads pop the same buffer: A1 | B1 B2 B3 | A2 A3 -> the
        # second free (A3) hits the already-freed buffer.
        failing_schedule_spec=[("A", "A2", 1, "B")],
        failure_location="A3",
        multi_variable=False,
        expected_chain_pairs=[("A1", "B2"), ("B3", "A3")],
        description=(
            "Both threads observe the same tx buffer because A's pop "
            "(check A1, clear A2) is not atomic against B's."),
    )
