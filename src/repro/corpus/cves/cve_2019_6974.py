"""CVE-2019-6974 — KVM: device fd published before initialization done.

``ioctl(KVM_CREATE_DEVICE)`` installs the new device's file descriptor in
the process's fd table *before* finishing device initialization.  A
concurrent ``close()`` on the guessed fd drops the last reference and
frees the device while the creating thread is still initializing it —
a use-after-free write.

The two racing objects live in different subsystems: the fd table (VFS
layer) and the kvm device object (KVM layer) — the *loosely correlated*
case of section 2.2.  Dozens of unrelated syscalls touch the fd table
without ever touching kvm objects, which defeats MUVI-style access-
correlation inference.

This bug's history also contains an innocuous concurrent decoy group
closer to the failure than the racing pair, so AITIA must reject one
slice before reproducing (section 4.2).
"""

from __future__ import annotations

from repro.corpus.spec import (
    Bug,
    DecoyCall,
    SetupCall,
    SyscallThread,
    emit_stat_updates,
    salt_counters,
)
from repro.kernel.builder import ProgramBuilder
from repro.kernel.failures import FailureKind
from repro.kernel.program import KernelImage


def build_image() -> KernelImage:
    b = ProgramBuilder()
    counters = salt_counters("kvm", 14)

    # Boot: the VM fd exists.
    with b.function("kvm_open") as f:
        f.store(f.g("kvm_refcnt"), 1, label="S1")

    # Thread A: ioctl(KVM_CREATE_DEVICE).
    with b.function("kvm_create_device") as f:
        emit_stat_updates(f, counters, prefix="A")
        f.alloc("dev", 24, tag="kvm_device", label="A1")
        # fd published while the device is still half-initialized.
        f.store(f.g("fd_table_7"), f.r("dev"), label="A2")
        f.store(f.at("dev", 8), 1, label="A3")  # continue init: UAF point

    # Thread B: close(7) -> kvm_device_release().
    with b.function("kvm_device_release") as f:
        emit_stat_updates(f, counters, prefix="B")
        f.load("dev", f.g("fd_table_7"), label="B1")
        f.brz("dev", "B_ret", label="B1b")
        f.free("dev", label="B3")
        f.ret(label="B_ret")

    # Unrelated VFS traffic: touches the fd table region, never kvm objects
    # (the loose-correlation evidence for the MUVI comparison).
    with b.function("vfs_fd_noise") as f:
        f.inc(f.g("fd_table_stats"), 1, label="V1")
        f.load("x", f.g("fd_table_7"), label="V2")

    with b.function("fuzz_noise") as f:
        f.inc(f.g("kvm_noise"), 1, label="N1")

    return b.build()


def make_bug() -> Bug:
    return Bug(
        bug_id="CVE-2019-6974",
        title="KVM: kvm_ioctl_create_device fd published before init "
              "(use-after-free)",
        subsystem="KVM",
        bug_type=FailureKind.KASAN_UAF,
        source="cve",
        build_image=build_image,
        threads=[
            SyscallThread(proc="A", syscall="ioctl",
                          entry="kvm_create_device", fd=4),
            SyscallThread(proc="B", syscall="close",
                          entry="kvm_device_release", fd=7),
        ],
        setup=[SetupCall(proc="A", syscall="open", entry="kvm_open", fd=4)],
        decoys=[
            DecoyCall(proc="C", syscall="fcntl", entry="vfs_fd_noise"),
            DecoyCall(proc="D", syscall="dup", entry="vfs_fd_noise"),
            # An innocuous concurrent pair right before the failure: the
            # closest slice, which LIFS cannot crash.
            DecoyCall(proc="E", syscall="fstat", entry="vfs_fd_noise",
                      concurrent_group=100),
            DecoyCall(proc="F", syscall="fstat", entry="fuzz_noise",
                      concurrent_group=100),
        ],
        # A publishes the fd, B frees the device, A keeps initializing:
        # A1 A2 | B1 B2 B3 | A3 -> UAF write.
        failing_schedule_spec=[("A", "A3", 1, "B")],
        failure_location="A3",
        multi_variable=True,
        loosely_correlated=True,
        expected_chain_pairs=[("A2", "B1"), ("B3", "A3")],
        description=(
            "The fd-table publish (VFS) steers close() into freeing the "
            "half-initialized device (KVM): a causality chain across "
            "loosely correlated objects and subsystems."),
    )
