"""CVE-2016-8655 — AF_PACKET: ring setup races with PACKET_VERSION.

``setsockopt(PACKET_RX_RING)`` sizes the ring's frame headers from
``po->tp_version`` at two different points; ``setsockopt(PACKET_VERSION)``
may change the version in between (it checks that no ring exists yet, but
the check races with the ring being installed).  A version mismatch makes
the ring code index a frame header beyond the allocated vector —
the out-of-bounds access Philip Pettersson's exploit turned into
privilege escalation.

Multi-variable: ``tp_version`` and ``ring_pg_vec`` are correlated — the
version must not change once a ring exists.
"""

from __future__ import annotations

from repro.corpus.spec import (
    Bug,
    DecoyCall,
    SetupCall,
    SyscallThread,
    emit_stat_updates,
    salt_counters,
)
from repro.kernel.builder import ProgramBuilder
from repro.kernel.failures import FailureKind
from repro.kernel.program import KernelImage

RING_SIZE = 16


def build_image() -> KernelImage:
    b = ProgramBuilder()
    counters = salt_counters("packetring", 11)

    with b.function("packet_open") as f:
        f.store(f.g("tp_version"), 1, label="S1")
        f.store(f.g("ring_pg_vec"), 0, label="S2")

    # Thread A: setsockopt(PACKET_VERSION): only legal with no ring.
    with b.function("packet_set_version") as f:
        emit_stat_updates(f, counters, prefix="A")
        f.load("ring", f.g("ring_pg_vec"), label="A1")
        f.brnz("ring", "A_busy", label="A1b")
        f.store(f.g("tp_version"), 3, label="A2")
        f.ret(label="A_busy")

    # Thread B: setsockopt(PACKET_RX_RING) -> packet_set_ring().
    with b.function("packet_set_ring") as f:
        emit_stat_updates(f, counters, prefix="B")
        f.load("v1", f.g("tp_version"), label="B1")
        f.alloc("vec", RING_SIZE, tag="pg_vec", label="B2")
        f.store(f.g("ring_pg_vec"), f.r("vec"), label="B3")
        f.load("v2", f.g("tp_version"), label="B4")
        f.binop("mismatch", "ne", f.r("v1"), f.r("v2"))
        f.brz("mismatch", "B_ok", label="B5")
        # Header size computed from the *new* version indexes past the
        # vector sized for the old one.
        f.binop("end", "add", f.r("vec"), f.i(RING_SIZE + 8))
        f.load("hdr", f.at("end"), label="B6")
        f.ret(label="B_exit")
        f.load("hdr", f.at("vec"), label="B_ok")
        f.ret(label="B_exit2")

    with b.function("fuzz_noise") as f:
        f.inc(f.g("packetring_noise"), 1, label="N1")

    return b.build()


def make_bug() -> Bug:
    return Bug(
        bug_id="CVE-2016-8655",
        title="AF_PACKET: packet_set_ring vs PACKET_VERSION "
              "(slab-out-of-bounds)",
        subsystem="Packet socket",
        bug_type=FailureKind.KASAN_OOB,
        source="cve",
        build_image=build_image,
        threads=[
            SyscallThread(proc="A", syscall="setsockopt",
                          entry="packet_set_version", fd=3),
            SyscallThread(proc="B", syscall="setsockopt",
                          entry="packet_set_ring", fd=3),
        ],
        setup=[SetupCall(proc="A", syscall="socket", entry="packet_open",
                         fd=3)],
        decoys=[DecoyCall(proc="C", syscall="bind", entry="fuzz_noise")],
        # B samples version 1, A changes it to 3 (ring check still passes),
        # B's second sample mismatches: B1 | A1 A2 | B2..B6 -> OOB.
        failing_schedule_spec=[("B", "B2", 1, "A")],
        failing_start_order=["B", "A"],
        failure_location="B6",
        multi_variable=True,
        expected_chain_pairs=[("B1", "A2"), ("A2", "B4")],
        description=(
            "tp_version changes between packet_set_ring's two reads "
            "because PACKET_VERSION's no-ring check (A1) raced ahead of "
            "the ring install (B3)."),
    )
