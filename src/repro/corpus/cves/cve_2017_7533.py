"""CVE-2017-7533 — inotify event handling races with rename (OOB read).

``vfs_rename`` replaces a dentry's name: it bumps the name length and
installs a larger buffer.  ``inotify_handle_event`` snapshots the length,
then reads the name buffer up to that length.  When the rename interleaves
between the two reads, the handler reads ``new_len`` bytes out of the
*old, smaller* buffer — a slab-out-of-bounds read.

The classic tightly-correlated multi-variable pair (length + buffer),
the very case MUVI's access-correlation assumption *does* cover — one of
the 3/12 bugs MUVI can explain in section 5.3.
"""

from __future__ import annotations

from repro.corpus.spec import (
    Bug,
    DecoyCall,
    SetupCall,
    SyscallThread,
    emit_stat_updates,
    salt_counters,
)
from repro.kernel.builder import ProgramBuilder
from repro.kernel.failures import FailureKind
from repro.kernel.program import KernelImage

OLD_LEN = 8
NEW_LEN = 24
OLD_BUF_SIZE = 16
NEW_BUF_SIZE = 32


def build_image() -> KernelImage:
    b = ProgramBuilder()
    counters = salt_counters("inotify", 12)

    with b.function("dentry_init") as f:
        f.alloc("buf", OLD_BUF_SIZE, tag="name_buf_old", label="S1")
        f.store(f.g("name_ptr"), f.r("buf"), label="S2")
        f.store(f.g("name_len"), OLD_LEN, label="S3")

    # Thread A: rename() -> vfs_rename(): longer name, bigger buffer.
    with b.function("vfs_rename") as f:
        emit_stat_updates(f, counters, prefix="A")
        f.store(f.g("name_len"), NEW_LEN, label="A1")
        f.alloc("buf", NEW_BUF_SIZE, tag="name_buf_new", label="A2")
        f.store(f.g("name_ptr"), f.r("buf"), label="A3")

    # Thread B: inotify_handle_event(): snapshot len, read name[len].
    with b.function("inotify_handle_event") as f:
        emit_stat_updates(f, counters, prefix="B")
        f.load("len", f.g("name_len"), label="B1")
        f.load("p", f.g("name_ptr"), label="B2")
        f.binop("end", "add", f.r("p"), f.r("len"))
        f.load("last", f.at("end"), label="B3")  # OOB when len > buf size

    with b.function("fuzz_noise") as f:
        f.inc(f.g("inotify_noise"), 1, label="N1")

    return b.build()


def make_bug() -> Bug:
    return Bug(
        bug_id="CVE-2017-7533",
        title="inotify: event handler races with vfs_rename on "
              "(name_len, name_ptr) — slab-out-of-bounds",
        subsystem="Inotify",
        bug_type=FailureKind.KASAN_OOB,
        source="cve",
        build_image=build_image,
        threads=[
            SyscallThread(proc="A", syscall="rename", entry="vfs_rename"),
            SyscallThread(proc="B", syscall="inotify_read",
                          entry="inotify_handle_event", fd=9),
        ],
        setup=[SetupCall(proc="B", syscall="inotify_add_watch",
                         entry="dentry_init", fd=9)],
        decoys=[DecoyCall(proc="C", syscall="getdents", entry="fuzz_noise")],
        # B snapshots the NEW length but still sees the OLD buffer:
        # A1 | B1 B2 B3 -> OOB read at old_buf + 24.
        failing_schedule_spec=[("A", "A2", 1, "B")],
        failure_location="B3",
        multi_variable=True,
        expected_chain_pairs=[("A1", "B1")],
        description=(
            "name_len and name_ptr must change atomically; observing the "
            "new length with the old buffer reads past the allocation."),
    )
