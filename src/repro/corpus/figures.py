"""The paper's running examples (Figures 1, 5 and 7) as corpus bugs.

These small models exist so the benchmarks can regenerate the paper's
figures exactly: Figure 1's two-race NULL dereference and its causality
chain (Figure 3's shape), Figure 5's three-thread search tree with a
race-steered kworker invocation, and Figure 7's nested/surrounding
ambiguity construction.
"""

from __future__ import annotations

from repro.corpus.spec import Bug, KthreadNote, SetupCall, SyscallThread
from repro.kernel.builder import ProgramBuilder
from repro.kernel.failures import FailureKind
from repro.kernel.program import KernelImage
from repro.kernel.threads import ThreadKind


# ----------------------------------------------------------------------
# Figure 1: ptr_valid / ptr multi-variable race ending in a NULL deref.
# ----------------------------------------------------------------------
def _fig1_image() -> KernelImage:
    b = ProgramBuilder()
    # Boot-time state: ptr starts out pointing at a valid object.
    with b.function("fig1_init") as f:
        f.lea("p", "ptr_target", label="I1")
        f.store(f.g("ptr"), f.r("p"), label="I2")
    # Thread A:  A1: ptr_valid = 1;   A2: local = *ptr;
    with b.function("fig1_writer") as f:
        f.store(f.g("ptr_valid"), 1, label="A1")
        f.load("p", f.g("ptr"), label="A1b")
        f.load("local", f.at("p"), label="A2")
    # Thread B:  B1: if (ptr_valid == 0) return;   B2: ptr = NULL;
    with b.function("fig1_clearer") as f:
        f.load("v", f.g("ptr_valid"), label="B1")
        f.brz("v", "B_ret", label="B1b")
        f.store(f.g("ptr"), 0, label="B2")
        f.ret(label="B_ret")
    return b.build()


def fig1_bug() -> Bug:
    """Figure 1: if A1 => B1 then B2 => A2 dereferences NULL."""
    return Bug(
        bug_id="FIG-1",
        title="Abstract two-race NULL dereference (Figure 1)",
        subsystem="example",
        bug_type=FailureKind.GPF,
        source="figure",
        build_image=_fig1_image,
        threads=[
            SyscallThread(proc="A", syscall="writer", entry="fig1_writer"),
            SyscallThread(proc="B", syscall="clearer", entry="fig1_clearer"),
        ],
        globals_init={"ptr_valid": 0, "ptr_target": 42},
        setup=[SetupCall(proc="init", syscall="boot", entry="fig1_init")],
        multi_variable=True,
        failing_schedule_spec=[("A", "A1b", 1, "B")],
        failure_location="A2",
        expected_chain_pairs=[("A1", "B1"), ("B2", "A1b")],
        description=(
            "ptr_valid and ptr are semantically correlated: a non-zero "
            "ptr_valid means ptr holds a valid pointer.  A1 => B1 steers "
            "thread B past its early return, enabling the fatal race on "
            "ptr itself (B2 before A's read), and A2 dereferences NULL."),
    )


# ----------------------------------------------------------------------
# Figure 5: three threads, race-steered kworker invocation.
# ----------------------------------------------------------------------
def _fig5_image() -> KernelImage:
    b = ProgramBuilder()
    # Thread A: A1(m1), A2(m2), A3(m3) — A3 faults if K1 wrote m3 first.
    with b.function("fig5_a") as f:
        f.store(f.g("m1"), 1, label="A1")
        f.load("x", f.g("m2"), label="A2")
        f.load("p", f.g("m3"), label="A3a")
        f.bug_on("p", "A3 observed K1's write", label="A3")
    # Thread B: B1(m1) steers whether the kworker runs; B2(m2).
    with b.function("fig5_b") as f:
        f.load("v", f.g("m1"), label="B1")
        f.store(f.g("m2"), 7, label="B2")
        f.brz("v", "B_ret", label="B3a")
        f.queue_work("fig5_k", label="B3")
        f.ret(label="B_ret")
    # Thread K: K1(m3).
    with b.function("fig5_k") as f:
        f.store(f.g("m3"), 1, label="K1")
    return b.build()


def fig5_bug() -> Bug:
    """Figure 5: the kworker is invoked only when A1 => B1 (race-steered),
    and the failure manifests when K1 => A3."""
    return Bug(
        bug_id="FIG-5",
        title="Race-steered kworker invocation (Figure 5)",
        subsystem="example",
        bug_type=FailureKind.ASSERTION,
        source="figure",
        build_image=_fig5_image,
        threads=[
            SyscallThread(proc="A", syscall="syscall_a", entry="fig5_a"),
            SyscallThread(proc="B", syscall="syscall_b", entry="fig5_b"),
        ],
        globals_init={"m1": 0, "m2": 0, "m3": 0},
        kthreads=[KthreadNote(kind=ThreadKind.KWORKER, func="fig5_k",
                              source_proc="B", source_syscall="syscall_b")],
        failing_schedule_spec=[("A", "A2", 1, "B")],
        failure_location="A3",
        expected_chain_pairs=[("A1", "B1"), ("K1", "A3a")],
        description=(
            "Thread K exists only in runs where A1 executed before B1; "
            "LIFS discovers it dynamically and the chain crosses the "
            "thread boundary (the Figure 4-(a) pattern)."),
    )


# ----------------------------------------------------------------------
# Figure 7: a data race surrounding a nested data race (ambiguity).
# ----------------------------------------------------------------------
def _fig7_image() -> KernelImage:
    b = ProgramBuilder()
    # Thread A: A1 writes m1, A2 writes m2.
    with b.function("fig7_a") as f:
        f.store(f.g("m1"), 1, label="A1")
        f.store(f.g("m2"), 1, label="A2")
    # Thread B: B1 reads m2, B2 reads m1; fails when both observed 1.
    with b.function("fig7_b") as f:
        f.load("y", f.g("m2"), label="B1")
        f.load("x", f.g("m1"), label="B2")
        f.binop("both", "and", f.r("x"), f.r("y"))
        f.bug_on("both", "observed both writes", label="B3")
    return b.build()


def fig7_bug() -> Bug:
    """Figure 7: A1 => B2 surrounds A2 => B1; flipping the surrounding race
    alone is impossible, and since the nested flip also averts the failure,
    the surrounding race is ambiguous."""
    return Bug(
        bug_id="FIG-7",
        title="Nested/surrounding races and ambiguity (Figure 7)",
        subsystem="example",
        bug_type=FailureKind.ASSERTION,
        source="figure",
        build_image=_fig7_image,
        threads=[
            SyscallThread(proc="A", syscall="syscall_a", entry="fig7_a"),
            SyscallThread(proc="B", syscall="syscall_b", entry="fig7_b"),
        ],
        globals_init={"m1": 0, "m2": 0},
        failing_schedule_spec=[],  # the serial order A then B already fails
        failing_start_order=["A", "B"],
        failure_location="B3",
        expect_ambiguity=True,
        expected_chain_pairs=[("A2", "B1")],
        description=(
            "Both races are root causes, but flipping the surrounding race "
            "requires flipping the nested one too, so Causality Analysis "
            "reports the surrounding race as ambiguous."),
    )
