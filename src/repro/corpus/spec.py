"""Corpus infrastructure: how a real-world bug is modeled.

Each of the paper's 22 bugs (Tables 2 and 3) is modeled as a
:class:`Bug`: a simulated-kernel image capturing the subsystem's racing
logic, the initial kernel state, the concurrent system calls involved, a
*known failing schedule* (used only by the synthetic bug finder — AITIA
never sees it), an execution-history template with setup calls and decoy
noise, and the ground-truth expectations the tests and benchmarks assert
(which races the chain must contain, whether the bug is multi-variable,
and so on).

Every model is salted with *benign races* — racy statistics counters and
flag updates of the kind the Linux kernel leaves in production code
(section 2.3) — so that conciseness is actually exercised: Causality
Analysis must test and exclude them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.schedule import Preemption, Schedule
from repro.kernel.builder import FunctionBuilder
from repro.kernel.failures import FailureKind
from repro.kernel.machine import KernelMachine, ThreadSpec
from repro.kernel.program import KernelImage
from repro.kernel.threads import ThreadKind
from repro.trace.events import KthreadInvocation, SyscallEvent
from repro.trace.history import ExecutionHistory
from repro.trace.slicer import Slice


@dataclass(frozen=True)
class SyscallThread:
    """One concurrent execution context of the bug's racing workload.

    Usually a system call; ``kind`` may name another context type — in
    particular :attr:`~repro.kernel.threads.ThreadKind.IRQ` for the
    hardware-interrupt extension (the paper's section 4.6 future work).
    """

    proc: str  # thread name, e.g. "A"
    syscall: str  # e.g. "setsockopt"
    entry: str  # kernel entry function in the image
    regs: Dict[str, int] = field(default_factory=dict)
    fd: Optional[int] = None
    kind: ThreadKind = ThreadKind.SYSCALL


@dataclass(frozen=True)
class SetupCall:
    """A serial setup call (open/socket/...) preceding the racing part."""

    proc: str
    syscall: str
    entry: str
    fd: Optional[int] = None


@dataclass(frozen=True)
class DecoyCall:
    """An unrelated syscall in the history (fuzzer noise for the slicer)."""

    proc: str
    syscall: str
    entry: str
    #: Decoys marked concurrent overlap each other, forming an innocuous
    #: concurrent group that AITIA must try and reject before reaching the
    #: racing slice.
    concurrent_group: int = 0


@dataclass(frozen=True)
class KthreadNote:
    """A background-thread invocation appearing in the ftrace history."""

    kind: ThreadKind
    func: str
    source_proc: str
    source_syscall: str = ""


class Bug:
    """A fully specified corpus bug."""

    def __init__(
        self,
        bug_id: str,
        title: str,
        subsystem: str,
        bug_type: FailureKind,
        source: str,
        build_image: Callable[[], KernelImage],
        threads: Sequence[SyscallThread],
        globals_init: Optional[Dict[str, object]] = None,
        setup: Sequence[SetupCall] = (),
        decoys: Sequence[DecoyCall] = (),
        kthreads: Sequence[KthreadNote] = (),
        failing_schedule_spec: Sequence[Tuple] = (),
        failing_start_order: Optional[Sequence[str]] = None,
        failure_location: Optional[str] = None,
        multi_variable: bool = False,
        loosely_correlated: bool = False,
        fixed_at_eval_time: bool = True,
        expected_chain_pairs: Sequence[Tuple[str, str]] = (),
        expect_ambiguity: bool = False,
        description: str = "",
    ) -> None:
        self.bug_id = bug_id
        self.title = title
        self.subsystem = subsystem
        self.bug_type = bug_type
        self.source = source  # "cve" | "syzkaller" | "figure"
        self._build_image = build_image
        self.threads = tuple(threads)
        self.globals_init = dict(globals_init or {})
        self.setup = tuple(setup)
        self.decoys = tuple(decoys)
        self.kthreads = tuple(kthreads)
        #: (thread, instr_label, occurrence, switch_to) tuples.
        self.failing_schedule_spec = tuple(failing_schedule_spec)
        self.failing_start_order = tuple(
            failing_start_order or [t.proc for t in threads])
        self.failure_location = failure_location
        self.multi_variable = multi_variable
        self.loosely_correlated = loosely_correlated
        self.fixed_at_eval_time = fixed_at_eval_time
        #: Undirected (label, label) pairs the causality chain must contain
        #: — derived from the real fix (the "manual comparison with the
        #: developers' patch" of section 5.1).
        self.expected_chain_pairs = tuple(expected_chain_pairs)
        self.expect_ambiguity = expect_ambiguity
        self.description = description
        self._image: Optional[KernelImage] = None

    # ------------------------------------------------------------------
    @property
    def image(self) -> KernelImage:
        if self._image is None:
            self._image = self._build_image()
        return self._image

    def _thread_specs(self) -> List[ThreadSpec]:
        return [ThreadSpec(name=t.proc, entry=t.entry, regs=dict(t.regs),
                           kind=t.kind)
                for t in self.threads]

    def _setup_specs(self) -> List[ThreadSpec]:
        return [ThreadSpec(name=f"setup:{s.proc}:{s.syscall}#{i}",
                           entry=s.entry)
                for i, s in enumerate(self.setup)]

    def machine_factory(self) -> KernelMachine:
        """A fresh machine with the canonical racing threads (setup calls
        replayed first)."""
        return KernelMachine(self.image, self._thread_specs(),
                             globals_init=dict(self.globals_init),
                             setup=self._setup_specs())

    # -- slice-driven construction (the report pipeline) -----------------
    def factory_for_slice(self, sl: Slice) -> Callable[[], KernelMachine]:
        by_proc = {t.proc: t for t in self.threads}
        specs: List[ThreadSpec] = []
        for event in sl.syscall_events:
            known = by_proc.get(event.proc)
            regs = dict(known.regs) if known and known.entry == event.entry \
                else {}
            specs.append(ThreadSpec(name=event.proc, entry=event.entry,
                                    regs=regs))
        # Hardware IRQ sources appear in the history as invocation events;
        # in the slice they become injectable initial contexts.
        irq_by_entry = {t.entry: t for t in self.threads
                        if t.kind is ThreadKind.IRQ}
        for event in sl.kthread_events:
            if event.kind is ThreadKind.IRQ and event.func in irq_by_entry:
                irq = irq_by_entry[event.func]
                specs.append(ThreadSpec(name=irq.proc, entry=irq.entry,
                                        regs=dict(irq.regs),
                                        kind=ThreadKind.IRQ))
        setup_specs = [
            ThreadSpec(name=f"setup:{e.proc}:{e.name}#{i}", entry=e.entry)
            for i, e in enumerate(sl.setup)
        ]
        image = self.image
        globals_init = dict(self.globals_init)

        def factory() -> KernelMachine:
            return KernelMachine(image, specs, globals_init=globals_init,
                                 setup=setup_specs)

        return factory

    def slice_thread_names(self, sl: Slice) -> List[str]:
        names = [event.proc for event in sl.syscall_events]
        irq_by_entry = {t.entry: t for t in self.threads
                        if t.kind is ThreadKind.IRQ}
        for event in sl.kthread_events:
            if event.kind is ThreadKind.IRQ and event.func in irq_by_entry:
                names.append(irq_by_entry[event.func].proc)
        return names

    # -- the fuzzer's lucky interleaving ---------------------------------
    @property
    def known_failing_schedule(self) -> Schedule:
        preemptions = []
        for thread, label, occurrence, switch_to in self.failing_schedule_spec:
            instr = self.image.instruction_labeled(label)
            preemptions.append(Preemption(
                thread=thread, instr_addr=instr.addr, occurrence=occurrence,
                switch_to=switch_to, instr_label=label))
        return Schedule(start_order=self.failing_start_order,
                        preemptions=preemptions,
                        note=f"{self.bug_id} known failing interleaving")

    # -- history synthesis ------------------------------------------------
    def history(self) -> ExecutionHistory:
        """The ftrace-style history of the fuzzing run that crashed: setup
        calls, decoy noise (including innocuous concurrent groups), the
        racing concurrent group last, background-thread invocations, and
        the failure time."""
        history = ExecutionHistory()
        t = 0.0
        for call in self.setup:
            history.add(SyscallEvent(
                timestamp=t, proc=call.proc, name=call.syscall,
                entry=call.entry, fd=call.fd, duration=0.5, is_setup=True))
            t += 1.0

        sequential = [d for d in self.decoys if d.concurrent_group == 0]
        grouped: Dict[int, List[DecoyCall]] = {}
        for d in self.decoys:
            if d.concurrent_group:
                grouped.setdefault(d.concurrent_group, []).append(d)

        for decoy in sequential:
            history.add(SyscallEvent(
                timestamp=t, proc=decoy.proc, name=decoy.syscall,
                entry=decoy.entry, duration=0.5))
            t += 1.0

        racing_start = t + 2.0 * max(len(grouped), 1)
        for group in sorted(grouped):
            # Innocuous concurrent decoy groups: id < 100 precede the racing
            # group; id >= 100 land between the racing group's end and the
            # failure, so they rank *closer* to the failure than the racing
            # slice and AITIA must try and reject them first (section 4.2:
            # "if AITIA cannot reproduce the failure, AITIA selects the next
            # slice").
            if group >= 100:
                base, duration = racing_start + 3.15, 0.3
            else:
                base, duration = t, 2.0
            for i, decoy in enumerate(grouped[group]):
                history.add(SyscallEvent(
                    timestamp=base + 0.05 * i, proc=decoy.proc,
                    name=decoy.syscall, entry=decoy.entry,
                    duration=duration))
            if group < 100:
                t = base + 2.5

        for i, thread in enumerate(self.threads):
            if thread.kind is not ThreadKind.SYSCALL:
                continue  # IRQ sources appear as invocation events below
            history.add(SyscallEvent(
                timestamp=racing_start + 0.1 * i, proc=thread.proc,
                name=thread.syscall, entry=thread.entry, fd=thread.fd,
                duration=3.0))
        for note in self.kthreads:
            history.add(KthreadInvocation(
                timestamp=racing_start + 1.0, kind=note.kind, func=note.func,
                source_proc=note.source_proc,
                source_syscall=note.source_syscall, duration=2.0))
        history.failure_time = racing_start + 3.5
        return history

    def __repr__(self) -> str:
        return f"<Bug {self.bug_id}: {self.title}>"


# ----------------------------------------------------------------------
# Benign-race salt
# ----------------------------------------------------------------------
def emit_stat_updates(f: FunctionBuilder, counters: Sequence[str],
                      prefix: str, reps: int = 1) -> None:
    """Emit racy statistics-counter updates — the classic benign data race
    kernel developers leave in for performance (section 2.3).  Each update
    is a single read-modify-write access, racing with the same counters
    updated from other threads but never affecting control flow.

    Emit these at the *start* of a syscall entry so they appear in the
    failure-causing instruction sequence: Causality Analysis must then test
    and exclude every one of them, which is what Table 3's schedule counts
    and the section 5.2 conciseness numbers measure."""
    for rep in range(reps):
        for i, counter in enumerate(counters):
            f.inc(f.g(counter), 1, label=f"{prefix}_stat{rep}_{i}")


def salt_counters(subsys: str, n: int) -> List[str]:
    """Shared per-subsystem statistics counters (``n`` distinct cells)."""
    return [f"{subsys}_stat{i}" for i in range(n)]


def emit_flag_twiddle(f: FunctionBuilder, flag_global: str, bit: int,
                      prefix: str) -> None:
    """Emit a racy read-or-write flag update (different threads touch
    different bits; the race is real but harmless)."""
    f.load("stat_r", f.g(flag_global), label=f"{prefix}_flagrd")
    f.binop("stat_r", "or", f.r("stat_r"), f.i(1 << bit))
    f.store(f.g(flag_global), f.r("stat_r"), label=f"{prefix}_flagwr")
