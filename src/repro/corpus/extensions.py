"""Extension bugs beyond the paper's evaluation.

* ``EXT-IRQ-01`` — the paper's section 4.6 future work: a concurrency
  bug in a *hardware IRQ* context.  The simulated kernel models an IRQ
  handler as an injectable execution context that runs to completion
  (non-preemptible); LIFS chooses where to inject it.
* ``EXT-RCU-01`` — the Figure 4-(b) asynchrony pattern with an *RCU
  callback* (``call_rcu``) rather than a kworker: unregistration frees
  the device through RCU while a reader still holds the pointer.
* ``EXT-3SC-01`` — a failure needing *three concurrent system calls*:
  one syscall arms the race-steered path that the other two then lose.
"""

from __future__ import annotations

from repro.corpus.spec import (
    Bug,
    DecoyCall,
    SetupCall,
    SyscallThread,
    emit_stat_updates,
    salt_counters,
)
from repro.kernel.builder import ProgramBuilder
from repro.kernel.failures import FailureKind
from repro.kernel.program import KernelImage
from repro.kernel.threads import ThreadKind


def _irq_image() -> KernelImage:
    b = ProgramBuilder()
    counters = salt_counters("uart", 6)

    with b.function("uart_open") as f:
        f.alloc("buf", 16, tag="uart_txbuf", label="S1")
        f.store(f.g("uart_buf"), f.r("buf"), label="S2")
        f.store(f.g("tx_enabled"), 1, label="S3")

    # Syscall: ioctl(TIOCSSERIAL) -> uart_reconfig().  The bug: the old
    # buffer is freed *before* the TX interrupt is masked.
    with b.function("uart_reconfig") as f:
        emit_stat_updates(f, counters, prefix="A")
        f.load("old", f.g("uart_buf"), label="A1")
        f.free("old", label="A2")
        f.store(f.g("tx_enabled"), 0, label="A3")  # mask: too late
        f.alloc("new", 32, tag="uart_txbuf_new", label="A4")
        f.store(f.g("uart_buf"), f.r("new"), label="A5")
        f.store(f.g("tx_enabled"), 1, label="A6")

    # Hardware IRQ: the UART TX interrupt handler (non-preemptible).
    with b.function("uart_tx_interrupt") as f:
        f.load("en", f.g("tx_enabled"), label="I0")
        f.brz("en", "I_ret", label="I0b")
        f.load("buf", f.g("uart_buf"), label="I1")
        f.load("byte", f.at("buf"), label="I2")  # UAF when injected mid-swap
        f.ret(label="I_ret")

    with b.function("fuzz_noise") as f:
        f.inc(f.g("uart_noise"), 1, label="N1")

    return b.build()


def ext_irq_bug() -> Bug:
    from repro.corpus.spec import KthreadNote

    return Bug(
        bug_id="EXT-IRQ-01",
        title="serial: TX interrupt races uart_reconfig's buffer swap "
              "(use-after-free, IRQ context)",
        subsystem="Serial / UART",
        bug_type=FailureKind.KASAN_UAF,
        source="extension",
        build_image=_irq_image,
        threads=[
            SyscallThread(proc="A", syscall="ioctl", entry="uart_reconfig",
                          fd=20),
            SyscallThread(proc="irq0", syscall="<uart TX irq>",
                          entry="uart_tx_interrupt", kind=ThreadKind.IRQ),
        ],
        setup=[SetupCall(proc="A", syscall="open", entry="uart_open",
                         fd=20)],
        decoys=[DecoyCall(proc="C", syscall="write", entry="fuzz_noise")],
        kthreads=[KthreadNote(kind=ThreadKind.IRQ,
                              func="uart_tx_interrupt",
                              source_proc="hw", source_syscall="")],
        # Inject the interrupt between the free (A2) and the mask (A3):
        # A1 A2 | I0 I1 I2 -> UAF read of the freed TX buffer.
        failing_schedule_spec=[("A", "A3", 1, "irq0")],
        failure_location="I2",
        multi_variable=False,
        expected_chain_pairs=[("A2", "I2")],
        description=(
            "An interrupt injected between the buffer free (A2) and the "
            "too-late mask (A3) dereferences freed memory; because the "
            "handler executes atomically, the chain is the single race "
            "A2 => I2.  Demonstrates the IRQ-injection capability the "
            "paper leaves as future work (section 4.6)."),
    )


# ----------------------------------------------------------------------
# EXT-RCU-01: RCU-callback use-after-free (the Figure 4-(b) pattern).
# ----------------------------------------------------------------------
def _rcu_image() -> KernelImage:
    b = ProgramBuilder()
    counters = salt_counters("netdev", 8)

    with b.function("netdev_register") as f:
        f.alloc("dev", 24, tag="net_device", label="S1")
        f.store(f.g("dev_ptr"), f.r("dev"), label="S2")

    # Syscall A: unregister — schedule the RCU free, then clear the slot.
    # The bug: readers that already loaded the pointer race the callback.
    with b.function("netdev_unregister") as f:
        emit_stat_updates(f, counters, prefix="A")
        f.load("dev", f.g("dev_ptr"), label="A1")
        f.brz("dev", "A_ret", label="A1b")
        f.call_rcu("netdev_free_rcu", arg="dev", label="A2")
        f.store(f.g("dev_ptr"), 0, label="A3")
        f.ret(label="A_ret")

    # Syscall B: a reader that dereferences the device.
    with b.function("netdev_read_stats") as f:
        emit_stat_updates(f, counters, prefix="B")
        f.load("dev", f.g("dev_ptr"), label="B1")
        f.brz("dev", "B_ret", label="B1b")
        f.load("mtu", f.at("dev"), label="B2")  # UAF once the callback ran
        f.ret(label="B_ret")

    # The RCU callback (grace period elapsed): free the device.
    with b.function("netdev_free_rcu") as f:
        f.free("a0", label="R1")

    with b.function("fuzz_noise") as f:
        f.inc(f.g("netdev_noise"), 1, label="N1")

    return b.build()


def ext_rcu_bug() -> Bug:
    from repro.corpus.spec import KthreadNote

    return Bug(
        bug_id="EXT-RCU-01",
        title="netdev: reader races the RCU free of an unregistered "
              "device (use-after-free)",
        subsystem="Net core",
        bug_type=FailureKind.KASAN_UAF,
        source="extension",
        build_image=_rcu_image,
        threads=[
            SyscallThread(proc="A", syscall="ioctl",
                          entry="netdev_unregister", fd=21),
            SyscallThread(proc="B", syscall="getsockopt",
                          entry="netdev_read_stats", fd=21),
        ],
        setup=[SetupCall(proc="A", syscall="socket",
                         entry="netdev_register", fd=21)],
        decoys=[DecoyCall(proc="C", syscall="read", entry="fuzz_noise")],
        kthreads=[KthreadNote(kind=ThreadKind.RCU, func="netdev_free_rcu",
                              source_proc="A", source_syscall="ioctl")],
        # B validates the pointer; A queues the RCU free and clears the
        # slot; the callback frees; B dereferences: B1 | A1..A3 R1 | B2.
        failing_schedule_spec=[("B", "B2", 1, "A")],
        failing_start_order=["B", "A"],
        failure_location="B2",
        multi_variable=False,
        expected_chain_pairs=[("B1", "A3"), ("R1", "B2")],
        description=(
            "The missing rcu_read_lock: a reader that validated dev_ptr "
            "races the call_rcu callback, a chain crossing into the RCU "
            "softirq context (Figure 4-(b))."),
    )


# ----------------------------------------------------------------------
# EXT-3SC-01: a failure needing three concurrent system calls.
# ----------------------------------------------------------------------
def _three_syscall_image() -> KernelImage:
    b = ProgramBuilder()
    counters = salt_counters("pipe3", 8)

    with b.function("pipe_create") as f:
        f.alloc("buf", 16, tag="pipe_buf", label="S1")
        f.store(f.g("pipe_buf"), f.r("buf"), label="S2")
        f.store(f.g("pipe_len"), 8, label="S3")
        f.store(f.g("grow_req"), 0, label="S4")

    # Syscall A: fcntl(F_SETPIPE_SZ) worker — grows the pipe if a grow
    # was requested: bumps the length, then reallocates the buffer.
    with b.function("pipe_grow") as f:
        emit_stat_updates(f, counters, prefix="A")
        f.load("rq", f.g("grow_req"), label="A0")
        f.brz("rq", "A_ret", label="A0b")
        f.store(f.g("pipe_len"), 24, label="A1")
        f.alloc("nb", 32, tag="pipe_buf_new", label="A2")
        f.store(f.g("pipe_buf"), f.r("nb"), label="A3")
        f.ret(label="A_ret")

    # Syscall B: write() — samples length then buffer.
    with b.function("pipe_write") as f:
        emit_stat_updates(f, counters, prefix="B")
        f.load("len", f.g("pipe_len"), label="B1")
        f.load("buf", f.g("pipe_buf"), label="B2")
        f.binop("end", "add", f.r("buf"), f.r("len"))
        f.load("last", f.at("end"), label="B3")  # OOB on stale buffer
        f.ret(label="B_ret")

    # Syscall C: fcntl(F_SETPIPE_SZ) request — arms the grow.
    with b.function("pipe_request_grow") as f:
        emit_stat_updates(f, counters, prefix="C")
        f.store(f.g("grow_req"), 1, label="C1")

    with b.function("fuzz_noise") as f:
        f.inc(f.g("pipe3_noise"), 1, label="N1")

    return b.build()


def ext_three_syscall_bug() -> Bug:
    return Bug(
        bug_id="EXT-3SC-01",
        title="pipe: three-syscall race — grow request, grow worker and "
              "writer (slab-out-of-bounds)",
        subsystem="Pipe",
        bug_type=FailureKind.KASAN_OOB,
        source="extension",
        build_image=_three_syscall_image,
        threads=[
            SyscallThread(proc="A", syscall="fcntl", entry="pipe_grow",
                          fd=22),
            SyscallThread(proc="B", syscall="write", entry="pipe_write",
                          fd=22),
            SyscallThread(proc="C", syscall="fcntl",
                          entry="pipe_request_grow", fd=22),
        ],
        setup=[SetupCall(proc="A", syscall="pipe", entry="pipe_create",
                         fd=22)],
        decoys=[DecoyCall(proc="D", syscall="poll", entry="fuzz_noise")],
        # C arms the grow, A bumps the length but is preempted before the
        # realloc, B writes at new-length into the old buffer:
        # C1 | A0 A1 | B1 B2 B3 -> OOB.
        failing_schedule_spec=[("A", "A2", 1, "B")],
        failing_start_order=["C", "A", "B"],
        failure_location="B3",
        multi_variable=True,
        expected_chain_pairs=[("A1", "B1"), ("C1", "A0")],
        description=(
            "The slice needs all three contexts (the paper caps slices at "
            "three threads for exactly this class): C's request steers A "
            "into the grow path whose half-done state B then trips over."),
    )


# ----------------------------------------------------------------------
# EXT-LF-01: lock-free push without a cmpxchg retry loop (memory leak).
# ----------------------------------------------------------------------
def _lockfree_image() -> KernelImage:
    b = ProgramBuilder()
    counters = salt_counters("lfstack", 6)

    with b.function("lf_init") as f:
        f.store(f.g("stack_head"), 0, label="S1")

    # Path A: the buggy push — a single compare-and-exchange with no
    # retry.  If another push lands between the head read and the
    # cmpxchg, the node is silently dropped.
    with b.function("lf_push_a") as f:
        emit_stat_updates(f, counters, prefix="A")
        f.alloc("node", 16, tag="lf_node_a", leak_tracked=True, label="A1")
        f.load("head", f.g("stack_head"), label="A2")
        f.store(f.at("node"), f.r("head"), label="A3")  # node->next = head
        f.cmpxchg("old", f.g("stack_head"), f.r("head"), f.r("node"),
                  label="A4")
        # BUG: no check of old == head, no retry loop.

    # Path B: the same push from a sibling thread.
    with b.function("lf_push_b") as f:
        emit_stat_updates(f, counters, prefix="B")
        f.alloc("node", 16, tag="lf_node_b", leak_tracked=True, label="B1")
        f.load("head", f.g("stack_head"), label="B2")
        f.store(f.at("node"), f.r("head"), label="B3")
        f.cmpxchg("old", f.g("stack_head"), f.r("head"), f.r("node"),
                  label="B4")

    with b.function("fuzz_noise") as f:
        f.inc(f.g("lfstack_noise"), 1, label="N1")

    return b.build()


def ext_lockfree_bug() -> Bug:
    return Bug(
        bug_id="EXT-LF-01",
        title="lock-free stack: push drops its node when the "
              "compare-and-exchange loses (memory leak)",
        subsystem="Lock-free",
        bug_type=FailureKind.MEMORY_LEAK,
        source="extension",
        build_image=_lockfree_image,
        threads=[
            SyscallThread(proc="A", syscall="sendmsg", entry="lf_push_a",
                          fd=23),
            SyscallThread(proc="B", syscall="sendmsg", entry="lf_push_b",
                          fd=23),
        ],
        setup=[SetupCall(proc="A", syscall="socket", entry="lf_init",
                         fd=23)],
        decoys=[DecoyCall(proc="C", syscall="recvmsg", entry="fuzz_noise")],
        # B's push lands between A's head read and A's cmpxchg; A's node
        # becomes unreachable: A1 A2 | B1..B4 | A3 A4(fails) -> leak.
        failing_schedule_spec=[("A", "A3", 1, "B")],
        failure_location="A1",
        multi_variable=False,
        expected_chain_pairs=[("A2", "B4"), ("B4", "A4")],
        description=(
            "Lock-free algorithms (the paper's introduction cites them as "
            "a major race source) race through atomics by design; AITIA "
            "still separates the harmful interleaving — the lost "
            "compare-and-exchange — from the benign ones."),
    )
