"""The 22-bug corpus of the paper's evaluation, plus figure examples.

Every bug AITIA was evaluated on (Tables 2 and 3) is modeled as a
simulated-kernel subsystem preserving the bug's racing structure: the
variables involved, the race-steered control flows, the background-thread
asynchrony, and a salting of benign races.  See
:mod:`repro.corpus.spec` for the model format and DESIGN.md for the
substitution argument.

Registry access::

    from repro.corpus import get_bug, cve_bugs, syzkaller_bugs

    bug = get_bug("CVE-2017-15649")
"""

from repro.corpus.registry import (
    all_bugs,
    cve_bugs,
    extension_bugs,
    figure_examples,
    get_bug,
    syzkaller_bugs,
)
from repro.corpus.spec import (
    Bug,
    DecoyCall,
    KthreadNote,
    SetupCall,
    SyscallThread,
)

__all__ = [
    "Bug",
    "DecoyCall",
    "KthreadNote",
    "SetupCall",
    "SyscallThread",
    "all_bugs",
    "cve_bugs",
    "extension_bugs",
    "figure_examples",
    "get_bug",
    "syzkaller_bugs",
]
