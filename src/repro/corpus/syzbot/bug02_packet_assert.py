"""Syzkaller bug #2 — AF_PACKET: assertion in packet_lookup_frame.

Two setsockopt paths manipulate the rx ring's head index without holding
the ring lock.  The failure needs a *chain* of four races on the single
variable ``rx_head``: A validates the head, B rewinds the ring, A
advances the stale head, B's consumer picks the advanced value up and the
frame lookup asserts.  Single-variable, but the chain is four races long
(Table 3 row #2: 4 races in chain) — exactly the case where "one pattern"
diagnosis reports a fraction of the story.
"""

from __future__ import annotations

from repro.corpus.spec import (
    Bug,
    DecoyCall,
    SetupCall,
    SyscallThread,
    emit_stat_updates,
    salt_counters,
)
from repro.kernel.builder import ProgramBuilder
from repro.kernel.failures import FailureKind
from repro.kernel.program import KernelImage

RING_FRAMES = 4


def build_image() -> KernelImage:
    b = ProgramBuilder()
    counters = salt_counters("pktring", 24)

    with b.function("ring_init") as f:
        f.store(f.g("rx_head"), RING_FRAMES - 1, label="S1")

    # Thread A: setsockopt producer path: validate head, then advance it.
    with b.function("packet_rcv_has_room") as f:
        emit_stat_updates(f, counters, prefix="A")
        f.load("h1", f.g("rx_head"), label="A1")
        f.binop("bad", "ge", f.r("h1"), f.i(RING_FRAMES))
        f.brnz("bad", "A_ret", label="A1b")
        f.binop("h2", "add", f.r("h1"), f.i(1))
        f.store(f.g("rx_head"), f.r("h2"), label="A2")
        f.ret(label="A_ret")

    # Thread B: setsockopt consumer path: rewind the ring, then look the
    # current frame up and assert it is inside the ring.
    with b.function("packet_lookup_frame") as f:
        emit_stat_updates(f, counters, prefix="B")
        f.load("h0", f.g("rx_head"), label="B1")
        f.store(f.g("rx_head"), 0, label="B2")
        f.load("h3", f.g("rx_head"), label="B3")
        f.binop("oob", "ge", f.r("h3"), f.i(RING_FRAMES))
        f.bug_on("oob", "packet_lookup_frame: head outside ring", label="B4")

    with b.function("fuzz_noise") as f:
        f.inc(f.g("pktring_noise"), 1, label="N1")

    return b.build()


def make_bug() -> Bug:
    return Bug(
        bug_id="SYZ-02",
        title="AF_PACKET: assertion violation in packet_lookup_frame",
        subsystem="Packet socket",
        bug_type=FailureKind.ASSERTION,
        source="syzkaller",
        build_image=build_image,
        threads=[
            SyscallThread(proc="A", syscall="setsockopt",
                          entry="packet_rcv_has_room", fd=3),
            SyscallThread(proc="B", syscall="getsockopt",
                          entry="packet_lookup_frame", fd=3),
        ],
        setup=[SetupCall(proc="A", syscall="socket", entry="ring_init",
                         fd=3)],
        decoys=[DecoyCall(proc="C", syscall="poll", entry="fuzz_noise")],
        # A validates head (3 < 4), B rewinds to 0, A advances the *stale*
        # head to 4, B reloads: head == 4 -> BUG_ON.
        # Sequence: A1 | B1 B2 | A2 | B3 B4.
        failing_schedule_spec=[("A", "A2", 1, "B"),
                               ("B", "B3", 1, "A")],
        failure_location="B4",
        multi_variable=False,
        expected_chain_pairs=[("A1", "B2"), ("B2", "A2"), ("A2", "B3")],
        description=(
            "Four races on a single variable chain into the assertion: "
            "validate-then-rewind, rewind-then-advance, advance-then-"
            "reload."),
    )
