"""Syzkaller bug #4 — KVM: irq_bypass_register_consumer use-after-free.

The paper's Figure 9 case study.  Syscall A (irqfd assign) adds the irqfd
to the consumer list and *then* keeps initializing it; syscall B (irqfd
deassign) finds the half-initialized irqfd on the list and queues the
shutdown work; the kworker frees the irqfd while A is still writing into
it — a use-after-free whose causality crosses the thread boundary:

    A1 => B1  ->  K1 => A2  ->  UAF

Multi-variable and loosely correlated: the consumer list and the irqfd
object live in different layers (irqbypass vs KVM), and most list
operations never touch irqfd payload fields.
"""

from __future__ import annotations

from repro.corpus.spec import (
    Bug,
    DecoyCall,
    KthreadNote,
    SetupCall,
    SyscallThread,
    emit_stat_updates,
    salt_counters,
)
from repro.kernel.builder import ProgramBuilder
from repro.kernel.failures import FailureKind
from repro.kernel.program import KernelImage
from repro.kernel.threads import ThreadKind


def build_image() -> KernelImage:
    b = ProgramBuilder()
    counters = salt_counters("irqfd", 12)

    with b.function("kvm_vm_open") as f:
        f.store(f.g("consumer_list"), 0, label="S1")

    # Thread A: ioctl(KVM_IRQFD) — assign.
    with b.function("irqfd_assign") as f:
        emit_stat_updates(f, counters, prefix="A")
        f.alloc("irqfd", 24, tag="irqfd", label="A0")
        # Published on the consumer list before initialization finishes.
        f.store(f.g("consumer_list"), f.r("irqfd"), label="A1")
        f.store(f.at("irqfd", 8), 0xDA, label="A2")  # init data: UAF point

    # Thread B: ioctl(KVM_IRQFD) — deassign: find and queue shutdown.
    with b.function("irqfd_deassign") as f:
        emit_stat_updates(f, counters, prefix="B")
        f.load("irqfd", f.g("consumer_list"), label="B1")
        f.brz("irqfd", "B_ret", label="B1b")
        f.queue_work("irqfd_shutdown", arg="irqfd", label="B2")
        f.ret(label="B_ret")

    # Kernel background thread: the shutdown work frees the irqfd.
    with b.function("irqfd_shutdown") as f:
        f.free("a0", label="K1")

    # Consumer-list walkers that never touch irqfd payload fields: the
    # loose-correlation evidence that defeats MUVI (section 2.2).
    with b.function("irqfd_list_walk") as f:
        f.load("head", f.g("consumer_list"), label="W1")
        f.inc(f.g("irqfd_walks"), 1, label="W2")

    with b.function("fuzz_noise") as f:
        f.inc(f.g("irqfd_noise"), 1, label="N1")

    return b.build()


def make_bug() -> Bug:
    return Bug(
        bug_id="SYZ-04",
        title="KVM: use-after-free write in irq_bypass_register_consumer "
              "(Figure 9)",
        subsystem="KVM",
        bug_type=FailureKind.KASAN_UAF,
        source="syzkaller",
        build_image=build_image,
        threads=[
            SyscallThread(proc="A", syscall="ioctl", entry="irqfd_assign",
                          fd=4),
            SyscallThread(proc="B", syscall="ioctl", entry="irqfd_deassign",
                          fd=4),
        ],
        setup=[SetupCall(proc="A", syscall="open", entry="kvm_vm_open",
                         fd=4)],
        decoys=[
            DecoyCall(proc="C", syscall="ioctl", entry="irqfd_list_walk"),
            DecoyCall(proc="D", syscall="ioctl", entry="irqfd_list_walk"),
            DecoyCall(proc="E", syscall="ioctl", entry="fuzz_noise"),
        ],
        kthreads=[KthreadNote(kind=ThreadKind.KWORKER, func="irqfd_shutdown",
                              source_proc="B", source_syscall="ioctl")],
        # A publishes the irqfd, B queues shutdown, the kworker frees it,
        # then A's init write lands in freed memory:
        # A0 A1 | B1 B2 | K1 | A2 -> UAF write.
        failing_schedule_spec=[("A", "A2", 1, "B")],
        failure_location="A2",
        multi_variable=True,
        loosely_correlated=True,
        expected_chain_pairs=[("A1", "B1"), ("K1", "A2")],
        description=(
            "The outcome of the list race (A1 => B1) invokes the kworker "
            "whose free races with A's initialization — the asynchronous "
            "pattern of Figure 4-(a), diagnosed across three contexts."),
    )
