"""Syzkaller bug #5 — RxRPC: use-after-free read in rxrpc_queue_local.

The smallest bug of Table 3: a single harmful race between the socket
shutdown freeing the local endpoint and the work-queueing path reading
it.  One race in the chain, reproduced almost immediately (the paper
reports 2 LIFS schedules).  The endpoint's teardown happens on a
kworker, so the failure involves a syscall racing a background thread
(the Figure 4-(c) shape).
"""

from __future__ import annotations

from repro.corpus.spec import (
    Bug,
    DecoyCall,
    KthreadNote,
    SetupCall,
    SyscallThread,
    salt_counters,
    emit_stat_updates,
)
from repro.kernel.builder import ProgramBuilder
from repro.kernel.failures import FailureKind
from repro.kernel.program import KernelImage
from repro.kernel.threads import ThreadKind


def build_image() -> KernelImage:
    b = ProgramBuilder()
    counters = salt_counters("rxrpc", 2)

    with b.function("rxrpc_bind") as f:
        f.alloc("local", 16, tag="rxrpc_local", label="S1")
        f.store(f.g("rxrpc_local_ptr"), f.r("local"), label="S2")

    # Thread A: sendmsg() -> rxrpc_queue_local(): schedule the teardown
    # work, then keep using the local endpoint.
    with b.function("rxrpc_queue_local") as f:
        emit_stat_updates(f, counters, prefix="A")
        f.load("local", f.g("rxrpc_local_ptr"), label="A1")
        f.queue_work("rxrpc_local_destroy", arg="local", label="A2")
        f.load("usage", f.at("local"), label="A3")  # UAF once K ran

    # Kworker: destroy the local endpoint.
    with b.function("rxrpc_local_destroy") as f:
        f.free("a0", label="K1")

    with b.function("fuzz_noise") as f:
        f.inc(f.g("rxrpc_noise"), 1, label="N1")

    return b.build()


def make_bug() -> Bug:
    return Bug(
        bug_id="SYZ-05",
        title="RxRPC: use-after-free read in rxrpc_queue_local",
        subsystem="RxRPC",
        bug_type=FailureKind.KASAN_UAF,
        source="syzkaller",
        build_image=build_image,
        threads=[
            SyscallThread(proc="A", syscall="sendmsg",
                          entry="rxrpc_queue_local", fd=13),
        ],
        setup=[SetupCall(proc="A", syscall="bind", entry="rxrpc_bind",
                         fd=13)],
        decoys=[DecoyCall(proc="C", syscall="listen", entry="fuzz_noise")],
        kthreads=[KthreadNote(kind=ThreadKind.KWORKER,
                              func="rxrpc_local_destroy",
                              source_proc="A", source_syscall="sendmsg")],
        # A single syscall racing its own deferred work: A1 A2 | K1 | A3.
        failing_schedule_spec=[("A", "A3", 1, None)],
        failure_location="A3",
        multi_variable=False,
        expected_chain_pairs=[("K1", "A3")],
        description=(
            "Even a single system call can race with the kernel thread it "
            "queued (Figure 4-(c)); the chain is a single race between "
            "the kworker's free and the syscall's read."),
    )
