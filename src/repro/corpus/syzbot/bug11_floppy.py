"""Syzkaller bug #11 — floppy: WARNING in schedule_bh.

The floppy driver queues its bottom half expecting the ready mark the
command path sets afterwards; a concurrent reset ioctl clears the mark
(it believes no command is pending) and the bottom half fires the WARN.
A syscall racing a kernel background thread through an intermediate
syscall — the Figure 4-(b)/(c) flavor of asynchrony.
"""

from __future__ import annotations

from repro.corpus.spec import (
    Bug,
    DecoyCall,
    KthreadNote,
    SetupCall,
    SyscallThread,
    emit_stat_updates,
    salt_counters,
)
from repro.kernel.builder import ProgramBuilder
from repro.kernel.failures import FailureKind
from repro.kernel.program import KernelImage
from repro.kernel.threads import ThreadKind


def build_image() -> KernelImage:
    b = ProgramBuilder()
    counters = salt_counters("floppy", 6)

    with b.function("floppy_open") as f:
        f.store(f.g("fd_cmd_pending"), 0, label="S1")
        f.store(f.g("fd_ready"), 0, label="S2")

    # Thread A: ioctl(FDRAWCMD): mark ready, then queue the bottom half.
    with b.function("floppy_raw_cmd") as f:
        emit_stat_updates(f, counters, prefix="A")
        f.store(f.g("fd_cmd_pending"), 1, label="A1")
        f.store(f.g("fd_ready"), 1, label="A2")
        f.queue_work("floppy_schedule_bh", label="A3")

    # Thread B: ioctl(FDRESET): clear the ready mark if nothing pending.
    with b.function("floppy_reset") as f:
        emit_stat_updates(f, counters, prefix="B")
        f.load("pend", f.g("fd_cmd_pending"), label="B0")
        f.brnz("pend", "B_ret", label="B0b")
        f.store(f.g("fd_ready"), 0, label="B1")
        f.ret(label="B_ret")

    # The bottom half: WARN if the ready mark is missing.
    with b.function("floppy_schedule_bh") as f:
        f.load("rdy", f.g("fd_ready"), label="K1")
        f.binop("missing", "eq", f.r("rdy"), f.i(0))
        f.bug_on("missing", "schedule_bh: bottom half without ready mark",
                 label="K2")

    with b.function("fuzz_noise") as f:
        f.inc(f.g("floppy_noise"), 1, label="N1")

    return b.build()


def make_bug() -> Bug:
    return Bug(
        bug_id="SYZ-11",
        title="floppy: WARNING in schedule_bh",
        subsystem="Floppy",
        bug_type=FailureKind.ASSERTION,
        source="syzkaller",
        build_image=build_image,
        threads=[
            SyscallThread(proc="A", syscall="ioctl", entry="floppy_raw_cmd",
                          fd=18),
            SyscallThread(proc="B", syscall="ioctl", entry="floppy_reset",
                          fd=18),
        ],
        setup=[SetupCall(proc="A", syscall="open", entry="floppy_open",
                         fd=18)],
        decoys=[DecoyCall(proc="C", syscall="read", entry="fuzz_noise")],
        kthreads=[KthreadNote(kind=ThreadKind.KWORKER,
                              func="floppy_schedule_bh",
                              source_proc="A", source_syscall="ioctl")],
        # B validates nothing is pending, A marks ready and queues the
        # bottom half, B clears the mark, the bottom half fires:
        # B0 | A1 A2 A3 | B1 | K1 K2 -> WARN.
        failing_schedule_spec=[
            ("B", "B1", 1, "A"),
            ("kworker/floppy_schedule_bh#3", "K1", 1, "B"),
        ],
        failing_start_order=["B", "A"],
        failure_location="K2",
        multi_variable=False,
        fixed_at_eval_time=False,
        expected_chain_pairs=[("B0", "A1"), ("B1", "K1")],
        description=(
            "The bottom half's expectation (fd_ready) is broken by a reset "
            "whose no-pending check raced ahead of the command's pending "
            "mark; the chain crosses into the kworker."),
    )
