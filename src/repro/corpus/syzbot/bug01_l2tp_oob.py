"""Syzkaller bug #1 — L2TP: slab-out-of-bounds read in pppol2tp_connect.

``connect()`` on a PPPoL2TP socket reads a session field at an offset
taken from the tunnel-layer header length; a concurrent tunnel
``setsockopt`` grows the header length and then reallocates the session
to match.  If connect samples the *new* length but the *old* session,
the field read runs off the end of the old slab object.

The session (PPP layer) and the tunnel configuration (L2TP layer) are
*loosely correlated* — most tunnel operations never touch sessions — so
MUVI-style correlation inference cannot relate them (section 2.2).
"""

from __future__ import annotations

from repro.corpus.spec import (
    Bug,
    DecoyCall,
    SetupCall,
    SyscallThread,
    emit_stat_updates,
    salt_counters,
)
from repro.kernel.builder import ProgramBuilder
from repro.kernel.failures import FailureKind
from repro.kernel.program import KernelImage

OLD_SESSION_SIZE = 16
NEW_SESSION_SIZE = 32
OLD_HDR = 8
NEW_HDR = 24


def build_image() -> KernelImage:
    b = ProgramBuilder()
    counters = salt_counters("pppol2tp", 20)

    with b.function("l2tp_session_create") as f:
        f.alloc("s", OLD_SESSION_SIZE, tag="l2tp_session", label="S1")
        f.store(f.g("session_ptr"), f.r("s"), label="S2")
        f.store(f.g("tunnel_hdr_len"), OLD_HDR, label="S3")

    # Thread A: connect() -> pppol2tp_connect().
    with b.function("pppol2tp_connect") as f:
        emit_stat_updates(f, counters, prefix="A")
        f.load("hdr", f.g("tunnel_hdr_len"), label="A1")
        f.load("s", f.g("session_ptr"), label="A2")
        f.brz("s", "A_ret", label="A2b")
        f.binop("fieldp", "add", f.r("s"), f.r("hdr"))
        f.load("field", f.at("fieldp"), label="A3")  # OOB on stale session
        f.ret(label="A_ret")

    # Thread B: setsockopt() on the tunnel: grow the header length, then
    # reallocate the session to the new layout.
    with b.function("l2tp_tunnel_setsockopt") as f:
        emit_stat_updates(f, counters, prefix="B")
        f.load("old", f.g("tunnel_hdr_len"), label="B1")
        f.store(f.g("tunnel_hdr_len"), f.i(NEW_HDR), label="B2")
        f.alloc("ns", NEW_SESSION_SIZE, tag="l2tp_session_new", label="B3")
        f.store(f.g("session_ptr"), f.r("ns"), label="B4")

    # Tunnel-layer noise that never touches sessions (loose correlation).
    with b.function("l2tp_tunnel_noise") as f:
        f.inc(f.g("tunnel_tx_stats"), 1, label="T1")
        f.load("x", f.g("tunnel_hdr_len"), label="T2")

    return b.build()


def make_bug() -> Bug:
    return Bug(
        bug_id="SYZ-01",
        title="L2TP: slab-out-of-bounds read in pppol2tp_connect",
        subsystem="L2TP",
        bug_type=FailureKind.KASAN_OOB,
        source="syzkaller",
        build_image=build_image,
        threads=[
            SyscallThread(proc="A", syscall="connect",
                          entry="pppol2tp_connect", fd=12),
            SyscallThread(proc="B", syscall="setsockopt",
                          entry="l2tp_tunnel_setsockopt", fd=12),
        ],
        setup=[SetupCall(proc="A", syscall="socket",
                         entry="l2tp_session_create", fd=12)],
        decoys=[
            DecoyCall(proc="C", syscall="sendmsg", entry="l2tp_tunnel_noise"),
            DecoyCall(proc="D", syscall="sendmsg", entry="l2tp_tunnel_noise"),
        ],
        # B grows the header length but is preempted before reallocating;
        # A samples new length + old session: B1 B2 | A1 A2 A3 -> OOB.
        failing_schedule_spec=[("B", "B3", 1, "A")],
        failing_start_order=["B", "A"],
        failure_location="A3",
        multi_variable=True,
        loosely_correlated=True,
        expected_chain_pairs=[("B2", "A1")],
        description=(
            "The tunnel header length (L2TP layer) and the session layout "
            "(PPP layer) must change together; sampling them across B's "
            "reconfiguration reads past the old slab object."),
    )
