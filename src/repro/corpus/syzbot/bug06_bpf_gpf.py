"""Syzkaller bug #6 — BPF: general protection fault in
dev_map_hash_update_elem.

The Figure 2 topology re-skinned in the BPF map layer: the map-update
path and the program-detach path communicate through two correlated
fields (``prog_active`` and ``prog_attached``), and the race-steered
control flow sends the detach path through a device-slot dereference
that the update path has not populated yet — a NULL dereference.

Multi-variable with a conjunction node in the chain, like
CVE-2017-15649 but ending in a GPF instead of a BUG_ON.
"""

from __future__ import annotations

from repro.corpus.spec import (
    Bug,
    DecoyCall,
    SetupCall,
    SyscallThread,
    emit_stat_updates,
    salt_counters,
)
from repro.kernel.builder import ProgramBuilder
from repro.kernel.failures import FailureKind
from repro.kernel.program import KernelImage


def build_image() -> KernelImage:
    b = ProgramBuilder()
    counters = salt_counters("bpfmap", 18)

    with b.function("bpf_map_create") as f:
        f.store(f.g("prog_active"), 1, label="S1")
        f.store(f.g("prog_attached"), 0, label="S2")
        f.store(f.g("dev_slot"), 0, label="S3")

    # Thread A: bpf(BPF_MAP_UPDATE_ELEM).
    with b.function("dev_map_update") as f:
        emit_stat_updates(f, counters, prefix="A")
        f.load("act", f.g("prog_active"), label="A1")
        f.brz("act", "A_ret", label="A1b")
        # Invariant (broken by the race): prog_active != 0 here.
        f.store(f.g("prog_attached"), 1, label="A2")
        f.alloc("dev", 16, tag="bpf_dev", label="A3")
        f.store(f.g("dev_slot"), f.r("dev"), label="A4")
        f.ret(label="A_ret")

    # Thread B: bpf(BPF_PROG_DETACH).
    with b.function("dev_map_detach") as f:
        emit_stat_updates(f, counters, prefix="B")
        f.load("att", f.g("prog_attached"), label="B1")
        f.brnz("att", "B_ret", label="B1b")
        f.store(f.g("prog_active"), 0, label="B2")
        f.load("att2", f.g("prog_attached"), label="B3")
        f.brz("att2", "B_ret", label="B3b")
        # Race-steered path: tear the device slot down.
        f.load("dev", f.g("dev_slot"), label="B4")
        f.load("ops", f.at("dev"), label="B5")  # GPF: slot still NULL
        f.ret(label="B_ret")

    with b.function("fuzz_noise") as f:
        f.inc(f.g("bpfmap_noise"), 1, label="N1")

    return b.build()


def make_bug() -> Bug:
    return Bug(
        bug_id="SYZ-06",
        title="BPF: general protection fault in dev_map_hash_update_elem",
        subsystem="BPF",
        bug_type=FailureKind.GPF,
        source="syzkaller",
        build_image=build_image,
        threads=[
            SyscallThread(proc="A", syscall="bpf", entry="dev_map_update",
                          fd=14),
            SyscallThread(proc="B", syscall="bpf", entry="dev_map_detach",
                          fd=14),
        ],
        setup=[SetupCall(proc="A", syscall="bpf", entry="bpf_map_create",
                         fd=14)],
        decoys=[DecoyCall(proc="C", syscall="bpf", entry="fuzz_noise")],
        # A1 | B1 B2 | A2 | B3 B4 B5 -> NULL dereference of dev_slot.
        failing_schedule_spec=[
            ("B", "B2", 1, "A"),
            ("A", "A4", 1, "B"),
        ],
        failing_start_order=["B", "A"],
        failure_location="B5",
        multi_variable=True,
        expected_chain_pairs=[("B1", "A2"), ("A1", "B2"), ("A2", "B3")],
        description=(
            "The conjunction (B1 => A2) ∧ (A1 => B2) steers the detach "
            "path into dereferencing an unpopulated device slot."),
    )
