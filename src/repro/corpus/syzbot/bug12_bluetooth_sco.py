"""Syzkaller bug #12 — Bluetooth: use-after-free in sco_sock_timeout
(fix: "Bluetooth: fix dangling sco_conn and use-after-free in
sco_sock_timeout").

``connect()`` creates the SCO connection, marks it active and arms the
timeout work; ``close()`` deactivates and frees the connection.  The
timeout work validates the active flag *before* close deactivates, gets
parked by the scheduler, and then dereferences the connection after
close freed it.  A three-context failure: two syscalls and the timeout
kworker.
"""

from __future__ import annotations

from repro.corpus.spec import (
    Bug,
    DecoyCall,
    KthreadNote,
    SetupCall,
    SyscallThread,
    emit_stat_updates,
    salt_counters,
)
from repro.kernel.builder import ProgramBuilder
from repro.kernel.failures import FailureKind
from repro.kernel.program import KernelImage
from repro.kernel.threads import ThreadKind


def build_image() -> KernelImage:
    b = ProgramBuilder()
    counters = salt_counters("sco", 22)

    with b.function("sco_sock_create") as f:
        f.store(f.g("sco_conn"), 0, label="S1")
        f.store(f.g("sco_active"), 0, label="S2")

    # Thread A: connect() -> sco_connect(): create, publish, arm timeout.
    with b.function("sco_connect") as f:
        emit_stat_updates(f, counters, prefix="A")
        f.alloc("conn", 24, tag="sco_conn_obj", label="A1")
        f.store(f.g("sco_conn"), f.r("conn"), label="A2")
        f.store(f.g("sco_active"), 1, label="A3")
        f.queue_work("sco_sock_timeout", arg="conn", label="A4")

    # Thread B: close() -> sco_sock_release(): deactivate and free.
    with b.function("sco_sock_release") as f:
        emit_stat_updates(f, counters, prefix="B")
        f.load("conn", f.g("sco_conn"), label="B1")
        f.brz("conn", "B_ret", label="B1b")
        f.store(f.g("sco_active"), 0, label="B2")
        f.free("conn", label="B3")
        f.ret(label="B_ret")

    # Kworker: the SCO timeout handler.
    with b.function("sco_sock_timeout") as f:
        f.load("act", f.g("sco_active"), label="K0")
        f.brz("act", "K_ret", label="K0b")
        f.load("state", f.at("a0"), label="K1")  # UAF once B freed it
        f.ret(label="K_ret")

    with b.function("fuzz_noise") as f:
        f.inc(f.g("sco_noise"), 1, label="N1")

    return b.build()


def make_bug() -> Bug:
    return Bug(
        bug_id="SYZ-12",
        title="Bluetooth: use-after-free read in sco_sock_timeout",
        subsystem="Bluetooth",
        bug_type=FailureKind.KASAN_UAF,
        source="syzkaller",
        build_image=build_image,
        threads=[
            SyscallThread(proc="A", syscall="connect", entry="sco_connect",
                          fd=19),
            SyscallThread(proc="B", syscall="close",
                          entry="sco_sock_release", fd=19),
        ],
        setup=[SetupCall(proc="A", syscall="socket",
                         entry="sco_sock_create", fd=19)],
        decoys=[DecoyCall(proc="C", syscall="getsockopt",
                          entry="fuzz_noise")],
        kthreads=[KthreadNote(kind=ThreadKind.KWORKER,
                              func="sco_sock_timeout",
                              source_proc="A", source_syscall="connect")],
        # The timeout validates the active flag, close deactivates and
        # frees, the timeout dereferences: A.. | K0 | B1 B2 B3 | K1 -> UAF.
        failing_schedule_spec=[
            ("B", "B1", 1, None),
            ("kworker/sco_sock_timeout#3", "K1", 1, "B"),
        ],
        failure_location="K1",
        multi_variable=False,
        fixed_at_eval_time=False,
        expected_chain_pairs=[("A2", "B1"), ("B3", "K1")],
        description=(
            "The timeout kworker's liveness check races close's "
            "deactivation; the fix holds the sco_conn lock across the "
            "timeout (three execution contexts in the chain)."),
    )
