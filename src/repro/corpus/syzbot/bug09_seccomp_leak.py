"""Syzkaller bug #9 — seccomp: memory leak in do_seccomp.

Unfixed at evaluation time (fix: "seccomp: don't leave dangling filter
references").  Two concurrent ``seccomp(SET_MODE_FILTER)`` calls both
pass the no-filter-installed check; both allocate and install, and the
first installed filter is silently overwritten — allocated, unreachable,
never freed.  The failure is detected by the leak checker at the end of
the execution (the kmemleak report syzkaller attached).

Loosely correlated: the ``filter_installed`` flag and the filter objects
are touched together only on the install path; dozens of other seccomp
queries read the flag alone.
"""

from __future__ import annotations

from repro.corpus.spec import (
    Bug,
    DecoyCall,
    SetupCall,
    SyscallThread,
    emit_stat_updates,
    salt_counters,
)
from repro.kernel.builder import ProgramBuilder
from repro.kernel.failures import FailureKind
from repro.kernel.program import KernelImage


def build_image() -> KernelImage:
    b = ProgramBuilder()
    counters = salt_counters("seccomp", 10)

    with b.function("prctl_setup") as f:
        f.store(f.g("filter_installed"), 0, label="S1")

    # Thread A: seccomp(SET_MODE_FILTER) — buggy path: no free on the
    # overwrite case.
    with b.function("do_seccomp_a") as f:
        emit_stat_updates(f, counters, prefix="A")
        f.alloc("filt", 16, tag="seccomp_filter_a", leak_tracked=True,
                label="A1")
        f.load("inst", f.g("filter_installed"), label="A2")
        f.brnz("inst", "A_err", label="A2b")
        f.store(f.g("task_filter"), f.r("filt"), label="A3")
        f.store(f.g("filter_installed"), 1, label="A4")
        f.ret(label="A_ok")
        f.free("filt", label="A_err")  # correct error path frees

    # Thread B: the same syscall from the sibling thread.
    with b.function("do_seccomp_b") as f:
        emit_stat_updates(f, counters, prefix="B")
        f.alloc("filt", 16, tag="seccomp_filter_b", leak_tracked=True,
                label="B1")
        f.load("inst", f.g("filter_installed"), label="B2")
        f.brnz("inst", "B_err", label="B2b")
        f.store(f.g("task_filter"), f.r("filt"), label="B3")
        f.store(f.g("filter_installed"), 1, label="B4")
        f.ret(label="B_ok")
        f.free("filt", label="B_err")

    # Flag-only readers (the loose-correlation evidence).
    with b.function("seccomp_query") as f:
        f.load("x", f.g("filter_installed"), label="Q1")
        f.inc(f.g("seccomp_queries"), 1, label="Q2")

    return b.build()


def make_bug() -> Bug:
    return Bug(
        bug_id="SYZ-09",
        title="seccomp: memory leak in do_seccomp",
        subsystem="Seccomp",
        bug_type=FailureKind.MEMORY_LEAK,
        source="syzkaller",
        build_image=build_image,
        threads=[
            SyscallThread(proc="A", syscall="seccomp", entry="do_seccomp_a"),
            SyscallThread(proc="B", syscall="seccomp", entry="do_seccomp_b"),
        ],
        setup=[SetupCall(proc="A", syscall="prctl", entry="prctl_setup")],
        decoys=[
            DecoyCall(proc="C", syscall="seccomp", entry="seccomp_query"),
            DecoyCall(proc="D", syscall="seccomp", entry="seccomp_query"),
            DecoyCall(proc="E", syscall="prctl", entry="seccomp_query"),
            DecoyCall(proc="F", syscall="prctl", entry="seccomp_query"),
            DecoyCall(proc="G", syscall="seccomp", entry="seccomp_query"),
            DecoyCall(proc="H", syscall="prctl", entry="seccomp_query"),
            DecoyCall(proc="I", syscall="seccomp", entry="seccomp_query"),
            DecoyCall(proc="J", syscall="prctl", entry="seccomp_query"),
        ],
        # Both pass the installed check; B installs fully, then A's install
        # overwrites B's filter: A1 A2 | B1..B4 | A3 A4 -> B's filter leaks.
        failing_schedule_spec=[("A", "A3", 1, "B")],
        failure_location="B1",
        multi_variable=True,
        loosely_correlated=True,
        fixed_at_eval_time=False,
        expected_chain_pairs=[("A2", "B4"), ("B3", "A3")],
        description=(
            "A double-install race: the overwritten filter is allocated "
            "but unreachable, reported by the leak detector at the end of "
            "the run rather than at a faulting instruction."),
    )
