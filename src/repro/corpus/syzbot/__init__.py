"""The 12 Syzkaller-reported bugs of Table 3.

Bold entries in the paper's table (#7, #8, #9 and the three bugs the
authors reported) were unfixed at evaluation time; their models carry
``fixed_at_eval_time=False``.
"""

from repro.corpus.syzbot.bug01_l2tp_oob import make_bug as bug01
from repro.corpus.syzbot.bug02_packet_assert import make_bug as bug02
from repro.corpus.syzbot.bug03_l2tp_uaf import make_bug as bug03
from repro.corpus.syzbot.bug04_kvm_irqfd import make_bug as bug04
from repro.corpus.syzbot.bug05_rxrpc_uaf import make_bug as bug05
from repro.corpus.syzbot.bug06_bpf_gpf import make_bug as bug06
from repro.corpus.syzbot.bug07_blockdev_uaf import make_bug as bug07
from repro.corpus.syzbot.bug08_can_j1939 import make_bug as bug08
from repro.corpus.syzbot.bug09_seccomp_leak import make_bug as bug09
from repro.corpus.syzbot.bug10_md_raid import make_bug as bug10
from repro.corpus.syzbot.bug11_floppy import make_bug as bug11
from repro.corpus.syzbot.bug12_bluetooth_sco import make_bug as bug12

SYZBOT_FACTORIES = [bug01, bug02, bug03, bug04, bug05, bug06,
                    bug07, bug08, bug09, bug10, bug11, bug12]

__all__ = ["SYZBOT_FACTORIES"]
