"""Syzkaller bug #10 — md: assertion raised by concurrent md_ioctl()s
(fix: "md: fix a warning caused by a race between concurrent
md_ioctl()s").

Two ioctls drive the array's state word without the reconfig mutex: one
marks the array busy, does its work and clears the state; the other marks
it busy and then asserts the mark is still there.  The clear from the
first ioctl lands between the second's mark and check — the WARN syzbot
kept hitting.  Single-variable (``md_state``).
"""

from __future__ import annotations

from repro.corpus.spec import (
    Bug,
    DecoyCall,
    SetupCall,
    SyscallThread,
    emit_stat_updates,
    salt_counters,
)
from repro.kernel.builder import ProgramBuilder
from repro.kernel.failures import FailureKind
from repro.kernel.program import KernelImage


def build_image() -> KernelImage:
    b = ProgramBuilder()
    counters = salt_counters("mdraid", 32)

    with b.function("md_open") as f:
        f.store(f.g("md_state"), 0, label="S1")

    # Thread A: ioctl(RAID_VERSION-ish): busy -> work -> idle.
    with b.function("md_ioctl_worker") as f:
        emit_stat_updates(f, counters, prefix="A")
        f.store(f.g("md_state"), 1, label="A1")
        f.inc(f.g("md_ops"), 1, label="A2")
        f.store(f.g("md_state"), 0, label="A3")

    # Thread B: ioctl(SET_ARRAY_INFO-ish): busy -> assert still busy.
    with b.function("md_ioctl_checker") as f:
        emit_stat_updates(f, counters, prefix="B")
        f.store(f.g("md_state"), 1, label="B1")
        f.load("s", f.g("md_state"), label="B2")
        f.binop("lost", "eq", f.r("s"), f.i(0))
        f.bug_on("lost", "md: state mark lost while holding the array",
                 label="B3")

    with b.function("fuzz_noise") as f:
        f.inc(f.g("mdraid_noise"), 1, label="N1")

    return b.build()


def make_bug() -> Bug:
    return Bug(
        bug_id="SYZ-10",
        title="md: assertion violation under concurrent md_ioctl()s",
        subsystem="Software RAID",
        bug_type=FailureKind.ASSERTION,
        source="syzkaller",
        build_image=build_image,
        threads=[
            SyscallThread(proc="A", syscall="ioctl", entry="md_ioctl_worker",
                          fd=17),
            SyscallThread(proc="B", syscall="ioctl", entry="md_ioctl_checker",
                          fd=17),
        ],
        setup=[SetupCall(proc="A", syscall="open", entry="md_open", fd=17)],
        decoys=[DecoyCall(proc="C", syscall="ioctl", entry="fuzz_noise")],
        # B marks the array busy, A's busy->idle cycle slips between B's
        # mark and check: B1 | A1 A2 A3 | B2 B3 -> BUG_ON.
        failing_schedule_spec=[("B", "B2", 1, "A")],
        failing_start_order=["B", "A"],
        failure_location="B3",
        multi_variable=False,
        fixed_at_eval_time=False,
        expected_chain_pairs=[("B1", "A3"), ("A3", "B2")],
        description=(
            "Every race is on the single md_state word; the fix serializes "
            "the ioctls on the reconfig mutex."),
    )
