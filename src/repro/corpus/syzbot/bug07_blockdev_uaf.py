"""Syzkaller bug #7 — block: use-after-free read in delete_partition.

One of the unfixed bugs AITIA diagnosed; developers submitted the fix
("block: fix locking in bdev_del_partition") before the authors reported.
``ioctl(BLKPG_DEL_PARTITION)`` pops the partition and frees it while a
concurrent ``open()`` of the partition device is still dereferencing it.
Single-variable: every race is on ``part_ptr`` or the object behind it.

Its history carries an innocuous concurrent decoy group closer to the
failure, so the first slice AITIA tries cannot reproduce and it must move
to the next (section 4.2).
"""

from __future__ import annotations

from repro.corpus.spec import (
    Bug,
    DecoyCall,
    SetupCall,
    SyscallThread,
    emit_stat_updates,
    salt_counters,
)
from repro.kernel.builder import ProgramBuilder
from repro.kernel.failures import FailureKind
from repro.kernel.program import KernelImage


def build_image() -> KernelImage:
    b = ProgramBuilder()
    counters = salt_counters("blkdev", 28)

    with b.function("blkdev_scan") as f:
        f.alloc("part", 24, tag="hd_struct", label="S1")
        f.store(f.g("part_ptr"), f.r("part"), label="S2")

    # Thread A: ioctl(BLKPG_DEL_PARTITION) -> delete_partition().
    with b.function("delete_partition") as f:
        emit_stat_updates(f, counters, prefix="A")
        f.load("p", f.g("part_ptr"), label="A1")
        f.brz("p", "A_ret", label="A1b")
        f.store(f.g("part_ptr"), 0, label="A2")
        f.free("p", label="A3")
        f.ret(label="A_ret")

    # Thread B: open("/dev/sda1") -> blkdev_get() -> disk_get_part().
    with b.function("blkdev_get") as f:
        emit_stat_updates(f, counters, prefix="B")
        f.load("p", f.g("part_ptr"), label="B1")
        f.brz("p", "B_ret", label="B1b")
        f.load("nr", f.at("p"), label="B2")  # UAF read once A freed it
        f.ret(label="B_ret")

    with b.function("fuzz_noise") as f:
        f.inc(f.g("blkdev_noise"), 1, label="N1")

    return b.build()


def make_bug() -> Bug:
    return Bug(
        bug_id="SYZ-07",
        title="block: use-after-free read in delete_partition",
        subsystem="Block device",
        bug_type=FailureKind.KASAN_UAF,
        source="syzkaller",
        build_image=build_image,
        threads=[
            SyscallThread(proc="A", syscall="ioctl",
                          entry="delete_partition", fd=15),
            SyscallThread(proc="B", syscall="open", entry="blkdev_get"),
        ],
        setup=[SetupCall(proc="A", syscall="open", entry="blkdev_scan",
                         fd=15)],
        decoys=[
            DecoyCall(proc="C", syscall="read", entry="fuzz_noise"),
            # Innocuous concurrent pair closest to the failure: the first
            # slice AITIA tries, which LIFS cannot crash.
            DecoyCall(proc="D", syscall="lseek", entry="fuzz_noise",
                      concurrent_group=100),
            DecoyCall(proc="E", syscall="lseek", entry="fuzz_noise",
                      concurrent_group=100),
        ],
        # B validates the partition, A deletes and frees it, B reads it:
        # B1 | A1 A2 A3 | B2 -> UAF read.
        failing_schedule_spec=[("B", "B2", 1, "A")],
        failing_start_order=["B", "A"],
        failure_location="B2",
        multi_variable=False,
        fixed_at_eval_time=False,
        expected_chain_pairs=[("B1", "A2"), ("A3", "B2")],
        description=(
            "Check-then-use on part_ptr against delete's clear-and-free; "
            "the fix serializes deletion behind the bdev mutex."),
    )
