"""Syzkaller bug #3 — L2TP: use-after-free read in pppol2tp_connect.

``connect()`` looks the session up and takes its tunnel reference in two
steps; a concurrent ``close()`` of the tunnel drops the last reference
and frees the session between them.  Multi-variable: the session pointer
and the tunnel's ``closing`` flag must be observed consistently.
"""

from __future__ import annotations

from repro.corpus.spec import (
    Bug,
    DecoyCall,
    SetupCall,
    SyscallThread,
    emit_stat_updates,
    salt_counters,
)
from repro.kernel.builder import ProgramBuilder
from repro.kernel.failures import FailureKind
from repro.kernel.program import KernelImage


def build_image() -> KernelImage:
    b = ProgramBuilder()
    counters = salt_counters("l2tp_sess", 16)

    with b.function("pppol2tp_open") as f:
        f.alloc("s", 16, tag="pppol2tp_session", label="S1")
        f.store(f.g("ppp_session"), f.r("s"), label="S2")
        f.store(f.g("tunnel_closing"), 0, label="S3")

    # Thread A: connect() -> pppol2tp_connect().
    with b.function("pppol2tp_connect2") as f:
        emit_stat_updates(f, counters, prefix="A")
        f.load("closing", f.g("tunnel_closing"), label="A1")
        f.brnz("closing", "A_ret", label="A1b")
        f.load("s", f.g("ppp_session"), label="A2")
        f.load("ref", f.at("s"), label="A3")  # UAF read after B frees
        f.ret(label="A_ret")

    # Thread B: close() -> l2tp_tunnel_close(): mark closing, free session.
    with b.function("l2tp_tunnel_close") as f:
        emit_stat_updates(f, counters, prefix="B")
        f.store(f.g("tunnel_closing"), 1, label="B1")
        f.load("s", f.g("ppp_session"), label="B2")
        f.free("s", label="B3")

    with b.function("fuzz_noise") as f:
        f.inc(f.g("l2tp_sess_noise"), 1, label="N1")

    return b.build()


def make_bug() -> Bug:
    return Bug(
        bug_id="SYZ-03",
        title="L2TP: use-after-free read in pppol2tp_connect",
        subsystem="L2TP",
        bug_type=FailureKind.KASAN_UAF,
        source="syzkaller",
        build_image=build_image,
        threads=[
            SyscallThread(proc="A", syscall="connect",
                          entry="pppol2tp_connect2", fd=12),
            SyscallThread(proc="B", syscall="close",
                          entry="l2tp_tunnel_close", fd=12),
        ],
        setup=[SetupCall(proc="A", syscall="socket", entry="pppol2tp_open",
                         fd=12)],
        decoys=[DecoyCall(proc="C", syscall="getsockname",
                          entry="fuzz_noise")],
        # A passes the closing check and loads the session, B frees it,
        # A reads through the stale pointer: A1 A2 | B1 B2 B3 | A3 -> UAF.
        failing_schedule_spec=[("A", "A3", 1, "B")],
        failure_location="A3",
        multi_variable=True,
        expected_chain_pairs=[("A1", "B1"), ("B3", "A3")],
        description=(
            "The closing flag and the session pointer are correlated; "
            "connect's check races ahead of close's flag write and then "
            "dereferences the freed session."),
    )
