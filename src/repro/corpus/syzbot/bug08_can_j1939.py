"""Syzkaller bug #8 — CAN j1939: refcount warning / use-after-free on
``rx_kref`` (fix: "can: j1939: fix uaf for rx_kref of j1939_priv").

Unfixed at evaluation time; the deepest chain of Table 3 (5 races, 2
interleavings, the longest LIFS search).  ``bind()`` publishes its
binding flag mid-way through attaching to the device's private state;
``release()`` observes the flags inconsistently, tears the private state
down through a race-steered path, and the binder's final attach write
lands in freed memory.
"""

from __future__ import annotations

from repro.corpus.spec import (
    Bug,
    DecoyCall,
    SetupCall,
    SyscallThread,
    emit_stat_updates,
    salt_counters,
)
from repro.kernel.builder import ProgramBuilder
from repro.kernel.failures import FailureKind
from repro.kernel.program import KernelImage


def build_image() -> KernelImage:
    b = ProgramBuilder()
    counters = salt_counters("j1939", 14)

    with b.function("j1939_netdev_start") as f:
        f.alloc("priv", 24, tag="j1939_priv", label="S1")
        f.store(f.g("j1939_priv_ptr"), f.r("priv"), label="S2")
        f.store(f.g("j1939_active"), 1, label="S3")
        f.store(f.g("j1939_binding"), 0, label="S4")

    # Thread A: bind() -> j1939_sk_bind().
    with b.function("j1939_sk_bind") as f:
        emit_stat_updates(f, counters, prefix="A")
        f.load("act", f.g("j1939_active"), label="A1")
        f.brz("act", "A_ret", label="A1b")
        f.store(f.g("j1939_binding"), 1, label="A2")
        f.load("p", f.g("j1939_priv_ptr"), label="A3")
        f.store(f.at("p", 8), 1, label="A4")  # attach: UAF once B freed it
        f.ret(label="A_ret")

    # Thread B: close() -> j1939_sk_release().
    with b.function("j1939_sk_release") as f:
        emit_stat_updates(f, counters, prefix="B")
        f.load("bd", f.g("j1939_binding"), label="B1")
        f.brnz("bd", "B_ret", label="B1b")
        f.store(f.g("j1939_active"), 0, label="B2")
        f.load("bd2", f.g("j1939_binding"), label="B3")
        f.brz("bd2", "B_ret", label="B3b")
        # Race-steered teardown: a binder appeared after we went inactive.
        f.load("p", f.g("j1939_priv_ptr"), label="B4")
        f.free("p", label="B5")
        f.ret(label="B_ret")

    with b.function("fuzz_noise") as f:
        f.inc(f.g("j1939_noise"), 1, label="N1")

    return b.build()


def make_bug() -> Bug:
    return Bug(
        bug_id="SYZ-08",
        title="CAN j1939: use-after-free on rx_kref teardown",
        subsystem="CAN",
        bug_type=FailureKind.KASAN_UAF,
        source="syzkaller",
        build_image=build_image,
        threads=[
            SyscallThread(proc="A", syscall="bind", entry="j1939_sk_bind",
                          fd=16),
            SyscallThread(proc="B", syscall="close",
                          entry="j1939_sk_release", fd=16),
        ],
        setup=[SetupCall(proc="A", syscall="socket",
                         entry="j1939_netdev_start", fd=16)],
        decoys=[DecoyCall(proc="C", syscall="sendmsg", entry="fuzz_noise")],
        # B1 | A1 A2 A3 | B2 B3 B4 B5 | A4 -> UAF write (two preemptions,
        # matching Table 3's interleaving count for this bug).
        failing_schedule_spec=[
            ("B", "B2", 1, "A"),
            ("A", "A4", 1, "B"),
        ],
        failing_start_order=["B", "A"],
        failure_location="A4",
        multi_variable=True,
        fixed_at_eval_time=False,
        expected_chain_pairs=[("A1", "B2"), ("A2", "B3"), ("B5", "A4")],
        description=(
            "Three correlated pieces of state (active flag, binding flag, "
            "priv object) interleave across five races; the developers' "
            "fix extends the j1939 priv lock over both paths."),
    )
