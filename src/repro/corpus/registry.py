"""Registry of every corpus bug.

Bugs are constructed lazily and cached: building an image is cheap, but
benchmarks iterate the corpus repeatedly.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.corpus.spec import Bug

_factories: Optional[Dict[str, Callable[[], Bug]]] = None
_cache: Dict[str, Bug] = {}


def load() -> Dict[str, Callable[[], Bug]]:
    """Load (once) and return the bug-id → factory map.

    The public warm-up entry point: callers that want the whole corpus
    materialized before timing or forking (the CLI, the triage service,
    benchmark fixtures) call this instead of poking the private cache.
    """
    return _load_factories()


def _load_factories() -> Dict[str, Callable[[], Bug]]:
    global _factories
    if _factories is not None:
        return _factories
    # Imported here so a syntax error in one corpus module surfaces at
    # first registry use rather than at package import.
    from repro.corpus import extensions, figures
    from repro.corpus.cves import CVE_FACTORIES
    from repro.corpus.syzbot import SYZBOT_FACTORIES

    factories: Dict[str, Callable[[], Bug]] = {}
    for factory in ([figures.fig1_bug, figures.fig5_bug, figures.fig7_bug]
                    + list(CVE_FACTORIES) + list(SYZBOT_FACTORIES)
                    + [extensions.ext_irq_bug,
                       extensions.ext_rcu_bug,
                       extensions.ext_three_syscall_bug,
                       extensions.ext_lockfree_bug]):
        probe = factory()
        if probe.bug_id in factories:
            raise ValueError(f"duplicate corpus bug id {probe.bug_id!r}")
        factories[probe.bug_id] = factory
        _cache[probe.bug_id] = probe
    _factories = factories
    return factories


def get_bug(bug_id: str) -> Bug:
    """Look one bug up by id (e.g. ``"CVE-2017-15649"`` or ``"SYZ-04"``)."""
    factories = _load_factories()
    if bug_id not in factories:
        raise KeyError(
            f"unknown bug {bug_id!r}; known: {', '.join(sorted(factories))}")
    if bug_id not in _cache:
        _cache[bug_id] = factories[bug_id]()
    return _cache[bug_id]


def all_bugs() -> List[Bug]:
    """The 22 evaluated bugs (CVE + syzkaller), in table order."""
    return cve_bugs() + syzkaller_bugs()


def cve_bugs() -> List[Bug]:
    """The 10 CVE bugs of Table 2, in table order."""
    _load_factories()
    return [bug for bug in _cache.values() if bug.source == "cve"]


def syzkaller_bugs() -> List[Bug]:
    """The 12 Syzkaller bugs of Table 3, in table order."""
    _load_factories()
    return [bug for bug in _cache.values() if bug.source == "syzkaller"]


def figure_examples() -> List[Bug]:
    """The figure examples (Figures 1, 5, 7)."""
    _load_factories()
    return [bug for bug in _cache.values() if bug.source == "figure"]


def extension_bugs() -> List[Bug]:
    """Bugs beyond the paper's evaluation (e.g. the IRQ-context
    extension of section 4.6's future work)."""
    _load_factories()
    return [bug for bug in _cache.values() if bug.source == "extension"]
