"""Simulated kernel substrate.

This package stands in for the Linux kernel running under the AITIA
hypervisor.  It provides an instruction-level virtual machine with a
sequentially consistent shared memory, a heap allocator with KASAN-style
poisoning, locks, deferred work (``queue_work``) and RCU callbacks, and a
failure taxonomy matching the bugs evaluated in the paper (use-after-free,
out-of-bounds, general protection fault, assertion violation, memory leak,
deadlock).

The machine executes exactly one thread at a time and only when an external
scheduler tells it to, which is the property AITIA's hypervisor obtains on
real hardware through breakpoints and trampolines (paper section 4.4).
"""

from repro.kernel.access import AccessKind, MemoryAccess
from repro.kernel.builder import FunctionBuilder, ProgramBuilder
from repro.kernel.failures import Failure, FailureKind, KernelFault
from repro.kernel.instructions import (
    Deref,
    Global,
    Imm,
    Instruction,
    Op,
    Reg,
)
from repro.kernel.machine import KernelMachine, StepOutcome, ThreadContext
from repro.kernel.memory import HeapObject, Memory
from repro.kernel.program import Function, KernelImage
from repro.kernel.threads import ThreadKind, ThreadState

__all__ = [
    "AccessKind",
    "Deref",
    "Failure",
    "FailureKind",
    "Function",
    "FunctionBuilder",
    "Global",
    "HeapObject",
    "Imm",
    "Instruction",
    "KernelFault",
    "KernelImage",
    "KernelMachine",
    "Memory",
    "MemoryAccess",
    "Op",
    "ProgramBuilder",
    "Reg",
    "StepOutcome",
    "ThreadContext",
    "ThreadKind",
    "ThreadState",
]
