"""Shared memory of the simulated kernel.

The address space is split into a global segment (named cells, one word
each) and a heap segment.  The heap allocator never reuses addresses and
keeps freed objects poisoned in a quarantine, so use-after-free and
out-of-bounds accesses are always detectable — the same property KASAN's
redzones and quarantine give the instrumented kernels used in the paper's
evaluation.

Three properties make the hot path cheap:

* the allocator is monotonic, so object bases form a sorted sequence and
  ``object_at`` is a single :func:`bisect.bisect_right` probe instead of a
  scan over every object ever allocated;
* every mutation is journalled in an undo log, so :meth:`Memory.snapshot`
  emits a :class:`MemoryImage` — a structurally shared generation holding
  only the cells dirtied since the previous capture — and
  :meth:`Memory.restore` replays undo deltas instead of copying dicts;
* generation counters stamp the cells / objects / globals components, so
  the canonical state key (used by continuation-cache convergence checks)
  is re-sorted only for the components that actually changed.
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Dict, Optional, Set, Tuple

from repro.kernel.failures import FailureKind, KernelFault

GLOBAL_BASE = 0x1_0000
HEAP_BASE = 0x10_0000
#: Gap between heap objects; accesses landing in it are out-of-bounds.
REDZONE = 16

#: Undo-log marker: the address had no materialized cell before the write.
_ABSENT = object()

#: Image chains longer than this are collapsed into a fresh flat root, so
#: pathological capture sequences cannot degrade restore into a long walk.
_MAX_CHAIN_DEPTH = 128


class ObjectState(enum.Enum):
    ALLOCATED = "allocated"
    FREED = "freed"


@dataclass
class HeapObject:
    """Metadata for one heap allocation.

    Instances are treated as immutable once published: ``free`` replaces the
    object with a FREED copy instead of mutating it in place, so snapshots
    may share instances without copying.
    """

    base: int
    size: int
    tag: str
    state: ObjectState = ObjectState.ALLOCATED
    leak_tracked: bool = False
    alloc_site: str = ""
    free_site: str = ""

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size

    def in_redzone(self, addr: int) -> bool:
        return self.base + self.size <= addr < self.base + self.size + REDZONE


def _canon_cells(cells: Dict[int, Any]) -> Tuple:
    # Heap cells holding 0 are canonically identical to absent slots (loads
    # of either read 0), so they are dropped from the key; otherwise a pure
    # load that materialized a slot would split semantically equal states.
    return tuple(sorted(
        (a, v) for a, v in cells.items() if a < HEAP_BASE or v != 0))


def _canon_globals(globals_map: Dict[str, int]) -> Tuple:
    return tuple(sorted(globals_map.items()))


def _canon_objects(objects: Dict[int, HeapObject]) -> Tuple:
    return tuple(
        (base, o.size, o.tag, o.state.value, o.leak_tracked,
         o.alloc_site, o.free_site)
        for base, o in sorted(objects.items()))


def _image_from_flat(cells, objects, globals_map, next_global, next_heap):
    """Pickle reconstructor: a wire'd image always rebuilds as a flat root."""
    return MemoryImage(None, cells, objects, globals_map, {}, {},
                       next_global, next_heap)


class MemoryImage:
    """One structurally shared memory generation.

    A non-root image stores only the *overlay* (addresses dirtied since the
    parent image, with their new values) and the matching *undo* delta (their
    prior values); the full state is the chain of overlays applied root to
    leaf.  Restoring the live :class:`Memory` to an image replays undo
    entries back to the common ancestor and overlays forward — O(dirty), not
    O(machine).

    The legacy mapping interface (``image["cells"]`` …) is kept for
    compatibility with consumers of the old full-copy snapshot dicts.
    """

    __slots__ = ("parent", "cells", "objects", "globals_added",
                 "cells_undo", "objects_undo", "next_global", "next_heap",
                 "depth", "_mat", "_key_parts")

    def __init__(self, parent: Optional["MemoryImage"],
                 cells: Dict[int, Any], objects: Dict[int, HeapObject],
                 globals_added: Dict[str, int],
                 cells_undo: Dict[int, Any],
                 objects_undo: Dict[int, Any],
                 next_global: int, next_heap: int) -> None:
        self.parent = parent
        self.cells = cells
        self.objects = objects
        self.globals_added = globals_added
        self.cells_undo = cells_undo
        self.objects_undo = objects_undo
        self.next_global = next_global
        self.next_heap = next_heap
        self.depth = 0 if parent is None else parent.depth + 1
        self._mat: Optional[Tuple[dict, dict, dict]] = None
        self._key_parts: Optional[Tuple] = None

    # -- full-state materialization (cold paths only) -------------------
    def _materialized(self) -> Tuple[dict, dict, dict]:
        if self._mat is None:
            chain = []
            node = self
            while node._mat is None and node.parent is not None:
                chain.append(node)
                node = node.parent
            if node._mat is None:  # the root: overlays *are* the state
                node._mat = (node.cells, node.objects, node.globals_added)
            cells, objects, globs = node._mat
            if chain:
                cells, objects, globs = dict(cells), dict(objects), dict(globs)
                for img in reversed(chain):
                    cells.update(img.cells)
                    objects.update(img.objects)
                    globs.update(img.globals_added)
            self._mat = (cells, objects, globs)
        return self._mat

    def state_key_parts(self) -> Tuple:
        if self._key_parts is None:
            cells, objects, globs = self._materialized()
            self._key_parts = (_canon_cells(cells), _canon_globals(globs),
                               _canon_objects(objects),
                               self.next_global, self.next_heap)
        return self._key_parts

    # -- legacy snapshot-dict compatibility ------------------------------
    def __getitem__(self, key: str):
        if key == "next_global":
            return self.next_global
        if key == "next_heap":
            return self.next_heap
        cells, objects, globs = self._materialized()
        if key == "cells":
            return cells
        if key == "objects":
            return objects
        if key == "globals":
            return globs
        raise KeyError(key)

    def __reduce__(self):
        # Wire format: a self-contained flat state.  Keeps payloads
        # independent of chain shape and avoids deep-recursion pickling.
        cells, objects, globs = self._materialized()
        return (_image_from_flat, (cells, objects, globs,
                                   self.next_global, self.next_heap))


class Memory:
    """The sequentially consistent shared memory.

    Values are plain Python integers (pointers are addresses) except for
    list cells, which hold tuples and are manipulated through the ``LIST_*``
    instructions as single read-modify-write accesses.
    """

    def __init__(self, globals_init: Optional[Dict[str, Any]] = None) -> None:
        self._cells: Dict[int, Any] = {}
        self._globals: Dict[str, int] = {}
        self._global_names: Dict[int, str] = {}
        self._objects: Dict[int, HeapObject] = {}
        self._bases: list = []  # sorted object bases (allocator is monotonic)
        self._freed_count = 0
        self._next_global = GLOBAL_BASE
        self._next_heap = HEAP_BASE
        # Dirty journal since the last capture (see MemoryImage).
        self._parent: Optional[MemoryImage] = None
        self._cells_undo: Dict[int, Any] = {}
        self._objects_undo: Dict[int, Any] = {}
        self._globals_undo: Set[str] = set()
        # Generation counters + per-component canonical-key caches.
        self._cells_gen = 0
        self._objects_gen = 0
        self._globals_gen = 0
        self._ck: Tuple = ()
        self._ck_gen = -1
        self._gk: Tuple = ()
        self._gk_gen = -1
        self._ok: Tuple = ()
        self._ok_gen = -1
        for name, value in (globals_init or {}).items():
            self.define_global(name, value)

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def define_global(self, name: str, value: Any = 0) -> int:
        """Allocate a named global cell; idempotent re-definition updates the
        initial value."""
        if name in self._globals:
            addr = self._globals[name]
        else:
            addr = self._next_global
            self._next_global += 8
            self._globals[name] = addr
            self._global_names[addr] = name
            self._globals_undo.add(name)
            self._globals_gen += 1
        self._write(addr, value)
        return addr

    def global_addr(self, name: str) -> int:
        try:
            return self._globals[name]
        except KeyError:
            raise KeyError(f"undefined global {name!r}") from None

    @property
    def global_names(self) -> Dict[str, int]:
        return dict(self._globals)

    def symbolize(self, addr: int) -> str:
        """Best-effort symbolic name for a data address (for reports)."""
        name = self._global_names.get(addr)
        if name is not None:
            return name
        obj = self.object_at(addr, include_freed=True)
        if obj is not None:
            offset = addr - obj.base
            return f"{obj.tag}+{offset}" if offset else obj.tag
        return f"0x{addr:x}"

    # ------------------------------------------------------------------
    # Heap
    # ------------------------------------------------------------------
    def alloc(self, size: int, tag: str, site: str = "",
              leak_tracked: bool = False) -> int:
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        base = self._next_heap
        self._next_heap = base + size + REDZONE
        obj = HeapObject(base=base, size=size, tag=tag,
                         leak_tracked=leak_tracked, alloc_site=site)
        self._set_object(base, obj)
        self._bases.append(base)  # monotonic allocator: stays sorted
        # Slots are lazily materialized: an unwritten in-object slot reads
        # as 0 without ever touching the cells dict.
        return base

    def free(self, addr: int, site: str = "") -> HeapObject:
        obj = self.object_at(addr, include_freed=True)
        if obj is None:
            raise KernelFault(FailureKind.GPF,
                              f"free of non-heap address 0x{addr:x}",
                              data_addr=addr)
        if not obj.contains(addr):
            # The pointer lands in the redzone past the object: freeing it
            # must not silently release the neighbour.
            raise KernelFault(
                FailureKind.GPF,
                f"free of invalid pointer 0x{addr:x} "
                f"(redzone of {obj.tag})",
                data_addr=addr, object_tag=obj.tag)
        if obj.state is ObjectState.FREED:
            raise KernelFault(FailureKind.DOUBLE_FREE,
                              f"double free of {obj.tag}",
                              data_addr=addr, object_tag=obj.tag)
        # Copy-on-free: shared snapshot images may hold the old instance.
        freed = HeapObject(base=obj.base, size=obj.size, tag=obj.tag,
                           state=ObjectState.FREED,
                           leak_tracked=obj.leak_tracked,
                           alloc_site=obj.alloc_site, free_site=site)
        self._set_object(obj.base, freed)
        self._freed_count += 1
        return freed

    def object_at(self, addr: int, include_freed: bool = False) -> Optional[HeapObject]:
        """Find the heap object containing ``addr`` (or whose redzone does).

        Objects plus their redzones tile the heap segment without overlap,
        so the candidate is uniquely the object with the greatest base not
        above ``addr`` — one bisect probe."""
        i = bisect_right(self._bases, addr) - 1
        if i < 0:
            return None
        obj = self._objects[self._bases[i]]
        if obj.contains(addr) or obj.in_redzone(addr):
            if obj.state is ObjectState.FREED and not include_freed:
                return None
            return obj
        return None

    def live_leaked_objects(self) -> list:
        """Leak-tracked objects that are still allocated but no longer
        referenced from anywhere in memory — the kmemleak criterion: an
        allocated block whose address appears in no live cell is
        unreachable and therefore leaked."""
        referenced = set()
        for value in self._cells.values():
            if isinstance(value, int):
                referenced.add(value)
            elif isinstance(value, tuple):
                referenced.update(v for v in value if isinstance(v, int))
        return [
            obj for obj in self._objects.values()
            if obj.leak_tracked and obj.state is ObjectState.ALLOCATED
            and obj.base not in referenced
        ]

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def _check(self, addr: int, writing: bool) -> bool:
        """Validate an access; returns whether a cell is materialized at
        ``addr`` (an absent in-object slot is valid and reads as 0)."""
        if addr == 0:
            raise KernelFault(FailureKind.GPF, "NULL pointer dereference",
                              data_addr=addr)
        if addr in self._cells:
            # Fast path: a materialized cell can only be a global or an
            # in-object slot, so the only hazard left is use-after-free —
            # and that needs an object lookup only if anything was freed.
            if self._freed_count and addr >= HEAP_BASE:
                obj = self.object_at(addr, include_freed=True)
                if obj is not None and obj.state is ObjectState.FREED:
                    self._raise_uaf(obj, addr, writing)
            return True
        obj = self.object_at(addr, include_freed=True)
        if obj is not None:
            # Valid slots are the object's natural ones (base + k*8,
            # which eager allocation used to pre-fill) plus absolutely
            # 8-aligned in-object addresses (which loads used to
            # materialize on demand).
            if obj.in_redzone(addr) or (addr % 8 != 0
                                        and (addr - obj.base) % 8 != 0):
                raise KernelFault(
                    FailureKind.KASAN_OOB,
                    f"slab-out-of-bounds access in {obj.tag} "
                    f"(offset {addr - obj.base}, size {obj.size})",
                    data_addr=addr, object_tag=obj.tag)
            if obj.state is ObjectState.FREED:
                self._raise_uaf(obj, addr, writing)
            # Valid but uninitialized slot inside a live object.
            return False
        raise KernelFault(FailureKind.GPF,
                          f"wild memory access at 0x{addr:x}", data_addr=addr)

    @staticmethod
    def _raise_uaf(obj: HeapObject, addr: int, writing: bool) -> None:
        action = "write" if writing else "read"
        raise KernelFault(
            FailureKind.KASAN_UAF,
            f"use-after-free {action} in {obj.tag} "
            f"(freed at {obj.free_site or '?'})",
            data_addr=addr, object_tag=obj.tag)

    def load(self, addr: int) -> Any:
        if self._check(addr, writing=False):
            return self._cells[addr]
        # Absent in-object slot: reads are non-mutating — materializing the
        # slot here would make a pure load change the canonical state.
        return 0

    def store(self, addr: int, value: Any) -> None:
        self._check(addr, writing=True)
        self._write(addr, value)

    # -- journalled mutation helpers -------------------------------------
    def _write(self, addr: int, value: Any) -> None:
        cells = self._cells
        if addr not in self._cells_undo:
            self._cells_undo[addr] = cells.get(addr, _ABSENT)
        cells[addr] = value
        self._cells_gen += 1

    def _set_object(self, base: int, obj: HeapObject) -> None:
        if base not in self._objects_undo:
            self._objects_undo[base] = self._objects.get(base, _ABSENT)
        self._objects[base] = obj
        self._objects_gen += 1

    # ------------------------------------------------------------------
    # Canonical state key (consumed by repro.kernel.snapshot)
    # ------------------------------------------------------------------
    def state_key_parts(self) -> Tuple:
        """The memory components of the canonical machine-state key, cached
        per generation counter so unchanged components are never re-sorted."""
        if self._parent is not None and not (
                self._cells_undo or self._objects_undo or self._globals_undo):
            # Clean at a capture point: share (and memoize) the image's key.
            if self._parent._key_parts is None:
                self._parent._key_parts = self._live_key_parts()
            return self._parent._key_parts
        return self._live_key_parts()

    def _live_key_parts(self) -> Tuple:
        if self._ck_gen != self._cells_gen:
            self._ck = _canon_cells(self._cells)
            self._ck_gen = self._cells_gen
        if self._gk_gen != self._globals_gen:
            self._gk = _canon_globals(self._globals)
            self._gk_gen = self._globals_gen
        if self._ok_gen != self._objects_gen:
            self._ok = _canon_objects(self._objects)
            self._ok_gen = self._objects_gen
        return (self._ck, self._gk, self._ok,
                self._next_global, self._next_heap)

    # ------------------------------------------------------------------
    # Snapshot / restore (used by the hypervisor between runs)
    # ------------------------------------------------------------------
    def snapshot(self) -> MemoryImage:
        """Capture the current state as a structurally shared image.

        O(dirty): only addresses written since the previous capture are
        copied.  A capture with no intervening writes returns the previous
        image unchanged."""
        parent = self._parent
        dirty = (self._cells_undo or self._objects_undo
                 or self._globals_undo)
        if parent is not None and not dirty:
            return parent
        if parent is None or parent.depth >= _MAX_CHAIN_DEPTH:
            image = MemoryImage(
                None, dict(self._cells), dict(self._objects),
                dict(self._globals), {}, {},
                self._next_global, self._next_heap)
        else:
            image = MemoryImage(
                parent,
                {a: self._cells[a] for a in self._cells_undo},
                {b: self._objects[b] for b in self._objects_undo},
                {n: self._globals[n] for n in self._globals_undo},
                self._cells_undo, self._objects_undo,
                self._next_global, self._next_heap)
        self._parent = image
        self._cells_undo = {}
        self._objects_undo = {}
        self._globals_undo = set()
        return image

    def restore(self, snap) -> None:
        """Rewind (or fast-forward) to a previously captured state.

        Same-lineage restores replay undo/overlay deltas through the common
        ancestor — O(changes between here and there).  Cross-lineage images
        (e.g. unpickled from the wire) fall back to installing the
        materialized state."""
        if isinstance(snap, dict):  # legacy full-copy snapshot dict
            self._install(dict(snap["cells"]), dict(snap["objects"]),
                          dict(snap["globals"]),
                          snap["next_global"], snap["next_heap"], None)
            return
        image: MemoryImage = snap
        if image is self._parent:
            if self._cells_undo or self._objects_undo or self._globals_undo:
                self._apply_undo(self._cells_undo, self._objects_undo,
                                 self._globals_undo)
                self._finish_restore(image)
            return
        ancestors = set()
        node = self._parent
        while node is not None:
            ancestors.add(id(node))
            node = node.parent
        forward = []
        node = image
        while node is not None and id(node) not in ancestors:
            forward.append(node)
            node = node.parent
        if node is None:
            cells, objects, globs = image._materialized()
            self._install(dict(cells), dict(objects), dict(globs),
                          image.next_global, image.next_heap, image)
            return
        common = node
        # Roll the live dirt back, then unwind images down to the ancestor.
        self._apply_undo(self._cells_undo, self._objects_undo,
                         self._globals_undo)
        node = self._parent
        while node is not common:
            self._apply_undo(node.cells_undo, node.objects_undo,
                             node.globals_added)
            node = node.parent
        # Replay overlays forward from the ancestor to the target image.
        for img in reversed(forward):
            self._cells.update(img.cells)
            self._objects.update(img.objects)
            for name, addr in img.globals_added.items():
                self._globals[name] = addr
                self._global_names[addr] = name
        self._finish_restore(image)

    def _apply_undo(self, cells_undo, objects_undo, globals_added) -> None:
        cells = self._cells
        for addr, prev in cells_undo.items():
            if prev is _ABSENT:
                cells.pop(addr, None)
            else:
                cells[addr] = prev
        objects = self._objects
        for base, prev in objects_undo.items():
            if prev is _ABSENT:
                objects.pop(base, None)
            else:
                objects[base] = prev
        for name in globals_added:
            addr = self._globals.pop(name, None)
            if addr is not None:
                self._global_names.pop(addr, None)

    def _install(self, cells, objects, globals_map, next_global, next_heap,
                 parent) -> None:
        self._cells = cells
        self._objects = objects
        self._globals = globals_map
        self._global_names = {addr: name
                              for name, addr in globals_map.items()}
        self._next_global = next_global
        self._next_heap = next_heap
        self._finish_restore(parent)

    def _finish_restore(self, parent: Optional[MemoryImage]) -> None:
        if parent is not None:
            self._next_global = parent.next_global
            self._next_heap = parent.next_heap
        self._parent = parent
        self._cells_undo = {}
        self._objects_undo = {}
        self._globals_undo = set()
        self._bases = sorted(self._objects)
        self._freed_count = sum(
            1 for o in self._objects.values()
            if o.state is ObjectState.FREED)
        self._cells_gen += 1
        self._objects_gen += 1
        self._globals_gen += 1
